pub use unn;
