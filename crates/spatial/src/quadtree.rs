//! Point-region quadtree with branch-and-bound m-nearest-neighbor search.
//!
//! The paper's §4.3 remark (ii) suggests exactly this structure ("one may use
//! quad-trees and a branch-and-bound algorithm to retrieve m points of S
//! closest to q" `[Har11]`) as the practical replacement for the theoretically
//! optimal `[AC09]` structure. It is benchmarked against the kd-tree in the
//! ablation experiment E14.

use unn_geom::{Aabb, Point};

/// Max points per leaf before splitting.
const LEAF_CAP: usize = 16;
/// Max tree depth (guards against many coincident points).
const MAX_DEPTH: u32 = 32;

#[derive(Clone, Debug)]
enum NodeKind {
    Leaf {
        ids: Vec<u32>,
    },
    /// Children in quadrant order: SW, SE, NW, NE.
    Internal {
        children: [u32; 4],
    },
}

#[derive(Clone, Debug)]
struct Node {
    bbox: Aabb,
    kind: NodeKind,
}

/// A PR quadtree over a static point set.
#[derive(Clone, Debug)]
pub struct QuadTree {
    nodes: Vec<Node>,
    pts: Vec<Point>,
}

impl QuadTree {
    /// Builds a quadtree over `points`.
    pub fn new(points: &[Point]) -> Self {
        let mut tree = QuadTree {
            nodes: Vec::new(),
            pts: points.to_vec(),
        };
        if points.is_empty() {
            return tree;
        }
        let mut bbox = Aabb::of_points(points);
        // Make it square and slightly padded so splits stay well-formed.
        let side = bbox.width().max(bbox.height()).max(1e-12);
        bbox = Aabb::new(bbox.min, Point::new(bbox.min.x + side, bbox.min.y + side))
            .inflate(side * 1e-9);
        let ids: Vec<u32> = (0..points.len() as u32).collect();
        tree.build(bbox, ids, 0);
        tree
    }

    fn build(&mut self, bbox: Aabb, ids: Vec<u32>, depth: u32) -> u32 {
        let idx = self.nodes.len() as u32;
        if ids.len() <= LEAF_CAP || depth >= MAX_DEPTH {
            self.nodes.push(Node {
                bbox,
                kind: NodeKind::Leaf { ids },
            });
            return idx;
        }
        self.nodes.push(Node {
            bbox,
            kind: NodeKind::Leaf { ids: Vec::new() }, // placeholder
        });
        let c = bbox.center();
        let mut buckets: [Vec<u32>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for id in ids {
            let p = self.pts[id as usize];
            let qx = usize::from(p.x > c.x);
            let qy = usize::from(p.y > c.y);
            buckets[qy * 2 + qx].push(id);
        }
        let quads = [
            Aabb::new(bbox.min, c),
            Aabb::new(Point::new(c.x, bbox.min.y), Point::new(bbox.max.x, c.y)),
            Aabb::new(Point::new(bbox.min.x, c.y), Point::new(c.x, bbox.max.y)),
            Aabb::new(c, bbox.max),
        ];
        let mut children = [u32::MAX; 4];
        for (i, (quad, bucket)) in quads.into_iter().zip(buckets).enumerate() {
            children[i] = self.build(quad, bucket, depth + 1);
        }
        self.nodes[idx as usize].kind = NodeKind::Internal { children };
        idx
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// `true` if the tree holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// The `m` nearest neighbors of `q` by best-first branch-and-bound,
    /// returned as `(id, dist)` sorted by increasing distance.
    pub fn m_nearest(&self, q: Point, m: usize) -> Vec<(usize, f64)> {
        if self.is_empty() || m == 0 {
            return Vec::new();
        }
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Entry(f64, u32);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        let mut frontier: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
        frontier.push(Reverse(Entry(0.0, 0)));
        // Max-heap of current best m (dist, id).
        let mut best: BinaryHeap<Entry> = BinaryHeap::new();
        // Worst distance currently kept; +inf while fewer than `m` found
        // (and for `m == 0`, where the heap stays empty throughout).
        let worst = |best: &BinaryHeap<Entry>| best.peek().map_or(f64::INFINITY, |e| e.0);
        while let Some(Reverse(Entry(lb, node))) = frontier.pop() {
            if best.len() == m && lb >= worst(&best) {
                break; // no remaining node can improve
            }
            match &self.nodes[node as usize].kind {
                NodeKind::Leaf { ids } => {
                    for &id in ids {
                        let d = self.pts[id as usize].dist(q);
                        if best.len() < m {
                            best.push(Entry(d, id));
                        } else if d < worst(&best) {
                            best.pop();
                            best.push(Entry(d, id));
                        }
                    }
                }
                NodeKind::Internal { children } => {
                    for &c in children {
                        let lb = self.nodes[c as usize].bbox.min_dist(q);
                        if best.len() < m || lb < worst(&best) {
                            frontier.push(Reverse(Entry(lb, c)));
                        }
                    }
                }
            }
        }
        let mut out: Vec<(usize, f64)> = best
            .into_iter()
            .map(|Entry(d, id)| (id as usize, d))
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0)))
            .collect()
    }

    #[test]
    fn m_nearest_matches_brute_force() {
        let pts = random_points(500, 10);
        let tree = QuadTree::new(&pts);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..40 {
            let q = Point::new(rng.random_range(-60.0..60.0), rng.random_range(-60.0..60.0));
            for m in [1, 8, 33, 500] {
                let got = tree.m_nearest(q, m);
                let mut want: Vec<f64> = pts.iter().map(|p| p.dist(q)).collect();
                want.sort_by(f64::total_cmp);
                want.truncate(m);
                assert_eq!(got.len(), want.len(), "m={m}");
                for (g, &w) in got.iter().zip(&want) {
                    assert!((g.1 - w).abs() < 1e-12, "m={m}");
                }
            }
        }
    }

    #[test]
    fn handles_duplicates_beyond_depth() {
        let mut pts = vec![Point::new(1.0, 1.0); 100];
        pts.push(Point::new(2.0, 2.0));
        let tree = QuadTree::new(&pts);
        let got = tree.m_nearest(Point::new(0.0, 0.0), 101);
        assert_eq!(got.len(), 101);
        assert_eq!(got.last().unwrap().0, 100); // the distinct far point last
    }

    #[test]
    fn empty_tree() {
        let tree = QuadTree::new(&[]);
        assert!(tree.m_nearest(Point::ORIGIN, 5).is_empty());
        assert!(tree.is_empty());
    }

    proptest! {
        #[test]
        fn prop_quadtree_agrees_with_sort(
            pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..80),
            qx in -60.0f64..60.0, qy in -60.0f64..60.0,
            m in 1usize..30,
        ) {
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let tree = QuadTree::new(&pts);
            let got = tree.m_nearest(Point::new(qx, qy), m);
            let mut want: Vec<f64> = pts.iter().map(|p| p.dist(Point::new(qx, qy))).collect();
            want.sort_by(f64::total_cmp);
            want.truncate(m);
            prop_assert_eq!(got.len(), want.len());
            for (g, &w) in got.iter().zip(&want) {
                prop_assert!((g.1 - w).abs() < 1e-12);
            }
        }
    }
}
