//! Uniform grid index over points.
//!
//! A third backend for neighborhood queries, used by the ablation benches:
//! constant-time bucketing beats trees on uniformly distributed data but
//! degrades under clustering. Cells are square with a caller-chosen size.

use unn_geom::{Aabb, Point};

/// A uniform bucket grid over a static point set.
#[derive(Clone, Debug)]
pub struct UniformGrid {
    origin: Point,
    cell: f64,
    nx: i64,
    ny: i64,
    /// CSR layout: `starts[c]..starts[c+1]` indexes into `entries`.
    starts: Vec<u32>,
    entries: Vec<u32>,
    pts: Vec<Point>,
}

impl UniformGrid {
    /// Builds a grid with the given cell size (must be positive).
    pub fn new(points: &[Point], cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "bad cell size");
        let bb = if points.is_empty() {
            Aabb::new(Point::ORIGIN, Point::new(1.0, 1.0))
        } else {
            Aabb::of_points(points)
        };
        let nx = ((bb.width() / cell).floor() as i64 + 1).max(1);
        let ny = ((bb.height() / cell).floor() as i64 + 1).max(1);
        let ncells = (nx * ny) as usize;
        let origin = bb.min;
        let cell_of = |p: Point| -> usize {
            let cx = (((p.x - origin.x) / cell).floor() as i64).clamp(0, nx - 1);
            let cy = (((p.y - origin.y) / cell).floor() as i64).clamp(0, ny - 1);
            (cy * nx + cx) as usize
        };
        // Counting sort into CSR.
        let mut counts = vec![0u32; ncells + 1];
        for p in points {
            counts[cell_of(*p) + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let starts = counts.clone();
        let mut entries = vec![0u32; points.len()];
        let mut cursor = starts.clone();
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(*p);
            entries[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        UniformGrid {
            origin,
            cell,
            nx,
            ny,
            starts,
            entries,
            pts: points.to_vec(),
        }
    }

    /// A build heuristic: cell size targeting ~2 points per cell for `n`
    /// points spread over `bbox`.
    pub fn auto(points: &[Point]) -> Self {
        let bb = Aabb::of_points(points);
        let n = points.len().max(1);
        let area = (bb.width() * bb.height()).max(1e-12);
        let cell = (2.0 * area / n as f64).sqrt().max(1e-12);
        Self::new(points, cell)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// `true` if there are no points.
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// Calls `visit(id, dist)` for every point within distance `r` of `q`.
    pub fn for_each_in_disk(&self, q: Point, r: f64, visit: &mut dyn FnMut(usize, f64)) {
        if self.is_empty() || r < 0.0 {
            return;
        }
        let cx0 = (((q.x - r - self.origin.x) / self.cell).floor() as i64).clamp(0, self.nx - 1);
        let cx1 = (((q.x + r - self.origin.x) / self.cell).floor() as i64).clamp(0, self.nx - 1);
        let cy0 = (((q.y - r - self.origin.y) / self.cell).floor() as i64).clamp(0, self.ny - 1);
        let cy1 = (((q.y + r - self.origin.y) / self.cell).floor() as i64).clamp(0, self.ny - 1);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let c = (cy * self.nx + cx) as usize;
                for &id in &self.entries[self.starts[c] as usize..self.starts[c + 1] as usize] {
                    let d = self.pts[id as usize].dist(q);
                    if d <= r {
                        visit(id as usize, d);
                    }
                }
            }
        }
    }

    /// Nearest neighbor by expanding ring search, or `None` when empty.
    pub fn nearest(&self, q: Point) -> Option<(usize, f64)> {
        if self.is_empty() {
            return None;
        }
        // Expand the search radius in cell-size increments until a hit is
        // confirmed closer than the next ring could be.
        let mut r = self.cell;
        let diag = ((self.nx as f64 * self.cell).powi(2) + (self.ny as f64 * self.cell).powi(2))
            .sqrt()
            + self.origin.dist(q)
            + self.cell;
        loop {
            let mut best: Option<(usize, f64)> = None;
            self.for_each_in_disk(q, r, &mut |id, d| {
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((id, d));
                }
            });
            if let Some((_, d)) = best {
                if d <= r {
                    return best;
                }
            }
            if r > diag {
                // Fall back to full scan (query far outside the grid).
                let mut best = (0usize, f64::INFINITY);
                for (i, p) in self.pts.iter().enumerate() {
                    let d = p.dist(q);
                    if d < best.1 {
                        best = (i, d);
                    }
                }
                return Some(best);
            }
            r *= 2.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0)))
            .collect()
    }

    #[test]
    fn disk_report_matches_brute_force() {
        let pts = random_points(400, 20);
        let grid = UniformGrid::auto(&pts);
        let mut rng = SmallRng::seed_from_u64(21);
        for _ in 0..40 {
            let q = Point::new(rng.random_range(-70.0..70.0), rng.random_range(-70.0..70.0));
            let r = rng.random_range(0.0..40.0);
            let mut got: Vec<usize> = Vec::new();
            grid.for_each_in_disk(q, r, &mut |id, _| got.push(id));
            got.sort_unstable();
            let want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.dist(q) <= r)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(300, 22);
        let grid = UniformGrid::auto(&pts);
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..100 {
            let q = Point::new(
                rng.random_range(-200.0..200.0),
                rng.random_range(-200.0..200.0),
            );
            let (_, d) = grid.nearest(q).unwrap();
            let want = pts.iter().map(|p| p.dist(q)).fold(f64::INFINITY, f64::min);
            assert!((d - want).abs() < 1e-12, "q={q:?} got={d} want={want}");
        }
    }

    #[test]
    fn empty_grid() {
        let grid = UniformGrid::new(&[], 1.0);
        assert!(grid.nearest(Point::ORIGIN).is_none());
        let mut count = 0;
        grid.for_each_in_disk(Point::ORIGIN, 10.0, &mut |_, _| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn single_cell_degenerate() {
        // All points coincide: grid has one occupied cell.
        let pts = vec![Point::new(3.0, 3.0); 10];
        let grid = UniformGrid::new(&pts, 0.5);
        let (id, d) = grid.nearest(Point::new(100.0, 100.0)).unwrap();
        assert!(id < 10);
        assert!((d - Point::new(3.0, 3.0).dist(Point::new(100.0, 100.0))).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_grid_nearest_agrees(
            pts in proptest::collection::vec((-30.0f64..30.0, -30.0f64..30.0), 1..60),
            qx in -90.0f64..90.0, qy in -90.0f64..90.0,
        ) {
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let grid = UniformGrid::auto(&pts);
            let q = Point::new(qx, qy);
            let (_, d) = grid.nearest(q).unwrap();
            let want = pts.iter().map(|p| p.dist(q)).fold(f64::INFINITY, f64::min);
            prop_assert!((d - want).abs() < 1e-12);
        }
    }
}
