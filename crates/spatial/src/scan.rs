//! Shared SoA leaf-scan kernel for [`KdTree`](crate::KdTree) and
//! [`KdForest`](crate::KdForest).
//!
//! Leaf points live in separate `x[]`/`y[]` arenas; this module turns a
//! leaf's slot range into a stream of `(slot, distance)` pairs. The `BATCH`
//! const parameter selects between the two-phase batched layout and the
//! plain scalar loop retained as the differential oracle.
//!
//! The batched path splits each leaf into [`SCAN_CHUNK`]-slot chunks and
//! processes every chunk in two phases: a pure distance fill into a stack
//! buffer — a straight-line loop with no calls or branches, which the
//! compiler turns into packed [`LANES`]-wide arithmetic — followed by a
//! serial visit pass over the buffer. Interleaving the consumer callback
//! with the distance math (the scalar layout) forces scalar square roots;
//! separating the phases is what lets the `sqrt`s run `LANES` at a time.
//!
//! Both paths perform the exact scalar operation sequence of `Point::dist`
//! per element and hand results to the consumer in ascending slot order, so
//! they are **bit-identical** by construction — `tests/kernel_equivalence.rs`
//! at the workspace root guards that equivalence against drift.

use unn_geom::kernels::LANES;
use unn_geom::Point;

/// Slots per two-phase chunk: bounds the stack distance buffer while
/// staying large enough that the vectorized fill amortizes the phase
/// switch for every leaf size [`crate::KdConfig`] allows.
pub(crate) const SCAN_CHUNK: usize = 256;

/// Fills `dbuf[k] = d(q, p_{start+k})` for `k < end - start` with the exact
/// `Point::dist` operation sequence per element. Pure straight-line loop —
/// this is the autovectorization surface.
#[inline]
fn fill_dists(xs: &[f64], ys: &[f64], start: usize, end: usize, q: Point, dbuf: &mut [f64]) {
    let len = end - start;
    let (xc, yc) = (&xs[start..end], &ys[start..end]);
    for ((dst, &x), &y) in dbuf[..len].iter_mut().zip(xc).zip(yc) {
        let dx = x - q.x;
        let dy = y - q.y;
        *dst = (dx * dx + dy * dy).sqrt();
    }
}

/// Feeds `f` with `(slot, d(q, p_slot))` for every slot in `start..end`,
/// in ascending slot order, where `p_slot = (xs[slot], ys[slot])`.
///
/// Observability: ticks `leaf_points_scanned` by the slot count and (when
/// `BATCH`) `simd_batches` by the number of full-width lane batches.
#[inline]
pub(crate) fn scan_dists<const BATCH: bool, F: FnMut(usize, f64)>(
    xs: &[f64],
    ys: &[f64],
    start: usize,
    end: usize,
    q: Point,
    f: &mut F,
) {
    unn_observe::leaf_points((end - start) as u64);
    if BATCH {
        unn_observe::simd_batches_add(((end - start) / LANES) as u64);
        let mut dbuf = [0.0f64; SCAN_CHUNK];
        let mut i = start;
        while i < end {
            let stop = (i + SCAN_CHUNK).min(end);
            fill_dists(xs, ys, i, stop, q, &mut dbuf);
            for (k, &d) in dbuf[..stop - i].iter().enumerate() {
                f(i + k, d);
            }
            i = stop;
        }
    } else {
        for i in start..end {
            let dx = xs[i] - q.x;
            let dy = ys[i] - q.y;
            f(i, (dx * dx + dy * dy).sqrt());
        }
    }
}

/// [`scan_dists`] with an admission threshold: `f` is only invoked for
/// slots whose distance satisfies `d <= thresh()` at the time the slot is
/// reached — the common reject case never enters the consumer.
///
/// `thresh()` is re-read per slot, so a consumer that tightens its bound
/// mid-leaf (nearest-neighbor incumbents) gates later slots against the
/// newer value. Since every consumer predicate implies `d <= thresh()`,
/// the gate never drops a slot the consumer would have accepted, and
/// consumer-visible behavior is bit-identical across both `BATCH` modes.
#[inline]
pub(crate) fn scan_dists_below<const BATCH: bool, T: FnMut() -> f64, F: FnMut(usize, f64)>(
    xs: &[f64],
    ys: &[f64],
    start: usize,
    end: usize,
    q: Point,
    thresh: &mut T,
    f: &mut F,
) {
    unn_observe::leaf_points((end - start) as u64);
    if BATCH {
        unn_observe::simd_batches_add(((end - start) / LANES) as u64);
        let mut dbuf = [0.0f64; SCAN_CHUNK];
        let mut i = start;
        while i < end {
            let stop = (i + SCAN_CHUNK).min(end);
            fill_dists(xs, ys, i, stop, q, &mut dbuf);
            for (k, &d) in dbuf[..stop - i].iter().enumerate() {
                if d <= thresh() {
                    f(i + k, d);
                }
            }
            i = stop;
        }
    } else {
        for i in start..end {
            let dx = xs[i] - q.x;
            let dy = ys[i] - q.y;
            let d = (dx * dx + dy * dy).sqrt();
            if d <= thresh() {
                f(i, d);
            }
        }
    }
}
