//! Shared SoA leaf-scan kernel for [`KdTree`](crate::KdTree) and
//! [`KdForest`](crate::KdForest).
//!
//! Leaf points live in separate `x[]`/`y[]` arenas; this module turns a
//! leaf's slot range into a stream of `(slot, distance)` pairs. The `BATCH`
//! const parameter selects between the two-phase batched layout and the
//! plain scalar loop retained as the differential oracle.
//!
//! The batched path splits each leaf into [`SCAN_CHUNK`]-slot chunks and
//! processes every chunk in two phases: a pure distance fill into a stack
//! buffer — a straight-line loop with no calls or branches, which the
//! compiler turns into packed [`LANES`]-wide arithmetic — followed by a
//! serial visit pass over the buffer. Interleaving the consumer callback
//! with the distance math (the scalar layout) forces scalar square roots;
//! separating the phases is what lets the `sqrt`s run `LANES` at a time.
//!
//! Both paths perform the exact scalar operation sequence of `Point::dist`
//! per element and hand results to the consumer in ascending slot order, so
//! they are **bit-identical** by construction — `tests/kernel_equivalence.rs`
//! at the workspace root guards that equivalence against drift.
//!
//! [`scan_dists_below`] optionally runs its fill phase over f32 shadow
//! arenas ([`F32Filter`], enabled by
//! [`FilterPrecision::F32Refined`](crate::FilterPrecision)): slots are
//! gated against a conservatively widened threshold and every admitted
//! slot is recomputed with the exact f64 sequence before the visit pass,
//! preserving the bit-identity contract (see [`crate::precision`]).

use unn_geom::kernels::LANES;
use unn_geom::Point;

use crate::precision::f32_widened_threshold;

/// Slots per two-phase chunk: bounds the stack distance buffer while
/// staying large enough that the vectorized fill amortizes the phase
/// switch for every leaf size [`crate::KdConfig`] allows.
pub(crate) const SCAN_CHUNK: usize = 256;

/// Borrowed f32 shadow arenas plus the widening scale — the per-query view
/// a [`crate::FilterPrecision::F32Refined`] scan gates with. Callers only
/// construct one when every coordinate (points and query) is within
/// [`crate::precision::F32_SAFE_SCALE`]; otherwise the query falls back to
/// the exact f64 fill and passes `None`.
pub(crate) struct F32Filter<'a> {
    /// f32 copies of the f64 `x[]` arena, same slot layout.
    pub xs32: &'a [f32],
    /// f32 copies of the f64 `y[]` arena, same slot layout.
    pub ys32: &'a [f32],
    /// Max coordinate magnitude over arena ∪ query — the `scale` argument
    /// of [`f32_widened_threshold`].
    pub scale: f64,
}

/// Fills `dbuf[k] = d(q, p_{start+k})` for `k < end - start` with the exact
/// `Point::dist` operation sequence per element. Pure straight-line loop —
/// this is the autovectorization surface.
#[inline]
fn fill_dists(xs: &[f64], ys: &[f64], start: usize, end: usize, q: Point, dbuf: &mut [f64]) {
    let len = end - start;
    let (xc, yc) = (&xs[start..end], &ys[start..end]);
    for ((dst, &x), &y) in dbuf[..len].iter_mut().zip(xc).zip(yc) {
        let dx = x - q.x;
        let dy = y - q.y;
        *dst = (dx * dx + dy * dy).sqrt();
    }
}

/// Feeds `f` with `(slot, d(q, p_slot))` for every slot in `start..end`,
/// in ascending slot order, where `p_slot = (xs[slot], ys[slot])`.
///
/// Observability: ticks `leaf_points_scanned` by the slot count and (when
/// `BATCH`) `simd_batches` by the number of full-width lane batches.
#[inline]
pub(crate) fn scan_dists<const BATCH: bool, F: FnMut(usize, f64)>(
    xs: &[f64],
    ys: &[f64],
    start: usize,
    end: usize,
    q: Point,
    f: &mut F,
) {
    unn_observe::leaf_points((end - start) as u64);
    if BATCH {
        unn_observe::simd_batches_add(((end - start) / LANES) as u64);
        let mut dbuf = [0.0f64; SCAN_CHUNK];
        let mut i = start;
        while i < end {
            let stop = (i + SCAN_CHUNK).min(end);
            fill_dists(xs, ys, i, stop, q, &mut dbuf);
            for (k, &d) in dbuf[..stop - i].iter().enumerate() {
                f(i + k, d);
            }
            i = stop;
        }
    } else {
        for i in start..end {
            let dx = xs[i] - q.x;
            let dy = ys[i] - q.y;
            f(i, (dx * dx + dy * dy).sqrt());
        }
    }
}

/// Fills `dbuf[k]` with the f32-pipeline distance of slot `start + k`:
/// cast coordinates, subtract, square-sum, sqrt — all in f32. Same
/// straight-line autovectorization surface as [`fill_dists`], at half the
/// load bandwidth and twice the lane width.
#[inline]
fn fill_dists32(
    xs32: &[f32],
    ys32: &[f32],
    start: usize,
    end: usize,
    qx: f32,
    qy: f32,
    dbuf: &mut [f32],
) {
    let len = end - start;
    let (xc, yc) = (&xs32[start..end], &ys32[start..end]);
    for ((dst, &x), &y) in dbuf[..len].iter_mut().zip(xc).zip(yc) {
        let dx = x - qx;
        let dy = y - qy;
        *dst = (dx * dx + dy * dy).sqrt();
    }
}

/// The f32-filtered two-phase chunk loop behind [`scan_dists_below`]: fill
/// in f32, gate against the widened threshold, and recompute every admitted
/// slot with the exact f64 operation sequence before handing it to `f` —
/// so the consumer observes the identical `(slot, d)` stream as the exact
/// paths (DESIGN.md §8).
#[inline]
#[allow(clippy::too_many_arguments)] // internal kernel; mirrors scan_dists_below
fn scan_below_f32<T: FnMut() -> f64, F: FnMut(usize, f64)>(
    xs: &[f64],
    ys: &[f64],
    fil: &F32Filter<'_>,
    start: usize,
    end: usize,
    q: Point,
    thresh: &mut T,
    f: &mut F,
) {
    let (qx32, qy32) = (q.x as f32, q.y as f32);
    let mut dbuf = [0.0f32; SCAN_CHUNK];
    // Widened-threshold cache, invalidated whenever the re-read threshold
    // moves: a consumer that tightens its incumbent mid-chunk must gate
    // later slots against the *new* widened value, exactly as the exact
    // paths re-read `thresh()` per slot.
    let mut cached_t = f64::NAN;
    let mut widened = f64::INFINITY;
    let mut i = start;
    while i < end {
        let stop = (i + SCAN_CHUNK).min(end);
        fill_dists32(fil.xs32, fil.ys32, i, stop, qx32, qy32, &mut dbuf);
        for (k, &d32) in dbuf[..stop - i].iter().enumerate() {
            let t = thresh();
            if t.to_bits() != cached_t.to_bits() {
                widened = f32_widened_threshold(t, fil.scale);
                cached_t = t;
            }
            // NaN-admitting compare: a poisoned fill (NaN coordinates)
            // must reach the exact re-check, which rejects it the same
            // way the f64 paths do.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(f64::from(d32) > widened) {
                let slot = i + k;
                let dx = xs[slot] - q.x;
                let dy = ys[slot] - q.y;
                let d = (dx * dx + dy * dy).sqrt();
                if d <= t {
                    f(slot, d);
                }
            }
        }
        i = stop;
    }
}

/// [`scan_dists`] with an admission threshold: `f` is only invoked for
/// slots whose distance satisfies `d <= thresh()` at the time the slot is
/// reached — the common reject case never enters the consumer.
///
/// `thresh()` is re-read per slot, so a consumer that tightens its bound
/// mid-leaf (nearest-neighbor incumbents) gates later slots against the
/// newer value. Since every consumer predicate implies `d <= thresh()`,
/// the gate never drops a slot the consumer would have accepted, and
/// consumer-visible behavior is bit-identical across both `BATCH` modes.
///
/// `filter` (only consulted when `BATCH`) switches the fill phase to the
/// f32 shadow arenas with widened-threshold admission and exact f64
/// refinement of admitted slots — same consumer-visible stream, roughly
/// half the fill bandwidth. The scalar arm ignores it: that path *is* the
/// f64 oracle the filter is diffed against.
#[inline]
#[allow(clippy::too_many_arguments)] // crate-internal leaf-scan entry point
pub(crate) fn scan_dists_below<const BATCH: bool, T: FnMut() -> f64, F: FnMut(usize, f64)>(
    xs: &[f64],
    ys: &[f64],
    filter: Option<&F32Filter<'_>>,
    start: usize,
    end: usize,
    q: Point,
    thresh: &mut T,
    f: &mut F,
) {
    unn_observe::leaf_points((end - start) as u64);
    if BATCH {
        unn_observe::simd_batches_add(((end - start) / LANES) as u64);
        if let Some(fil) = filter {
            scan_below_f32(xs, ys, fil, start, end, q, thresh, f);
            return;
        }
        let mut dbuf = [0.0f64; SCAN_CHUNK];
        let mut i = start;
        while i < end {
            let stop = (i + SCAN_CHUNK).min(end);
            fill_dists(xs, ys, i, stop, q, &mut dbuf);
            for (k, &d) in dbuf[..stop - i].iter().enumerate() {
                if d <= thresh() {
                    f(i + k, d);
                }
            }
            i = stop;
        }
    } else {
        for i in start..end {
            let dx = xs[i] - q.x;
            let dy = ys[i] - q.y;
            let d = (dx * dx + dy * dy).sqrt();
            if d <= thresh() {
                f(i, d);
            }
        }
    }
}
