//! Static R-tree (STR bulk load) over rectangles.
//!
//! The paper's related work answers `NN≠0` queries with R-tree
//! branch-and-prune (`[CKP04]`) and combines the nonzero Voronoi diagram with
//! R-tree-style bounding rectangles (`[ZCM⁺13]`). This module provides the
//! substrate: a packed Sort-Tile-Recursive R-tree with the two
//! branch-and-bound queries those methods need —
//!
//! * [`RTree::min_max_dist`]: minimize the max-distance to an entry
//!   (an upper bound on `Δ(q)` when entries are support bounding boxes);
//! * [`RTree::report_min_below`]: report entries whose min-distance is
//!   below a threshold (the candidate filter, refined by exact `δ_i`).

use unn_geom::{Aabb, Point};

/// Entries per node.
const NODE_CAP: usize = 8;

#[derive(Clone, Debug)]
struct Node {
    bbox: Aabb,
    /// Children node indices (internal) — empty for leaves.
    children: Vec<u32>,
    /// Entry ids (leaves) — empty for internal nodes.
    entries: Vec<u32>,
}

/// A static, bulk-loaded R-tree over axis-aligned rectangles.
#[derive(Clone, Debug)]
pub struct RTree {
    nodes: Vec<Node>,
    boxes: Vec<Aabb>,
    root: u32,
}

impl RTree {
    /// Bulk-loads with Sort-Tile-Recursive packing.
    pub fn new(boxes: &[Aabb]) -> Self {
        let mut tree = RTree {
            nodes: Vec::new(),
            boxes: boxes.to_vec(),
            root: 0,
        };
        if boxes.is_empty() {
            tree.nodes.push(Node {
                bbox: Aabb::EMPTY,
                children: Vec::new(),
                entries: Vec::new(),
            });
            return tree;
        }
        // STR: sort by center x, slice into vertical strips of
        // sqrt(n / cap) each, sort strips by center y, pack.
        let n = boxes.len();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        ids.sort_by(|&a, &b| {
            boxes[a as usize]
                .center()
                .x
                .total_cmp(&boxes[b as usize].center().x)
        });
        let leaves = n.div_ceil(NODE_CAP);
        let strips = (leaves as f64).sqrt().ceil() as usize;
        let per_strip = n.div_ceil(strips);
        let mut leaf_ids: Vec<u32> = Vec::new();
        for strip in ids.chunks(per_strip) {
            let mut strip: Vec<u32> = strip.to_vec();
            strip.sort_by(|&a, &b| {
                boxes[a as usize]
                    .center()
                    .y
                    .total_cmp(&boxes[b as usize].center().y)
            });
            for chunk in strip.chunks(NODE_CAP) {
                let mut bbox = Aabb::EMPTY;
                for &e in chunk {
                    bbox = bbox.union(&boxes[e as usize]);
                }
                let id = tree.nodes.len() as u32;
                tree.nodes.push(Node {
                    bbox,
                    children: Vec::new(),
                    entries: chunk.to_vec(),
                });
                leaf_ids.push(id);
            }
        }
        // Pack upward.
        let mut level = leaf_ids;
        while level.len() > 1 {
            let mut next = Vec::new();
            for chunk in level.chunks(NODE_CAP) {
                let mut bbox = Aabb::EMPTY;
                for &c in chunk {
                    bbox = bbox.union(&tree.nodes[c as usize].bbox);
                }
                let id = tree.nodes.len() as u32;
                tree.nodes.push(Node {
                    bbox,
                    children: chunk.to_vec(),
                    entries: Vec::new(),
                });
                next.push(id);
            }
            level = next;
        }
        tree.root = level[0];
        tree
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// `true` when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// The entry minimizing the maximum distance from `q` to its rectangle,
    /// by best-first branch and bound (bound: `node_box.min_dist`).
    pub fn min_max_dist(&self, q: Point) -> Option<(usize, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut best: (usize, f64) = (usize::MAX, f64::INFINITY);
        self.min_max_rec(self.root, q, &mut best);
        (best.0 != usize::MAX).then_some(best)
    }

    fn min_max_rec(&self, node: u32, q: Point, best: &mut (usize, f64)) {
        let n = &self.nodes[node as usize];
        if n.bbox.is_empty() || n.bbox.min_dist(q) >= best.1 {
            return;
        }
        if n.children.is_empty() {
            for &e in &n.entries {
                let d = self.boxes[e as usize].max_dist(q);
                if d < best.1 {
                    *best = (e as usize, d);
                }
            }
            return;
        }
        // Order children by optimistic bound.
        let mut order: Vec<u32> = n.children.clone();
        order.sort_by(|&a, &b| {
            self.nodes[a as usize]
                .bbox
                .min_dist(q)
                .total_cmp(&self.nodes[b as usize].bbox.min_dist(q))
        });
        for c in order {
            self.min_max_rec(c, q, best);
        }
    }

    /// Calls `visit(id, min_dist)` for every entry whose rectangle's minimum
    /// distance to `q` is strictly below `t`.
    pub fn report_min_below(&self, q: Point, t: f64, visit: &mut dyn FnMut(usize, f64)) {
        if self.is_empty() {
            return;
        }
        self.report_rec(self.root, q, t, visit);
    }

    fn report_rec(&self, node: u32, q: Point, t: f64, visit: &mut dyn FnMut(usize, f64)) {
        let n = &self.nodes[node as usize];
        if n.bbox.is_empty() || n.bbox.min_dist(q) >= t {
            return;
        }
        if n.children.is_empty() {
            for &e in &n.entries {
                let d = self.boxes[e as usize].min_dist(q);
                if d < t {
                    visit(e as usize, d);
                }
            }
            return;
        }
        for &c in &n.children {
            self.report_rec(c, q, t, visit);
        }
    }

    /// The `[CKP04]`-style candidate filter for `NN≠0`: entries whose box
    /// min-distance is below the smallest box max-distance. The result is a
    /// *superset* of the true `NN≠0` over the underlying supports; refine
    /// with exact `δ_i`/`Δ_j`.
    pub fn nonzero_candidates(&self, q: Point) -> Vec<usize> {
        let Some((_, cap)) = self.min_max_dist(q) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        // Use a threshold marginally above cap so ties survive filtering.
        self.report_min_below(q, cap.next_up(), &mut |i, d| {
            if d <= cap {
                out.push(i);
            }
        });
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_boxes(n: usize, seed: u64) -> Vec<Aabb> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let cx: f64 = rng.random_range(-80.0..80.0);
                let cy: f64 = rng.random_range(-80.0..80.0);
                let w: f64 = rng.random_range(0.2..4.0);
                let h: f64 = rng.random_range(0.2..4.0);
                Aabb::new(Point::new(cx - w, cy - h), Point::new(cx + w, cy + h))
            })
            .collect()
    }

    #[test]
    fn min_max_matches_brute_force() {
        let boxes = random_boxes(500, 60);
        let tree = RTree::new(&boxes);
        let mut rng = SmallRng::seed_from_u64(61);
        for _ in 0..200 {
            let q = Point::new(rng.random_range(-90.0..90.0), rng.random_range(-90.0..90.0));
            let (_, got) = tree.min_max_dist(q).unwrap();
            let want = boxes
                .iter()
                .map(|b| b.max_dist(q))
                .fold(f64::INFINITY, f64::min);
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn report_matches_brute_force() {
        let boxes = random_boxes(400, 62);
        let tree = RTree::new(&boxes);
        let mut rng = SmallRng::seed_from_u64(63);
        for _ in 0..100 {
            let q = Point::new(rng.random_range(-90.0..90.0), rng.random_range(-90.0..90.0));
            let t = rng.random_range(1.0..60.0);
            let mut got: Vec<usize> = Vec::new();
            tree.report_min_below(q, t, &mut |i, _| got.push(i));
            got.sort_unstable();
            let want: Vec<usize> = boxes
                .iter()
                .enumerate()
                .filter(|(_, b)| b.min_dist(q) < t)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn candidates_are_superset_of_exact() {
        // The box filter must never lose a true candidate.
        let boxes = random_boxes(200, 64);
        let tree = RTree::new(&boxes);
        let mut rng = SmallRng::seed_from_u64(65);
        for _ in 0..100 {
            let q = Point::new(rng.random_range(-90.0..90.0), rng.random_range(-90.0..90.0));
            let cands = tree.nonzero_candidates(q);
            let cap = boxes
                .iter()
                .map(|b| b.max_dist(q))
                .fold(f64::INFINITY, f64::min);
            for (i, b) in boxes.iter().enumerate() {
                if b.min_dist(q) < cap {
                    assert!(cands.contains(&i), "lost candidate {i}");
                }
            }
        }
    }

    #[test]
    fn empty_and_single() {
        let empty = RTree::new(&[]);
        assert!(empty.min_max_dist(Point::ORIGIN).is_none());
        assert!(empty.nonzero_candidates(Point::ORIGIN).is_empty());
        let one = RTree::new(&[Aabb::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))]);
        assert_eq!(one.nonzero_candidates(Point::new(5.0, 5.0)), vec![0]);
    }

    #[test]
    fn tree_is_packed() {
        // STR should produce near-minimal node counts.
        let boxes = random_boxes(1000, 66);
        let tree = RTree::new(&boxes);
        let leaves = 1000usize.div_ceil(NODE_CAP);
        // STR tiling leaves some slack in the last chunk of each strip;
        // total nodes stay within ~1.5x the minimal leaf count.
        assert!(
            tree.nodes.len() <= leaves + leaves / 2,
            "{} nodes for {leaves} minimal leaves",
            tree.nodes.len()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_min_max_agrees(
            seed in 0u64..5000, qx in -90.0f64..90.0, qy in -90.0f64..90.0,
        ) {
            let boxes = random_boxes(50, seed);
            let tree = RTree::new(&boxes);
            let q = Point::new(qx, qy);
            let (_, got) = tree.min_max_dist(q).unwrap();
            let want = boxes.iter().map(|b| b.max_dist(q)).fold(f64::INFINITY, f64::min);
            prop_assert!((got - want).abs() < 1e-12);
        }
    }
}
