//! Partially persistent sorted sets (path-copying treaps).
//!
//! The paper (§2.1, "Storing `𝒫_φ`") observes that adjacent cells of the
//! nonzero Voronoi diagram differ in exactly one element
//! (`|𝒫_φ ⊕ 𝒫_φ'| = 1`), so all cell label sets can be stored in `O(μ)`
//! total space with a persistent structure `[DSST89]` instead of `O(nμ)` for
//! explicit sets. [`PersistentSet`] provides `O(log n)` insert/remove that
//! share structure with previous versions, which is exactly what the
//! subdivision labeling uses: each face stores one `PersistentSet` version
//! derived from a neighbor's.
//!
//! Priorities are a deterministic hash of the value, making the treap shape
//! canonical: two versions holding the same elements are structurally
//! identical (handy for testing and for deduplication).
//!
//! Nodes are shared via [`Arc`] so every set version — and any index that
//! embeds one — is `Send + Sync`; the parallel batch query layer relies on
//! sharing indexes across threads by reference.

use std::sync::Arc;

#[derive(Debug)]
struct Node {
    value: u32,
    priority: u64,
    size: u32,
    left: Option<Arc<Node>>,
    right: Option<Arc<Node>>,
}

/// Deterministic value-to-priority mix (splitmix64).
#[inline]
fn priority(v: u32) -> u64 {
    let mut z = (v as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn size(n: &Option<Arc<Node>>) -> u32 {
    n.as_ref().map_or(0, |n| n.size)
}

fn mk(value: u32, left: Option<Arc<Node>>, right: Option<Arc<Node>>) -> Arc<Node> {
    Arc::new(Node {
        value,
        priority: priority(value),
        size: 1 + size(&left) + size(&right),
        left,
        right,
    })
}

/// Splits into (< key, >= key).
fn split(n: &Option<Arc<Node>>, key: u32) -> (Option<Arc<Node>>, Option<Arc<Node>>) {
    match n {
        None => (None, None),
        Some(n) => {
            if n.value < key {
                let (l, r) = split(&n.right, key);
                (Some(mk(n.value, n.left.clone(), l)), r)
            } else {
                let (l, r) = split(&n.left, key);
                (l, Some(mk(n.value, r, n.right.clone())))
            }
        }
    }
}

/// Merges trees where all of `a` < all of `b`.
fn merge(a: &Option<Arc<Node>>, b: &Option<Arc<Node>>) -> Option<Arc<Node>> {
    match (a, b) {
        (None, _) => b.clone(),
        (_, None) => a.clone(),
        (Some(x), Some(y)) => {
            if x.priority > y.priority {
                Some(mk(x.value, x.left.clone(), merge(&x.right, b)))
            } else {
                Some(mk(y.value, merge(a, &y.left), y.right.clone()))
            }
        }
    }
}

/// An immutable sorted set of `u32` with structure-sharing updates.
#[derive(Clone, Debug, Default)]
pub struct PersistentSet {
    root: Option<Arc<Node>>,
}

impl PersistentSet {
    /// The empty set.
    pub fn new() -> Self {
        PersistentSet::default()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        size(&self.root) as usize
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Membership test.
    pub fn contains(&self, v: u32) -> bool {
        let mut cur = &self.root;
        while let Some(n) = cur {
            match v.cmp(&n.value) {
                std::cmp::Ordering::Less => cur = &n.left,
                std::cmp::Ordering::Greater => cur = &n.right,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// A new version with `v` inserted (no-op version if already present).
    pub fn insert(&self, v: u32) -> PersistentSet {
        if self.contains(v) {
            return self.clone();
        }
        let (l, r) = split(&self.root, v);
        let single = mk(v, None, None);
        PersistentSet {
            root: merge(&merge(&l, &Some(single)), &r),
        }
    }

    /// A new version with `v` removed (no-op version if absent).
    pub fn remove(&self, v: u32) -> PersistentSet {
        if !self.contains(v) {
            return self.clone();
        }
        let (l, mid_r) = split(&self.root, v);
        let (_, r) = split(&mid_r, v + 1);
        PersistentSet {
            root: merge(&l, &r),
        }
    }

    /// Elements in ascending order.
    pub fn iter(&self) -> PersistentSetIter<'_> {
        let mut stack = Vec::new();
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            stack.push(n);
            cur = n.left.as_deref();
        }
        PersistentSetIter { stack }
    }

    /// Collects the elements into a `Vec` (ascending).
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }
}

impl FromIterator<u32> for PersistentSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut s = PersistentSet::new();
        for v in iter {
            s = s.insert(v);
        }
        s
    }
}

/// In-order iterator over a [`PersistentSet`].
pub struct PersistentSetIter<'a> {
    stack: Vec<&'a Node>,
}

impl<'a> Iterator for PersistentSetIter<'a> {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        let n = self.stack.pop()?;
        let v = n.value;
        let mut cur = n.right.as_deref();
        while let Some(m) = cur {
            self.stack.push(m);
            cur = m.left.as_deref();
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_insert_remove() {
        let s0 = PersistentSet::new();
        let s1 = s0.insert(5).insert(1).insert(9).insert(5);
        assert_eq!(s1.len(), 3);
        assert_eq!(s1.to_vec(), vec![1, 5, 9]);
        assert!(s1.contains(5) && !s1.contains(2));
        let s2 = s1.remove(5);
        assert_eq!(s2.to_vec(), vec![1, 9]);
        // Old version untouched (persistence).
        assert_eq!(s1.to_vec(), vec![1, 5, 9]);
        assert!(s0.is_empty());
    }

    #[test]
    fn versions_share_structure() {
        // Build a chain of versions differing by one element, like the cell
        // label sets along a walk through the Voronoi subdivision.
        let base = PersistentSet::from_iter(0..100);
        let mut versions = vec![base.clone()];
        for i in 0..50u32 {
            let prev = versions.last().expect("nonempty");
            let next = if i % 2 == 0 {
                prev.remove(i)
            } else {
                prev.insert(100 + i)
            };
            versions.push(next);
        }
        // Every version still answers correctly.
        assert_eq!(versions[0].len(), 100);
        assert!(versions[1].to_vec() == (1..100).collect::<Vec<_>>());
        let last = versions.last().expect("nonempty");
        assert!(!last.contains(48));
        assert!(last.contains(149));
        assert!(last.contains(99));
    }

    #[test]
    fn canonical_shape() {
        // Same content, different insertion orders: identical in-order lists
        // (shape canonicality is exercised implicitly by the deterministic
        // priorities; contents equality is what we rely on).
        let a = PersistentSet::from_iter([3, 1, 4, 1, 5, 9, 2, 6]);
        let b = PersistentSet::from_iter([9, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn remove_absent_is_noop() {
        let s = PersistentSet::from_iter([1, 2, 3]);
        let t = s.remove(7);
        assert_eq!(t.to_vec(), vec![1, 2, 3]);
    }

    proptest! {
        #[test]
        fn prop_matches_btreeset(
            ops in proptest::collection::vec((0u32..64, proptest::bool::ANY), 0..200)
        ) {
            use std::collections::BTreeSet;
            let mut model: BTreeSet<u32> = BTreeSet::new();
            let mut s = PersistentSet::new();
            for (v, is_insert) in ops {
                if is_insert {
                    model.insert(v);
                    s = s.insert(v);
                } else {
                    model.remove(&v);
                    s = s.remove(v);
                }
                prop_assert_eq!(s.len(), model.len());
            }
            prop_assert_eq!(s.to_vec(), model.into_iter().collect::<Vec<_>>());
        }

        #[test]
        fn prop_persistence_is_real(
            base in proptest::collection::btree_set(0u32..128, 0..64),
            v in 0u32..128,
        ) {
            let s = PersistentSet::from_iter(base.iter().copied());
            let before = s.to_vec();
            let _ins = s.insert(v);
            let _rem = s.remove(v);
            prop_assert_eq!(s.to_vec(), before);
        }
    }
}
