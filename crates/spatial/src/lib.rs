//! # unn-spatial — spatial indexes for uncertain nearest-neighbor search
//!
//! Practical index structures standing in for the paper's theoretical ones
//! (see DESIGN.md §4 for the substitution table):
//!
//! * [`KdTree`] — (m-)nearest neighbors (seedable via
//!   [`KdTree::nearest_within`]), disk range reporting, and the
//!   adjusted-distance queries behind the two-stage `NN≠0` structure (§3);
//! * [`KdForest`] — many small kd-trees packed round-major into shared
//!   contiguous arenas; the storage of the Monte-Carlo quantification
//!   structure (§4.2);
//! * [`QuadTree`] — branch-and-bound m-NN, the alternative the paper itself
//!   recommends (§4.3 remark (ii));
//! * [`UniformGrid`] — bucket grid, the third backend for ablations;
//! * [`RTree`] — STR-packed R-tree, the substrate of the `[CKP04]`
//!   branch-and-prune baseline;
//! * [`PersistentSet`] — path-copying persistent sets implementing the
//!   `O(μ)`-space cell-label storage of §2.1 `[DSST89]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forest;
pub mod grid;
pub mod kdtree;
pub mod persist;
pub mod precision;
pub mod quadtree;
pub mod rtree;
mod scan;

pub use forest::KdForest;
pub use grid::UniformGrid;
pub use kdtree::{KdConfig, KdTree, Neighbor};
pub use persist::PersistentSet;
pub use precision::{
    f32_lower_bound, f32_upper_bound, f32_widened_threshold, FilterPrecision, F32_SAFE_SCALE,
};
pub use quadtree::QuadTree;
pub use rtree::RTree;
