//! Arena-packed forest of kd-trees.
//!
//! [`KdForest`] stores many small kd-trees ("rounds") in shared
//! structure-of-arrays arenas — nodes, `x[]`/`y[]` coordinates, original ids
//! — with per-round offset ranges instead of one heap-allocated
//! [`KdTree`](crate::KdTree) per round. The layout is *round-major*: round
//! `r`'s nodes and points are contiguous and rounds are laid out in build
//! order, so a query that sweeps rounds `0..s` (the Monte-Carlo
//! quantification loop of the paper's §4.2) walks the arenas strictly
//! forward. Compared to `s` independent trees this replaces `4s` allocations
//! with a handful and removes the per-round pointer chase, which is most of
//! the constant factor on the many-rounds/small-`n` regime the Chernoff
//! bound (Eq. 6) produces. Leaf scans run through the shared lane-chunked
//! kernel ([`crate::scan`]); each batched query keeps a `*_scalar` twin as
//! its differential oracle (bit-identity contract, DESIGN.md §8).
//!
//! Query support mirrors the per-round needs of the Monte-Carlo structure:
//! [`KdForest::nearest`], the seeded [`KdForest::nearest_within`] (for
//! `Δ(q)`-pruned descents, Lemma 2.1), and the buffer-reusing
//! [`KdForest::m_nearest_into`] (k-NN membership estimation).

use unn_geom::{Aabb, Point};

use crate::kdtree::Neighbor;
use crate::precision::{FilterPrecision, F32_SAFE_SCALE};
use crate::scan::{scan_dists_below, F32Filter};

/// Max points per leaf (same policy as the [`crate::KdTree`] default).
const LEAF_SIZE: usize = 8;

/// One kd-node in the shared arena. Child and point ranges are *absolute*
/// indices into the forest arenas, so traversal never needs the per-round
/// offsets.
#[derive(Clone, Debug)]
struct ForestNode {
    bbox: Aabb,
    /// Children arena indices, or `u32::MAX` sentinel for leaves.
    left: u32,
    right: u32,
    /// Absolute range of points for leaves; unused for internal nodes.
    start: u32,
    end: u32,
}

impl ForestNode {
    #[inline]
    fn is_leaf(&self) -> bool {
        self.left == u32::MAX
    }
}

/// A forest of kd-trees packed into contiguous shared arenas.
///
/// ```
/// use unn_geom::Point;
/// use unn_spatial::KdForest;
///
/// let mut forest = KdForest::new();
/// forest.push_round(&[Point::new(0.0, 0.0), Point::new(5.0, 5.0)]);
/// forest.push_round(&[Point::new(1.0, 0.0), Point::new(9.0, 9.0)]);
/// assert_eq!(forest.rounds(), 2);
/// assert_eq!(forest.nearest(1, Point::new(2.0, 0.0)).unwrap().id, 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct KdForest {
    nodes: Vec<ForestNode>,
    /// Reordered point coordinates, structure-of-arrays.
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// f32 shadow copies of `xs`/`ys` — fill-phase arenas of the
    /// [`FilterPrecision::F32Refined`] tier.
    xs32: Vec<f32>,
    ys32: Vec<f32>,
    /// Max coordinate magnitude over all rounds (the filter's widening
    /// scale, combined with the query magnitude per query).
    coord_scale: f64,
    /// Fill-phase precision tier (defaults to exact f64).
    filter: FilterPrecision,
    /// Original (within-round) index of each reordered point.
    ids: Vec<u32>,
    /// `nodes[node_off[r] as usize]` is round `r`'s root;
    /// `node_off.len() == rounds() + 1`.
    node_off: Vec<u32>,
    /// Round `r` owns `xs[pt_off[r]..pt_off[r+1]]` (and the same `ys`/`ids`
    /// ranges).
    pt_off: Vec<u32>,
}

impl KdForest {
    /// An empty forest.
    pub fn new() -> Self {
        KdForest {
            nodes: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            xs32: Vec::new(),
            ys32: Vec::new(),
            coord_scale: 0.0,
            filter: FilterPrecision::F64,
            ids: Vec::new(),
            node_off: vec![0],
            pt_off: vec![0],
        }
    }

    /// Sets the fill-phase precision tier for all subsequent queries
    /// (answers are bit-identical under either setting; see
    /// [`crate::precision`]).
    pub fn set_filter(&mut self, filter: FilterPrecision) {
        self.filter = filter;
    }

    /// The fill-phase precision tier queries currently run with.
    #[inline]
    pub fn filter_precision(&self) -> FilterPrecision {
        self.filter
    }

    /// Per-query f32 filter view (the forest twin of the kd-tree's):
    /// `None` when filtering is off or the coordinate scale exceeds
    /// [`F32_SAFE_SCALE`].
    #[inline]
    fn filter_for(&self, q: Point) -> Option<F32Filter<'_>> {
        match self.filter {
            FilterPrecision::F64 => None,
            FilterPrecision::F32Refined => {
                let scale = self.coord_scale.max(q.x.abs()).max(q.y.abs());
                (scale <= F32_SAFE_SCALE).then_some(F32Filter {
                    xs32: &self.xs32,
                    ys32: &self.ys32,
                    scale,
                })
            }
        }
    }

    /// An empty forest with arena capacity for `rounds` rounds of
    /// `pts_per_round` points each (one allocation per arena up front).
    pub fn with_capacity(rounds: usize, pts_per_round: usize) -> Self {
        let total_pts = rounds * pts_per_round;
        // Every split is a median split, so the node count per round is at
        // most 2·ceil(n/leaf) (a full binary tree over the leaves).
        let nodes_per_round = if pts_per_round == 0 {
            1
        } else {
            2 * pts_per_round.div_ceil(LEAF_SIZE)
        };
        let mut f = KdForest {
            nodes: Vec::with_capacity(rounds * nodes_per_round),
            xs: Vec::with_capacity(total_pts),
            ys: Vec::with_capacity(total_pts),
            xs32: Vec::with_capacity(total_pts),
            ys32: Vec::with_capacity(total_pts),
            coord_scale: 0.0,
            filter: FilterPrecision::F64,
            ids: Vec::with_capacity(total_pts),
            node_off: Vec::with_capacity(rounds + 1),
            pt_off: Vec::with_capacity(rounds + 1),
        };
        f.node_off.push(0);
        f.pt_off.push(0);
        f
    }

    /// Number of rounds.
    #[inline]
    pub fn rounds(&self) -> usize {
        self.pt_off.len() - 1
    }

    /// Number of points in round `round`.
    #[inline]
    pub fn round_len(&self, round: usize) -> usize {
        (self.pt_off[round + 1] - self.pt_off[round]) as usize
    }

    /// Total points across all rounds.
    #[inline]
    pub fn total_points(&self) -> usize {
        self.xs.len()
    }

    /// Round `round`'s arena slices: the (build-reordered) point
    /// coordinates `(xs, ys)` and their within-round original indices,
    /// aligned elementwise.
    ///
    /// This is the linear-scan escape hatch for callers that must stay
    /// *layout-invariant*: a fold over `(dist, ids[j])` pairs visits the
    /// same multiset regardless of the build permutation, whereas a tree
    /// descent's tie-breaking depends on it.
    #[inline]
    pub fn round_soa(&self, round: usize) -> (&[f64], &[f64], &[u32]) {
        let (a, b) = (self.pt_off[round] as usize, self.pt_off[round + 1] as usize);
        (&self.xs[a..b], &self.ys[a..b], &self.ids[a..b])
    }

    /// Appends one round built over `points`; rounds are queried by their
    /// push order.
    pub fn push_round(&mut self, points: &[Point]) {
        let pt_base = self.xs.len();
        if !points.is_empty() {
            let mut order: Vec<u32> = (0..points.len() as u32).collect();
            build_forest_rec(&mut self.nodes, points, &mut order, pt_base);
            // Scatter the build permutation into the SoA arenas (f64 and
            // f32 shadows), tracking the filter's widening scale.
            for &orig in &order {
                let p = points[orig as usize];
                self.xs.push(p.x);
                self.ys.push(p.y);
                self.xs32.push(p.x as f32);
                self.ys32.push(p.y as f32);
                self.coord_scale = self.coord_scale.max(p.x.abs()).max(p.y.abs());
                self.ids.push(orig);
            }
        } else {
            // Empty round: a single empty leaf keeps offsets uniform.
            self.nodes.push(ForestNode {
                bbox: Aabb::EMPTY,
                left: u32::MAX,
                right: u32::MAX,
                start: pt_base as u32,
                end: pt_base as u32,
            });
        }
        self.node_off.push(self.nodes.len() as u32);
        self.pt_off.push(self.xs.len() as u32);
    }

    #[inline]
    fn root(&self, round: usize) -> u32 {
        self.node_off[round]
    }

    /// Nearest neighbor of `q` in round `round` (`None` for an empty
    /// round). Ids are round-local (`0..round_len(round)`).
    pub fn nearest(&self, round: usize, q: Point) -> Option<Neighbor> {
        self.nearest_within(round, q, f64::INFINITY)
    }

    /// Nearest neighbor of `q` in round `round` among points at distance
    /// `<= init_best` (closed ball), or `None` if no point qualifies.
    ///
    /// Seeding the incumbent with a valid upper bound on the NN distance —
    /// `Δ(q)` per Lemma 2.1 on the Monte-Carlo path — prunes most subtrees
    /// before the descent starts; `f64::INFINITY` recovers the unseeded
    /// search exactly.
    pub fn nearest_within(&self, round: usize, q: Point, init_best: f64) -> Option<Neighbor> {
        self.nearest_within_impl::<true>(round, q, init_best)
    }

    /// Scalar differential oracle for [`KdForest::nearest_within`].
    pub fn nearest_within_scalar(
        &self,
        round: usize,
        q: Point,
        init_best: f64,
    ) -> Option<Neighbor> {
        self.nearest_within_impl::<false>(round, q, init_best)
    }

    fn nearest_within_impl<const BATCH: bool>(
        &self,
        round: usize,
        q: Point,
        init_best: f64,
    ) -> Option<Neighbor> {
        if self.round_len(round) == 0 {
            return None;
        }
        let mut best = Neighbor {
            id: usize::MAX,
            // Inclusive seed radius under the strict `<` comparisons below.
            dist: init_best.next_up(),
        };
        self.nearest_rec::<BATCH>(self.root(round), q, &mut best);
        (best.id != usize::MAX).then_some(best)
    }

    fn nearest_rec<const BATCH: bool>(&self, node: u32, q: Point, best: &mut Neighbor) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) >= best.dist {
            unn_observe::forest_node_pruned();
            return;
        }
        unn_observe::forest_node_visited();
        if n.is_leaf() {
            // Shared moving gate threshold, as in `KdTree::nearest_rec`.
            let fil = if BATCH { self.filter_for(q) } else { None };
            let bd = std::cell::Cell::new(best.dist);
            scan_dists_below::<BATCH, _, _>(
                &self.xs,
                &self.ys,
                fil.as_ref(),
                n.start as usize,
                n.end as usize,
                q,
                &mut || bd.get(),
                &mut |slot, d| {
                    if d < bd.get() {
                        *best = Neighbor {
                            id: self.ids[slot] as usize,
                            dist: d,
                        };
                        bd.set(d);
                    }
                },
            );
            return;
        }
        let (l, r) = (n.left, n.right);
        let dl = self.nodes[l as usize].bbox.min_dist2(q);
        let dr = self.nodes[r as usize].bbox.min_dist2(q);
        if dl <= dr {
            self.nearest_rec::<BATCH>(l, q, best);
            self.nearest_rec::<BATCH>(r, q, best);
        } else {
            self.nearest_rec::<BATCH>(r, q, best);
            self.nearest_rec::<BATCH>(l, q, best);
        }
    }

    /// The `m` nearest neighbors of `q` in round `round`, written into
    /// `out` (cleared first) sorted by increasing distance — the
    /// buffer-reusing engine of per-round k-NN loops.
    pub fn m_nearest_into(&self, round: usize, q: Point, m: usize, out: &mut Vec<Neighbor>) {
        self.m_nearest_into_impl::<true>(round, q, m, out);
    }

    /// Scalar differential oracle for [`KdForest::m_nearest_into`].
    pub fn m_nearest_into_scalar(&self, round: usize, q: Point, m: usize, out: &mut Vec<Neighbor>) {
        self.m_nearest_into_impl::<false>(round, q, m, out);
    }

    fn m_nearest_into_impl<const BATCH: bool>(
        &self,
        round: usize,
        q: Point,
        m: usize,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        if self.round_len(round) == 0 || m == 0 {
            return;
        }
        out.reserve(m + 1);
        self.m_nearest_rec::<BATCH>(self.root(round), q, m, out);
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    }

    fn m_nearest_rec<const BATCH: bool>(
        &self,
        node: u32,
        q: Point,
        m: usize,
        heap: &mut Vec<Neighbor>,
    ) {
        let n = &self.nodes[node as usize];
        let worst = if heap.len() < m {
            f64::INFINITY
        } else {
            heap[0].dist
        };
        if n.bbox.min_dist(q) >= worst {
            unn_observe::forest_node_pruned();
            return;
        }
        unn_observe::forest_node_visited();
        if n.is_leaf() {
            // Threshold-gated form of the original ungated scan: the gate
            // admits `d <= worst`, a superset of the consumer's strict
            // `d < worst`, so the heap sees the identical sequence while
            // the shared kernel's f32 filter tier applies.
            let fil = if BATCH { self.filter_for(q) } else { None };
            let cur_worst = std::cell::Cell::new(if heap.len() < m {
                f64::INFINITY
            } else {
                heap[0].dist
            });
            scan_dists_below::<BATCH, _, _>(
                &self.xs,
                &self.ys,
                fil.as_ref(),
                n.start as usize,
                n.end as usize,
                q,
                &mut || cur_worst.get(),
                &mut |slot, d| {
                    if d < cur_worst.get() {
                        crate::kdtree::heap_push(
                            heap,
                            m,
                            Neighbor {
                                id: self.ids[slot] as usize,
                                dist: d,
                            },
                        );
                        cur_worst.set(if heap.len() < m {
                            f64::INFINITY
                        } else {
                            heap[0].dist
                        });
                    }
                },
            );
            return;
        }
        let (l, r) = (n.left, n.right);
        let dl = self.nodes[l as usize].bbox.min_dist2(q);
        let dr = self.nodes[r as usize].bbox.min_dist2(q);
        if dl <= dr {
            self.m_nearest_rec::<BATCH>(l, q, m, heap);
            self.m_nearest_rec::<BATCH>(r, q, m, heap);
        } else {
            self.m_nearest_rec::<BATCH>(r, q, m, heap);
            self.m_nearest_rec::<BATCH>(l, q, m, heap);
        }
    }
}

/// Recursive median-split build over `order` (round-local point indices
/// into `points`); `chunk_start` is the absolute arena position of
/// `order[0]`'s final slot. Appends this subtree's nodes and returns its
/// root index.
fn build_forest_rec(
    nodes: &mut Vec<ForestNode>,
    points: &[Point],
    order: &mut [u32],
    chunk_start: usize,
) -> u32 {
    let mut bbox = Aabb::EMPTY;
    for &i in order.iter() {
        bbox.insert(points[i as usize]);
    }
    let idx = nodes.len() as u32;
    nodes.push(ForestNode {
        bbox,
        left: u32::MAX,
        right: u32::MAX,
        start: chunk_start as u32,
        end: (chunk_start + order.len()) as u32,
    });
    if order.len() <= LEAF_SIZE {
        return idx;
    }
    let horizontal = bbox.width() >= bbox.height();
    let mid = order.len() / 2;
    order.select_nth_unstable_by(mid, |&a, &b| {
        let (pa, pb) = (points[a as usize], points[b as usize]);
        if horizontal {
            pa.x.total_cmp(&pb.x)
        } else {
            pa.y.total_cmp(&pb.y)
        }
    });
    let (lo, hi) = order.split_at_mut(mid);
    let left = build_forest_rec(nodes, points, lo, chunk_start);
    let right = build_forest_rec(nodes, points, hi, chunk_start + mid);
    nodes[idx as usize].left = left;
    nodes[idx as usize].right = right;
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KdTree;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_rounds(rounds: usize, n: usize, seed: u64) -> Vec<Vec<Point>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..rounds)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        Point::new(
                            rng.random_range(-100.0..100.0),
                            rng.random_range(-100.0..100.0),
                        )
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn forest_matches_independent_trees() {
        let rounds = random_rounds(40, 37, 20);
        let mut forest = KdForest::with_capacity(rounds.len(), 37);
        let trees: Vec<KdTree> = rounds.iter().map(|r| KdTree::new(r)).collect();
        for r in &rounds {
            forest.push_round(r);
        }
        assert_eq!(forest.rounds(), 40);
        assert_eq!(forest.total_points(), 40 * 37);
        let mut rng = SmallRng::seed_from_u64(21);
        let mut buf = Vec::new();
        for _ in 0..50 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            for (r, tree) in trees.iter().enumerate() {
                let want = tree.nearest(q).unwrap();
                let got = forest.nearest(r, q).unwrap();
                assert_eq!(got.id, want.id);
                assert_eq!(got.dist, want.dist);
                for m in [1usize, 3, 11] {
                    forest.m_nearest_into(r, q, m, &mut buf);
                    assert_eq!(buf, tree.m_nearest(q, m));
                    let mut scalar = Vec::new();
                    forest.m_nearest_into_scalar(r, q, m, &mut scalar);
                    assert_eq!(buf, scalar);
                }
            }
        }
    }

    #[test]
    fn round_soa_exposes_build_permutation() {
        let rounds = random_rounds(5, 23, 24);
        let mut forest = KdForest::new();
        for r in &rounds {
            forest.push_round(r);
        }
        for (r, pts) in rounds.iter().enumerate() {
            let (xs, ys, ids) = forest.round_soa(r);
            assert_eq!(xs.len(), pts.len());
            assert_eq!(ys.len(), pts.len());
            let mut seen: Vec<u32> = ids.to_vec();
            for ((&x, &y), &id) in xs.iter().zip(ys).zip(ids) {
                assert_eq!(x.to_bits(), pts[id as usize].x.to_bits());
                assert_eq!(y.to_bits(), pts[id as usize].y.to_bits());
            }
            seen.sort_unstable();
            let want: Vec<u32> = (0..pts.len() as u32).collect();
            assert_eq!(seen, want, "round {r} ids are a permutation");
        }
    }

    #[test]
    fn seeded_search_matches_unseeded() {
        let rounds = random_rounds(25, 64, 22);
        let mut forest = KdForest::new();
        for r in &rounds {
            forest.push_round(r);
        }
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..100 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            for r in 0..forest.rounds() {
                let want = forest.nearest(r, q).unwrap();
                for seed in [want.dist, want.dist * 2.0, f64::INFINITY] {
                    let got = forest.nearest_within(r, q, seed).unwrap();
                    assert_eq!(got.id, want.id, "round {r} seed {seed}");
                    assert_eq!(got.dist, want.dist);
                    let scalar = forest.nearest_within_scalar(r, q, seed).unwrap();
                    assert_eq!(scalar.id, got.id);
                    assert_eq!(scalar.dist.to_bits(), got.dist.to_bits());
                }
                if want.dist > 0.0 {
                    assert!(forest.nearest_within(r, q, want.dist * 0.5).is_none());
                }
            }
        }
    }

    #[test]
    fn empty_and_uneven_rounds() {
        let mut forest = KdForest::new();
        forest.push_round(&[]);
        forest.push_round(&[Point::new(1.0, 2.0)]);
        forest.push_round(&[]);
        let many: Vec<Point> = (0..100).map(|i| Point::new(i as f64, 0.0)).collect();
        forest.push_round(&many);
        assert_eq!(forest.rounds(), 4);
        assert!(forest.nearest(0, Point::ORIGIN).is_none());
        assert_eq!(forest.nearest(1, Point::ORIGIN).unwrap().id, 0);
        assert!(forest.nearest(2, Point::ORIGIN).is_none());
        assert_eq!(forest.nearest(3, Point::new(41.2, 0.0)).unwrap().id, 41);
        let mut buf = Vec::new();
        forest.m_nearest_into(0, Point::ORIGIN, 3, &mut buf);
        assert!(buf.is_empty());
        forest.m_nearest_into(3, Point::new(-5.0, 0.0), 2, &mut buf);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf[0].id, 0);
        assert_eq!(buf[1].id, 1);
    }

    proptest! {
        #[test]
        fn prop_forest_nearest_within_agrees_with_scan(
            pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..60),
            qx in -60.0f64..60.0, qy in -60.0f64..60.0,
            slack in 0.0f64..25.0,
        ) {
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let mut forest = KdForest::new();
            forest.push_round(&pts);
            let q = Point::new(qx, qy);
            let want = pts
                .iter()
                .map(|p| p.dist(q))
                .min_by(f64::total_cmp)
                .unwrap();
            for seed in [want, want + slack, f64::INFINITY] {
                let got = forest.nearest_within(0, q, seed).unwrap();
                prop_assert_eq!(got.dist, pts[got.id].dist(q));
                prop_assert!((got.dist - want).abs() < 1e-12);
            }
        }
    }
}
