//! Kd-tree over weighted points, SoA leaves, batched distance kernels.
//!
//! One structure serves every query shape the paper's data structures need
//! (DESIGN.md §4 explains each substitution):
//!
//! * [`KdTree::nearest`] / [`KdTree::m_nearest`] — plain (m-)nearest
//!   neighbors; the engine of the Monte-Carlo structure (§4.2) and of spiral
//!   search (§4.3, replacing the `[AC09]` structure).
//! * [`KdTree::in_disk`] — disk range reporting.
//! * [`KdTree::min_adjusted`] — minimize a per-point score bounded below by
//!   the box distance; with `eval = d(q,c_i) + r_i` over disk centers this
//!   computes `Δ(q) = min_i Δ_i(q)`, stage 1 of the `NN≠0` query (§3).
//!   [`KdTree::min_adjusted_weighted`] is the batched closure-free form over
//!   the stored `lo` offsets; [`KdTree::min_adjusted_boxes`] the batched
//!   support-box form over an [`AabbSoA`].
//! * [`KdTree::report_adjusted_below`] — report every `i` with
//!   `eval(i) < t` where `eval(i) >= d(q, p_i) - aux_i`; with `aux_i = r_i`
//!   and `eval = δ_i` this reports `{i : δ_i(q) < Δ(q)}`, stage 2 of the
//!   `NN≠0` query (replacing `[KMR⁺16]`). [`KdTree::report_ball_below`] is
//!   the batched closure-free form.
//!
//! The tree is built by recursive median split on the wider box dimension;
//! nodes are stored in a flat `Vec` (index arithmetic, no pointers), leaves
//! hold at most [`KdConfig::leaf_size`] points. Leaf storage is
//! structure-of-arrays — `x[]`/`y[]`/`lo[]`/`hi[]`/`id[]` — and the hot
//! leaf scans run in lane batches (see [`crate::scan`]); every batched
//! method keeps a live `*_scalar` twin as its differential oracle
//! (DESIGN.md §8 states the bit-identity contract).

use unn_geom::kernels::{AabbSoA, LANES};
use unn_geom::{Aabb, Point};

use crate::precision::{FilterPrecision, F32_SAFE_SCALE};
use crate::scan::{scan_dists, scan_dists_below, F32Filter};

/// Historical leaf capacity, now the [`KdConfig`] default.
const DEFAULT_LEAF_SIZE: usize = 8;

/// Build-time layout knobs for [`KdTree`].
///
/// The defaults reproduce the original hard-coded layout exactly (leaf
/// capacity 8, no brute-force short-circuit beyond what an 8-point tree
/// already is), so default-built trees are bit-compatible with every
/// pre-config artifact. [`KdConfig::scan_heavy`] is the bench-swept preset
/// for trees whose queries are dominated by batched leaf scans rather than
/// per-point closure evaluations (see EXPERIMENTS.md T20).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KdConfig {
    /// Maximum points per leaf (≥ 1; values below 1 are treated as 1).
    pub leaf_size: usize,
    /// Inputs of at most this many points are stored as one brute-force
    /// leaf: below the crossover a straight-line batched scan beats any
    /// tree descent (the classic flat-scan crossover, swept in
    /// `bench_quantify`).
    pub brute_force_below: usize,
    /// Precision tier of the batched distance-fill phase. `F32Refined`
    /// runs the fill over f32 shadow arenas with exact f64 refinement of
    /// near-threshold candidates — bit-identical answers, lower fill
    /// bandwidth (see [`crate::precision`]).
    pub filter: FilterPrecision,
}

impl Default for KdConfig {
    fn default() -> Self {
        KdConfig {
            leaf_size: DEFAULT_LEAF_SIZE,
            brute_force_below: DEFAULT_LEAF_SIZE,
            filter: FilterPrecision::F64,
        }
    }
}

impl KdConfig {
    /// Preset for scan-dominated trees (pure point-distance queries over
    /// large arenas, e.g. the Monte-Carlo global sample tree): bigger
    /// leaves amortize descent overhead into batched scans. Values picked
    /// by the `bench_quantify` leaf-size sweep (EXPERIMENTS.md T20).
    pub fn scan_heavy() -> Self {
        KdConfig {
            leaf_size: 128,
            brute_force_below: 128,
            filter: FilterPrecision::F64,
        }
    }

    /// This config with the given fill-phase precision tier.
    pub fn with_filter(self, filter: FilterPrecision) -> Self {
        KdConfig { filter, ..self }
    }

    /// Leaf capacity actually used for an input of `n` points.
    #[inline]
    fn effective_leaf(&self, n: usize) -> usize {
        let leaf = self.leaf_size.max(1);
        if n <= self.brute_force_below {
            leaf.max(n).max(1)
        } else {
            leaf
        }
    }
}

#[derive(Clone, Debug)]
struct Node {
    bbox: Aabb,
    /// Minimum of `aux` over the subtree (for `min_adjusted`-style bounds).
    min_aux: f64,
    /// Maximum of `aux` over the subtree (for `report_adjusted_below`).
    max_aux: f64,
    /// Children indices, or `u32::MAX` sentinel for leaves.
    left: u32,
    right: u32,
    /// Range of points (into the reordered arrays) for leaves; empty for
    /// internal nodes.
    start: u32,
    end: u32,
}

impl Node {
    #[inline]
    fn is_leaf(&self) -> bool {
        self.left == u32::MAX
    }
}

/// A static kd-tree over points with an auxiliary scalar per point
/// (a radius, an extent — anything that offsets distances).
///
/// ```
/// use unn_geom::Point;
/// use unn_spatial::KdTree;
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(5.0, 5.0), Point::new(9.0, 1.0)];
/// let tree = KdTree::new(&pts);
/// assert_eq!(tree.nearest(Point::new(8.0, 0.0)).unwrap().id, 2);
/// let two = tree.m_nearest(Point::new(0.0, 1.0), 2);
/// assert_eq!(two[0].id, 0);
/// ```
#[derive(Clone, Debug)]
pub struct KdTree {
    nodes: Vec<Node>,
    /// Reordered point coordinates, structure-of-arrays.
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// f32 shadow copies of `xs`/`ys` (same slot layout) — the fill-phase
    /// arenas of the [`FilterPrecision::F32Refined`] tier.
    xs32: Vec<f32>,
    ys32: Vec<f32>,
    /// Max coordinate magnitude over the stored points (0 when empty) —
    /// the widening scale of the f32 filter; combined with the query's
    /// magnitude per query.
    coord_scale: f64,
    /// Fill-phase precision tier from [`KdConfig::filter`].
    filter: FilterPrecision,
    /// Per-point lower offsets: node `min_aux` is their subtree minimum.
    aux_lo: Vec<f64>,
    /// Per-point upper offsets: node `max_aux` is their subtree maximum.
    aux_hi: Vec<f64>,
    /// Original index of each reordered point.
    ids: Vec<u32>,
}

/// A reported neighbor: original index and distance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Index into the original input slice.
    pub id: usize,
    /// Euclidean distance to the query.
    pub dist: f64,
}

impl KdTree {
    /// Builds a tree over `points` with all-zero auxiliaries.
    pub fn new(points: &[Point]) -> Self {
        Self::with_config(points, KdConfig::default())
    }

    /// [`KdTree::new`] with explicit layout knobs.
    pub fn with_config(points: &[Point], config: KdConfig) -> Self {
        let zeros = vec![0.0; points.len()];
        Self::with_aux_bounds_config(points, &zeros, &zeros, config)
    }

    /// Builds a tree over `points` with the given per-point auxiliaries
    /// (used for both the lower and the upper per-point offset).
    pub fn with_aux(points: &[Point], aux: &[f64]) -> Self {
        Self::with_aux_bounds(points, aux, aux)
    }

    /// Builds a tree over `points` with *asymmetric* per-point offsets:
    /// `lo[i]` feeds the subtree `min_aux` bounds ([`KdTree::min_adjusted`],
    /// [`KdTree::root_lower_bound`]) and `hi[i]` the subtree `max_aux`
    /// bounds ([`KdTree::report_adjusted_below`]).
    ///
    /// The split: a single evaluation family rarely admits the same offset
    /// in both directions. For an uncertain point with support box `B_i`
    /// centered at `p_i`, `max_dist_i(q) >= d(q, p_i) + min_halfwidth(B_i)`
    /// (a valid lower offset) while `min_dist_i(q) >= d(q, p_i) - circum(B_i)`
    /// (a valid upper offset) — and the two scalars differ.
    pub fn with_aux_bounds(points: &[Point], lo: &[f64], hi: &[f64]) -> Self {
        Self::with_aux_bounds_config(points, lo, hi, KdConfig::default())
    }

    /// [`KdTree::with_aux_bounds`] with explicit layout knobs.
    pub fn with_aux_bounds_config(
        points: &[Point],
        lo: &[f64],
        hi: &[f64],
        config: KdConfig,
    ) -> Self {
        assert_eq!(points.len(), lo.len());
        assert_eq!(points.len(), hi.len());
        let n = points.len();
        let leaf = config.effective_leaf(n);
        let mut nodes = Vec::with_capacity(2 * n / leaf + 2);
        let mut order: Vec<u32> = (0..n as u32).collect();
        if n > 0 {
            build_rec(&mut nodes, points, lo, hi, &mut order, 0, leaf);
        }
        // Scatter the build permutation into the SoA arenas (f64 and the
        // f32 shadow copies), tracking the filter's widening scale.
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        let mut xs32 = Vec::with_capacity(n);
        let mut ys32 = Vec::with_capacity(n);
        let mut aux_lo = Vec::with_capacity(n);
        let mut aux_hi = Vec::with_capacity(n);
        let mut coord_scale = 0.0f64;
        for &i in &order {
            let i = i as usize;
            let p = points[i];
            xs.push(p.x);
            ys.push(p.y);
            xs32.push(p.x as f32);
            ys32.push(p.y as f32);
            // `max` drops NaN coordinates from the scale; the kernel's
            // NaN-admitting gate still routes them to the exact re-check.
            coord_scale = coord_scale.max(p.x.abs()).max(p.y.abs());
            aux_lo.push(lo[i]);
            aux_hi.push(hi[i]);
        }
        KdTree {
            nodes,
            xs,
            ys,
            xs32,
            ys32,
            coord_scale,
            filter: config.filter,
            aux_lo,
            aux_hi,
            ids: order,
        }
    }

    /// The fill-phase precision tier this tree was built with.
    #[inline]
    pub fn filter_precision(&self) -> FilterPrecision {
        self.filter
    }

    /// The per-query f32 filter view, or `None` when the tree is `F64` or
    /// the coordinate scale (points ∪ query) exceeds [`F32_SAFE_SCALE`] —
    /// the overflow-safety fallback to the exact fill.
    #[inline]
    fn filter_for(&self, q: Point) -> Option<F32Filter<'_>> {
        match self.filter {
            FilterPrecision::F64 => None,
            FilterPrecision::F32Refined => {
                let scale = self.coord_scale.max(q.x.abs()).max(q.y.abs());
                (scale <= F32_SAFE_SCALE).then_some(F32Filter {
                    xs32: &self.xs32,
                    ys32: &self.ys32,
                    scale,
                })
            }
        }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` if the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Leaf scan: hands `(slot, d(q, p_slot))` to `f` in ascending slot
    /// order; `BATCH` selects lane-chunked vs scalar (bit-identical).
    #[inline]
    fn scan<const BATCH: bool, F: FnMut(usize, f64)>(
        &self,
        start: u32,
        end: u32,
        q: Point,
        f: &mut F,
    ) {
        scan_dists::<BATCH, F>(&self.xs, &self.ys, start as usize, end as usize, q, f);
    }

    /// Threshold-gated leaf scan ([`scan_dists_below`]): `f` only sees
    /// slots whose distance can pass `thresh()`; batches with no admissible
    /// lane are rejected by one vectorized compare. `f` must still apply
    /// its exact predicate — the gate over-approximates. The batched arm
    /// consults [`KdTree::filter_for`], so an `F32Refined` tree runs its
    /// fill phase over the f32 shadow arenas; the scalar arm is always the
    /// exact f64 oracle.
    #[inline]
    fn scan_below<const BATCH: bool, T: FnMut() -> f64, F: FnMut(usize, f64)>(
        &self,
        start: u32,
        end: u32,
        q: Point,
        thresh: &mut T,
        f: &mut F,
    ) {
        let fil = if BATCH { self.filter_for(q) } else { None };
        scan_dists_below::<BATCH, T, F>(
            &self.xs,
            &self.ys,
            fil.as_ref(),
            start as usize,
            end as usize,
            q,
            thresh,
            f,
        );
    }

    /// Nearest neighbor of `q`, or `None` for an empty tree.
    pub fn nearest(&self, q: Point) -> Option<Neighbor> {
        self.nearest_within(q, f64::INFINITY)
    }

    /// Nearest neighbor of `q` among points at distance `<= init_best`
    /// (closed ball), or `None` when the tree is empty or no point lies
    /// within the seed radius.
    ///
    /// The branch-and-bound starts with `init_best` as the incumbent
    /// distance instead of `+∞`, so any subtree farther than the seed is
    /// pruned before the walk begins. With a valid seed (any upper bound on
    /// the true NN distance, e.g. the paper's `Δ(q)` from Lemma 2.1) the
    /// result is identical to [`KdTree::nearest`]; `f64::INFINITY` recovers
    /// the unseeded search exactly.
    pub fn nearest_within(&self, q: Point, init_best: f64) -> Option<Neighbor> {
        self.nearest_within_impl::<true>(q, init_best)
    }

    /// Scalar differential oracle for [`KdTree::nearest_within`]: identical
    /// traversal with the per-point scalar leaf loop. Kept live (not
    /// test-gated) so the equivalence suite and benches can diff the
    /// batched path at any time.
    pub fn nearest_within_scalar(&self, q: Point, init_best: f64) -> Option<Neighbor> {
        self.nearest_within_impl::<false>(q, init_best)
    }

    fn nearest_within_impl<const BATCH: bool>(&self, q: Point, init_best: f64) -> Option<Neighbor> {
        if self.is_empty() {
            return None;
        }
        let mut best = Neighbor {
            id: usize::MAX,
            // `next_up` makes the seed radius inclusive under the strict
            // `<` comparisons below (a point at exactly `init_best` wins).
            dist: init_best.next_up(),
        };
        self.nearest_rec::<BATCH>(0, q, &mut best);
        (best.id != usize::MAX).then_some(best)
    }

    fn nearest_rec<const BATCH: bool>(&self, node: u32, q: Point, best: &mut Neighbor) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) >= best.dist {
            unn_observe::kd_node_pruned();
            return;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            // The gate threshold tightens as the incumbent improves; a
            // `Cell` lets the gate closure and the visitor share it.
            let bd = std::cell::Cell::new(best.dist);
            self.scan_below::<BATCH, _, _>(n.start, n.end, q, &mut || bd.get(), &mut |slot, d| {
                if d < bd.get() {
                    *best = Neighbor {
                        id: self.ids[slot] as usize,
                        dist: d,
                    };
                    bd.set(d);
                }
            });
            return;
        }
        let (l, r) = (n.left, n.right);
        let dl = self.nodes[l as usize].bbox.min_dist2(q);
        let dr = self.nodes[r as usize].bbox.min_dist2(q);
        if dl <= dr {
            self.nearest_rec::<BATCH>(l, q, best);
            self.nearest_rec::<BATCH>(r, q, best);
        } else {
            self.nearest_rec::<BATCH>(r, q, best);
            self.nearest_rec::<BATCH>(l, q, best);
        }
    }

    /// The `m` nearest neighbors of `q`, sorted by increasing distance.
    ///
    /// This is the retrieval engine of spiral search (Theorem 4.7): the
    /// `m(ρ,ε)` closest locations of `S = ∪ P_i`.
    pub fn m_nearest(&self, q: Point, m: usize) -> Vec<Neighbor> {
        let mut heap = Vec::new();
        self.m_nearest_into(q, m, &mut heap);
        heap
    }

    /// [`KdTree::m_nearest`] into a caller-provided buffer (cleared first):
    /// per-round loops reuse one heap allocation across calls.
    pub fn m_nearest_into(&self, q: Point, m: usize, out: &mut Vec<Neighbor>) {
        self.m_nearest_into_impl::<true>(q, m, out);
    }

    /// Scalar differential oracle for [`KdTree::m_nearest_into`].
    pub fn m_nearest_into_scalar(&self, q: Point, m: usize, out: &mut Vec<Neighbor>) {
        self.m_nearest_into_impl::<false>(q, m, out);
    }

    fn m_nearest_into_impl<const BATCH: bool>(&self, q: Point, m: usize, out: &mut Vec<Neighbor>) {
        out.clear();
        if self.is_empty() || m == 0 {
            return;
        }
        // Bounded max-heap on distance.
        out.reserve(m + 1);
        self.m_nearest_rec::<BATCH>(0, q, m, out);
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    }

    fn m_nearest_rec<const BATCH: bool>(
        &self,
        node: u32,
        q: Point,
        m: usize,
        heap: &mut Vec<Neighbor>,
    ) {
        let n = &self.nodes[node as usize];
        let worst = if heap.len() < m {
            f64::INFINITY
        } else {
            heap[0].dist
        };
        if n.bbox.min_dist(q) >= worst {
            unn_observe::kd_node_pruned();
            return;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            let cur_worst = std::cell::Cell::new(if heap.len() < m {
                f64::INFINITY
            } else {
                heap[0].dist
            });
            self.scan_below::<BATCH, _, _>(
                n.start,
                n.end,
                q,
                &mut || cur_worst.get(),
                &mut |slot, d| {
                    if d < cur_worst.get() {
                        heap_push(
                            heap,
                            m,
                            Neighbor {
                                id: self.ids[slot] as usize,
                                dist: d,
                            },
                        );
                        cur_worst.set(if heap.len() < m {
                            f64::INFINITY
                        } else {
                            heap[0].dist
                        });
                    }
                },
            );
            return;
        }
        let (l, r) = (n.left, n.right);
        let dl = self.nodes[l as usize].bbox.min_dist2(q);
        let dr = self.nodes[r as usize].bbox.min_dist2(q);
        if dl <= dr {
            self.m_nearest_rec::<BATCH>(l, q, m, heap);
            self.m_nearest_rec::<BATCH>(r, q, m, heap);
        } else {
            self.m_nearest_rec::<BATCH>(r, q, m, heap);
            self.m_nearest_rec::<BATCH>(l, q, m, heap);
        }
    }

    /// Calls `visit(id, dist)` for every point within distance `r` of `q`
    /// (closed ball).
    pub fn in_disk<F: FnMut(usize, f64)>(&self, q: Point, r: f64, visit: &mut F) {
        if self.is_empty() || r < 0.0 {
            return;
        }
        self.in_disk_rec::<true, F>(0, q, r, visit);
    }

    /// Scalar differential oracle for [`KdTree::in_disk`].
    pub fn in_disk_scalar<F: FnMut(usize, f64)>(&self, q: Point, r: f64, visit: &mut F) {
        if self.is_empty() || r < 0.0 {
            return;
        }
        self.in_disk_rec::<false, F>(0, q, r, visit);
    }

    fn in_disk_rec<const BATCH: bool, F: FnMut(usize, f64)>(
        &self,
        node: u32,
        q: Point,
        r: f64,
        visit: &mut F,
    ) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) > r {
            unn_observe::kd_node_pruned();
            return;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            self.scan_below::<BATCH, _, _>(n.start, n.end, q, &mut || r, &mut |slot, d| {
                if d <= r {
                    unn_observe::ball_point();
                    visit(self.ids[slot] as usize, d);
                }
            });
            return;
        }
        self.in_disk_rec::<BATCH, F>(n.left, q, r, visit);
        self.in_disk_rec::<BATCH, F>(n.right, q, r, visit);
    }

    /// [`KdTree::in_disk`] with an output budget: stops and returns `false`
    /// as soon as reporting one more point would exceed `cap`. Returns
    /// `true` when every point in the ball was visited.
    ///
    /// Callers use the budget to bound range-reporting cost when the ball
    /// could degenerate to a large fraction of the tree (the partial visits
    /// of an aborted call must be discarded).
    pub fn in_disk_capped<F: FnMut(usize, f64)>(
        &self,
        q: Point,
        r: f64,
        cap: usize,
        visit: &mut F,
    ) -> bool {
        self.in_disk_capped_impl::<true, F>(q, r, cap, visit)
    }

    /// Scalar differential oracle for [`KdTree::in_disk_capped`].
    pub fn in_disk_capped_scalar<F: FnMut(usize, f64)>(
        &self,
        q: Point,
        r: f64,
        cap: usize,
        visit: &mut F,
    ) -> bool {
        self.in_disk_capped_impl::<false, F>(q, r, cap, visit)
    }

    fn in_disk_capped_impl<const BATCH: bool, F: FnMut(usize, f64)>(
        &self,
        q: Point,
        r: f64,
        cap: usize,
        visit: &mut F,
    ) -> bool {
        if self.is_empty() || r < 0.0 {
            return true;
        }
        let mut budget = cap;
        self.in_disk_capped_rec::<BATCH, F>(0, q, r, &mut budget, visit)
    }

    fn in_disk_capped_rec<const BATCH: bool, F: FnMut(usize, f64)>(
        &self,
        node: u32,
        q: Point,
        r: f64,
        budget: &mut usize,
        visit: &mut F,
    ) -> bool {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) > r {
            unn_observe::kd_node_pruned();
            return true;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            // The batched scan cannot early-return mid-leaf; `ok` gates all
            // effects after an abort so the visit sequence, budget, and
            // return value stay identical to the early-returning scalar
            // original (the leftover lanes only compute distances).
            let mut ok = true;
            self.scan_below::<BATCH, _, _>(n.start, n.end, q, &mut || r, &mut |slot, d| {
                if ok && d <= r {
                    if *budget == 0 {
                        ok = false;
                        return;
                    }
                    *budget -= 1;
                    unn_observe::ball_point();
                    visit(self.ids[slot] as usize, d);
                }
            });
            return ok;
        }
        self.in_disk_capped_rec::<BATCH, F>(n.left, q, r, budget, visit)
            && self.in_disk_capped_rec::<BATCH, F>(n.right, q, r, budget, visit)
    }

    /// Minimizes `eval(id)` over all points, where `eval(id)` must satisfy
    /// `eval(id) >= d(q, p_id) + min_aux_bound` with `min_aux_bound` the
    /// node's minimum auxiliary (pass `eval = d(q,·) + aux` for the
    /// additively-weighted nearest neighbor `Δ(q) = min_i d(q,c_i) + r_i`,
    /// or any more expensive exact evaluation such as a farthest-point
    /// distance with `aux = 0`).
    ///
    /// Pruning bound per subtree: `bbox.min_dist(q) + min_aux`.
    pub fn min_adjusted(&self, q: Point, eval: &dyn Fn(usize) -> f64) -> Option<(usize, f64)> {
        self.min_adjusted_from(q, f64::INFINITY, eval)
    }

    /// [`KdTree::min_adjusted`] seeded with an incumbent value `init`:
    /// subtrees whose bound cannot *strictly* beat `init` are pruned before
    /// the walk begins, and only a strictly better minimum is returned
    /// (`None` if nothing beats the incumbent, or the tree is empty).
    ///
    /// Threading the running minimum through a sequence of trees —
    /// `init = +∞`, then each call's result (when `Some`) — computes the
    /// global minimum over all of them with exactly the same value as
    /// independent searches folded by `min`; that is how the dynamic engine
    /// shares one Δ(q) bound across blocks.
    pub fn min_adjusted_from(
        &self,
        q: Point,
        init: f64,
        eval: &dyn Fn(usize) -> f64,
    ) -> Option<(usize, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut best: (usize, f64) = (usize::MAX, init);
        self.min_adjusted_rec(0, q, eval, &mut best);
        (best.0 != usize::MAX).then_some(best)
    }

    fn min_adjusted_rec(
        &self,
        node: u32,
        q: Point,
        eval: &dyn Fn(usize) -> f64,
        best: &mut (usize, f64),
    ) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) + n.min_aux >= best.1 {
            unn_observe::kd_node_pruned();
            return;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            for i in n.start..n.end {
                let id = self.ids[i as usize] as usize;
                let v = eval(id);
                if v < best.1 {
                    *best = (id, v);
                }
            }
            return;
        }
        let (l, r) = (n.left, n.right);
        let bl = self.nodes[l as usize].bbox.min_dist(q) + self.nodes[l as usize].min_aux;
        let br = self.nodes[r as usize].bbox.min_dist(q) + self.nodes[r as usize].min_aux;
        if bl <= br {
            self.min_adjusted_rec(l, q, eval, best);
            self.min_adjusted_rec(r, q, eval, best);
        } else {
            self.min_adjusted_rec(r, q, eval, best);
            self.min_adjusted_rec(l, q, eval, best);
        }
    }

    /// Batched additively-weighted nearest neighbor over the stored points
    /// and their `lo` offsets: minimizes `d(q, p_i) + lo_i`, bit-identical
    /// to `min_adjusted(q, &|i| p_i.dist(q) + lo[i])` (same traversal, same
    /// leaf order, same scalar operation sequence per lane) but with the
    /// leaf evaluations running through the lane-chunked scan instead of a
    /// per-point closure.
    pub fn min_adjusted_weighted(&self, q: Point) -> Option<(usize, f64)> {
        self.min_adjusted_weighted_impl::<true>(q, f64::INFINITY)
    }

    /// [`KdTree::min_adjusted_weighted`] seeded with incumbent `init`
    /// (same contract as [`KdTree::min_adjusted_from`]).
    pub fn min_adjusted_weighted_from(&self, q: Point, init: f64) -> Option<(usize, f64)> {
        self.min_adjusted_weighted_impl::<true>(q, init)
    }

    /// Scalar differential oracle for [`KdTree::min_adjusted_weighted_from`].
    pub fn min_adjusted_weighted_from_scalar(&self, q: Point, init: f64) -> Option<(usize, f64)> {
        self.min_adjusted_weighted_impl::<false>(q, init)
    }

    fn min_adjusted_weighted_impl<const BATCH: bool>(
        &self,
        q: Point,
        init: f64,
    ) -> Option<(usize, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut best: (usize, f64) = (usize::MAX, init);
        self.min_weighted_rec::<BATCH>(0, q, &mut best);
        (best.0 != usize::MAX).then_some(best)
    }

    fn min_weighted_rec<const BATCH: bool>(&self, node: u32, q: Point, best: &mut (usize, f64)) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) + n.min_aux >= best.1 {
            unn_observe::kd_node_pruned();
            return;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            self.scan::<BATCH, _>(n.start, n.end, q, &mut |slot, d| {
                let v = d + self.aux_lo[slot];
                if v < best.1 {
                    *best = (self.ids[slot] as usize, v);
                }
            });
            return;
        }
        let (l, r) = (n.left, n.right);
        let bl = self.nodes[l as usize].bbox.min_dist(q) + self.nodes[l as usize].min_aux;
        let br = self.nodes[r as usize].bbox.min_dist(q) + self.nodes[r as usize].min_aux;
        if bl <= br {
            self.min_weighted_rec::<BATCH>(l, q, best);
            self.min_weighted_rec::<BATCH>(r, q, best);
        } else {
            self.min_weighted_rec::<BATCH>(r, q, best);
            self.min_weighted_rec::<BATCH>(l, q, best);
        }
    }

    /// Minimum and second minimum of `eval(id)` in one pass:
    /// `Some((argmin, min, second))` where `second` is the minimum over all
    /// points other than the returned argmin occurrence (ties at the
    /// minimum land in `second`; `+∞` for a one-point tree), or `None` for
    /// an empty tree. `eval` must obey the [`KdTree::min_adjusted`]
    /// contract; the prune bound is the running *second* minimum, so each
    /// point is evaluated at most once — replacing the classic two-pass
    /// (min, then min-excluding-argmin) with identical results: the pass-2
    /// exclusion of the argmin index is exactly the single-instance
    /// exclusion the running pair performs.
    pub fn min_two_adjusted(
        &self,
        q: Point,
        eval: &dyn Fn(usize) -> f64,
    ) -> Option<(usize, f64, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut best: (usize, f64, f64) = (usize::MAX, f64::INFINITY, f64::INFINITY);
        self.min_two_rec(0, q, eval, &mut best);
        (best.0 != usize::MAX).then_some(best)
    }

    fn min_two_rec(
        &self,
        node: u32,
        q: Point,
        eval: &dyn Fn(usize) -> f64,
        best: &mut (usize, f64, f64),
    ) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) + n.min_aux >= best.2 {
            unn_observe::kd_node_pruned();
            return;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            for i in n.start..n.end {
                let id = self.ids[i as usize] as usize;
                let v = eval(id);
                if v < best.1 {
                    best.2 = best.1;
                    best.1 = v;
                    best.0 = id;
                } else if v < best.2 {
                    best.2 = v;
                }
            }
            return;
        }
        let (l, r) = (n.left, n.right);
        let bl = self.nodes[l as usize].bbox.min_dist(q) + self.nodes[l as usize].min_aux;
        let br = self.nodes[r as usize].bbox.min_dist(q) + self.nodes[r as usize].min_aux;
        if bl <= br {
            self.min_two_rec(l, q, eval, best);
            self.min_two_rec(r, q, eval, best);
        } else {
            self.min_two_rec(r, q, eval, best);
            self.min_two_rec(l, q, eval, best);
        }
    }

    /// Batched [`KdTree::min_two_adjusted`] over the stored `lo` offsets
    /// (`eval(i) = d(q, p_i) + lo_i`): the two-stage `NN≠0` front end's
    /// `(Δ₁, Δ₂)` in one lane-chunked walk.
    pub fn min_two_adjusted_weighted(&self, q: Point) -> Option<(usize, f64, f64)> {
        self.min_two_weighted_impl::<true>(q)
    }

    /// Scalar differential oracle for [`KdTree::min_two_adjusted_weighted`].
    pub fn min_two_adjusted_weighted_scalar(&self, q: Point) -> Option<(usize, f64, f64)> {
        self.min_two_weighted_impl::<false>(q)
    }

    fn min_two_weighted_impl<const BATCH: bool>(&self, q: Point) -> Option<(usize, f64, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut best: (usize, f64, f64) = (usize::MAX, f64::INFINITY, f64::INFINITY);
        self.min_two_weighted_rec::<BATCH>(0, q, &mut best);
        (best.0 != usize::MAX).then_some(best)
    }

    fn min_two_weighted_rec<const BATCH: bool>(
        &self,
        node: u32,
        q: Point,
        best: &mut (usize, f64, f64),
    ) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) + n.min_aux >= best.2 {
            unn_observe::kd_node_pruned();
            return;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            self.scan::<BATCH, _>(n.start, n.end, q, &mut |slot, d| {
                let v = d + self.aux_lo[slot];
                if v < best.1 {
                    best.2 = best.1;
                    best.1 = v;
                    best.0 = self.ids[slot] as usize;
                } else if v < best.2 {
                    best.2 = v;
                }
            });
            return;
        }
        let (l, r) = (n.left, n.right);
        let bl = self.nodes[l as usize].bbox.min_dist(q) + self.nodes[l as usize].min_aux;
        let br = self.nodes[r as usize].bbox.min_dist(q) + self.nodes[r as usize].min_aux;
        if bl <= br {
            self.min_two_weighted_rec::<BATCH>(l, q, best);
            self.min_two_weighted_rec::<BATCH>(r, q, best);
        } else {
            self.min_two_weighted_rec::<BATCH>(r, q, best);
            self.min_two_weighted_rec::<BATCH>(l, q, best);
        }
    }

    /// Batched stage-1 Δ(q) minimization over an external support-box
    /// family: minimizes `boxes.max_dist(id, q)` over all stored points,
    /// gathering [`LANES`] box evaluations per batch. Requires the usual
    /// [`KdTree::min_adjusted`] contract —
    /// `boxes.max_dist(id, q) >= d(q, p_id) + min_aux` for every stored
    /// point — which holds with all-zero aux whenever `p_id` lies inside
    /// `boxes[id]` (e.g. the boxes' centers). Bit-identical to
    /// `min_adjusted(q, &|i| boxes.get(i).max_dist(q))`.
    pub fn min_adjusted_boxes(&self, q: Point, boxes: &AabbSoA) -> Option<(usize, f64)> {
        self.min_adjusted_boxes_impl::<true>(q, boxes)
    }

    /// Scalar differential oracle for [`KdTree::min_adjusted_boxes`].
    pub fn min_adjusted_boxes_scalar(&self, q: Point, boxes: &AabbSoA) -> Option<(usize, f64)> {
        self.min_adjusted_boxes_impl::<false>(q, boxes)
    }

    fn min_adjusted_boxes_impl<const BATCH: bool>(
        &self,
        q: Point,
        boxes: &AabbSoA,
    ) -> Option<(usize, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut best: (usize, f64) = (usize::MAX, f64::INFINITY);
        self.min_boxes_rec::<BATCH>(0, q, boxes, &mut best);
        (best.0 != usize::MAX).then_some(best)
    }

    fn min_boxes_rec<const BATCH: bool>(
        &self,
        node: u32,
        q: Point,
        boxes: &AabbSoA,
        best: &mut (usize, f64),
    ) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) + n.min_aux >= best.1 {
            unn_observe::kd_node_pruned();
            return;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            let (s, e) = (n.start as usize, n.end as usize);
            unn_observe::leaf_points((e - s) as u64);
            let mut i = s;
            if BATCH {
                let batches = (e - s) / LANES;
                unn_observe::simd_batches_add(batches as u64);
                for _ in 0..batches {
                    let vs = boxes.max_dist_lanes(&self.ids[i..i + LANES], q.x, q.y);
                    for (l, &v) in vs.iter().enumerate() {
                        if v < best.1 {
                            *best = (self.ids[i + l] as usize, v);
                        }
                    }
                    i += LANES;
                }
            }
            while i < e {
                let id = self.ids[i] as usize;
                let v = boxes.max_dist(id, q);
                if v < best.1 {
                    *best = (id, v);
                }
                i += 1;
            }
            return;
        }
        let (l, r) = (n.left, n.right);
        let bl = self.nodes[l as usize].bbox.min_dist(q) + self.nodes[l as usize].min_aux;
        let br = self.nodes[r as usize].bbox.min_dist(q) + self.nodes[r as usize].min_aux;
        if bl <= br {
            self.min_boxes_rec::<BATCH>(l, q, boxes, best);
            self.min_boxes_rec::<BATCH>(r, q, boxes, best);
        } else {
            self.min_boxes_rec::<BATCH>(r, q, boxes, best);
            self.min_boxes_rec::<BATCH>(l, q, boxes, best);
        }
    }

    /// Best-first fold over the tree under a caller-maintained shrinking
    /// cap: points in a subtree with `bbox.min_dist(q) < cap` are handed
    /// to `visit`, which returns the (possibly tightened) cap for the rest
    /// of the walk; subtrees whose bound reaches the current cap are cut.
    /// Returns the final cap.
    ///
    /// Exactness contract (what makes the pruned fold equal the full scan):
    /// the caller's fold must be monotone (`visit` never *raises* the cap)
    /// and insensitive to skipped points — any point whose folded statistic
    /// is `>= cap` at the moment it would be visited must leave the fold's
    /// observable outputs unchanged, with the statistic bounded below by
    /// `d(q, p_id)`. [`DeltaCompose`](../unn_nonzero) under
    /// `prune_bound` satisfies both: its caps only depend on the minimum and
    /// second-minimum, and a Δ at or above the running second-minimum
    /// changes neither.
    ///
    /// The batched walk exercises that latitude at point granularity too:
    /// each leaf's center distances are computed in lane batches and slots
    /// with `d(q, p_id) >= cap` are skipped without calling `visit` — by
    /// the contract their statistic is `>= cap` and the fold ignores them.
    /// [`KdTree::prune_with_cap_scalar`] keeps the original
    /// visit-every-slot walk as the differential oracle: both walks land
    /// on the identical final fold state and cap.
    pub fn prune_with_cap(&self, q: Point, cap: f64, visit: &mut dyn FnMut(usize) -> f64) -> f64 {
        if self.is_empty() {
            return cap;
        }
        let mut cap = cap;
        self.prune_with_cap_rec::<true>(0, q, &mut cap, visit);
        cap
    }

    /// Scalar differential oracle for [`KdTree::prune_with_cap`]: no
    /// center-distance prefilter — every slot of every surviving leaf is
    /// handed to `visit`, exactly the pre-SoA behavior.
    pub fn prune_with_cap_scalar(
        &self,
        q: Point,
        cap: f64,
        visit: &mut dyn FnMut(usize) -> f64,
    ) -> f64 {
        if self.is_empty() {
            return cap;
        }
        let mut cap = cap;
        self.prune_with_cap_rec::<false>(0, q, &mut cap, visit);
        cap
    }

    fn prune_with_cap_rec<const BATCH: bool>(
        &self,
        node: u32,
        q: Point,
        cap: &mut f64,
        visit: &mut dyn FnMut(usize) -> f64,
    ) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) >= *cap {
            unn_observe::kd_node_pruned();
            return;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            if BATCH {
                // Threshold-gated form of the original ungated scan: the
                // gate admits `d <= cap` (a superset of the consumer's
                // strict `d < cap`), so the visit set is unchanged while
                // the shared kernel's f32 filter tier applies.
                let cap_cell = std::cell::Cell::new(*cap);
                self.scan_below::<true, _, _>(
                    n.start,
                    n.end,
                    q,
                    &mut || cap_cell.get(),
                    &mut |slot, d| {
                        if d < cap_cell.get() {
                            cap_cell.set(visit(self.ids[slot] as usize));
                        }
                    },
                );
                *cap = cap_cell.get();
            } else {
                for i in n.start..n.end {
                    *cap = visit(self.ids[i as usize] as usize);
                }
            }
            return;
        }
        let (l, r) = (n.left, n.right);
        let dl = self.nodes[l as usize].bbox.min_dist2(q);
        let dr = self.nodes[r as usize].bbox.min_dist2(q);
        if dl <= dr {
            self.prune_with_cap_rec::<BATCH>(l, q, cap, visit);
            self.prune_with_cap_rec::<BATCH>(r, q, cap, visit);
        } else {
            self.prune_with_cap_rec::<BATCH>(r, q, cap, visit);
            self.prune_with_cap_rec::<BATCH>(l, q, cap, visit);
        }
    }

    /// Distance from `q` to the root bounding box (`+∞` for an empty tree):
    /// a lower bound on `d(q, p)` for every stored point, hence on any
    /// evaluation family with non-negative offsets. Callers use it to order
    /// whole trees best-first and to skip trees that cannot beat a running
    /// cap without touching a single node.
    pub fn root_min_dist(&self, q: Point) -> f64 {
        self.nodes
            .first()
            .map_or(f64::INFINITY, |n| n.bbox.min_dist(q))
    }

    /// `root_min_dist(q) + min_aux`: the [`KdTree::min_adjusted`] pruning
    /// bound of the whole tree (`+∞` when empty) — a lower bound on the
    /// tree's `min_adjusted` result under the same evaluation contract.
    pub fn root_lower_bound(&self, q: Point) -> f64 {
        self.nodes
            .first()
            .map_or(f64::INFINITY, |n| n.bbox.min_dist(q) + n.min_aux)
    }

    /// Reports every `id` with `eval(id) < t`, where
    /// `eval(id) >= d(q, p_id) - aux_id` (pass `eval = δ_i` with
    /// `aux = r_i` for disks, or `aux` = object extent for discrete points).
    ///
    /// Pruning bound per subtree: `bbox.min_dist(q) - max_aux`.
    pub fn report_adjusted_below(
        &self,
        q: Point,
        t: f64,
        eval: &dyn Fn(usize) -> f64,
        visit: &mut dyn FnMut(usize, f64),
    ) {
        if self.is_empty() {
            return;
        }
        self.report_rec(0, q, t, eval, visit);
    }

    fn report_rec(
        &self,
        node: u32,
        q: Point,
        t: f64,
        eval: &dyn Fn(usize) -> f64,
        visit: &mut dyn FnMut(usize, f64),
    ) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) - n.max_aux >= t {
            unn_observe::kd_node_pruned();
            return;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            for i in n.start..n.end {
                let id = self.ids[i as usize] as usize;
                let v = eval(id);
                if v < t {
                    visit(id, v);
                }
            }
            return;
        }
        self.report_rec(n.left, q, t, eval, visit);
        self.report_rec(n.right, q, t, eval, visit);
    }

    /// Batched stage-2 ball reporter over the stored `hi` offsets: calls
    /// `visit(id, v)` for every point with
    /// `v = (d(q, p_i) - hi_i).max(0.0) < t` — the disk lower-envelope
    /// family `δ_i(q)` with `hi_i = r_i`. Bit-identical to
    /// [`KdTree::report_adjusted_below`] with that closure (same traversal,
    /// same leaf order, same scalar operation sequence per lane).
    pub fn report_ball_below(&self, q: Point, t: f64, visit: &mut dyn FnMut(usize, f64)) {
        if self.is_empty() {
            return;
        }
        self.report_ball_rec::<true>(0, q, t, visit);
    }

    /// Scalar differential oracle for [`KdTree::report_ball_below`].
    pub fn report_ball_below_scalar(&self, q: Point, t: f64, visit: &mut dyn FnMut(usize, f64)) {
        if self.is_empty() {
            return;
        }
        self.report_ball_rec::<false>(0, q, t, visit);
    }

    fn report_ball_rec<const BATCH: bool>(
        &self,
        node: u32,
        q: Point,
        t: f64,
        visit: &mut dyn FnMut(usize, f64),
    ) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) - n.max_aux >= t {
            unn_observe::kd_node_pruned();
            return;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            self.scan::<BATCH, _>(n.start, n.end, q, &mut |slot, d| {
                let v = (d - self.aux_hi[slot]).max(0.0);
                if v < t {
                    visit(self.ids[slot] as usize, v);
                }
            });
            return;
        }
        self.report_ball_rec::<BATCH>(n.left, q, t, visit);
        self.report_ball_rec::<BATCH>(n.right, q, t, visit);
    }
}

/// Recursive median-split build over `order` (original point indices);
/// appends this subtree's nodes to `nodes` and returns the subtree root.
/// `global_start` is the final arena position of `order[0]`.
fn build_rec(
    nodes: &mut Vec<Node>,
    points: &[Point],
    lo: &[f64],
    hi: &[f64],
    order: &mut [u32],
    global_start: usize,
    leaf: usize,
) -> u32 {
    // Compute bbox and aux range of this chunk.
    let mut bbox = Aabb::EMPTY;
    let mut min_aux = f64::INFINITY;
    let mut max_aux = f64::NEG_INFINITY;
    for &i in order.iter() {
        bbox.insert(points[i as usize]);
        min_aux = min_aux.min(lo[i as usize]);
        max_aux = max_aux.max(hi[i as usize]);
    }
    let idx = nodes.len() as u32;
    nodes.push(Node {
        bbox,
        min_aux,
        max_aux,
        left: u32::MAX,
        right: u32::MAX,
        start: global_start as u32,
        end: (global_start + order.len()) as u32,
    });
    if order.len() <= leaf {
        return idx;
    }
    // Split at the median of the wider dimension.
    let horizontal = bbox.width() >= bbox.height();
    let mid = order.len() / 2;
    order.select_nth_unstable_by(mid, |&a, &b| {
        let (pa, pb) = (points[a as usize], points[b as usize]);
        if horizontal {
            pa.x.total_cmp(&pb.x)
        } else {
            pa.y.total_cmp(&pb.y)
        }
    });
    let (l, h) = order.split_at_mut(mid);
    let left = build_rec(nodes, points, lo, hi, l, global_start, leaf);
    let right = build_rec(nodes, points, lo, hi, h, global_start + mid, leaf);
    nodes[idx as usize].left = left;
    nodes[idx as usize].right = right;
    nodes[idx as usize].start = u32::MAX;
    nodes[idx as usize].end = u32::MAX;
    idx
}

#[inline]
pub(crate) fn heap_push(heap: &mut Vec<Neighbor>, m: usize, nb: Neighbor) {
    // Max-heap on dist, capped at m entries.
    heap.push(nb);
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if heap[parent].dist < heap[i].dist {
            heap.swap(parent, i);
            i = parent;
        } else {
            break;
        }
    }
    if heap.len() > m {
        // Pop the max (root).
        let last = heap.len() - 1;
        heap.swap(0, last);
        heap.pop();
        // Sift down.
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < heap.len() && heap[l].dist > heap[largest].dist {
                largest = l;
            }
            if r < heap.len() && heap[r].dist > heap[largest].dist {
                largest = r;
            }
            if largest == i {
                break;
            }
            heap.swap(i, largest);
            i = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::new(
                    rng.random_range(-100.0..100.0),
                    rng.random_range(-100.0..100.0),
                )
            })
            .collect()
    }

    fn brute_nearest(pts: &[Point], q: Point) -> Neighbor {
        let mut best = Neighbor {
            id: usize::MAX,
            dist: f64::INFINITY,
        };
        for (i, p) in pts.iter().enumerate() {
            let d = p.dist(q);
            if d < best.dist {
                best = Neighbor { id: i, dist: d };
            }
        }
        best
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(500, 1);
        let tree = KdTree::new(&pts);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..200 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            let got = tree.nearest(q).unwrap();
            let want = brute_nearest(&pts, q);
            assert_eq!(got.id, want.id, "q = {q:?}");
        }
    }

    #[test]
    fn m_nearest_matches_sorted_brute_force() {
        let pts = random_points(300, 3);
        let tree = KdTree::new(&pts);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..50 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            for m in [1, 5, 17, 300, 400] {
                let got = tree.m_nearest(q, m);
                let mut want: Vec<(usize, f64)> = pts
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, p.dist(q)))
                    .collect();
                want.sort_by(|a, b| a.1.total_cmp(&b.1));
                want.truncate(m);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert!((g.dist - w.1).abs() < 1e-12, "m={m}");
                }
            }
        }
    }

    #[test]
    fn in_disk_matches_brute_force() {
        let pts = random_points(400, 5);
        let tree = KdTree::new(&pts);
        let q = Point::new(10.0, -20.0);
        for r in [0.0, 5.0, 30.0, 300.0] {
            let mut got: Vec<usize> = Vec::new();
            tree.in_disk(q, r, &mut |id, _| got.push(id));
            got.sort_unstable();
            let want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.dist(q) <= r)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want, "r = {r}");
        }
    }

    #[test]
    fn in_disk_capped_honors_budget() {
        let pts = random_points(400, 5);
        let tree = KdTree::new(&pts);
        let q = Point::new(10.0, -20.0);
        let r = 60.0;
        let full: usize = pts.iter().filter(|p| p.dist(q) <= r).count();
        assert!(full > 10, "workload too sparse for the test");
        // Generous budget: visits everything, returns true.
        let mut got: Vec<usize> = Vec::new();
        assert!(tree.in_disk_capped(q, r, full, &mut |id, _| got.push(id)));
        got.sort_unstable();
        let mut want: Vec<usize> = (0..pts.len()).filter(|&i| pts[i].dist(q) <= r).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        // Tight budget: aborts, never visiting more than the cap.
        let mut count = 0usize;
        assert!(!tree.in_disk_capped(q, r, full - 1, &mut |_, _| count += 1));
        assert!(count < full);
    }

    #[test]
    fn weighted_min_matches_brute_force() {
        // Additively weighted NN: Delta(q) = min d(q,c_i) + r_i.
        let pts = random_points(300, 6);
        let mut rng = SmallRng::seed_from_u64(7);
        let radii: Vec<f64> = (0..pts.len())
            .map(|_| rng.random_range(0.1..20.0))
            .collect();
        let tree = KdTree::with_aux(&pts, &radii);
        for _ in 0..100 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            let (id, v) = tree
                .min_adjusted(q, &|i| pts[i].dist(q) + radii[i])
                .unwrap();
            let (bid, bv) = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (i, p.dist(q) + radii[i]))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            assert_eq!(id, bid);
            assert!((v - bv).abs() < 1e-12);
            // The batched weighted form lands on the identical pair.
            assert_eq!(tree.min_adjusted_weighted(q), Some((id, v)));
        }
    }

    #[test]
    fn min_two_matches_two_pass_oracle() {
        let pts = random_points(300, 30);
        let mut rng = SmallRng::seed_from_u64(31);
        let radii: Vec<f64> = (0..pts.len())
            .map(|_| rng.random_range(0.1..20.0))
            .collect();
        let tree = KdTree::with_aux(&pts, &radii);
        let eval_at = |q: Point, i: usize| pts[i].dist(q) + radii[i];
        for _ in 0..100 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            // Classic two-pass: argmin, then min excluding that index.
            let (best, d1) = tree.min_adjusted(q, &|i| eval_at(q, i)).unwrap();
            let d2 = tree
                .min_adjusted(q, &|i| {
                    if i == best {
                        f64::INFINITY
                    } else {
                        eval_at(q, i)
                    }
                })
                .map_or(f64::INFINITY, |(_, v)| v);
            let got = tree.min_two_adjusted(q, &|i| eval_at(q, i)).unwrap();
            assert_eq!(got, (best, d1, d2), "closure single-pass at {q:?}");
            let gotw = tree.min_two_adjusted_weighted(q).unwrap();
            assert_eq!(gotw, (best, d1, d2), "weighted batched at {q:?}");
            assert_eq!(
                tree.min_two_adjusted_weighted_scalar(q),
                Some(gotw),
                "scalar oracle at {q:?}"
            );
        }
        // Single-point tree: second is +infinity.
        let one = KdTree::with_aux(&pts[..1], &radii[..1]);
        let (_, _, d2) = one.min_two_adjusted_weighted(Point::ORIGIN).unwrap();
        assert!(d2.is_infinite());
        assert!(KdTree::new(&[])
            .min_two_adjusted_weighted(Point::ORIGIN)
            .is_none());
    }

    #[test]
    fn min_adjusted_boxes_matches_closure() {
        let pts = random_points(250, 32);
        let mut rng = SmallRng::seed_from_u64(33);
        let boxes: Vec<Aabb> = pts
            .iter()
            .map(|p| {
                let (w, h) = (rng.random_range(0.0..9.0), rng.random_range(0.0..9.0));
                Aabb::new(Point::new(p.x - w, p.y - h), Point::new(p.x + w, p.y + h))
            })
            .collect();
        let soa = AabbSoA::from_boxes(&boxes);
        let tree = KdTree::new(&pts);
        for _ in 0..80 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            let want = tree.min_adjusted(q, &|i| boxes[i].max_dist(q)).unwrap();
            assert_eq!(tree.min_adjusted_boxes(q, &soa), Some(want));
            assert_eq!(tree.min_adjusted_boxes_scalar(q, &soa), Some(want));
        }
        assert!(KdTree::new(&[])
            .min_adjusted_boxes(Point::ORIGIN, &soa)
            .is_none());
    }

    #[test]
    fn config_layouts_answer_identically() {
        // Different leaf layouts permute the arena but cannot change any
        // nearest/ball answer; the default config must reproduce the
        // original LEAF_SIZE=8 layout's results exactly.
        let pts = random_points(300, 34);
        let trees = [
            KdTree::new(&pts),
            KdTree::with_config(&pts, KdConfig::scan_heavy()),
            KdTree::with_config(
                &pts,
                KdConfig {
                    leaf_size: 3,
                    brute_force_below: 0,
                    ..KdConfig::default()
                },
            ),
            KdTree::with_config(
                &pts,
                KdConfig {
                    leaf_size: 8,
                    brute_force_below: 500,
                    ..KdConfig::default()
                },
            ),
            KdTree::with_config(
                &pts,
                KdConfig::scan_heavy().with_filter(FilterPrecision::F32Refined),
            ),
        ];
        assert!(trees[3].nodes.len() == 1, "brute_force_below must flatten");
        let mut rng = SmallRng::seed_from_u64(35);
        for _ in 0..60 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            let want = trees[0].nearest(q).unwrap();
            for t in &trees[1..] {
                let got = t.nearest(q).unwrap();
                assert_eq!((got.id, got.dist.to_bits()), (want.id, want.dist.to_bits()));
            }
            // (dist, id)-lex-min ball folds are layout-invariant.
            let fold = |t: &KdTree| {
                let mut e = (f64::INFINITY, usize::MAX);
                t.in_disk(q, 75.0, &mut |id, d| {
                    if d < e.0 || (d == e.0 && id < e.1) {
                        e = (d, id);
                    }
                });
                e
            };
            let want_fold = fold(&trees[0]);
            for t in &trees[1..] {
                assert_eq!(fold(t), want_fold);
            }
        }
    }

    #[test]
    fn report_below_matches_brute_force() {
        // Stage 2 of NN!=0: report i with max(d - r, 0) < t.
        let pts = random_points(300, 8);
        let mut rng = SmallRng::seed_from_u64(9);
        let radii: Vec<f64> = (0..pts.len())
            .map(|_| rng.random_range(0.1..20.0))
            .collect();
        let tree = KdTree::with_aux(&pts, &radii);
        for _ in 0..50 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            let t = rng.random_range(1.0..60.0);
            let delta = |i: usize| (pts[i].dist(q) - radii[i]).max(0.0);
            let mut got: Vec<usize> = Vec::new();
            tree.report_adjusted_below(q, t, &delta, &mut |id, _| got.push(id));
            got.sort_unstable();
            let want: Vec<usize> = (0..pts.len()).filter(|&i| delta(i) < t).collect();
            assert_eq!(got, want);
            // Batched ball reporter: identical visit sequence.
            let mut ball: Vec<(usize, u64)> = Vec::new();
            tree.report_ball_below(q, t, &mut |id, v| ball.push((id, v.to_bits())));
            let mut scalar: Vec<(usize, u64)> = Vec::new();
            tree.report_ball_below_scalar(q, t, &mut |id, v| scalar.push((id, v.to_bits())));
            assert_eq!(ball, scalar);
            let mut ids: Vec<usize> = ball.iter().map(|&(id, _)| id).collect();
            ids.sort_unstable();
            assert_eq!(ids, want);
        }
    }

    #[test]
    fn prune_with_cap_min2_matches_full_scan() {
        // A (min, second-min) fold over d(q, p) where the cap is the running
        // second minimum — the monotone/insensitive shape the dynamic
        // engine's DeltaCompose fold has. The pruned walk must land on the
        // exact same pair as the full scan, batched and scalar alike.
        let pts = random_points(400, 13);
        let tree = KdTree::new(&pts);
        let mut rng = SmallRng::seed_from_u64(14);
        for _ in 0..100 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            let run = |batched: bool| {
                let (mut lo, mut second) = (f64::INFINITY, f64::INFINITY);
                let mut fold = |id: usize| {
                    let d = pts[id].dist(q);
                    if d < lo {
                        second = lo;
                        lo = d;
                    } else if d < second {
                        second = d;
                    }
                    second
                };
                if batched {
                    tree.prune_with_cap(q, f64::INFINITY, &mut fold);
                } else {
                    tree.prune_with_cap_scalar(q, f64::INFINITY, &mut fold);
                }
                (lo, second)
            };
            let (lo, second) = run(true);
            assert_eq!((lo, second), run(false), "batched vs scalar at {q:?}");
            let mut dists: Vec<f64> = pts.iter().map(|p| p.dist(q)).collect();
            dists.sort_by(f64::total_cmp);
            assert_eq!(lo, dists[0], "min diverged at {q:?}");
            assert_eq!(second, dists[1], "second-min diverged at {q:?}");
        }
    }

    #[test]
    fn min_adjusted_from_threads_incumbent_across_trees() {
        let pts = random_points(300, 15);
        let mut rng = SmallRng::seed_from_u64(16);
        let radii: Vec<f64> = (0..pts.len())
            .map(|_| rng.random_range(0.1..20.0))
            .collect();
        // Split into uneven chunks, one tree per chunk; threading the
        // incumbent through them must recover the exact global minimum.
        let cuts = [0usize, 7, 120, 121, 300];
        let trees: Vec<(usize, KdTree)> = cuts
            .windows(2)
            .map(|w| (w[0], KdTree::with_aux(&pts[w[0]..w[1]], &radii[w[0]..w[1]])))
            .collect();
        for _ in 0..60 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            let mut incumbent = f64::INFINITY;
            for (off, tree) in &trees {
                if let Some((_, v)) =
                    tree.min_adjusted_from(q, incumbent, &|i| pts[off + i].dist(q) + radii[off + i])
                {
                    incumbent = v;
                }
            }
            let want = pts
                .iter()
                .zip(&radii)
                .map(|(p, r)| p.dist(q) + r)
                .fold(f64::INFINITY, f64::min);
            assert_eq!(incumbent, want, "threaded minimum diverged at {q:?}");
            // The weighted batched form threads identically.
            let mut incumbent_w = f64::INFINITY;
            for (_, tree) in &trees {
                if let Some((_, v)) = tree.min_adjusted_weighted_from(q, incumbent_w) {
                    incumbent_w = v;
                }
            }
            assert_eq!(incumbent_w, want);
        }
        // An incumbent at (or below) the tree minimum yields None.
        let q = Point::ORIGIN;
        let tree = KdTree::with_aux(&pts, &radii);
        let (_, v) = tree
            .min_adjusted(q, &|i| pts[i].dist(q) + radii[i])
            .unwrap();
        assert!(tree
            .min_adjusted_from(q, v, &|i| pts[i].dist(q) + radii[i])
            .is_none());
        assert!(tree.min_adjusted_weighted_from(q, v).is_none());
    }

    #[test]
    fn root_bounds_bound_every_result() {
        let pts = random_points(200, 17);
        let mut rng = SmallRng::seed_from_u64(18);
        let radii: Vec<f64> = (0..pts.len()).map(|_| rng.random_range(0.0..5.0)).collect();
        let tree = KdTree::with_aux(&pts, &radii);
        for _ in 0..50 {
            let q = Point::new(
                rng.random_range(-150.0..150.0),
                rng.random_range(-150.0..150.0),
            );
            let nn = tree.nearest(q).unwrap();
            assert!(tree.root_min_dist(q) <= nn.dist);
            let (_, v) = tree
                .min_adjusted(q, &|i| pts[i].dist(q) + radii[i])
                .unwrap();
            assert!(tree.root_lower_bound(q) <= v);
        }
        let empty = KdTree::new(&[]);
        assert!(empty.root_min_dist(Point::ORIGIN).is_infinite());
        assert!(empty.root_lower_bound(Point::ORIGIN).is_infinite());
        assert_eq!(
            empty.prune_with_cap(Point::ORIGIN, 3.0, &mut |_| unreachable!()),
            3.0
        );
    }

    #[test]
    fn with_aux_bounds_serves_asymmetric_offsets() {
        // lo feeds min_adjusted pruning, hi feeds report_adjusted_below:
        // the same tree answers both families exactly even when they differ.
        let pts = random_points(250, 19);
        let mut rng = SmallRng::seed_from_u64(20);
        let lo: Vec<f64> = (0..pts.len()).map(|_| rng.random_range(0.0..3.0)).collect();
        let hi: Vec<f64> = (0..pts.len())
            .map(|_| rng.random_range(5.0..15.0))
            .collect();
        let tree = KdTree::with_aux_bounds(&pts, &lo, &hi);
        for _ in 0..40 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            let (id, v) = tree.min_adjusted(q, &|i| pts[i].dist(q) + lo[i]).unwrap();
            let (bid, bv) = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (i, p.dist(q) + lo[i]))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            assert_eq!(id, bid);
            assert_eq!(v, bv);
            assert_eq!(tree.min_adjusted_weighted(q), Some((id, v)));
            let t = rng.random_range(1.0..40.0);
            let delta = |i: usize| (pts[i].dist(q) - hi[i]).max(0.0);
            let mut got: Vec<usize> = Vec::new();
            tree.report_adjusted_below(q, t, &delta, &mut |i, _| got.push(i));
            got.sort_unstable();
            let want: Vec<usize> = (0..pts.len()).filter(|&i| delta(i) < t).collect();
            assert_eq!(got, want);
            let mut ball: Vec<usize> = Vec::new();
            tree.report_ball_below(q, t, &mut |i, _| ball.push(i));
            ball.sort_unstable();
            assert_eq!(ball, want);
        }
    }

    #[test]
    fn nearest_within_matches_unseeded() {
        let pts = random_points(500, 10);
        let tree = KdTree::new(&pts);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..200 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            let want = tree.nearest(q).unwrap();
            // Any valid seed (>= true NN distance) gives the identical answer.
            for seed in [want.dist, want.dist * 1.5, want.dist + 10.0, f64::INFINITY] {
                let got = tree.nearest_within(q, seed).unwrap();
                assert_eq!(got.id, want.id, "seed = {seed}");
                assert_eq!(got.dist, want.dist);
                let scalar = tree.nearest_within_scalar(q, seed).unwrap();
                assert_eq!(
                    (scalar.id, scalar.dist.to_bits()),
                    (got.id, got.dist.to_bits())
                );
            }
            // A seed strictly below the NN distance finds nothing.
            if want.dist > 0.0 {
                assert!(tree.nearest_within(q, want.dist * 0.999999).is_none());
            }
        }
    }

    #[test]
    fn m_nearest_into_reuses_buffer() {
        let pts = random_points(200, 12);
        let tree = KdTree::new(&pts);
        let mut buf = vec![Neighbor { id: 7, dist: -1.0 }; 3];
        let q = Point::new(3.0, -4.0);
        tree.m_nearest_into(q, 5, &mut buf);
        assert_eq!(buf, tree.m_nearest(q, 5));
        let mut scalar = Vec::new();
        tree.m_nearest_into_scalar(q, 5, &mut scalar);
        assert_eq!(buf, scalar);
        tree.m_nearest_into(q, 0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn empty_and_tiny_trees() {
        let empty = KdTree::new(&[]);
        assert!(empty.nearest(Point::ORIGIN).is_none());
        assert!(empty.m_nearest(Point::ORIGIN, 3).is_empty());
        assert!(empty
            .min_adjusted(Point::ORIGIN, &|_| unreachable!())
            .is_none());
        assert!(empty.min_adjusted_weighted(Point::ORIGIN).is_none());

        let one = KdTree::new(&[Point::new(1.0, 1.0)]);
        let nb = one.nearest(Point::ORIGIN).unwrap();
        assert_eq!(nb.id, 0);
        assert!((nb.dist - 2.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn duplicate_points_all_reported() {
        let pts = vec![Point::new(1.0, 1.0); 20];
        let tree = KdTree::new(&pts);
        let mut got = Vec::new();
        tree.in_disk(Point::ORIGIN, 2.0, &mut |id, _| got.push(id));
        assert_eq!(got.len(), 20);
        let m = tree.m_nearest(Point::ORIGIN, 7);
        assert_eq!(m.len(), 7);
    }

    proptest! {
        #[test]
        fn prop_nearest_agrees(
            pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..80),
            qx in -60.0f64..60.0, qy in -60.0f64..60.0,
        ) {
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let tree = KdTree::new(&pts);
            let q = Point::new(qx, qy);
            let got = tree.nearest(q).unwrap();
            let want = brute_nearest(&pts, q);
            prop_assert!((got.dist - want.dist).abs() < 1e-12);
        }

        #[test]
        fn prop_nearest_within_valid_seed_agrees(
            pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..80),
            qx in -60.0f64..60.0, qy in -60.0f64..60.0,
            slack in 0.0f64..30.0,
        ) {
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let tree = KdTree::new(&pts);
            let q = Point::new(qx, qy);
            let want = brute_nearest(&pts, q);
            // Valid seeds: exactly the NN distance (Δ(q)-style tight bound),
            // any slack above it, and +∞ (the unseeded search).
            for seed in [want.dist, want.dist + slack, f64::INFINITY] {
                let got = tree.nearest_within(q, seed).unwrap();
                prop_assert_eq!(got.dist, pts[got.id].dist(q));
                prop_assert!((got.dist - want.dist).abs() < 1e-12);
            }
        }

        #[test]
        fn prop_m_nearest_is_prefix_of_sort(
            pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..60),
            qx in -60.0f64..60.0, qy in -60.0f64..60.0,
            m in 1usize..70,
        ) {
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let tree = KdTree::new(&pts);
            let q = Point::new(qx, qy);
            let got = tree.m_nearest(q, m);
            prop_assert_eq!(got.len(), m.min(pts.len()));
            // Sorted and matching the true distance multiset prefix.
            let mut dists: Vec<f64> = pts.iter().map(|p| p.dist(q)).collect();
            dists.sort_by(f64::total_cmp);
            for (g, &w) in got.iter().zip(dists.iter()) {
                prop_assert!((g.dist - w).abs() < 1e-12);
            }
        }
    }
}
