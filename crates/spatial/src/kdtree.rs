//! Kd-tree over weighted points.
//!
//! One structure serves every query shape the paper's data structures need
//! (DESIGN.md §4 explains each substitution):
//!
//! * [`KdTree::nearest`] / [`KdTree::m_nearest`] — plain (m-)nearest
//!   neighbors; the engine of the Monte-Carlo structure (§4.2) and of spiral
//!   search (§4.3, replacing the `[AC09]` structure).
//! * [`KdTree::in_disk`] — disk range reporting.
//! * [`KdTree::min_adjusted`] — minimize a per-point score bounded below by
//!   the box distance; with `eval = d(q,c_i) + r_i` over disk centers this
//!   computes `Δ(q) = min_i Δ_i(q)`, stage 1 of the `NN≠0` query (§3).
//! * [`KdTree::report_adjusted_below`] — report every `i` with
//!   `eval(i) < t` where `eval(i) >= d(q, p_i) - aux_i`; with `aux_i = r_i`
//!   and `eval = δ_i` this reports `{i : δ_i(q) < Δ(q)}`, stage 2 of the
//!   `NN≠0` query (replacing `[KMR⁺16]`).
//!
//! The tree is built by recursive median split on the wider box dimension;
//! nodes are stored in a flat `Vec` (index arithmetic, no pointers), leaves
//! hold a small fixed number of points.

use unn_geom::{Aabb, Point};

/// Max points per leaf.
const LEAF_SIZE: usize = 8;

#[derive(Clone, Debug)]
struct Node {
    bbox: Aabb,
    /// Minimum of `aux` over the subtree (for `min_adjusted`-style bounds).
    min_aux: f64,
    /// Maximum of `aux` over the subtree (for `report_adjusted_below`).
    max_aux: f64,
    /// Children indices, or `u32::MAX` sentinel for leaves.
    left: u32,
    right: u32,
    /// Range of points (into the reordered arrays) for leaves; empty for
    /// internal nodes.
    start: u32,
    end: u32,
}

impl Node {
    #[inline]
    fn is_leaf(&self) -> bool {
        self.left == u32::MAX
    }
}

/// A static kd-tree over points with an auxiliary scalar per point
/// (a radius, an extent — anything that offsets distances).
///
/// ```
/// use unn_geom::Point;
/// use unn_spatial::KdTree;
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(5.0, 5.0), Point::new(9.0, 1.0)];
/// let tree = KdTree::new(&pts);
/// assert_eq!(tree.nearest(Point::new(8.0, 0.0)).unwrap().id, 2);
/// let two = tree.m_nearest(Point::new(0.0, 1.0), 2);
/// assert_eq!(two[0].id, 0);
/// ```
#[derive(Clone, Debug)]
pub struct KdTree {
    nodes: Vec<Node>,
    pts: Vec<Point>,
    /// Per-point lower offsets: node `min_aux` is their subtree minimum.
    aux_lo: Vec<f64>,
    /// Per-point upper offsets: node `max_aux` is their subtree maximum.
    aux_hi: Vec<f64>,
    /// Original index of each reordered point.
    ids: Vec<u32>,
}

/// A reported neighbor: original index and distance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Index into the original input slice.
    pub id: usize,
    /// Euclidean distance to the query.
    pub dist: f64,
}

impl KdTree {
    /// Builds a tree over `points` with all-zero auxiliaries.
    pub fn new(points: &[Point]) -> Self {
        Self::with_aux(points, &vec![0.0; points.len()])
    }

    /// Builds a tree over `points` with the given per-point auxiliaries
    /// (used for both the lower and the upper per-point offset).
    pub fn with_aux(points: &[Point], aux: &[f64]) -> Self {
        Self::with_aux_bounds(points, aux, aux)
    }

    /// Builds a tree over `points` with *asymmetric* per-point offsets:
    /// `lo[i]` feeds the subtree `min_aux` bounds ([`KdTree::min_adjusted`],
    /// [`KdTree::root_lower_bound`]) and `hi[i]` the subtree `max_aux`
    /// bounds ([`KdTree::report_adjusted_below`]).
    ///
    /// The split: a single evaluation family rarely admits the same offset
    /// in both directions. For an uncertain point with support box `B_i`
    /// centered at `p_i`, `max_dist_i(q) >= d(q, p_i) + min_halfwidth(B_i)`
    /// (a valid lower offset) while `min_dist_i(q) >= d(q, p_i) - circum(B_i)`
    /// (a valid upper offset) — and the two scalars differ.
    pub fn with_aux_bounds(points: &[Point], lo: &[f64], hi: &[f64]) -> Self {
        assert_eq!(points.len(), lo.len());
        assert_eq!(points.len(), hi.len());
        let n = points.len();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut tree = KdTree {
            nodes: Vec::with_capacity(2 * n / LEAF_SIZE + 2),
            pts: points.to_vec(),
            aux_lo: lo.to_vec(),
            aux_hi: hi.to_vec(),
            ids: Vec::new(),
        };
        if n > 0 {
            let mut order: Vec<u32> = ids.clone();
            tree.build(&mut order, 0, n);
            // Reorder point/aux arrays by the final permutation.
            let pts: Vec<Point> = order.iter().map(|&i| points[i as usize]).collect();
            let lov: Vec<f64> = order.iter().map(|&i| lo[i as usize]).collect();
            let hiv: Vec<f64> = order.iter().map(|&i| hi[i as usize]).collect();
            tree.pts = pts;
            tree.aux_lo = lov;
            tree.aux_hi = hiv;
            ids = order;
        }
        tree.ids = ids;
        tree
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// `true` if the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    fn build(&mut self, order: &mut [u32], global_start: usize, _total: usize) -> u32 {
        // Compute bbox and aux range of this chunk.
        let mut bbox = Aabb::EMPTY;
        let mut min_aux = f64::INFINITY;
        let mut max_aux = f64::NEG_INFINITY;
        for &i in order.iter() {
            bbox.insert(self.pts[i as usize]);
            min_aux = min_aux.min(self.aux_lo[i as usize]);
            max_aux = max_aux.max(self.aux_hi[i as usize]);
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            bbox,
            min_aux,
            max_aux,
            left: u32::MAX,
            right: u32::MAX,
            start: global_start as u32,
            end: (global_start + order.len()) as u32,
        });
        if order.len() <= LEAF_SIZE {
            return idx;
        }
        // Split at the median of the wider dimension.
        let horizontal = bbox.width() >= bbox.height();
        let mid = order.len() / 2;
        let pts = &self.pts;
        order.select_nth_unstable_by(mid, |&a, &b| {
            let (pa, pb) = (pts[a as usize], pts[b as usize]);
            if horizontal {
                pa.x.total_cmp(&pb.x)
            } else {
                pa.y.total_cmp(&pb.y)
            }
        });
        let (lo, hi) = order.split_at_mut(mid);
        let left = self.build(lo, global_start, _total);
        let right = self.build(hi, global_start + mid, _total);
        self.nodes[idx as usize].left = left;
        self.nodes[idx as usize].right = right;
        self.nodes[idx as usize].start = u32::MAX;
        self.nodes[idx as usize].end = u32::MAX;
        idx
    }

    /// Nearest neighbor of `q`, or `None` for an empty tree.
    pub fn nearest(&self, q: Point) -> Option<Neighbor> {
        self.nearest_within(q, f64::INFINITY)
    }

    /// Nearest neighbor of `q` among points at distance `<= init_best`
    /// (closed ball), or `None` when the tree is empty or no point lies
    /// within the seed radius.
    ///
    /// The branch-and-bound starts with `init_best` as the incumbent
    /// distance instead of `+∞`, so any subtree farther than the seed is
    /// pruned before the walk begins. With a valid seed (any upper bound on
    /// the true NN distance, e.g. the paper's `Δ(q)` from Lemma 2.1) the
    /// result is identical to [`KdTree::nearest`]; `f64::INFINITY` recovers
    /// the unseeded search exactly.
    pub fn nearest_within(&self, q: Point, init_best: f64) -> Option<Neighbor> {
        if self.is_empty() {
            return None;
        }
        let mut best = Neighbor {
            id: usize::MAX,
            // `next_up` makes the seed radius inclusive under the strict
            // `<` comparisons below (a point at exactly `init_best` wins).
            dist: init_best.next_up(),
        };
        self.nearest_rec(0, q, &mut best);
        (best.id != usize::MAX).then_some(best)
    }

    fn nearest_rec(&self, node: u32, q: Point, best: &mut Neighbor) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) >= best.dist {
            unn_observe::kd_node_pruned();
            return;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            for i in n.start..n.end {
                let d = self.pts[i as usize].dist(q);
                if d < best.dist {
                    *best = Neighbor {
                        id: self.ids[i as usize] as usize,
                        dist: d,
                    };
                }
            }
            return;
        }
        let (l, r) = (n.left, n.right);
        let dl = self.nodes[l as usize].bbox.min_dist2(q);
        let dr = self.nodes[r as usize].bbox.min_dist2(q);
        if dl <= dr {
            self.nearest_rec(l, q, best);
            self.nearest_rec(r, q, best);
        } else {
            self.nearest_rec(r, q, best);
            self.nearest_rec(l, q, best);
        }
    }

    /// The `m` nearest neighbors of `q`, sorted by increasing distance.
    ///
    /// This is the retrieval engine of spiral search (Theorem 4.7): the
    /// `m(ρ,ε)` closest locations of `S = ∪ P_i`.
    pub fn m_nearest(&self, q: Point, m: usize) -> Vec<Neighbor> {
        let mut heap = Vec::new();
        self.m_nearest_into(q, m, &mut heap);
        heap
    }

    /// [`KdTree::m_nearest`] into a caller-provided buffer (cleared first):
    /// per-round loops reuse one heap allocation across calls.
    pub fn m_nearest_into(&self, q: Point, m: usize, out: &mut Vec<Neighbor>) {
        out.clear();
        if self.is_empty() || m == 0 {
            return;
        }
        // Bounded max-heap on distance.
        out.reserve(m + 1);
        self.m_nearest_rec(0, q, m, out);
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    }

    fn m_nearest_rec(&self, node: u32, q: Point, m: usize, heap: &mut Vec<Neighbor>) {
        let n = &self.nodes[node as usize];
        let worst = if heap.len() < m {
            f64::INFINITY
        } else {
            heap[0].dist
        };
        if n.bbox.min_dist(q) >= worst {
            unn_observe::kd_node_pruned();
            return;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            for i in n.start..n.end {
                let d = self.pts[i as usize].dist(q);
                let worst = if heap.len() < m {
                    f64::INFINITY
                } else {
                    heap[0].dist
                };
                if d < worst {
                    heap_push(
                        heap,
                        m,
                        Neighbor {
                            id: self.ids[i as usize] as usize,
                            dist: d,
                        },
                    );
                }
            }
            return;
        }
        let (l, r) = (n.left, n.right);
        let dl = self.nodes[l as usize].bbox.min_dist2(q);
        let dr = self.nodes[r as usize].bbox.min_dist2(q);
        if dl <= dr {
            self.m_nearest_rec(l, q, m, heap);
            self.m_nearest_rec(r, q, m, heap);
        } else {
            self.m_nearest_rec(r, q, m, heap);
            self.m_nearest_rec(l, q, m, heap);
        }
    }

    /// Calls `visit(id, dist)` for every point within distance `r` of `q`
    /// (closed ball).
    pub fn in_disk(&self, q: Point, r: f64, visit: &mut dyn FnMut(usize, f64)) {
        if self.is_empty() || r < 0.0 {
            return;
        }
        self.in_disk_rec(0, q, r, visit);
    }

    fn in_disk_rec(&self, node: u32, q: Point, r: f64, visit: &mut dyn FnMut(usize, f64)) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) > r {
            unn_observe::kd_node_pruned();
            return;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            for i in n.start..n.end {
                let d = self.pts[i as usize].dist(q);
                if d <= r {
                    unn_observe::ball_point();
                    visit(self.ids[i as usize] as usize, d);
                }
            }
            return;
        }
        self.in_disk_rec(n.left, q, r, visit);
        self.in_disk_rec(n.right, q, r, visit);
    }

    /// [`KdTree::in_disk`] with an output budget: stops and returns `false`
    /// as soon as reporting one more point would exceed `cap`. Returns
    /// `true` when every point in the ball was visited.
    ///
    /// Callers use the budget to bound range-reporting cost when the ball
    /// could degenerate to a large fraction of the tree (the partial visits
    /// of an aborted call must be discarded).
    pub fn in_disk_capped(
        &self,
        q: Point,
        r: f64,
        cap: usize,
        visit: &mut dyn FnMut(usize, f64),
    ) -> bool {
        if self.is_empty() || r < 0.0 {
            return true;
        }
        let mut budget = cap;
        self.in_disk_capped_rec(0, q, r, &mut budget, visit)
    }

    fn in_disk_capped_rec(
        &self,
        node: u32,
        q: Point,
        r: f64,
        budget: &mut usize,
        visit: &mut dyn FnMut(usize, f64),
    ) -> bool {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) > r {
            unn_observe::kd_node_pruned();
            return true;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            for i in n.start..n.end {
                let d = self.pts[i as usize].dist(q);
                if d <= r {
                    if *budget == 0 {
                        return false;
                    }
                    *budget -= 1;
                    unn_observe::ball_point();
                    visit(self.ids[i as usize] as usize, d);
                }
            }
            return true;
        }
        self.in_disk_capped_rec(n.left, q, r, budget, visit)
            && self.in_disk_capped_rec(n.right, q, r, budget, visit)
    }

    /// Minimizes `eval(id)` over all points, where `eval(id)` must satisfy
    /// `eval(id) >= d(q, p_id) + min_aux_bound` with `min_aux_bound` the
    /// node's minimum auxiliary (pass `eval = d(q,·) + aux` for the
    /// additively-weighted nearest neighbor `Δ(q) = min_i d(q,c_i) + r_i`,
    /// or any more expensive exact evaluation such as a farthest-point
    /// distance with `aux = 0`).
    ///
    /// Pruning bound per subtree: `bbox.min_dist(q) + min_aux`.
    pub fn min_adjusted(&self, q: Point, eval: &dyn Fn(usize) -> f64) -> Option<(usize, f64)> {
        self.min_adjusted_from(q, f64::INFINITY, eval)
    }

    /// [`KdTree::min_adjusted`] seeded with an incumbent value `init`:
    /// subtrees whose bound cannot *strictly* beat `init` are pruned before
    /// the walk begins, and only a strictly better minimum is returned
    /// (`None` if nothing beats the incumbent, or the tree is empty).
    ///
    /// Threading the running minimum through a sequence of trees —
    /// `init = +∞`, then each call's result (when `Some`) — computes the
    /// global minimum over all of them with exactly the same value as
    /// independent searches folded by `min`; that is how the dynamic engine
    /// shares one Δ(q) bound across blocks.
    pub fn min_adjusted_from(
        &self,
        q: Point,
        init: f64,
        eval: &dyn Fn(usize) -> f64,
    ) -> Option<(usize, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut best: (usize, f64) = (usize::MAX, init);
        self.min_adjusted_rec(0, q, eval, &mut best);
        (best.0 != usize::MAX).then_some(best)
    }

    fn min_adjusted_rec(
        &self,
        node: u32,
        q: Point,
        eval: &dyn Fn(usize) -> f64,
        best: &mut (usize, f64),
    ) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) + n.min_aux >= best.1 {
            unn_observe::kd_node_pruned();
            return;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            for i in n.start..n.end {
                let id = self.ids[i as usize] as usize;
                let v = eval(id);
                if v < best.1 {
                    *best = (id, v);
                }
            }
            return;
        }
        let (l, r) = (n.left, n.right);
        let bl = self.nodes[l as usize].bbox.min_dist(q) + self.nodes[l as usize].min_aux;
        let br = self.nodes[r as usize].bbox.min_dist(q) + self.nodes[r as usize].min_aux;
        if bl <= br {
            self.min_adjusted_rec(l, q, eval, best);
            self.min_adjusted_rec(r, q, eval, best);
        } else {
            self.min_adjusted_rec(r, q, eval, best);
            self.min_adjusted_rec(l, q, eval, best);
        }
    }

    /// Best-first fold over the tree under a caller-maintained shrinking
    /// cap: every point in a subtree with `bbox.min_dist(q) < cap` is handed
    /// to `visit`, which returns the (possibly tightened) cap for the rest
    /// of the walk; subtrees whose bound reaches the current cap are cut.
    /// Returns the final cap.
    ///
    /// Exactness contract (what makes the pruned fold equal the full scan):
    /// the caller's fold must be monotone (`visit` never *raises* the cap)
    /// and insensitive to skipped points — any point whose folded statistic
    /// is `>= cap` at the moment it would be visited must leave the fold's
    /// observable outputs unchanged, with the statistic bounded below by
    /// `d(q, p_id)`. [`DeltaCompose`](../unn_nonzero) under
    /// `prune_bound` satisfies both: its caps only depend on the minimum and
    /// second-minimum, and a Δ at or above the running second-minimum
    /// changes neither.
    pub fn prune_with_cap(&self, q: Point, cap: f64, visit: &mut dyn FnMut(usize) -> f64) -> f64 {
        if self.is_empty() {
            return cap;
        }
        let mut cap = cap;
        self.prune_with_cap_rec(0, q, &mut cap, visit);
        cap
    }

    fn prune_with_cap_rec(
        &self,
        node: u32,
        q: Point,
        cap: &mut f64,
        visit: &mut dyn FnMut(usize) -> f64,
    ) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) >= *cap {
            unn_observe::kd_node_pruned();
            return;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            for i in n.start..n.end {
                *cap = visit(self.ids[i as usize] as usize);
            }
            return;
        }
        let (l, r) = (n.left, n.right);
        let dl = self.nodes[l as usize].bbox.min_dist2(q);
        let dr = self.nodes[r as usize].bbox.min_dist2(q);
        if dl <= dr {
            self.prune_with_cap_rec(l, q, cap, visit);
            self.prune_with_cap_rec(r, q, cap, visit);
        } else {
            self.prune_with_cap_rec(r, q, cap, visit);
            self.prune_with_cap_rec(l, q, cap, visit);
        }
    }

    /// Distance from `q` to the root bounding box (`+∞` for an empty tree):
    /// a lower bound on `d(q, p)` for every stored point, hence on any
    /// evaluation family with non-negative offsets. Callers use it to order
    /// whole trees best-first and to skip trees that cannot beat a running
    /// cap without touching a single node.
    pub fn root_min_dist(&self, q: Point) -> f64 {
        self.nodes
            .first()
            .map_or(f64::INFINITY, |n| n.bbox.min_dist(q))
    }

    /// `root_min_dist(q) + min_aux`: the [`KdTree::min_adjusted`] pruning
    /// bound of the whole tree (`+∞` when empty) — a lower bound on the
    /// tree's `min_adjusted` result under the same evaluation contract.
    pub fn root_lower_bound(&self, q: Point) -> f64 {
        self.nodes
            .first()
            .map_or(f64::INFINITY, |n| n.bbox.min_dist(q) + n.min_aux)
    }

    /// Reports every `id` with `eval(id) < t`, where
    /// `eval(id) >= d(q, p_id) - aux_id` (pass `eval = δ_i` with
    /// `aux = r_i` for disks, or `aux` = object extent for discrete points).
    ///
    /// Pruning bound per subtree: `bbox.min_dist(q) - max_aux`.
    pub fn report_adjusted_below(
        &self,
        q: Point,
        t: f64,
        eval: &dyn Fn(usize) -> f64,
        visit: &mut dyn FnMut(usize, f64),
    ) {
        if self.is_empty() {
            return;
        }
        self.report_rec(0, q, t, eval, visit);
    }

    fn report_rec(
        &self,
        node: u32,
        q: Point,
        t: f64,
        eval: &dyn Fn(usize) -> f64,
        visit: &mut dyn FnMut(usize, f64),
    ) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist(q) - n.max_aux >= t {
            unn_observe::kd_node_pruned();
            return;
        }
        unn_observe::kd_node_visited();
        if n.is_leaf() {
            for i in n.start..n.end {
                let id = self.ids[i as usize] as usize;
                let v = eval(id);
                if v < t {
                    visit(id, v);
                }
            }
            return;
        }
        self.report_rec(n.left, q, t, eval, visit);
        self.report_rec(n.right, q, t, eval, visit);
    }
}

#[inline]
pub(crate) fn heap_push(heap: &mut Vec<Neighbor>, m: usize, nb: Neighbor) {
    // Max-heap on dist, capped at m entries.
    heap.push(nb);
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if heap[parent].dist < heap[i].dist {
            heap.swap(parent, i);
            i = parent;
        } else {
            break;
        }
    }
    if heap.len() > m {
        // Pop the max (root).
        let last = heap.len() - 1;
        heap.swap(0, last);
        heap.pop();
        // Sift down.
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < heap.len() && heap[l].dist > heap[largest].dist {
                largest = l;
            }
            if r < heap.len() && heap[r].dist > heap[largest].dist {
                largest = r;
            }
            if largest == i {
                break;
            }
            heap.swap(i, largest);
            i = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::new(
                    rng.random_range(-100.0..100.0),
                    rng.random_range(-100.0..100.0),
                )
            })
            .collect()
    }

    fn brute_nearest(pts: &[Point], q: Point) -> Neighbor {
        let mut best = Neighbor {
            id: usize::MAX,
            dist: f64::INFINITY,
        };
        for (i, p) in pts.iter().enumerate() {
            let d = p.dist(q);
            if d < best.dist {
                best = Neighbor { id: i, dist: d };
            }
        }
        best
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(500, 1);
        let tree = KdTree::new(&pts);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..200 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            let got = tree.nearest(q).unwrap();
            let want = brute_nearest(&pts, q);
            assert_eq!(got.id, want.id, "q = {q:?}");
        }
    }

    #[test]
    fn m_nearest_matches_sorted_brute_force() {
        let pts = random_points(300, 3);
        let tree = KdTree::new(&pts);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..50 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            for m in [1, 5, 17, 300, 400] {
                let got = tree.m_nearest(q, m);
                let mut want: Vec<(usize, f64)> = pts
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, p.dist(q)))
                    .collect();
                want.sort_by(|a, b| a.1.total_cmp(&b.1));
                want.truncate(m);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert!((g.dist - w.1).abs() < 1e-12, "m={m}");
                }
            }
        }
    }

    #[test]
    fn in_disk_matches_brute_force() {
        let pts = random_points(400, 5);
        let tree = KdTree::new(&pts);
        let q = Point::new(10.0, -20.0);
        for r in [0.0, 5.0, 30.0, 300.0] {
            let mut got: Vec<usize> = Vec::new();
            tree.in_disk(q, r, &mut |id, _| got.push(id));
            got.sort_unstable();
            let want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.dist(q) <= r)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want, "r = {r}");
        }
    }

    #[test]
    fn in_disk_capped_honors_budget() {
        let pts = random_points(400, 5);
        let tree = KdTree::new(&pts);
        let q = Point::new(10.0, -20.0);
        let r = 60.0;
        let full: usize = pts.iter().filter(|p| p.dist(q) <= r).count();
        assert!(full > 10, "workload too sparse for the test");
        // Generous budget: visits everything, returns true.
        let mut got: Vec<usize> = Vec::new();
        assert!(tree.in_disk_capped(q, r, full, &mut |id, _| got.push(id)));
        got.sort_unstable();
        let mut want: Vec<usize> = (0..pts.len()).filter(|&i| pts[i].dist(q) <= r).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        // Tight budget: aborts, never visiting more than the cap.
        let mut count = 0usize;
        assert!(!tree.in_disk_capped(q, r, full - 1, &mut |_, _| count += 1));
        assert!(count < full);
    }

    #[test]
    fn weighted_min_matches_brute_force() {
        // Additively weighted NN: Delta(q) = min d(q,c_i) + r_i.
        let pts = random_points(300, 6);
        let mut rng = SmallRng::seed_from_u64(7);
        let radii: Vec<f64> = (0..pts.len())
            .map(|_| rng.random_range(0.1..20.0))
            .collect();
        let tree = KdTree::with_aux(&pts, &radii);
        for _ in 0..100 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            let (id, v) = tree
                .min_adjusted(q, &|i| pts[i].dist(q) + radii[i])
                .unwrap();
            let (bid, bv) = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (i, p.dist(q) + radii[i]))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            assert_eq!(id, bid);
            assert!((v - bv).abs() < 1e-12);
        }
    }

    #[test]
    fn report_below_matches_brute_force() {
        // Stage 2 of NN!=0: report i with max(d - r, 0) < t.
        let pts = random_points(300, 8);
        let mut rng = SmallRng::seed_from_u64(9);
        let radii: Vec<f64> = (0..pts.len())
            .map(|_| rng.random_range(0.1..20.0))
            .collect();
        let tree = KdTree::with_aux(&pts, &radii);
        for _ in 0..50 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            let t = rng.random_range(1.0..60.0);
            let delta = |i: usize| (pts[i].dist(q) - radii[i]).max(0.0);
            let mut got: Vec<usize> = Vec::new();
            tree.report_adjusted_below(q, t, &delta, &mut |id, _| got.push(id));
            got.sort_unstable();
            let want: Vec<usize> = (0..pts.len()).filter(|&i| delta(i) < t).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn prune_with_cap_min2_matches_full_scan() {
        // A (min, second-min) fold over d(q, p) where the cap is the running
        // second minimum — the monotone/insensitive shape the dynamic
        // engine's DeltaCompose fold has. The pruned walk must land on the
        // exact same pair as the full scan.
        let pts = random_points(400, 13);
        let tree = KdTree::new(&pts);
        let mut rng = SmallRng::seed_from_u64(14);
        for _ in 0..100 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            let (mut lo, mut second) = (f64::INFINITY, f64::INFINITY);
            tree.prune_with_cap(q, f64::INFINITY, &mut |id| {
                let d = pts[id].dist(q);
                if d < lo {
                    second = lo;
                    lo = d;
                } else if d < second {
                    second = d;
                }
                second
            });
            let mut dists: Vec<f64> = pts.iter().map(|p| p.dist(q)).collect();
            dists.sort_by(f64::total_cmp);
            assert_eq!(lo, dists[0], "min diverged at {q:?}");
            assert_eq!(second, dists[1], "second-min diverged at {q:?}");
        }
    }

    #[test]
    fn min_adjusted_from_threads_incumbent_across_trees() {
        let pts = random_points(300, 15);
        let mut rng = SmallRng::seed_from_u64(16);
        let radii: Vec<f64> = (0..pts.len())
            .map(|_| rng.random_range(0.1..20.0))
            .collect();
        // Split into uneven chunks, one tree per chunk; threading the
        // incumbent through them must recover the exact global minimum.
        let cuts = [0usize, 7, 120, 121, 300];
        let trees: Vec<(usize, KdTree)> = cuts
            .windows(2)
            .map(|w| (w[0], KdTree::with_aux(&pts[w[0]..w[1]], &radii[w[0]..w[1]])))
            .collect();
        for _ in 0..60 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            let mut incumbent = f64::INFINITY;
            for (off, tree) in &trees {
                if let Some((_, v)) =
                    tree.min_adjusted_from(q, incumbent, &|i| pts[off + i].dist(q) + radii[off + i])
                {
                    incumbent = v;
                }
            }
            let want = pts
                .iter()
                .zip(&radii)
                .map(|(p, r)| p.dist(q) + r)
                .fold(f64::INFINITY, f64::min);
            assert_eq!(incumbent, want, "threaded minimum diverged at {q:?}");
        }
        // An incumbent at (or below) the tree minimum yields None.
        let q = Point::ORIGIN;
        let tree = KdTree::with_aux(&pts, &radii);
        let (_, v) = tree
            .min_adjusted(q, &|i| pts[i].dist(q) + radii[i])
            .unwrap();
        assert!(tree
            .min_adjusted_from(q, v, &|i| pts[i].dist(q) + radii[i])
            .is_none());
    }

    #[test]
    fn root_bounds_bound_every_result() {
        let pts = random_points(200, 17);
        let mut rng = SmallRng::seed_from_u64(18);
        let radii: Vec<f64> = (0..pts.len()).map(|_| rng.random_range(0.0..5.0)).collect();
        let tree = KdTree::with_aux(&pts, &radii);
        for _ in 0..50 {
            let q = Point::new(
                rng.random_range(-150.0..150.0),
                rng.random_range(-150.0..150.0),
            );
            let nn = tree.nearest(q).unwrap();
            assert!(tree.root_min_dist(q) <= nn.dist);
            let (_, v) = tree
                .min_adjusted(q, &|i| pts[i].dist(q) + radii[i])
                .unwrap();
            assert!(tree.root_lower_bound(q) <= v);
        }
        let empty = KdTree::new(&[]);
        assert!(empty.root_min_dist(Point::ORIGIN).is_infinite());
        assert!(empty.root_lower_bound(Point::ORIGIN).is_infinite());
        assert_eq!(
            empty.prune_with_cap(Point::ORIGIN, 3.0, &mut |_| unreachable!()),
            3.0
        );
    }

    #[test]
    fn with_aux_bounds_serves_asymmetric_offsets() {
        // lo feeds min_adjusted pruning, hi feeds report_adjusted_below:
        // the same tree answers both families exactly even when they differ.
        let pts = random_points(250, 19);
        let mut rng = SmallRng::seed_from_u64(20);
        let lo: Vec<f64> = (0..pts.len()).map(|_| rng.random_range(0.0..3.0)).collect();
        let hi: Vec<f64> = (0..pts.len())
            .map(|_| rng.random_range(5.0..15.0))
            .collect();
        let tree = KdTree::with_aux_bounds(&pts, &lo, &hi);
        for _ in 0..40 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            let (id, v) = tree.min_adjusted(q, &|i| pts[i].dist(q) + lo[i]).unwrap();
            let (bid, bv) = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (i, p.dist(q) + lo[i]))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            assert_eq!(id, bid);
            assert_eq!(v, bv);
            let t = rng.random_range(1.0..40.0);
            let delta = |i: usize| (pts[i].dist(q) - hi[i]).max(0.0);
            let mut got: Vec<usize> = Vec::new();
            tree.report_adjusted_below(q, t, &delta, &mut |i, _| got.push(i));
            got.sort_unstable();
            let want: Vec<usize> = (0..pts.len()).filter(|&i| delta(i) < t).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn nearest_within_matches_unseeded() {
        let pts = random_points(500, 10);
        let tree = KdTree::new(&pts);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..200 {
            let q = Point::new(
                rng.random_range(-120.0..120.0),
                rng.random_range(-120.0..120.0),
            );
            let want = tree.nearest(q).unwrap();
            // Any valid seed (>= true NN distance) gives the identical answer.
            for seed in [want.dist, want.dist * 1.5, want.dist + 10.0, f64::INFINITY] {
                let got = tree.nearest_within(q, seed).unwrap();
                assert_eq!(got.id, want.id, "seed = {seed}");
                assert_eq!(got.dist, want.dist);
            }
            // A seed strictly below the NN distance finds nothing.
            if want.dist > 0.0 {
                assert!(tree.nearest_within(q, want.dist * 0.999999).is_none());
            }
        }
    }

    #[test]
    fn m_nearest_into_reuses_buffer() {
        let pts = random_points(200, 12);
        let tree = KdTree::new(&pts);
        let mut buf = vec![Neighbor { id: 7, dist: -1.0 }; 3];
        let q = Point::new(3.0, -4.0);
        tree.m_nearest_into(q, 5, &mut buf);
        assert_eq!(buf, tree.m_nearest(q, 5));
        tree.m_nearest_into(q, 0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn empty_and_tiny_trees() {
        let empty = KdTree::new(&[]);
        assert!(empty.nearest(Point::ORIGIN).is_none());
        assert!(empty.m_nearest(Point::ORIGIN, 3).is_empty());
        assert!(empty
            .min_adjusted(Point::ORIGIN, &|_| unreachable!())
            .is_none());

        let one = KdTree::new(&[Point::new(1.0, 1.0)]);
        let nb = one.nearest(Point::ORIGIN).unwrap();
        assert_eq!(nb.id, 0);
        assert!((nb.dist - 2.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn duplicate_points_all_reported() {
        let pts = vec![Point::new(1.0, 1.0); 20];
        let tree = KdTree::new(&pts);
        let mut got = Vec::new();
        tree.in_disk(Point::ORIGIN, 2.0, &mut |id, _| got.push(id));
        assert_eq!(got.len(), 20);
        let m = tree.m_nearest(Point::ORIGIN, 7);
        assert_eq!(m.len(), 7);
    }

    proptest! {
        #[test]
        fn prop_nearest_agrees(
            pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..80),
            qx in -60.0f64..60.0, qy in -60.0f64..60.0,
        ) {
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let tree = KdTree::new(&pts);
            let q = Point::new(qx, qy);
            let got = tree.nearest(q).unwrap();
            let want = brute_nearest(&pts, q);
            prop_assert!((got.dist - want.dist).abs() < 1e-12);
        }

        #[test]
        fn prop_nearest_within_valid_seed_agrees(
            pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..80),
            qx in -60.0f64..60.0, qy in -60.0f64..60.0,
            slack in 0.0f64..30.0,
        ) {
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let tree = KdTree::new(&pts);
            let q = Point::new(qx, qy);
            let want = brute_nearest(&pts, q);
            // Valid seeds: exactly the NN distance (Δ(q)-style tight bound),
            // any slack above it, and +∞ (the unseeded search).
            for seed in [want.dist, want.dist + slack, f64::INFINITY] {
                let got = tree.nearest_within(q, seed).unwrap();
                prop_assert_eq!(got.dist, pts[got.id].dist(q));
                prop_assert!((got.dist - want.dist).abs() < 1e-12);
            }
        }

        #[test]
        fn prop_m_nearest_is_prefix_of_sort(
            pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..60),
            qx in -60.0f64..60.0, qy in -60.0f64..60.0,
            m in 1usize..70,
        ) {
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let tree = KdTree::new(&pts);
            let q = Point::new(qx, qy);
            let got = tree.m_nearest(q, m);
            prop_assert_eq!(got.len(), m.min(pts.len()));
            // Sorted and matching the true distance multiset prefix.
            let mut dists: Vec<f64> = pts.iter().map(|p| p.dist(q)).collect();
            dists.sort_by(f64::total_cmp);
            for (g, &w) in got.iter().zip(dists.iter()) {
                prop_assert!((g.dist - w).abs() < 1e-12);
            }
        }
    }
}
