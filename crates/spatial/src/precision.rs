//! The f32 filter tier: widened-threshold admission bounds and the
//! [`FilterPrecision`] knob (DESIGN.md §8 states the full contract).
//!
//! # What the filter is
//!
//! The batched leaf scans ([`crate::scan`]) spend most of their time in the
//! distance-fill phase. With [`FilterPrecision::F32Refined`] the fill runs
//! over f32 shadow arenas — half the bandwidth, twice the effective SIMD
//! lane width — and gates slots against a **conservatively widened**
//! threshold. Every admitted slot is then re-evaluated with the exact f64
//! operation sequence of `Point::dist` before the visit pass, so the set of
//! `(slot, distance)` pairs a consumer observes is bit-identical to the
//! pure-f64 kernel: the f32 numbers only ever *reject*, never *answer*.
//!
//! # Widening-bound derivation
//!
//! Let `S` be the largest coordinate magnitude among the stored points and
//! the query, `ε = f32::EPSILON` (2⁻²³), and `d` the exact f64 distance of
//! a slot. The f32 pipeline computes
//! `d32 = fl32(sqrt(fl32(dx² + dy²)))` from `dx = fl32(x) − fl32(qx)` etc.
//! Each coordinate cast loses at most `ε·S` (plus a sub-denormal absolute
//! term), so `|dx32 − dx| ≤ ε·|dx| + 2·ε·S ≤ 4·ε·S` with `|dx| ≤ 2S`; the
//! hypot of two such perturbations moves the root by at most `√2·4·ε·S`.
//! The four f32 roundings (two squares, the add, the sqrt — the sqrt one
//! halved) contribute a relative factor below `(1+ε)⁴`.
//! Squares of sub-`2⁻75` components underflow gradually and can shift the
//! root by up to `≈2⁻⁷⁴`. Folding generous safety factors over each term:
//!
//! ```text
//! |d32 − d| ≤ d·REL + ABS(S) + TINY
//!   REL    = 8ε           (covers the ≤4 roundings with 2× margin)
//!   ABS(S) = 8·ε·S        (covers the √2·4·ε·S cast/cancel term)
//!   TINY   = 1e-20        (covers the 2⁻⁷⁴ ≈ 5.3e-23 underflow term)
//! ```
//!
//! which inverts to the three bounds below (each padded by a `1e-12`
//! relative slop absorbing the f64 arithmetic evaluating the bound itself).
//! The implication the scan kernel relies on is one-sided:
//! `d ≤ t  ⇒  d32 ≤ f32_widened_threshold(t, S)` — a slot whose f32
//! distance exceeds the widened threshold provably fails the exact gate and
//! can be rejected without ever touching the f64 arenas.
//!
//! # Scale guard
//!
//! The bound is only meaningful while the f32 pipeline cannot overflow:
//! with every coordinate `≤ F32_SAFE_SCALE = 1e18` in magnitude,
//! `dx² + dy² ≤ 8e36 < f32::MAX`. Queries against trees (or from query
//! points) beyond that scale fall back to the exact f64 fill per query —
//! the `1e308` adversarial corpus exercises exactly this path. Non-finite
//! inputs (`NaN` coordinates, infinite thresholds) degrade the bounds to
//! `[0, +∞)` and the kernel's NaN-admitting compare routes such slots to
//! the exact re-check, which disposes of them identically to the f64 path.

/// Which precision the batched distance-fill phase runs in.
///
/// Both settings return **bit-identical results** for every query family —
/// `F32Refined` is a pure performance knob (see the widening-bound contract
/// in the module docs); `tests/precision_refinement.rs` enforces the
/// equivalence on every testkit corpus.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FilterPrecision {
    /// Exact f64 distance fill — the historical kernel, and the
    /// differential oracle for `F32Refined`.
    #[default]
    F64,
    /// f32 shadow-arena fill gated by [`f32_widened_threshold`]; admitted
    /// slots are recomputed with the exact f64 operation sequence before
    /// the visit pass.
    F32Refined,
}

/// Largest coordinate magnitude (points **and** query) under which the f32
/// fill pipeline is overflow-free and the widening bound applies; beyond
/// it, `F32Refined` queries silently fall back to the exact f64 fill.
pub const F32_SAFE_SCALE: f64 = 1e18;

/// `f32::EPSILON` as f64 — the ulp unit of the filter arithmetic.
const EPS32: f64 = f32::EPSILON as f64;

/// Relative error budget of the f32 square/add/sqrt sequence.
const REL: f64 = 8.0 * EPS32;

/// Absolute underflow budget: gradual-underflow loss in sub-denormal
/// squares moves the root by at most ≈2⁻⁷⁴; 1e-20 covers it 400×.
const TINY: f64 = 1e-20;

/// Relative slop absorbing the f64 rounding of the bound evaluation.
const SLOP: f64 = 1e-12;

/// Scale-proportional absolute budget of the f64→f32 coordinate casts.
#[inline]
fn abs_term(scale: f64) -> f64 {
    8.0 * EPS32 * scale
}

/// The admission threshold the f32 fill phase gates against: the smallest
/// `w` (up to the safety factors above) such that every slot with exact
/// distance `d ≤ t` satisfies `d32 ≤ w` when all coordinates are bounded
/// by `scale ≤ F32_SAFE_SCALE`. Monotone in `t`; `+∞` for non-finite `t`.
#[inline]
pub fn f32_widened_threshold(t: f64, scale: f64) -> f64 {
    // `t.is_nan() || t == INF` spelled as one NaN-catching compare.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(t < f64::INFINITY) {
        // +∞ or NaN: admit everything (the exact re-check decides).
        return f64::INFINITY;
    }
    ((t + abs_term(scale)) * (1.0 + REL) + TINY) * (1.0 + SLOP)
}

/// Upper bound on the exact f64 distance of a slot whose f32 fill produced
/// `d32`, valid whenever every coordinate magnitude is at most `scale` and
/// `scale ≤ F32_SAFE_SCALE`. Non-finite `d32` (overflow, NaN poison)
/// degrades to `+∞`.
#[inline]
pub fn f32_upper_bound(d32: f64, scale: f64) -> f64 {
    if !d32.is_finite() {
        return f64::INFINITY;
    }
    ((d32 + TINY) / (1.0 - REL) + abs_term(scale)) * (1.0 + SLOP)
}

/// Lower bound on the exact f64 distance of a slot whose f32 fill produced
/// `d32` (same validity domain as [`f32_upper_bound`]); clamped at 0.
#[inline]
pub fn f32_lower_bound(d32: f64, scale: f64) -> f64 {
    if !d32.is_finite() {
        return 0.0;
    }
    (((d32 - TINY) / (1.0 + REL) - abs_term(scale)) * (1.0 - SLOP)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact f64 distance operation sequence (`Point::dist`).
    fn dist64(x: f64, y: f64, qx: f64, qy: f64) -> f64 {
        let dx = x - qx;
        let dy = y - qy;
        (dx * dx + dy * dy).sqrt()
    }

    /// The f32 filter pipeline: cast, subtract, square-sum, sqrt — the
    /// exact operation sequence of the kernel's fill phase.
    fn dist32(x: f64, y: f64, qx: f64, qy: f64) -> f64 {
        let dx = x as f32 - qx as f32;
        let dy = y as f32 - qy as f32;
        f64::from((dx * dx + dy * dy).sqrt())
    }

    /// Deterministic jitter in `[-1, 1]` without pulling in an RNG.
    fn jitter(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    /// Exhaustive magnitude sweep (satellite: denormal → 1e308): at every
    /// scale the ulp bounds must bracket the exact distance, and —
    /// the property the kernel's admission gate relies on — the f32
    /// distance must pass the widened threshold whenever the exact
    /// distance passes the unwidened one.
    #[test]
    fn bounds_bracket_exact_distance_across_all_magnitudes() {
        let mut state = 0x5eed_f00d_u64;
        let mut checked = 0u64;
        for exp in (-320..=308).step_by(4) {
            let mag = 10f64.powi(exp);
            if mag == 0.0 || !mag.is_finite() {
                continue;
            }
            for trial in 0..24 {
                // Mix of same-magnitude, near-coincident, and axis cases;
                // clamped so the coordinates themselves stay finite f64
                // (at 1e308 the jittered products can overflow f64).
                let fin = |v: f64| v.clamp(-f64::MAX, f64::MAX);
                let x = fin(mag * (1.0 + jitter(&mut state)));
                let y = fin(mag * jitter(&mut state));
                let (qx, qy) = match trial % 3 {
                    0 => (fin(mag * jitter(&mut state)), fin(mag * jitter(&mut state))),
                    1 => (fin(x * (1.0 + 1e-9 * jitter(&mut state))), y), // near-cancel
                    _ => (0.0, 0.0),
                };
                let scale = x.abs().max(y.abs()).max(qx.abs()).max(qy.abs());
                let exact = dist64(x, y, qx, qy);
                let d32 = dist32(x, y, qx, qy);
                let lo = f32_lower_bound(d32, scale);
                let hi = f32_upper_bound(d32, scale);
                assert!(
                    lo <= exact && exact <= hi,
                    "bounds fail at mag=1e{exp}: d32={d32:e} exact={exact:e} lo={lo:e} hi={hi:e}"
                );
                if scale <= F32_SAFE_SCALE {
                    // Gate soundness: exact <= t must imply d32 <= widened(t)
                    // for every threshold t >= exact; t = exact is tightest.
                    let w = f32_widened_threshold(exact, scale);
                    assert!(
                        d32 <= w,
                        "gate unsound at mag=1e{exp}: d32={d32:e} > widened({exact:e})={w:e}"
                    );
                }
                checked += 1;
            }
        }
        assert!(checked > 3000, "sweep degenerated: {checked} cases");
    }

    #[test]
    fn widened_threshold_is_monotone_and_strictly_wider() {
        for scale in [1e-300, 1e-20, 1.0, 1e6, 1e18] {
            let mut prev = f64::NEG_INFINITY;
            for t in [0.0, 1e-30, 1e-10, 0.5, 1.0, 1e6, 1e17] {
                let w = f32_widened_threshold(t, scale);
                assert!(w > t, "widened({t:e}, {scale:e}) = {w:e} not wider");
                assert!(w >= prev, "non-monotone at t={t:e}, scale={scale:e}");
                prev = w;
            }
        }
        assert_eq!(f32_widened_threshold(f64::INFINITY, 1.0), f64::INFINITY);
        assert_eq!(f32_widened_threshold(f64::NAN, 1.0), f64::INFINITY);
    }

    #[test]
    fn non_finite_fill_degrades_to_full_interval() {
        for bad in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            assert_eq!(f32_lower_bound(bad, 1.0), 0.0);
            assert_eq!(f32_upper_bound(bad, 1.0), f64::INFINITY);
        }
    }

    #[test]
    fn bounds_are_ordered_and_nonnegative() {
        for scale in [1e-10, 1.0, 1e18] {
            for d32 in [0.0, 1e-25, 1e-3, 1.0, 1e12] {
                let (lo, hi) = (f32_lower_bound(d32, scale), f32_upper_bound(d32, scale));
                assert!(0.0 <= lo && lo <= hi, "d32={d32:e} scale={scale:e}");
            }
        }
    }
}
