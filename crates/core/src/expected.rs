//! Expected-distance nearest neighbors — the companion "part I" criterion.
//!
//! The PODS 2012 paper `[AESZ12]` (whose journal version is "Nearest-Neighbor
//! Searching Under Uncertainty I") ranks uncertain points by the *expected
//! distance* `E[d(q, P_i)]` instead of the quantification probability. The
//! present paper discusses it in §1.2 as the easier but less informative
//! criterion; it is implemented here as the natural baseline.
//!
//! Queries run branch-and-bound over a kd-tree of the means: by Jensen's
//! inequality `E[d(q, P)] ≥ d(q, E[P])`, so the tree's box-distance lower
//! bounds are valid and most expected-distance evaluations are pruned.

use unn_distr::{Uncertain, UncertainPoint};
use unn_geom::Point;
use unn_spatial::KdTree;

/// Index answering expected-distance NN queries over uncertain points.
pub struct ExpectedNnIndex {
    points: Vec<Uncertain>,
    tree: KdTree,
}

impl ExpectedNnIndex {
    /// Builds the index (stores means in a kd-tree).
    pub fn build(points: &[Uncertain]) -> Self {
        let means: Vec<Point> = points.iter().map(|p| p.mean()).collect();
        ExpectedNnIndex {
            points: points.to_vec(),
            tree: KdTree::new(&means),
        }
    }

    /// Number of uncertain points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed uncertain points.
    pub fn points(&self) -> &[Uncertain] {
        &self.points
    }

    /// The uncertain point minimizing `E[d(q, P_i)]`, with its expected
    /// distance.
    pub fn expected_nn(&self, q: Point) -> Option<(usize, f64)> {
        let pts = &self.points;
        self.tree.min_adjusted(q, &|i| pts[i].expected_dist(q))
    }

    /// The `k` uncertain points with smallest expected distance, sorted
    /// ascending (the straightforward expected-distance ranking of §1.2).
    pub fn expected_knn(&self, q: Point, k: usize) -> Vec<(usize, f64)> {
        let k = k.min(self.points.len());
        if k == 0 {
            return Vec::new();
        }
        // Evaluate lazily: candidates ordered by the Jensen lower bound
        // d(q, mean); stop once k evaluated values beat all remaining
        // lower bounds.
        let mut cands: Vec<(usize, f64)> = self
            .tree
            .m_nearest(q, self.points.len())
            .into_iter()
            .map(|nb| (nb.id, nb.dist)) // (id, lower bound)
            .collect();
        // m_nearest returns sorted by the lower bound.
        let mut evaluated: Vec<(usize, f64)> = Vec::new();
        for (idx, lb) in cands.drain(..) {
            if evaluated.len() >= k {
                let worst = evaluated[k - 1].1;
                if lb >= worst {
                    break;
                }
            }
            let e = self.points[idx].expected_dist(q);
            evaluated.push((idx, e));
            evaluated.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        }
        evaluated.truncate(k);
        evaluated
    }

    /// Reference linear scan.
    pub fn expected_nn_naive(&self, q: Point) -> Option<(usize, f64)> {
        self.points
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.expected_dist(q)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};
    use unn_distr::DiscreteDistribution;

    fn random_points(n: usize, seed: u64) -> Vec<Uncertain> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = Point::new(rng.random_range(-30.0..30.0), rng.random_range(-30.0..30.0));
                match i % 3 {
                    0 => Uncertain::uniform_disk(c, rng.random_range(0.5..3.0)),
                    1 => Uncertain::Discrete(
                        DiscreteDistribution::uniform(
                            (0..4)
                                .map(|_| {
                                    Point::new(
                                        c.x + rng.random_range(-2.0..2.0),
                                        c.y + rng.random_range(-2.0..2.0),
                                    )
                                })
                                .collect(),
                        )
                        .unwrap(),
                    ),
                    _ => Uncertain::certain(c),
                }
            })
            .collect()
    }

    #[test]
    fn matches_naive() {
        let pts = random_points(40, 200);
        let idx = ExpectedNnIndex::build(&pts);
        let mut rng = SmallRng::seed_from_u64(201);
        for _ in 0..100 {
            let q = Point::new(rng.random_range(-40.0..40.0), rng.random_range(-40.0..40.0));
            let (gi, gd) = idx.expected_nn(q).unwrap();
            let (wi, wd) = idx.expected_nn_naive(q).unwrap();
            assert!((gd - wd).abs() < 1e-9, "q={q:?}: {gi}/{gd} vs {wi}/{wd}");
        }
    }

    #[test]
    fn knn_is_sorted_prefix() {
        let pts = random_points(30, 202);
        let idx = ExpectedNnIndex::build(&pts);
        let q = Point::new(5.0, -3.0);
        let knn = idx.expected_knn(q, 7);
        assert_eq!(knn.len(), 7);
        // Sorted.
        for w in knn.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // Matches full sort.
        let mut all: Vec<(usize, f64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.expected_dist(q)))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (g, w) in knn.iter().zip(&all) {
            assert!((g.1 - w.1).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_index() {
        let idx = ExpectedNnIndex::build(&[]);
        assert!(idx.expected_nn(Point::ORIGIN).is_none());
        assert!(idx.expected_knn(Point::ORIGIN, 3).is_empty());
    }
}
