//! The expected-distance Voronoi diagram (ε-EVD of the part-I paper
//! `[AESZ12]`).
//!
//! Partitions a query rectangle into regions by which uncertain point
//! minimizes `E[d(q, P_i)]`. Expected-distance bisectors are high-degree
//! curves with no tractable closed form, so — following the spirit of
//! `[AESZ12]`'s ε-approximation — the diagram is materialized as a *certified
//! quadtree*: a cell is a leaf once a single owner provably minimizes the
//! expected distance over the whole cell, or once the cell is smaller than
//! the resolution `eps` (an uncertain strip around the true bisectors).
//!
//! Certification uses the 1-Lipschitz property of `q ↦ E[d(q, P)]`
//! (distances to every instantiation move by at most `|q − q'|`): over a
//! cell with half-diagonal `h`, `E_i` lies within `E_i(center) ± h`, so
//! owner `i` is certain when `E_i(c) + h < E_j(c) − h` for every `j` with a
//! chance to win. Queries descend the quadtree in `O(depth)` and fall back
//! to exact branch-and-bound inside uncertain leaves.

use unn_distr::{Uncertain, UncertainPoint};
use unn_geom::{Aabb, Point};

use crate::expected::ExpectedNnIndex;

/// Max subdivision depth (safety valve on adversarial inputs).
const MAX_DEPTH: u32 = 24;

#[derive(Clone, Debug)]
enum EvdNode {
    /// Certified: `owner` minimizes the expected distance on the whole cell.
    Owned { owner: u32 },
    /// Below resolution: contains a true bisector; queries go exact.
    Uncertain,
    /// Children in quadrant order SW, SE, NW, NE.
    Internal { children: [u32; 4] },
}

/// A certified ε-approximation of the expected-distance Voronoi diagram.
///
/// ```
/// use unn::geom::{Aabb, Point};
/// use unn::{ExpectedVoronoi, Uncertain};
///
/// let points = vec![
///     Uncertain::uniform_disk(Point::new(-5.0, 0.0), 1.0),
///     Uncertain::uniform_disk(Point::new(5.0, 0.0), 1.0),
/// ];
/// let bbox = Aabb::new(Point::new(-10.0, -10.0), Point::new(10.0, 10.0));
/// let evd = ExpectedVoronoi::build(&points, bbox, 0.5);
/// assert_eq!(evd.query(Point::new(-4.0, 1.0)).0, 0);
/// assert!(evd.certified_fraction() > 0.8);
/// ```
pub struct ExpectedVoronoi {
    nodes: Vec<(Aabb, EvdNode)>,
    root_bbox: Aabb,
    exact: ExpectedNnIndex,
    /// Resolution: leaves smaller than this stop subdividing.
    eps: f64,
    certified_area: f64,
}

impl ExpectedVoronoi {
    /// Builds the diagram over `bbox` with resolution `eps`.
    pub fn build(points: &[Uncertain], bbox: Aabb, eps: f64) -> Self {
        assert!(eps > 0.0, "resolution must be positive");
        assert!(!points.is_empty(), "need at least one uncertain point");
        let exact = ExpectedNnIndex::build(points);
        let mut evd = ExpectedVoronoi {
            nodes: Vec::new(),
            root_bbox: bbox,
            exact,
            eps,
            certified_area: 0.0,
        };
        evd.subdivide(points, bbox, 0);
        evd
    }

    fn subdivide(&mut self, points: &[Uncertain], cell: Aabb, depth: u32) -> u32 {
        let c = cell.center();
        let h = 0.5 * cell.width().hypot(cell.height());
        // Exact expected distances are expensive (numeric integration for
        // continuous models), so shortlist with the cheap sandwich
        // `d(c, mean) <= E[d(c, P)] <= Δ(c)` first and integrate only the
        // contenders.
        let lb: Vec<f64> = points.iter().map(|p| c.dist(p.mean())).collect();
        let ub: Vec<f64> = points.iter().map(|p| p.max_dist(c)).collect();
        let best_ub = ub.iter().copied().fold(f64::INFINITY, f64::min);
        let mut best = (usize::MAX, f64::INFINITY);
        let mut second = f64::INFINITY;
        for (i, p) in points.iter().enumerate() {
            // Non-contenders: their lower bound already certifies they lose;
            // it also lower-bounds their exact value for the `second` slack.
            let e = if lb[i] <= best_ub {
                p.expected_dist(c)
            } else {
                lb[i]
            };
            if e < best.1 {
                second = best.1;
                best = (i, e);
            } else if e < second {
                second = e;
            }
        }
        let id = self.nodes.len() as u32;
        if best.1 + 2.0 * h < second || points.len() == 1 {
            self.nodes.push((
                cell,
                EvdNode::Owned {
                    owner: best.0 as u32,
                },
            ));
            self.certified_area += cell.width() * cell.height();
            return id;
        }
        if cell.width().max(cell.height()) <= self.eps || depth >= MAX_DEPTH {
            self.nodes.push((cell, EvdNode::Uncertain));
            return id;
        }
        self.nodes.push((cell, EvdNode::Uncertain)); // placeholder
        let quads = [
            Aabb::new(cell.min, c),
            Aabb::new(Point::new(c.x, cell.min.y), Point::new(cell.max.x, c.y)),
            Aabb::new(Point::new(cell.min.x, c.y), Point::new(c.x, cell.max.y)),
            Aabb::new(c, cell.max),
        ];
        let mut children = [0u32; 4];
        for (k, quad) in quads.into_iter().enumerate() {
            children[k] = self.subdivide(points, quad, depth + 1);
        }
        self.nodes[id as usize].1 = EvdNode::Internal { children };
        id
    }

    /// The expected-distance NN of `q`: quadtree descent, exact fallback
    /// inside uncertain leaves or outside the box.
    pub fn query(&self, q: Point) -> (usize, f64) {
        if self.root_bbox.contains(q) {
            let mut cur = 0u32;
            loop {
                let (bbox, node) = &self.nodes[cur as usize];
                match node {
                    EvdNode::Owned { owner } => {
                        let o = *owner as usize;
                        let e = self.exact_distance(o, q);
                        return (o, e);
                    }
                    EvdNode::Uncertain => break,
                    EvdNode::Internal { children } => {
                        let c = bbox.center();
                        let k = usize::from(q.x > c.x) + 2 * usize::from(q.y > c.y);
                        cur = children[k];
                    }
                }
            }
        }
        // The diagram is only built over a nonempty point set, so the exact
        // fallback always has an answer; degrade to an infinite distance on
        // index 0 in release rather than panic.
        self.exact.expected_nn(q).unwrap_or_else(|| {
            debug_assert!(false, "expected_nn on empty point set");
            (0, f64::INFINITY)
        })
    }

    fn exact_distance(&self, owner: usize, q: Point) -> f64 {
        // ExpectedNnIndex stores the points; re-evaluate the owner's
        // expected distance (cheap compared to a full argmin).
        self.exact.points()[owner].expected_dist(q)
    }

    /// Fraction of the box area whose owner is certified (the rest lies in
    /// the ε-strip around bisectors).
    pub fn certified_fraction(&self) -> f64 {
        self.certified_area / (self.root_bbox.width() * self.root_bbox.height())
    }

    /// Number of quadtree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    /// Discrete particle clouds: expected distance is a cheap exact sum, so
    /// the quadtree stress tests stay fast in debug builds.
    fn world(seed: u64, n: usize) -> Vec<Uncertain> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let c = Point::new(rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0));
                Uncertain::Discrete(
                    unn_distr::DiscreteDistribution::uniform(
                        (0..4)
                            .map(|_| {
                                Point::new(
                                    c.x + rng.random_range(-1.5..1.5),
                                    c.y + rng.random_range(-1.5..1.5),
                                )
                            })
                            .collect(),
                    )
                    .expect("valid"),
                )
            })
            .collect()
    }

    #[test]
    fn continuous_models_certify_too() {
        // A small all-disk instance exercises the integration path.
        let pts = vec![
            Uncertain::uniform_disk(Point::new(-8.0, 0.0), 1.5),
            Uncertain::uniform_disk(Point::new(8.0, 2.0), 1.0),
            Uncertain::uniform_disk(Point::new(0.0, -9.0), 2.0),
        ];
        let evd = ExpectedVoronoi::build(&pts, bbox(), 2.0);
        assert!(evd.certified_fraction() > 0.8);
        let exact = ExpectedNnIndex::build(&pts);
        for &(x, y) in &[(-8.0, 0.5), (7.0, 2.0), (0.0, -7.0), (0.0, 0.0)] {
            let q = Point::new(x, y);
            let (gi, gd) = evd.query(q);
            let (wi, wd) = exact.expected_nn(q).unwrap();
            assert!(gi == wi || (gd - wd).abs() < 1e-9);
        }
    }

    fn bbox() -> Aabb {
        Aabb::new(Point::new(-25.0, -25.0), Point::new(25.0, 25.0))
    }

    #[test]
    fn queries_match_exact_index() {
        let pts = world(1200, 12);
        let evd = ExpectedVoronoi::build(&pts, bbox(), 0.25);
        let exact = ExpectedNnIndex::build(&pts);
        let mut rng = SmallRng::seed_from_u64(1201);
        for _ in 0..500 {
            let q = Point::new(rng.random_range(-24.0..24.0), rng.random_range(-24.0..24.0));
            let (gi, gd) = evd.query(q);
            let (wi, wd) = exact.expected_nn(q).unwrap();
            // Same winner, or a tie within numerical noise.
            if gi != wi {
                assert!((gd - wd).abs() < 1e-9, "q={q:?}: {gi}/{gd} vs {wi}/{wd}");
            } else {
                assert!((gd - wd).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn most_area_is_certified() {
        let pts = world(1202, 8);
        let evd = ExpectedVoronoi::build(&pts, bbox(), 0.25);
        assert!(
            evd.certified_fraction() > 0.9,
            "only {:.1}% certified",
            evd.certified_fraction() * 100.0
        );
        // Finer resolution certifies more.
        let finer = ExpectedVoronoi::build(&pts, bbox(), 0.05);
        assert!(finer.certified_fraction() >= evd.certified_fraction());
    }

    #[test]
    fn single_point_is_trivially_certified() {
        let pts = vec![Uncertain::uniform_disk(Point::ORIGIN, 1.0)];
        let evd = ExpectedVoronoi::build(&pts, bbox(), 1.0);
        assert_eq!(evd.num_nodes(), 1);
        assert!((evd.certified_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(evd.query(Point::new(7.0, 3.0)).0, 0);
    }

    #[test]
    fn outside_box_falls_back() {
        let pts = world(1203, 5);
        let evd = ExpectedVoronoi::build(&pts, bbox(), 0.5);
        let exact = ExpectedNnIndex::build(&pts);
        let q = Point::new(500.0, -300.0);
        assert_eq!(evd.query(q).0, exact.expected_nn(q).unwrap().0);
    }
}
