//! Observability layer: per-query stats and batch pipeline metrics
//! (re-exporting and wiring up [`unn_observe`]).
//!
//! Every `*_observed` entry point wraps its plain counterpart with three
//! additions and no behavioral change:
//!
//! 1. the structure-level counters (kd nodes visited/pruned, ball hits,
//!    Δ-seed radius, checkpoint evaluations — live only under the `observe`
//!    feature, all-zero otherwise) are reset before and harvested after the
//!    query into a [`QueryStats`];
//! 2. the *result-derived* fields (rounds used vs available, certified
//!    accuracy, Exact/Degraded/Errored outcome) are filled from the return
//!    value — these are meaningful even without the `observe` feature;
//! 3. wall-clock is taken from a caller-injected [`Clock`] — inject
//!    [`NullClock`] and the timing fields are identically zero, which is how
//!    the determinism tests compare [`MetricsSnapshot`]s bit-for-bit.
//!
//! The batch variants additionally fold every query's stats into a
//! [`PipelineMetrics`] through per-worker [`ShardHandle`]s: workers record
//! into private shards (no locks, no atomics on the query path) that merge
//! into the shared total once per worker, when the handle drops.
//!
//! # Determinism
//!
//! [`MetricsSnapshot::deterministic`] (all non-timing fields) is a pure
//! function of `(index, queries)` — independent of thread count and query
//! order — because every counter is an order-independent sum of per-query
//! quantities that are themselves deterministic. Asserted at 1/2/8 threads
//! in `tests/batch_determinism.rs`.

use rayon::prelude::*;
use unn_geom::Point;
use unn_quantify::AdaptiveQuantify;

use crate::batch::{BatchOptions, BatchOutcome};
use crate::index::{PnnIndex, QuantifyMethod};
use crate::resilience::{QuantifyOutcome, QueryBudget, UnnError};

pub use unn_observe::{
    counters_enabled, error_label_index, Clock, CounterSet, Histogram, MetricsShard,
    MetricsSnapshot, MonotonicClock, NullClock, PipelineMetrics, QueryOutcome, QueryStats,
    ServeCounters, ShardHandle, VirtualClock, ERROR_LABELS, HIST_BUCKETS,
};

/// The stable [`ERROR_LABELS`] key for an [`UnnError`] variant (the
/// `unn-observe` crate cannot name `UnnError`, so errors cross into the
/// metrics as labels).
pub fn error_label(e: &UnnError) -> &'static str {
    match e {
        UnnError::InvalidDistribution { .. } => ERROR_LABELS[0],
        UnnError::InvalidConfig { .. } => ERROR_LABELS[1],
        UnnError::DegenerateGeometry { .. } => ERROR_LABELS[2],
        UnnError::BudgetExhausted { .. } => ERROR_LABELS[3],
        UnnError::QueryPanicked { .. } => ERROR_LABELS[4],
    }
}

/// Runs `f` between a counter reset and harvest, stamping wall-clock from
/// `clock`. The shared prologue/epilogue of every observed entry point.
fn observe_query<T>(clock: &dyn Clock, f: impl FnOnce() -> T) -> (T, QueryStats) {
    let t0 = clock.now_nanos();
    unn_observe::begin_query();
    let out = f();
    let counters = unn_observe::take_counters();
    let wall_nanos = clock.now_nanos().saturating_sub(t0);
    (
        out,
        QueryStats {
            counters,
            wall_nanos,
            ..QueryStats::default()
        },
    )
}

/// Fills the outcome-related fields of `stats` from a budgeted result.
fn fill_outcome(res: &Result<QuantifyOutcome, UnnError>, s: u64, stats: &mut QueryStats) {
    match res {
        Ok(QuantifyOutcome::Exact { .. }) => stats.outcome = QueryOutcome::Exact,
        Ok(QuantifyOutcome::Degraded {
            achieved_epsilon,
            rounds_used,
            ..
        }) => {
            stats.outcome = QueryOutcome::Degraded;
            stats.rounds_used = *rounds_used as u64;
            stats.rounds_total = s;
            stats.achieved_epsilon = *achieved_epsilon;
            unn_observe::trace_event!(
                "degraded: rounds_used={rounds_used} achieved_epsilon={achieved_epsilon:.4}"
            );
        }
        Err(e) => {
            stats.outcome = QueryOutcome::Errored;
            stats.error_label = Some(error_label(e));
            unn_observe::trace_event!("error: {e}");
        }
    }
}

/// Fills the outcome fields of an isolated slot: an `Ok` answer counts as
/// exact, a typed error is labeled so it lands in exactly one
/// [`MetricsShard::error_counts`] bucket.
fn fill_isolated<T>(res: &BatchOutcome<T>, stats: &mut QueryStats) {
    match res {
        Ok(_) => stats.outcome = QueryOutcome::Exact,
        Err(e) => {
            stats.outcome = QueryOutcome::Errored;
            stats.error_label = Some(error_label(e));
            unn_observe::trace_event!("isolated error: {e}");
        }
    }
}

impl PnnIndex {
    /// [`PnnIndex::nn_nonzero`] plus its [`QueryStats`].
    pub fn nn_nonzero_observed(&self, q: Point, clock: &dyn Clock) -> (Vec<usize>, QueryStats) {
        observe_query(clock, || self.nn_nonzero(q))
    }

    /// [`PnnIndex::quantify`] plus its [`QueryStats`].
    pub fn quantify_observed(
        &self,
        q: Point,
        clock: &dyn Clock,
    ) -> (Vec<f64>, QuantifyMethod, QueryStats) {
        let ((pi, method), mut stats) = observe_query(clock, || self.quantify(q));
        if let QuantifyMethod::MonteCarlo { achieved_epsilon } = method {
            // The fixed-s estimator consumes every pre-drawn round.
            let s = self.mc_rounds() as u64;
            stats.rounds_used = s;
            stats.rounds_total = s;
            stats.achieved_epsilon = achieved_epsilon;
        }
        (pi, method, stats)
    }

    /// [`PnnIndex::quantify_adaptive`] plus its [`QueryStats`]
    /// (`rounds_used`, `rounds_total = s`, and the certified half-width are
    /// copied from the result, so they are live even without the `observe`
    /// feature).
    pub fn quantify_adaptive_observed(
        &self,
        q: Point,
        eps: f64,
        delta: f64,
        clock: &dyn Clock,
    ) -> (AdaptiveQuantify, QueryStats) {
        let (a, mut stats) = observe_query(clock, || self.quantify_adaptive(q, eps, delta));
        stats.rounds_used = a.rounds_used as u64;
        stats.rounds_total = self.mc_rounds() as u64;
        stats.achieved_epsilon = a.half_width;
        (a, stats)
    }

    /// [`PnnIndex::quantify_guarded`] plus its [`QueryStats`]: the outcome
    /// field records Exact/Degraded/Errored and errors are labeled for
    /// [`MetricsShard::error_counts`].
    pub fn quantify_guarded_observed(
        &self,
        q: Point,
        budget: QueryBudget,
        clock: &dyn Clock,
    ) -> (Result<QuantifyOutcome, UnnError>, QueryStats) {
        let (res, mut stats) = observe_query(clock, || self.quantify_guarded(q, budget));
        fill_outcome(&res, self.mc_rounds() as u64, &mut stats);
        (res, stats)
    }

    /// [`PnnIndex::nn_nonzero_batch_with`] recording per-query stats into
    /// `metrics` (results identical to the unobserved batch).
    pub fn nn_nonzero_batch_observed(
        &self,
        queries: &[Point],
        opts: &BatchOptions,
        metrics: &PipelineMetrics,
        clock: &dyn Clock,
    ) -> Vec<Vec<usize>> {
        opts.run(|| {
            queries
                .par_iter()
                .map_init(
                    || metrics.shard(),
                    |shard, &q| {
                        let (out, stats) = self.nn_nonzero_observed(q, clock);
                        shard.record(&stats);
                        out
                    },
                )
                .collect()
        })
    }

    /// [`PnnIndex::quantify_batch_with`] recording per-query stats into
    /// `metrics`.
    pub fn quantify_batch_observed(
        &self,
        queries: &[Point],
        opts: &BatchOptions,
        metrics: &PipelineMetrics,
        clock: &dyn Clock,
    ) -> (Vec<Vec<f64>>, QuantifyMethod) {
        // The method is input-wide (spiral vs Monte-Carlo is a property of
        // the index); an empty batch resolves it without running a query.
        let (_, method) = self.quantify_batch(&[]);
        let pis = opts.run(|| {
            queries
                .par_iter()
                .map_init(
                    || metrics.shard(),
                    |shard, &q| {
                        let (pi, _, stats) = self.quantify_observed(q, clock);
                        shard.record(&stats);
                        pi
                    },
                )
                .collect()
        });
        (pis, method)
    }

    /// [`PnnIndex::quantify_adaptive_batch_with`] recording per-query stats
    /// into `metrics` — the workhorse of the pruning-effectiveness table
    /// (`BENCH_observe.json`): rounds-used histograms, ball-fold vs descent
    /// round counts, checkpoint evaluations.
    pub fn quantify_adaptive_batch_observed(
        &self,
        queries: &[Point],
        eps: f64,
        delta: f64,
        opts: &BatchOptions,
        metrics: &PipelineMetrics,
        clock: &dyn Clock,
    ) -> Vec<AdaptiveQuantify> {
        opts.run(|| {
            queries
                .par_iter()
                .map_init(
                    || metrics.shard(),
                    |shard, &q| {
                        let (a, stats) = self.quantify_adaptive_observed(q, eps, delta, clock);
                        shard.record(&stats);
                        a
                    },
                )
                .collect()
        })
    }

    /// [`PnnIndex::nn_nonzero_batch_isolated_with`] recording per-query
    /// stats into `metrics`: every slot that degrades to a typed error —
    /// including a caught panic — lands in exactly one
    /// [`MetricsShard::error_counts`] bucket keyed by [`ERROR_LABELS`]
    /// variant; successful slots count as exact.
    pub fn nn_nonzero_batch_isolated_observed(
        &self,
        queries: &[Point],
        opts: &BatchOptions,
        metrics: &PipelineMetrics,
        clock: &dyn Clock,
    ) -> Vec<BatchOutcome<Vec<usize>>> {
        opts.run(|| {
            queries
                .par_iter()
                .map_init(
                    || metrics.shard(),
                    |shard, &q| {
                        let (res, mut stats) = observe_query(clock, || {
                            crate::batch::isolate(q, || self.nn_nonzero(q))
                        });
                        fill_isolated(&res, &mut stats);
                        shard.record(&stats);
                        res
                    },
                )
                .collect()
        })
    }

    /// [`PnnIndex::quantify_batch_isolated_with`] recording per-query stats
    /// into `metrics` with automatic per-error-variant counting.
    pub fn quantify_batch_isolated_observed(
        &self,
        queries: &[Point],
        opts: &BatchOptions,
        metrics: &PipelineMetrics,
        clock: &dyn Clock,
    ) -> Vec<BatchOutcome<(Vec<f64>, QuantifyMethod)>> {
        opts.run(|| {
            queries
                .par_iter()
                .map_init(
                    || metrics.shard(),
                    |shard, &q| {
                        let (res, mut stats) =
                            observe_query(clock, || crate::batch::isolate(q, || self.quantify(q)));
                        fill_isolated(&res, &mut stats);
                        if let Ok((_, QuantifyMethod::MonteCarlo { achieved_epsilon })) = &res {
                            let s = self.mc_rounds() as u64;
                            stats.rounds_used = s;
                            stats.rounds_total = s;
                            stats.achieved_epsilon = *achieved_epsilon;
                        }
                        shard.record(&stats);
                        res
                    },
                )
                .collect()
        })
    }

    /// [`PnnIndex::quantify_adaptive_batch_isolated_with`] recording
    /// per-query stats into `metrics` with automatic per-error-variant
    /// counting; successful slots carry their adaptive rounds/accuracy.
    pub fn quantify_adaptive_batch_isolated_observed(
        &self,
        queries: &[Point],
        eps: f64,
        delta: f64,
        opts: &BatchOptions,
        metrics: &PipelineMetrics,
        clock: &dyn Clock,
    ) -> Vec<BatchOutcome<AdaptiveQuantify>> {
        opts.run(|| {
            queries
                .par_iter()
                .map_init(
                    || metrics.shard(),
                    |shard, &q| {
                        let (res, mut stats) = observe_query(clock, || {
                            crate::batch::isolate(q, || self.quantify_adaptive(q, eps, delta))
                        });
                        fill_isolated(&res, &mut stats);
                        if let Ok(a) = &res {
                            stats.rounds_used = a.rounds_used as u64;
                            stats.rounds_total = self.mc_rounds() as u64;
                            stats.achieved_epsilon = a.half_width;
                        }
                        shard.record(&stats);
                        res
                    },
                )
                .collect()
        })
    }

    /// [`PnnIndex::quantify_guarded_batch_with`] recording per-query stats
    /// into `metrics`: degradations and typed errors are counted by
    /// [`ERROR_LABELS`] variant, each slot still answers independently.
    pub fn quantify_guarded_batch_observed(
        &self,
        queries: &[Point],
        budget: QueryBudget,
        opts: &BatchOptions,
        metrics: &PipelineMetrics,
        clock: &dyn Clock,
    ) -> Vec<BatchOutcome<QuantifyOutcome>> {
        opts.run(|| {
            queries
                .par_iter()
                .map_init(
                    || metrics.shard(),
                    |shard, &q| {
                        let (res, stats) = self.quantify_guarded_observed(q, budget, clock);
                        shard.record(&stats);
                        res
                    },
                )
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unn_distr::Uncertain;

    fn index() -> PnnIndex {
        let points = vec![
            Uncertain::uniform_disk(Point::new(0.0, 0.0), 1.0),
            Uncertain::uniform_disk(Point::new(6.0, 0.0), 1.0),
            Uncertain::uniform_disk(Point::new(0.0, 7.0), 2.0),
        ];
        PnnIndex::new(points)
    }

    #[test]
    fn observed_results_match_unobserved() {
        let idx = index();
        let q = Point::new(1.0, 1.0);
        let clock = NullClock;
        assert_eq!(idx.nn_nonzero_observed(q, &clock).0, idx.nn_nonzero(q));
        let (a, stats) = idx.quantify_adaptive_observed(q, 0.05, 0.01, &clock);
        assert_eq!(a, idx.quantify_adaptive(q, 0.05, 0.01));
        assert_eq!(stats.rounds_used, a.rounds_used as u64);
        assert_eq!(stats.rounds_total, idx.mc_rounds() as u64);
        assert_eq!(stats.achieved_epsilon, a.half_width);
        assert_eq!(stats.wall_nanos, 0, "NullClock must zero the timing");
    }

    #[test]
    fn guarded_observed_labels_outcomes() {
        let idx = index();
        let clock = NullClock;
        let q = Point::new(1.0, 1.0);
        let (res, stats) = idx.quantify_guarded_observed(q, QueryBudget::unlimited(), &clock);
        assert!(res.is_ok());
        assert_eq!(stats.outcome, QueryOutcome::Exact);
        let (res, stats) = idx.quantify_guarded_observed(q, QueryBudget::with_work(64), &clock);
        assert!(matches!(res, Ok(QuantifyOutcome::Degraded { .. })));
        assert_eq!(stats.outcome, QueryOutcome::Degraded);
        assert!(stats.rounds_used > 0);
        let bad = Point::new(f64::NAN, 0.0);
        let (res, stats) = idx.quantify_guarded_observed(bad, QueryBudget::unlimited(), &clock);
        assert!(res.is_err());
        assert_eq!(stats.outcome, QueryOutcome::Errored);
        assert_eq!(stats.error_label, Some("degenerate_geometry"));
    }

    #[test]
    fn batch_observed_fills_metrics() {
        let idx = index();
        let queries: Vec<Point> = (0..40).map(|i| Point::new(i as f64 * 0.3, 0.5)).collect();
        let metrics = PipelineMetrics::new();
        let plain = idx.quantify_adaptive_batch(&queries, 0.05, 0.01);
        let observed = idx.quantify_adaptive_batch_observed(
            &queries,
            0.05,
            0.01,
            &BatchOptions::with_threads(2),
            &metrics,
            &NullClock,
        );
        assert_eq!(plain, observed);
        let snap = metrics.snapshot();
        assert_eq!(snap.shard.queries, queries.len() as u64);
        assert_eq!(
            snap.shard.rounds_used,
            plain.iter().map(|a| a.rounds_used as u64).sum::<u64>()
        );
        assert_eq!(snap.shard.wall_nanos, 0);
        // Deep counters are live exactly when the observe feature is on.
        if counters_enabled() {
            assert!(snap.shard.kd_nodes_visited > 0 || snap.shard.forest_nodes_visited > 0);
        } else {
            assert_eq!(snap.shard.kd_nodes_visited, 0);
        }
    }

    #[test]
    fn isolated_observed_counts_each_error_variant_once() {
        use unn_distr::{ChaosDistribution, ChaosMode};
        let poison = Point::new(321.5, -654.25);
        let points = vec![
            Uncertain::uniform_disk(Point::new(0.0, 0.0), 1.0),
            Uncertain::uniform_disk(Point::new(6.0, 0.0), 1.0),
            Uncertain::Chaos(ChaosDistribution::new(
                Uncertain::uniform_disk(Point::new(0.0, 7.0), 2.0),
                ChaosMode::PanicAtQuery(poison),
            )),
        ];
        let idx = PnnIndex::new(points);
        let mut queries: Vec<Point> = (0..20).map(|i| Point::new(i as f64 * 0.4, 0.6)).collect();
        queries[7] = poison;
        queries[13] = Point::new(f64::NAN, 0.0);
        let metrics = PipelineMetrics::new();
        let out = idx.nn_nonzero_batch_isolated_observed(
            &queries,
            &BatchOptions::with_threads(2),
            &metrics,
            &NullClock,
        );
        assert_eq!(out, idx.nn_nonzero_batch_isolated(&queries));
        let snap = metrics.snapshot();
        assert_eq!(snap.shard.queries, 20);
        let panicked = error_label_index("query_panicked").unwrap();
        let degenerate = error_label_index("degenerate_geometry").unwrap();
        assert_eq!(
            snap.shard.error_counts[panicked], 1,
            "the poison query lands in exactly one query_panicked bucket"
        );
        assert_eq!(snap.shard.error_counts[degenerate], 1);
        assert_eq!(snap.shard.error_counts.iter().sum::<u64>(), 2);
        assert_eq!(snap.shard.exact_count, 18);

        // The adaptive isolated variant counts the same way and keeps
        // per-slot answers identical to the unobserved batch. (Its
        // Monte-Carlo estimator never evaluates distance CDFs at q, so the
        // chaos poison does not fire — only the NaN query errors.)
        let metrics = PipelineMetrics::new();
        let out = idx.quantify_adaptive_batch_isolated_observed(
            &queries,
            0.05,
            0.01,
            &BatchOptions::with_threads(2),
            &metrics,
            &NullClock,
        );
        assert_eq!(
            out,
            idx.quantify_adaptive_batch_isolated_with(
                &queries,
                0.05,
                0.01,
                &BatchOptions::default()
            )
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.shard.error_counts[degenerate], 1);
        let errored = snap.shard.error_counts.iter().sum::<u64>();
        assert_eq!(snap.shard.exact_count + errored, 20);
    }

    #[test]
    fn error_labels_cover_all_variants() {
        let errs = [
            UnnError::InvalidDistribution {
                index: None,
                reason: String::new(),
            },
            UnnError::InvalidConfig {
                reason: String::new(),
            },
            UnnError::DegenerateGeometry {
                reason: String::new(),
            },
            UnnError::BudgetExhausted {
                budget: 0,
                required: 1,
            },
            UnnError::QueryPanicked {
                message: String::new(),
            },
        ];
        for (i, e) in errs.iter().enumerate() {
            assert_eq!(error_label(e), ERROR_LABELS[i]);
            assert_eq!(error_label_index(error_label(e)), Some(i));
        }
    }
}
