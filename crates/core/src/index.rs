//! The main user-facing index over a set of uncertain points.
//!
//! [`PnnIndex`] bundles the paper's structures behind one API:
//!
//! * [`PnnIndex::nn_nonzero`] — all points with nonzero probability of
//!   being the NN (§2–3), specialized to disk or discrete supports when the
//!   input is homogeneous, exact linear scan otherwise;
//! * [`PnnIndex::quantify`] — ε-approximate quantification probabilities,
//!   auto-selecting spiral search (discrete, deterministic, Thm 4.7) or the
//!   Monte-Carlo structure (continuous / mixed, Thm 4.3/4.5);
//! * [`PnnIndex::quantify_exact`] — exact (discrete, Eq. 2 sweep) or
//!   high-resolution numeric integration (continuous, Eq. 1);
//! * [`PnnIndex::expected_nn`] — the part-I expected-distance criterion.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use unn_distr::{DiscreteDistribution, Uncertain, UncertainPoint};
use unn_geom::{Disk, Point};
use unn_nonzero::{DiscreteNonzeroIndex, DiskNonzeroIndex, GuaranteedNnIndex};
use unn_quantify::{
    knn_membership_exact, quantification_exact, quantification_monte_carlo, quantification_numeric,
    AdaptiveQuantify, McBackend, MonteCarloIndex, SpiralIndex, ADAPTIVE_MIN_ROUNDS,
};

use crate::expected::ExpectedNnIndex;
use crate::resilience::{QuantifyOutcome, QueryBudget, UnnError, ValidationPolicy};

/// Configuration for [`PnnIndex::build`].
#[derive(Clone, Debug)]
pub struct PnnConfig {
    /// Deterministic seed for all randomized components.
    pub seed: u64,
    /// Target additive error for [`PnnIndex::quantify`].
    pub epsilon: f64,
    /// Failure probability for Monte-Carlo guarantees.
    pub delta: f64,
    /// Upper bound on Monte-Carlo rounds (the theorem-driven count can be
    /// enormous for tiny ε; production deployments cap it).
    pub max_mc_rounds: usize,
    /// Grid resolution for exact-by-integration on continuous models.
    pub numeric_steps: usize,
    /// First checkpoint of the adaptive stopping rule
    /// ([`PnnIndex::quantify_adaptive`]); later checkpoints double up to
    /// the built round count.
    pub adaptive_min_rounds: usize,
}

impl Default for PnnConfig {
    fn default() -> Self {
        PnnConfig {
            seed: 0x5eed,
            epsilon: 0.05,
            delta: 0.01,
            max_mc_rounds: 20_000,
            numeric_steps: 2_000,
            adaptive_min_rounds: ADAPTIVE_MIN_ROUNDS,
        }
    }
}

impl PnnConfig {
    /// Checks every parameter against its documented range — the checks
    /// [`PnnIndex::try_build`] runs before construction. `epsilon` and
    /// `delta` must lie in `(0, 1)` (the spiral truncation and the
    /// Monte-Carlo round count `m_for`/Eq. 6 are undefined outside it);
    /// the round and step counts must be at least 1.
    pub fn validate(&self) -> Result<(), crate::resilience::UnnError> {
        use crate::resilience::UnnError;
        let bad = |reason: String| Err(UnnError::InvalidConfig { reason });
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return bad(format!("epsilon must be in (0, 1), got {}", self.epsilon));
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return bad(format!("delta must be in (0, 1), got {}", self.delta));
        }
        if self.max_mc_rounds == 0 {
            return bad("max_mc_rounds must be at least 1".into());
        }
        if self.numeric_steps == 0 {
            return bad("numeric_steps must be at least 1".into());
        }
        if self.adaptive_min_rounds == 0 {
            return bad("adaptive_min_rounds must be at least 1".into());
        }
        Ok(())
    }
}

/// Which estimator produced a quantification answer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuantifyMethod {
    /// Spiral search (deterministic, discrete only).
    Spiral,
    /// Monte-Carlo instantiations.
    MonteCarlo {
        /// The accuracy the built round count *actually* guarantees (Eq. 6
        /// inverted at the built `s`). Equals the requested
        /// [`PnnConfig::epsilon`] — or better — unless
        /// [`PnnConfig::max_mc_rounds`] capped the theorem-driven count,
        /// in which case this is honestly larger than the request.
        achieved_epsilon: f64,
    },
    /// Exact sweep over Eq. 2.
    ExactSweep,
    /// Numeric integration of Eq. 1.
    NumericIntegration,
}

pub(crate) enum NonzeroBackend {
    // Both index variants are boxed: the kd structures inside dominate the
    // enum footprint and the backend lives once per `PnnIndex`.
    Disks(Box<DiskNonzeroIndex>),
    Discrete(Box<DiscreteNonzeroIndex>),
    /// Heterogeneous models: exact linear scan over `δ_i` / `Δ_j`.
    Generic,
}

/// Probabilistic nearest-neighbor index over uncertain points (the paper's
/// full query suite).
///
/// All query methods take `&self` and the index is `Send + Sync` (statically
/// asserted in [`crate::batch`]), so one index can be shared across threads
/// by reference; the batch methods in [`crate::batch`] do exactly that.
pub struct PnnIndex {
    pub(crate) points: Vec<Uncertain>,
    pub(crate) config: PnnConfig,
    pub(crate) nonzero: NonzeroBackend,
    /// All-discrete fast path.
    pub(crate) discrete: Option<Vec<DiscreteDistribution>>,
    pub(crate) spiral: Option<SpiralIndex>,
    pub(crate) mc: MonteCarloIndex,
    /// Eq. 6 inverted at the built round count (see
    /// [`PnnIndex::mc_achieved_epsilon`]).
    pub(crate) mc_achieved_epsilon: f64,
    pub(crate) expected: ExpectedNnIndex,
    pub(crate) guaranteed: Option<GuaranteedNnIndex>,
}

impl PnnIndex {
    /// Builds the index. Deterministic given `config.seed`.
    pub fn build(points: Vec<Uncertain>, config: PnnConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        // Specialize the nonzero backend.
        let disks: Option<Vec<Disk>> = points.iter().map(|p| p.as_disk()).collect();
        let discrete: Option<Vec<DiscreteDistribution>> =
            points.iter().map(|p| p.as_discrete().cloned()).collect();
        let nonzero = if let Some(ds) = &disks {
            NonzeroBackend::Disks(Box::new(DiskNonzeroIndex::new(ds)))
        } else if let Some(objs) = &discrete {
            NonzeroBackend::Discrete(Box::new(DiscreteNonzeroIndex::from_distributions(objs)))
        } else {
            NonzeroBackend::Generic
        };
        let spiral = discrete.as_ref().map(|objs| SpiralIndex::build(objs));
        let n = points.len();
        let k = discrete
            .as_ref()
            .map_or(1, |objs| objs.iter().map(|o| o.len()).max().unwrap_or(1));
        let s = MonteCarloIndex::samples_for(config.epsilon, config.delta, n.max(1), k)
            .min(config.max_mc_rounds)
            .max(1);
        // Eq. 6 inverted at the rounds actually built: when `max_mc_rounds`
        // capped the theorem-driven count this is larger than the request,
        // and results must say so rather than pretend `config.epsilon`.
        let mc_achieved_epsilon = MonteCarloIndex::epsilon_for(s, config.delta, n.max(1), k);
        let mc = MonteCarloIndex::build(&points, s, McBackend::KdTree, &mut rng);
        let expected = ExpectedNnIndex::build(&points);
        let guaranteed = disks.as_ref().map(|ds| GuaranteedNnIndex::new(ds));
        PnnIndex {
            points,
            config,
            nonzero,
            discrete,
            spiral,
            mc,
            mc_achieved_epsilon,
            expected,
            guaranteed,
        }
    }

    /// Builds with the default configuration.
    pub fn new(points: Vec<Uncertain>) -> Self {
        Self::build(points, PnnConfig::default())
    }

    /// Fallible [`PnnIndex::build`] with strict input validation.
    ///
    /// Rejects (or, under [`ValidationPolicy::Repair`], fixes) inputs that
    /// the unchecked constructor would accept and later choke on:
    ///
    /// * out-of-range configuration → [`UnnError::InvalidConfig`];
    /// * distributions failing [`Uncertain::validate`] (non-finite
    ///   coordinates, empty or non-positive-weight supports, zero-radius
    ///   disks via the model constructors) →
    ///   [`UnnError::InvalidDistribution`] with the offending index;
    /// * exact duplicate points → [`UnnError::DegenerateGeometry`] under
    ///   `Strict`, deduped (first occurrence kept) under `Repair`;
    /// * a panic during construction (e.g. a fault injected by a
    ///   [`unn_distr::ChaosDistribution`] behind validation) is caught and
    ///   surfaced as [`UnnError::QueryPanicked`] — no panic escapes.
    ///
    /// On clean inputs both policies build indexes identical to
    /// [`PnnIndex::build`] (asserted by the property tests).
    pub fn try_build(
        points: Vec<Uncertain>,
        config: PnnConfig,
        policy: ValidationPolicy,
    ) -> Result<Self, UnnError> {
        config.validate()?;
        // Per-point validation / repair.
        let mut kept: Vec<Uncertain> = Vec::with_capacity(points.len());
        for (i, p) in points.into_iter().enumerate() {
            let ok = match policy {
                ValidationPolicy::Strict => p.validate().map(|()| p),
                ValidationPolicy::Repair => p.repair(),
            };
            match ok {
                Ok(p) => kept.push(p),
                Err(e) => {
                    return Err(UnnError::InvalidDistribution {
                        index: Some(i),
                        reason: e.to_string(),
                    })
                }
            }
        }
        // Duplicate detection: sort by mean, then compare only within runs
        // of equal means — near O(n log n) on non-adversarial inputs.
        let mut order: Vec<usize> = (0..kept.len()).collect();
        let means: Vec<Point> = kept.iter().map(|p| p.mean()).collect();
        order.sort_by(|&a, &b| {
            means[a]
                .x
                .total_cmp(&means[b].x)
                .then(means[a].y.total_cmp(&means[b].y))
        });
        let mut dup_of: Vec<Option<usize>> = vec![None; kept.len()];
        for w in 0..order.len() {
            let i = order[w];
            if dup_of[i].is_some() {
                continue;
            }
            for &j in order[w + 1..].iter().take_while(|&&j| means[j] == means[i]) {
                if dup_of[j].is_none() && kept[i] == kept[j] {
                    dup_of[j] = Some(i);
                }
            }
        }
        if let Some((j, i)) = dup_of
            .iter()
            .enumerate()
            .find_map(|(j, d)| d.map(|i| (j, i)))
        {
            let (first, second) = (i.min(j), i.max(j));
            match policy {
                ValidationPolicy::Strict => {
                    return Err(UnnError::DegenerateGeometry {
                        reason: format!("points {first} and {second} are identical"),
                    })
                }
                ValidationPolicy::Repair => {
                    let mut idx = 0;
                    kept.retain(|_| {
                        let keep = dup_of[idx].is_none();
                        idx += 1;
                        keep
                    });
                }
            }
        }
        // Construction itself samples the models (Monte-Carlo rounds), so
        // an injected fault can fire here; contain it.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| Self::build(kept, config)))
            .map_err(|payload| UnnError::QueryPanicked {
                message: unn_quantify::panic_message(payload),
            })
    }

    /// [`PnnIndex::nn_nonzero`] that cannot panic: rejects non-finite
    /// query coordinates with a typed error and converts any panic on the
    /// query path into [`UnnError::QueryPanicked`].
    pub fn try_nn_nonzero(&self, q: Point) -> Result<Vec<usize>, UnnError> {
        if !q.is_finite() {
            return Err(UnnError::DegenerateGeometry {
                reason: format!("query point has non-finite coordinate ({}, {})", q.x, q.y),
            });
        }
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.nn_nonzero(q))).map_err(
            |payload| UnnError::QueryPanicked {
                message: unn_quantify::panic_message(payload),
            },
        )
    }

    /// The work an exact quantification answer costs at this index, in the
    /// deterministic units of [`QueryBudget`] (location touches): the
    /// discrete Eq. 2 sweep costs its total location count, numeric
    /// integration costs `numeric_steps · n`.
    pub fn exact_work(&self) -> u64 {
        if let Some(objs) = &self.discrete {
            objs.iter().map(|o| o.len() as u64).sum()
        } else {
            self.config.numeric_steps as u64 * self.points.len() as u64
        }
    }

    /// Budgeted quantification with graceful degradation.
    ///
    /// If the exact answer ([`PnnIndex::quantify_exact`]) fits
    /// `budget.effective()` work units it is returned as
    /// [`QuantifyOutcome::Exact`]. Otherwise the query degrades to capped
    /// adaptive Monte-Carlo — at most one pre-drawn round per remaining
    /// work unit — and returns [`QuantifyOutcome::Degraded`] carrying the
    /// *certified* accuracy actually achieved, which the caller must check
    /// (it can be much larger than the configured ε under a tight budget).
    ///
    /// Errors with [`UnnError::BudgetExhausted`] only when not even one
    /// Monte-Carlo round fits. Work units are deterministic, so the result
    /// is a pure function of `(index, q, budget)` and batched budgeted
    /// queries stay bit-identical across thread counts.
    pub fn quantify_within(
        &self,
        q: Point,
        budget: QueryBudget,
    ) -> Result<QuantifyOutcome, UnnError> {
        let cap = budget.effective();
        if self.points.is_empty() {
            return Ok(QuantifyOutcome::Exact {
                pi: Vec::new(),
                method: QuantifyMethod::ExactSweep,
                work: 0,
            });
        }
        let exact_work = self.exact_work();
        if exact_work <= cap {
            let (pi, method) = self.quantify_exact(q);
            return Ok(QuantifyOutcome::Exact {
                pi,
                method,
                work: exact_work,
            });
        }
        if cap == 0 {
            return Err(UnnError::BudgetExhausted {
                budget: cap,
                required: 1,
            });
        }
        let max_rounds = usize::try_from(cap).unwrap_or(usize::MAX);
        let a = self.mc.quantify_adaptive_capped(
            q,
            self.config.epsilon,
            self.config.delta,
            self.config.adaptive_min_rounds,
            max_rounds,
        );
        Ok(QuantifyOutcome::Degraded {
            work: a.rounds_used as u64,
            achieved_epsilon: a.half_width,
            rounds_used: a.rounds_used,
            pi: a.pi,
        })
    }

    /// [`PnnIndex::quantify_within`] hardened against panics: non-finite
    /// queries become [`UnnError::DegenerateGeometry`] and a panic on the
    /// query path becomes [`UnnError::QueryPanicked`] — this entry point
    /// never unwinds.
    pub fn quantify_guarded(
        &self,
        q: Point,
        budget: QueryBudget,
    ) -> Result<QuantifyOutcome, UnnError> {
        if !q.is_finite() {
            return Err(UnnError::DegenerateGeometry {
                reason: format!("query point has non-finite coordinate ({}, {})", q.x, q.y),
            });
        }
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.quantify_within(q, budget)
        }))
        .unwrap_or_else(|payload| {
            Err(UnnError::QueryPanicked {
                message: unn_quantify::panic_message(payload),
            })
        })
    }

    /// Number of uncertain points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The uncertain points.
    pub fn points(&self) -> &[Uncertain] {
        &self.points
    }

    /// `NN≠0(q)`: every point with `π_i(q) > 0`, by Lemma 2.1.
    pub fn nn_nonzero(&self, q: Point) -> Vec<usize> {
        match &self.nonzero {
            NonzeroBackend::Disks(idx) => idx.query(q),
            NonzeroBackend::Discrete(idx) => idx.query(q),
            NonzeroBackend::Generic => self.nn_nonzero_generic(q),
        }
    }

    fn nn_nonzero_generic(&self, q: Point) -> Vec<usize> {
        let mut out = Vec::new();
        self.nn_nonzero_generic_into(q, &mut Vec::new(), &mut out);
        out
    }

    /// Generic Lemma 2.1 scan into caller-provided buffers (`caps` is the
    /// `Δ_j` scratch, `out` the result — both cleared first).
    pub(crate) fn nn_nonzero_generic_into(
        &self,
        q: Point,
        caps: &mut Vec<f64>,
        out: &mut Vec<usize>,
    ) {
        caps.clear();
        caps.extend(self.points.iter().map(|p| p.max_dist(q)));
        out.clear();
        out.extend((0..self.points.len()).filter(|&i| {
            let delta_i = self.points[i].min_dist(q);
            caps.iter()
                .enumerate()
                .all(|(j, &cap)| j == i || delta_i < cap)
        }));
    }

    /// ε-approximate quantification probabilities (dense vector) and the
    /// method used. ε comes from the build configuration; on the
    /// Monte-Carlo path the returned method carries the *achieved* ε, which
    /// degrades honestly when [`PnnConfig::max_mc_rounds`] capped the
    /// theorem-driven round count.
    pub fn quantify(&self, q: Point) -> (Vec<f64>, QuantifyMethod) {
        if let Some(spiral) = &self.spiral {
            (spiral.query(q, self.config.epsilon), QuantifyMethod::Spiral)
        } else {
            (
                self.mc.query(q),
                QuantifyMethod::MonteCarlo {
                    achieved_epsilon: self.mc_achieved_epsilon,
                },
            )
        }
    }

    /// Monte-Carlo quantification with per-query adaptive early stopping:
    /// rounds are consumed in their fixed build order and the estimate is
    /// returned as soon as a Hoeffding/empirical-Bernstein half-width
    /// certifies `|π̂_i − π_i| ≤ eps` for every `i` (failure probability
    /// `delta`), along with the rounds actually consumed and the certified
    /// half-width.
    ///
    /// Unlike [`PnnIndex::quantify`] this always runs on the Monte-Carlo
    /// structure (the stopping rule is specific to it); the result is a
    /// pure function of `(index, q, eps, delta)`, so the batch determinism
    /// contract extends to [`PnnIndex::quantify_adaptive_batch`].
    pub fn quantify_adaptive(&self, q: Point, eps: f64, delta: f64) -> AdaptiveQuantify {
        self.mc
            .quantify_adaptive_from(q, eps, delta, self.config.adaptive_min_rounds)
    }

    /// The accuracy the built Monte-Carlo round count actually guarantees:
    /// Eq. 6 inverted at the built `s`. At most [`PnnConfig::epsilon`]
    /// unless [`PnnConfig::max_mc_rounds`] forced fewer rounds than
    /// Theorem 4.3 requires.
    pub fn mc_achieved_epsilon(&self) -> f64 {
        self.mc_achieved_epsilon
    }

    /// The number of pre-drawn Monte-Carlo rounds `s` the index holds —
    /// the denominator of every `rounds_used / s` early-stopping ratio the
    /// observability layer reports.
    pub fn mc_rounds(&self) -> usize {
        self.mc.rounds()
    }

    /// Exact (discrete) or high-resolution numeric (continuous)
    /// quantification probabilities.
    pub fn quantify_exact(&self, q: Point) -> (Vec<f64>, QuantifyMethod) {
        if let Some(objs) = &self.discrete {
            (quantification_exact(objs, q), QuantifyMethod::ExactSweep)
        } else {
            (
                quantification_numeric(&self.points, q, self.config.numeric_steps),
                QuantifyMethod::NumericIntegration,
            )
        }
    }

    /// Monte-Carlo quantification with *fresh* instantiations drawn from
    /// `rng` at query time, over `rounds` rounds.
    ///
    /// Unlike [`PnnIndex::quantify`]'s Monte-Carlo path (whose rounds are
    /// frozen at build time and shared by every query), the estimate here is
    /// a pure function of the RNG stream: two calls with identically seeded
    /// RNGs are bit-identical, and independent streams give statistically
    /// independent estimates. [`PnnIndex::quantify_fresh_batch`] builds on
    /// this with one deterministic stream per query.
    pub fn quantify_fresh(&self, q: Point, rounds: usize, rng: &mut dyn Rng) -> Vec<f64> {
        quantification_monte_carlo(&self.points, q, rounds, rng)
    }

    /// The most probable nearest neighbor: `argmax_i π̂_i(q)` with its
    /// estimated probability.
    pub fn most_probable_nn(&self, q: Point) -> Option<(usize, f64)> {
        let (pi, _) = self.quantify(q);
        pi.into_iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// The guaranteed nearest neighbor (`[SE08]`, §1.2): the unique point that
    /// is the NN in *every* instantiation (`π_i(q) = 1`), if one exists.
    pub fn guaranteed_nn(&self, q: Point) -> Option<usize> {
        if let Some(g) = &self.guaranteed {
            return g.guaranteed_nn(q);
        }
        // Generic path: Δ-minimizer must beat every other δ.
        use unn_distr::UncertainPoint as _;
        let best = (0..self.points.len()).min_by(|&a, &b| {
            self.points[a]
                .max_dist(q)
                .total_cmp(&self.points[b].max_dist(q))
        })?;
        let cap = self.points[best].max_dist(q);
        self.points
            .iter()
            .enumerate()
            .all(|(j, p)| j == best || p.min_dist(q) > cap)
            .then_some(best)
    }

    /// Probability that each point is among the `k` nearest neighbors of
    /// `q` (the kNN extension of §1.2): exact Poisson-binomial evaluation
    /// for discrete sets, Monte-Carlo estimate otherwise.
    pub fn knn_membership(&self, q: Point, k: usize) -> (Vec<f64>, QuantifyMethod) {
        if let Some(objs) = &self.discrete {
            (knn_membership_exact(objs, q, k), QuantifyMethod::ExactSweep)
        } else {
            (
                self.mc.query_knn(q, k),
                QuantifyMethod::MonteCarlo {
                    achieved_epsilon: self.mc_achieved_epsilon,
                },
            )
        }
    }

    /// Expected-distance nearest neighbor (part-I criterion, §1.2).
    pub fn expected_nn(&self, q: Point) -> Option<(usize, f64)> {
        self.expected.expected_nn(q)
    }

    /// Expected-distance k-NN ranking.
    pub fn expected_knn(&self, q: Point, k: usize) -> Vec<(usize, f64)> {
        self.expected.expected_knn(q, k)
    }

    /// The configuration in effect.
    pub fn config(&self) -> &PnnConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use unn_distr::TruncatedGaussian;

    fn mixed_points(seed: u64) -> Vec<Uncertain> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for i in 0..12 {
            let c = Point::new(rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0));
            pts.push(match i % 2 {
                0 => Uncertain::uniform_disk(c, rng.random_range(0.5..2.0)),
                _ => Uncertain::Gaussian(TruncatedGaussian::with_sigmas(c, 0.6, 3.0)),
            });
        }
        pts
    }

    fn discrete_points(seed: u64) -> Vec<Uncertain> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..10)
            .map(|_| {
                let c = Point::new(rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0));
                Uncertain::Discrete(
                    DiscreteDistribution::uniform(
                        (0..3)
                            .map(|_| {
                                Point::new(
                                    c.x + rng.random_range(-2.0..2.0),
                                    c.y + rng.random_range(-2.0..2.0),
                                )
                            })
                            .collect(),
                    )
                    .unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn discrete_pipeline_methods() {
        let idx = PnnIndex::new(discrete_points(210));
        let q = Point::new(1.0, 1.0);
        let (pi, method) = idx.quantify(q);
        assert_eq!(method, QuantifyMethod::Spiral);
        let (exact, method2) = idx.quantify_exact(q);
        assert_eq!(method2, QuantifyMethod::ExactSweep);
        for (a, e) in pi.iter().zip(&exact) {
            assert!((a - e).abs() <= idx.config().epsilon + 1e-9);
        }
        // nn_nonzero is a superset of {i : pi_i > eps}.
        let nz = idx.nn_nonzero(q);
        for (i, &p) in exact.iter().enumerate() {
            if p > 1e-12 {
                assert!(nz.contains(&i), "pi_{i} = {p} but not in NN!=0");
            }
        }
    }

    #[test]
    fn continuous_pipeline_methods() {
        let idx = PnnIndex::new(mixed_points(211));
        let q = Point::new(0.0, 0.0);
        let (pi, method) = idx.quantify(q);
        assert!(matches!(method, QuantifyMethod::MonteCarlo { .. }));
        let (num, method2) = idx.quantify_exact(q);
        assert_eq!(method2, QuantifyMethod::NumericIntegration);
        let sum_mc: f64 = pi.iter().sum();
        let sum_num: f64 = num.iter().sum();
        assert!((sum_mc - 1.0).abs() < 1e-9);
        assert!((sum_num - 1.0).abs() < 0.01);
        for (a, b) in pi.iter().zip(&num) {
            assert!((a - b).abs() < 0.1, "mc={a} numeric={b}");
        }
    }

    #[test]
    fn nonzero_consistency_across_backends() {
        // A mixed set evaluated generically must agree with the disk
        // specialization on the same geometry.
        let mut rng = SmallRng::seed_from_u64(212);
        let disks: Vec<Uncertain> = (0..15)
            .map(|_| {
                Uncertain::uniform_disk(
                    Point::new(rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0)),
                    rng.random_range(0.5..2.0),
                )
            })
            .collect();
        let idx = PnnIndex::new(disks.clone());
        // Force the generic path by mixing in a Gaussian with zero influence
        // far away… instead, compare against the internal generic scan.
        let mut qrng = SmallRng::seed_from_u64(213);
        for _ in 0..100 {
            let q = Point::new(
                qrng.random_range(-25.0..25.0),
                qrng.random_range(-25.0..25.0),
            );
            assert_eq!(idx.nn_nonzero(q), idx.nn_nonzero_generic(q));
        }
    }

    #[test]
    fn most_probable_nn_is_plausible() {
        let idx = PnnIndex::new(discrete_points(214));
        let q = Point::new(0.0, 0.0);
        let (i, p) = idx.most_probable_nn(q).unwrap();
        let (exact, _) = idx.quantify_exact(q);
        let best = exact
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        // Within eps of the true max (the argmax may differ on near-ties).
        assert!(
            p >= best.1 - 2.0 * idx.config().epsilon,
            "{i}/{p} vs {best:?}"
        );
    }

    #[test]
    fn guaranteed_nn_consistent_with_nonzero() {
        let idx = PnnIndex::new(mixed_points(215));
        let mut qrng = SmallRng::seed_from_u64(216);
        for _ in 0..100 {
            let q = Point::new(
                qrng.random_range(-30.0..30.0),
                qrng.random_range(-30.0..30.0),
            );
            if let Some(g) = idx.guaranteed_nn(q) {
                assert_eq!(idx.nn_nonzero(q), vec![g], "q = {q:?}");
            }
        }
    }

    #[test]
    fn knn_membership_exact_and_mc() {
        let idx = PnnIndex::new(discrete_points(217));
        let q = Point::new(0.0, 0.0);
        let (pi, method) = idx.knn_membership(q, 3);
        assert_eq!(method, QuantifyMethod::ExactSweep);
        let sum: f64 = pi.iter().sum();
        assert!((sum - 3.0).abs() < 1e-9);
        // Continuous path uses MC.
        let cidx = PnnIndex::new(mixed_points(218));
        let (pi, method) = cidx.knn_membership(q, 2);
        assert!(matches!(method, QuantifyMethod::MonteCarlo { .. }));
        let sum: f64 = pi.iter().sum();
        assert!((sum - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_index_is_harmless() {
        let idx = PnnIndex::new(Vec::new());
        assert!(idx.is_empty());
        assert!(idx.nn_nonzero(Point::ORIGIN).is_empty());
        assert!(idx.quantify(Point::ORIGIN).0.is_empty());
        assert!(idx.expected_nn(Point::ORIGIN).is_none());
        let a = idx.quantify_adaptive(Point::ORIGIN, 0.1, 0.01);
        assert!(a.pi.is_empty() && a.rounds_used == 0);
    }

    #[test]
    fn capped_rounds_surface_achieved_epsilon() {
        // A cap far below the theorem-driven count: the reported method
        // must carry the honestly degraded ε, not the requested one.
        let points = mixed_points(219);
        let capped = PnnIndex::build(
            points.clone(),
            PnnConfig {
                epsilon: 0.01,
                max_mc_rounds: 200,
                ..PnnConfig::default()
            },
        );
        assert_eq!(capped.mc.rounds(), 200);
        let (_, method) = capped.quantify(Point::ORIGIN);
        let QuantifyMethod::MonteCarlo { achieved_epsilon } = method else {
            panic!("expected MonteCarlo, got {method:?}");
        };
        assert_eq!(achieved_epsilon, capped.mc_achieved_epsilon());
        assert!(
            achieved_epsilon > 0.01,
            "capped s must degrade eps: {achieved_epsilon}"
        );
        // Uncapped: the built count meets or beats the request.
        let uncapped = PnnIndex::build(
            points,
            PnnConfig {
                epsilon: 0.05,
                ..PnnConfig::default()
            },
        );
        assert!(uncapped.mc_achieved_epsilon() <= 0.05 + 1e-12);
    }

    #[test]
    fn adaptive_quantify_consistent_with_fixed() {
        let idx = PnnIndex::new(mixed_points(220));
        let mut qrng = SmallRng::seed_from_u64(221);
        for _ in 0..10 {
            let q = Point::new(
                qrng.random_range(-25.0..25.0),
                qrng.random_range(-25.0..25.0),
            );
            let (full, _) = idx.quantify(q);
            let a = idx.quantify_adaptive(q, 0.05, 0.01);
            assert!(a.rounds_used <= idx.mc.rounds());
            for (ad, fu) in a.pi.iter().zip(&full) {
                assert!(
                    (ad - fu).abs() <= a.half_width + idx.mc_achieved_epsilon(),
                    "adaptive={ad} full={fu} hw={}",
                    a.half_width
                );
            }
        }
    }
}
