//! Façade over the [`unn_wire`] binary protocol, plus the codecs for the
//! core resilience types.
//!
//! `unn-wire` sits below this crate in the dependency graph, so it can
//! encode the serving-tier types ([`Request`](crate::serve::Request),
//! [`Reply`](crate::serve::Reply)) but not the core vocabulary. This
//! module closes the gap with standalone value frames on the tags
//! `unn-wire` reserves for the façade:
//!
//! * [`encode_quantify_outcome`] / [`decode_quantify_outcome`] —
//!   [`QuantifyOutcome`] on [`tag::QUANTIFY_OUTCOME`];
//! * [`encode_unn_error`] / [`decode_unn_error`] — [`UnnError`] on
//!   [`tag::UNN_ERROR`].
//!
//! Both codecs follow the wire crate's totality contract: `f64`s travel
//! as IEEE bit patterns (bit-identical round trips), every tag and length
//! is validated, and malformed input returns a typed
//! [`WireError`] — never a panic.

pub use unn_wire::{
    decode_frame, decode_reply_body, decode_request_body, encode_frame, encode_reply_body,
    encode_request_body, frame_bytes, frame_split, tag, ErrorCode, ErrorFrame, Frame, Hello,
    HelloAck, Reader, ReplyBatch, RequestBatch, WireError, Writer, ANY_EPOCH, MAGIC, MAX_FRAME_LEN,
    WIRE_VERSION,
};

use crate::index::QuantifyMethod;
use crate::resilience::{QuantifyOutcome, UnnError};

fn encode_method(w: &mut Writer, method: &QuantifyMethod) {
    match method {
        QuantifyMethod::Spiral => w.u8(0),
        QuantifyMethod::MonteCarlo { achieved_epsilon } => {
            w.u8(1);
            w.f64(*achieved_epsilon);
        }
        QuantifyMethod::ExactSweep => w.u8(2),
        QuantifyMethod::NumericIntegration => w.u8(3),
    }
}

fn decode_method(r: &mut Reader<'_>) -> Result<QuantifyMethod, WireError> {
    Ok(match r.u8("quantify method tag")? {
        0 => QuantifyMethod::Spiral,
        1 => QuantifyMethod::MonteCarlo {
            achieved_epsilon: r.f64("method epsilon")?,
        },
        2 => QuantifyMethod::ExactSweep,
        3 => QuantifyMethod::NumericIntegration,
        t => {
            return Err(WireError::UnknownTag {
                what: "quantify method",
                tag: t,
            })
        }
    })
}

/// Encodes a [`QuantifyOutcome`] as a standalone value frame body
/// (tag [`tag::QUANTIFY_OUTCOME`], no length prefix).
pub fn encode_quantify_outcome(outcome: &QuantifyOutcome) -> Vec<u8> {
    let mut w = Writer::with_tag(tag::QUANTIFY_OUTCOME);
    match outcome {
        QuantifyOutcome::Exact { pi, method, work } => {
            w.u8(0);
            w.vec_f64(pi);
            encode_method(&mut w, method);
            w.u64(*work);
        }
        QuantifyOutcome::Degraded {
            pi,
            achieved_epsilon,
            rounds_used,
            work,
        } => {
            w.u8(1);
            w.vec_f64(pi);
            w.f64(*achieved_epsilon);
            w.usize(*rounds_used);
            w.u64(*work);
        }
    }
    w.into_bytes()
}

/// Decodes a [`QuantifyOutcome`] value frame body. Total: malformed input
/// returns a typed [`WireError`].
pub fn decode_quantify_outcome(body: &[u8]) -> Result<QuantifyOutcome, WireError> {
    let mut r = Reader::new(body);
    let t = r.u8("frame tag")?;
    if t != tag::QUANTIFY_OUTCOME {
        return Err(WireError::UnknownTag {
            what: "quantify outcome frame",
            tag: t,
        });
    }
    let outcome = match r.u8("outcome variant")? {
        0 => QuantifyOutcome::Exact {
            pi: r.vec_f64("outcome pi")?,
            method: decode_method(&mut r)?,
            work: r.u64("outcome work")?,
        },
        1 => QuantifyOutcome::Degraded {
            pi: r.vec_f64("outcome pi")?,
            achieved_epsilon: r.f64("outcome epsilon")?,
            rounds_used: r.usize("outcome rounds_used")?,
            work: r.u64("outcome work")?,
        },
        t => {
            return Err(WireError::UnknownTag {
                what: "quantify outcome variant",
                tag: t,
            })
        }
    };
    r.expect_end()?;
    Ok(outcome)
}

/// Encodes an [`UnnError`] as a standalone value frame body
/// (tag [`tag::UNN_ERROR`], no length prefix). `index: None` travels as
/// `u64::MAX` (a vector index can never reach it).
pub fn encode_unn_error(err: &UnnError) -> Vec<u8> {
    let mut w = Writer::with_tag(tag::UNN_ERROR);
    match err {
        UnnError::InvalidDistribution { index, reason } => {
            w.u8(0);
            w.u64(index.map_or(u64::MAX, |i| i as u64));
            w.str(reason);
        }
        UnnError::InvalidConfig { reason } => {
            w.u8(1);
            w.str(reason);
        }
        UnnError::DegenerateGeometry { reason } => {
            w.u8(2);
            w.str(reason);
        }
        UnnError::BudgetExhausted { budget, required } => {
            w.u8(3);
            w.u64(*budget);
            w.u64(*required);
        }
        UnnError::QueryPanicked { message } => {
            w.u8(4);
            w.str(message);
        }
    }
    w.into_bytes()
}

/// Decodes an [`UnnError`] value frame body. Total: malformed input
/// returns a typed [`WireError`].
pub fn decode_unn_error(body: &[u8]) -> Result<UnnError, WireError> {
    let mut r = Reader::new(body);
    let t = r.u8("frame tag")?;
    if t != tag::UNN_ERROR {
        return Err(WireError::UnknownTag {
            what: "unn error frame",
            tag: t,
        });
    }
    let err = match r.u8("error variant")? {
        0 => {
            let raw = r.u64("error index")?;
            let index = if raw == u64::MAX {
                None
            } else {
                Some(usize::try_from(raw).map_err(|_| WireError::LengthOverflow {
                    what: "error index",
                    len: raw,
                    cap: usize::MAX as u64,
                })?)
            };
            UnnError::InvalidDistribution {
                index,
                reason: r.str("error reason")?,
            }
        }
        1 => UnnError::InvalidConfig {
            reason: r.str("error reason")?,
        },
        2 => UnnError::DegenerateGeometry {
            reason: r.str("error reason")?,
        },
        3 => UnnError::BudgetExhausted {
            budget: r.u64("error budget")?,
            required: r.u64("error required")?,
        },
        4 => UnnError::QueryPanicked {
            message: r.str("error message")?,
        },
        t => {
            return Err(WireError::UnknownTag {
                what: "unn error variant",
                tag: t,
            })
        }
    };
    r.expect_end()?;
    Ok(err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantify_outcomes_round_trip() {
        let outcomes = vec![
            QuantifyOutcome::Exact {
                pi: vec![0.25, 0.75],
                method: QuantifyMethod::ExactSweep,
                work: 12,
            },
            QuantifyOutcome::Exact {
                pi: vec![1.0],
                method: QuantifyMethod::MonteCarlo {
                    achieved_epsilon: 0.031_25,
                },
                work: 64,
            },
            QuantifyOutcome::Degraded {
                pi: vec![0.5, 0.25, 0.25],
                achieved_epsilon: 0.125,
                rounds_used: 96,
                work: 96,
            },
        ];
        for o in outcomes {
            let body = encode_quantify_outcome(&o);
            let back = decode_quantify_outcome(&body).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(format!("{back:?}"), format!("{o:?}"));
        }
    }

    #[test]
    fn unn_errors_round_trip() {
        let errs = vec![
            UnnError::InvalidDistribution {
                index: Some(3),
                reason: "empty support".into(),
            },
            UnnError::InvalidDistribution {
                index: None,
                reason: "non-finite".into(),
            },
            UnnError::InvalidConfig {
                reason: "epsilon".into(),
            },
            UnnError::DegenerateGeometry {
                reason: "duplicate sites".into(),
            },
            UnnError::BudgetExhausted {
                budget: 10,
                required: 100,
            },
            UnnError::QueryPanicked {
                message: "boom".into(),
            },
        ];
        for e in errs {
            let body = encode_unn_error(&e);
            let back = decode_unn_error(&body).unwrap_or_else(|err| panic!("{err}"));
            assert_eq!(back, e);
        }
    }

    #[test]
    fn facade_decoders_are_total() {
        let body = encode_quantify_outcome(&QuantifyOutcome::Degraded {
            pi: vec![0.5, 0.5],
            achieved_epsilon: 0.1,
            rounds_used: 32,
            work: 32,
        });
        for cut in 0..body.len() {
            assert!(decode_quantify_outcome(&body[..cut]).is_err());
        }
        let body = encode_unn_error(&UnnError::BudgetExhausted {
            budget: 1,
            required: 2,
        });
        for cut in 0..body.len() {
            assert!(decode_unn_error(&body[..cut]).is_err());
        }
        // Cross-decoding: each decoder rejects the other's tag.
        assert!(
            decode_unn_error(&encode_quantify_outcome(&QuantifyOutcome::Exact {
                pi: vec![],
                method: QuantifyMethod::Spiral,
                work: 0,
            }))
            .is_err()
        );
    }
}
