//! # unn — probabilistic nearest-neighbor search over uncertain points
//!
//! A Rust implementation of *"Nearest-Neighbor Searching Under
//! Uncertainty II"* (Agarwal, Aronov, Har-Peled, Phillips, Yi, Zhang;
//! PODS 2013 / arXiv 2018), plus the expected-distance criterion of the
//! companion PODS 2012 "part I" paper.
//!
//! Uncertain points are probability distributions over locations in the
//! plane ([`Uncertain`]). For a certain query point `q`, this crate answers:
//!
//! * **nonzero NNs** ([`PnnIndex::nn_nonzero`]) — every point with nonzero
//!   probability of being the nearest neighbor of `q`;
//! * **quantification probabilities** ([`PnnIndex::quantify`],
//!   [`PnnIndex::quantify_exact`]) — the probability `π_i(q)` that `P_i` is
//!   the nearest neighbor, exactly or within additive ε;
//! * **expected-distance NN** ([`PnnIndex::expected_nn`]);
//! * **parallel batches** ([`batch`]) — every query family fanned out over
//!   a thread pool with bit-for-bit deterministic results.
//!
//! ```
//! use unn::{PnnIndex, Uncertain};
//! use unn::geom::Point;
//!
//! // Three sensors with disk-shaped position uncertainty.
//! let readings = vec![
//!     Uncertain::uniform_disk(Point::new(0.0, 0.0), 1.0),
//!     Uncertain::uniform_disk(Point::new(5.0, 1.0), 2.0),
//!     Uncertain::uniform_disk(Point::new(9.0, -2.0), 1.0),
//! ];
//! let index = PnnIndex::new(readings);
//! let q = Point::new(4.0, 0.0);
//!
//! let candidates = index.nn_nonzero(q);      // who can be the NN at all?
//! assert!(candidates.contains(&1));
//! let (probs, _method) = index.quantify(q);  // with what probability?
//! assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```
//!
//! The heavy machinery lives in the sub-crates, re-exported here:
//! [`geom`] (robust geometric primitives), [`distr`] (uncertainty models),
//! [`spatial`] (indexes), [`voronoi`] (Delaunay), [`nonzero`] (the nonzero
//! Voronoi diagram, §2–3) and [`quantify`] (probability estimators, §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod dynamic;
pub mod evd;
pub mod expected;
pub mod index;
pub mod net;
pub mod observe;
pub mod resilience;
pub mod serve;
pub mod set;
pub mod wire;

pub use batch::{query_stream_seed, BatchOptions, BatchOutcome};
pub use dynamic::{CompactionPolicy, DynamicPnnConfig, DynamicPnnIndex, DynamicSnapshot, PointId};
pub use evd::ExpectedVoronoi;
pub use expected::ExpectedNnIndex;
pub use index::{PnnConfig, PnnIndex, QuantifyMethod};
pub use resilience::{QuantifyOutcome, QueryBudget, UnnError, ValidationPolicy};
pub use set::{LabeledIndex, UncertainSet};
pub use unn_distr::{
    ChaosDistribution, ChaosMode, DiscreteDistribution, DistrError, HistogramDistribution,
    TruncatedGaussian, Uncertain, UncertainPoint, UniformDisk, UniformPolygon,
};
pub use unn_quantify::AdaptiveQuantify;

/// Re-export of the uncertainty models.
pub use unn_distr as distr;
/// Re-export of the geometry substrate.
pub use unn_geom as geom;
/// Re-export of the nonzero Voronoi machinery (paper §2–3).
pub use unn_nonzero as nonzero;
/// Re-export of the quantification estimators (paper §4).
pub use unn_quantify as quantify;
/// Re-export of the spatial indexes.
pub use unn_spatial as spatial;
/// Re-export of the Delaunay/Voronoi substrate.
pub use unn_voronoi as voronoi;
