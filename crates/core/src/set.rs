//! A labeled collection of uncertain points — the ergonomic entry point.
//!
//! [`UncertainSet`] pairs each uncertain point with a caller-supplied label
//! (vehicle id, track id, …) and builds a [`PnnIndex`] whose answers can be
//! reported back in terms of those labels.

use unn_distr::Uncertain;
use unn_geom::Point;

use crate::index::{PnnConfig, PnnIndex, QuantifyMethod};

/// Builder for a labeled set of uncertain points.
#[derive(Default)]
pub struct UncertainSet<L> {
    labels: Vec<L>,
    points: Vec<Uncertain>,
}

impl<L> UncertainSet<L> {
    /// An empty set.
    pub fn new() -> Self {
        UncertainSet {
            labels: Vec::new(),
            points: Vec::new(),
        }
    }

    /// Adds a labeled uncertain point; returns its index.
    pub fn push(&mut self, label: L, point: Uncertain) -> usize {
        self.labels.push(label);
        self.points.push(point);
        self.points.len() - 1
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points were added.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Labels in insertion order.
    pub fn labels(&self) -> &[L] {
        &self.labels
    }

    /// Builds the query index, consuming the set.
    pub fn build(self) -> LabeledIndex<L> {
        self.build_with(PnnConfig::default())
    }

    /// Builds with an explicit configuration.
    pub fn build_with(self, config: PnnConfig) -> LabeledIndex<L> {
        LabeledIndex {
            index: PnnIndex::build(self.points, config),
            labels: self.labels,
        }
    }
}

impl<L> Extend<(L, Uncertain)> for UncertainSet<L> {
    fn extend<T: IntoIterator<Item = (L, Uncertain)>>(&mut self, iter: T) {
        for (l, p) in iter {
            self.push(l, p);
        }
    }
}

impl<L> FromIterator<(L, Uncertain)> for UncertainSet<L> {
    fn from_iter<T: IntoIterator<Item = (L, Uncertain)>>(iter: T) -> Self {
        let mut s = UncertainSet::new();
        s.extend(iter);
        s
    }
}

/// A [`PnnIndex`] that reports answers with the caller's labels.
pub struct LabeledIndex<L> {
    index: PnnIndex,
    labels: Vec<L>,
}

impl<L> LabeledIndex<L> {
    /// The underlying index (full query surface).
    pub fn index(&self) -> &PnnIndex {
        &self.index
    }

    /// The label of point `i`.
    pub fn label(&self, i: usize) -> &L {
        &self.labels[i]
    }

    /// `NN≠0(q)` as labels.
    pub fn nn_nonzero(&self, q: Point) -> Vec<&L> {
        self.index
            .nn_nonzero(q)
            .into_iter()
            .map(|i| &self.labels[i])
            .collect()
    }

    /// Quantification probabilities as `(label, π̂)`, positive entries only,
    /// sorted by decreasing probability.
    pub fn quantify(&self, q: Point) -> (Vec<(&L, f64)>, QuantifyMethod) {
        let (pi, method) = self.index.quantify(q);
        let mut out: Vec<(usize, f64)> = pi
            .into_iter()
            .enumerate()
            .filter(|&(_, p)| p > 0.0)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        (
            out.into_iter().map(|(i, p)| (&self.labels[i], p)).collect(),
            method,
        )
    }

    /// The most probable nearest neighbor's label and probability.
    pub fn most_probable_nn(&self, q: Point) -> Option<(&L, f64)> {
        self.index
            .most_probable_nn(q)
            .map(|(i, p)| (&self.labels[i], p))
    }

    /// The guaranteed nearest neighbor's label, if one exists.
    pub fn guaranteed_nn(&self, q: Point) -> Option<&L> {
        self.index.guaranteed_nn(q).map(|i| &self.labels[i])
    }

    /// The expected-distance NN's label and expected distance.
    pub fn expected_nn(&self, q: Point) -> Option<(&L, f64)> {
        self.index.expected_nn(q).map(|(i, d)| (&self.labels[i], d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_round_trip() {
        let mut set = UncertainSet::new();
        set.push("alpha", Uncertain::uniform_disk(Point::new(0.0, 0.0), 1.0));
        set.push("beta", Uncertain::uniform_disk(Point::new(10.0, 0.0), 1.0));
        set.push("gamma", Uncertain::certain(Point::new(5.0, 8.0)));
        assert_eq!(set.len(), 3);
        let idx = set.build();
        let q = Point::new(1.0, 0.0);
        let names = idx.nn_nonzero(q);
        assert_eq!(names, vec![&"alpha"]);
        let (probs, _) = idx.quantify(q);
        assert_eq!(*probs[0].0, "alpha");
        assert!((probs[0].1 - 1.0).abs() < 1e-9);
        assert_eq!(idx.guaranteed_nn(q), Some(&"alpha"));
        assert_eq!(idx.most_probable_nn(q).unwrap().0, &"alpha");
        assert_eq!(idx.expected_nn(q).unwrap().0, &"alpha");
    }

    #[test]
    fn from_iterator() {
        let set: UncertainSet<usize> = (0..5)
            .map(|i| (i, Uncertain::certain(Point::new(i as f64 * 3.0, 0.0))))
            .collect();
        let idx = set.build();
        assert_eq!(idx.nn_nonzero(Point::new(6.1, 0.0)), vec![&2]);
    }

    #[test]
    fn quantify_sorted_descending() {
        let mut set = UncertainSet::new();
        set.push(1u32, Uncertain::uniform_disk(Point::new(0.0, 0.0), 2.0));
        set.push(2u32, Uncertain::uniform_disk(Point::new(3.0, 0.0), 2.0));
        set.push(3u32, Uncertain::uniform_disk(Point::new(50.0, 0.0), 1.0));
        let idx = set.build();
        let (probs, _) = idx.quantify(Point::new(1.0, 0.0));
        for w in probs.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // The far point never appears.
        assert!(probs.iter().all(|(l, _)| **l != 3));
    }
}
