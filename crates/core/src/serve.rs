//! Façade over the [`unn_serve`] sharded serving tier.
//!
//! [`unn_serve`] speaks its own vocabulary (it sits below this crate in the
//! dependency graph); this module translates it into the core resilience
//! types so applications can stay inside one error and outcome model:
//!
//! * [`ServeError`] converts into [`UnnError`] (`From`);
//! * a serving [`Reply`] converts into the familiar
//!   [`QuantifyOutcome`] via [`outcome_from_reply`] — `Exact` stays exact,
//!   the adaptive/capped tiers become [`QuantifyOutcome::Degraded`] with
//!   the honest `achieved_epsilon` the surviving rounds certify, and a shed
//!   reply becomes a typed [`UnnError`];
//! * [`serve_config`] derives a [`ServeConfig`] from a
//!   [`DynamicPnnConfig`], and [`insert_policy`] maps
//!   [`ValidationPolicy`] onto the serving tier's insert policies.

pub use unn_serve::{
    AdmissionConfig, BreakerConfig, BreakerState, ChaosShard, CircuitBreaker, DispatchConfig,
    Dispatcher, EngineShard, ExactView, FaultKind, FeedbackConfig, InsertPolicy, Outcome, Reply,
    Request, RetryPolicy, ServeConfig, ServeError, ShardBackend, ShardPolicy, ShardSet,
    ShardSetSnapshot, ShedReason,
};

use crate::dynamic::DynamicPnnConfig;
use crate::index::QuantifyMethod;
use crate::resilience::{QuantifyOutcome, UnnError, ValidationPolicy};

impl From<ServeError> for UnnError {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::InvalidConfig { reason } => UnnError::InvalidConfig { reason },
            ServeError::InvalidPoint { reason } => UnnError::InvalidDistribution {
                index: None,
                reason,
            },
            ServeError::InsertPanicked { message } => UnnError::QueryPanicked { message },
        }
    }
}

/// The [`ServeConfig`] that makes a shard set behave like a
/// [`DynamicPnnIndex`](crate::DynamicPnnIndex) built from `cfg` (same seed,
/// round count, compaction, and accuracy targets).
pub fn serve_config(cfg: &DynamicPnnConfig) -> ServeConfig {
    ServeConfig {
        seed: cfg.base.seed,
        mc_rounds: cfg.mc_rounds.clamp(1, cfg.base.max_mc_rounds.max(1)),
        max_dead_fraction: cfg.max_dead_fraction,
        policy: cfg.policy,
        hot_promote_ratio: cfg.hot_promote_ratio,
        filter: cfg.filter,
        epsilon: cfg.base.epsilon,
        delta: cfg.base.delta,
        numeric_steps: cfg.base.numeric_steps,
        adaptive_min_rounds: cfg.base.adaptive_min_rounds,
    }
}

/// Maps the core validation policy onto the serving insert policy.
pub fn insert_policy(policy: ValidationPolicy) -> InsertPolicy {
    match policy {
        ValidationPolicy::Strict => InsertPolicy::Strict,
        ValidationPolicy::Repair => InsertPolicy::Repair,
    }
}

/// Translates a serving [`Reply`] for a quantification request into the
/// core [`QuantifyOutcome`] vocabulary. Work is accounted as Monte-Carlo
/// rounds for the degraded tiers and as the layout size for exact answers.
///
/// * `Exact` → [`QuantifyOutcome::Exact`];
/// * `Adaptive`/`Capped` → [`QuantifyOutcome::Degraded`] carrying the
///   honest `achieved_epsilon`;
/// * `Shed` → a typed error: [`UnnError::BudgetExhausted`] for capacity or
///   deadline sheds, [`UnnError::DegenerateGeometry`] for an invalid query,
///   [`UnnError::QueryPanicked`] when no shard survived to answer;
/// * an NN≠0 reply is a contract violation → [`UnnError::InvalidConfig`].
pub fn outcome_from_reply(reply: &Reply) -> Result<QuantifyOutcome, UnnError> {
    match &reply.outcome {
        Outcome::Exact { pi } => Ok(QuantifyOutcome::Exact {
            pi: pi.clone(),
            method: QuantifyMethod::ExactSweep,
            work: reply.layout.len() as u64,
        }),
        Outcome::Adaptive {
            pi,
            achieved_epsilon,
            rounds_used,
        }
        | Outcome::Capped {
            pi,
            achieved_epsilon,
            rounds_used,
        } => Ok(QuantifyOutcome::Degraded {
            pi: pi.clone(),
            achieved_epsilon: *achieved_epsilon,
            rounds_used: *rounds_used,
            work: *rounds_used as u64,
        }),
        Outcome::Shed { reason } => Err(match reason {
            ShedReason::CapacityExhausted | ShedReason::DeadlineExceeded => {
                UnnError::BudgetExhausted {
                    budget: 0,
                    required: reply.total_live as u64,
                }
            }
            ShedReason::InvalidQuery => UnnError::DegenerateGeometry {
                reason: "non-finite query point".into(),
            },
            ShedReason::NoCoverage => UnnError::QueryPanicked {
                message: "every shard failed; no coverage to answer from".into(),
            },
        }),
        Outcome::Nonzero { .. } => Err(UnnError::InvalidConfig {
            reason: "outcome_from_reply expects a quantification reply".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::QueryBudget;
    use std::sync::Arc;
    use unn_geom::Point;
    use unn_observe::NullClock;

    fn build_set(n: usize) -> ShardSet {
        let cfg = serve_config(&DynamicPnnConfig {
            mc_rounds: 64,
            ..DynamicPnnConfig::default()
        });
        let mut set = ShardSet::new(3, ShardPolicy::Hash, cfg).unwrap_or_else(|e| panic!("{e}"));
        for i in 0..n {
            set.insert(crate::Uncertain::uniform_disk(
                Point::new((i % 6) as f64 * 2.0, (i / 6) as f64 * 2.0),
                0.4,
            ));
        }
        set
    }

    #[test]
    fn facade_reply_maps_to_quantify_outcome() {
        let set = build_set(14);
        let snap = set.snapshot();
        let mut d = Dispatcher::for_snapshot(&snap, DispatchConfig::default(), Arc::new(NullClock))
            .unwrap_or_else(|e| panic!("{e}"));
        let q = Point::new(1.0, 1.0);
        let replies = d.serve(&[Request::Quantify(q)]);
        let outcome = outcome_from_reply(&replies[0]).unwrap_or_else(|e| panic!("{e}"));
        assert!(
            !outcome.is_degraded(),
            "healthy full-capacity serve is exact"
        );
        // The probabilities agree with the unsharded budget path's exact tier.
        let idx: crate::DynamicPnnIndex = {
            let mut ix = crate::DynamicPnnIndex::with_config(DynamicPnnConfig {
                mc_rounds: 64,
                ..DynamicPnnConfig::default()
            })
            .unwrap_or_else(|e| panic!("{e}"));
            for i in 0..14usize {
                ix.insert(crate::Uncertain::uniform_disk(
                    Point::new((i % 6) as f64 * 2.0, (i / 6) as f64 * 2.0),
                    0.4,
                ));
            }
            ix
        };
        let oracle = idx
            .snapshot()
            .quantify_within(q, QueryBudget::unlimited())
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(outcome.pi(), oracle.pi());
    }

    #[test]
    fn shed_replies_become_typed_errors() {
        let set = build_set(6);
        let snap = set.snapshot();
        let cfg = DispatchConfig {
            admission: AdmissionConfig {
                work_capacity: 0,
                ..AdmissionConfig::default()
            },
            ..DispatchConfig::default()
        };
        let mut d = Dispatcher::for_snapshot(&snap, cfg, Arc::new(NullClock))
            .unwrap_or_else(|e| panic!("{e}"));
        let replies = d.serve(&[
            Request::Quantify(Point::new(0.0, 0.0)),
            Request::Quantify(Point::new(f64::NAN, 0.0)),
        ]);
        assert!(matches!(
            outcome_from_reply(&replies[0]),
            Err(UnnError::BudgetExhausted { .. })
        ));
        assert!(matches!(
            outcome_from_reply(&replies[1]),
            Err(UnnError::DegenerateGeometry { .. })
        ));
        let err: UnnError = ServeError::InvalidPoint { reason: "x".into() }.into();
        assert!(matches!(err, UnnError::InvalidDistribution { .. }));
    }
}
