//! Typed errors, validation policy, and per-query budgets.
//!
//! The resilience layer gives the whole pipeline one failure vocabulary:
//!
//! * [`UnnError`] — every way a build or query can fail, as data. The
//!   `try_*` entry points ([`crate::PnnIndex::try_build`],
//!   [`crate::PnnIndex::try_nn_nonzero`],
//!   [`crate::PnnIndex::quantify_guarded`], the `*_isolated` batch
//!   methods) guarantee that no panic escapes them — a caught panic is
//!   converted to [`UnnError::QueryPanicked`].
//! * [`ValidationPolicy`] — what to do with invalid or degenerate inputs at
//!   build time: reject ([`ValidationPolicy::Strict`]) or fix what is
//!   fixable ([`ValidationPolicy::Repair`]).
//! * [`QueryBudget`] and [`QuantifyOutcome`] — graceful degradation: when
//!   an exact answer does not fit the work budget, the query falls back to
//!   capped adaptive Monte-Carlo and reports the accuracy it *actually*
//!   certified ([`QuantifyOutcome::Degraded`]) instead of silently
//!   overrunning or failing.
//!
//! Budgets are counted in deterministic *work units*, not wall-clock time,
//! so budgeted results remain pure functions of `(index, query, budget)`
//! and the batch determinism contract extends to degraded answers.

use unn_distr::discrete::DiscreteError;
use unn_distr::DistrError;
use unn_nonzero::NonzeroError;
use unn_quantify::QuantifyError;
use unn_voronoi::VoronoiError;

use crate::index::QuantifyMethod;

/// Every way an `unn` build or query can fail.
#[derive(Clone, Debug, PartialEq)]
pub enum UnnError {
    /// An input distribution failed validation (non-finite coordinates,
    /// empty or non-positive-weight support, …).
    InvalidDistribution {
        /// Index of the offending point in the input, when attributable.
        index: Option<usize>,
        /// Human-readable cause.
        reason: String,
    },
    /// A configuration parameter is out of its documented range.
    InvalidConfig {
        /// Human-readable cause.
        reason: String,
    },
    /// The input geometry is degenerate for the requested structure
    /// (duplicate sites under [`ValidationPolicy::Strict`], non-finite
    /// query coordinates, …).
    DegenerateGeometry {
        /// Human-readable cause.
        reason: String,
    },
    /// A budgeted query could not produce even a degraded answer within
    /// the budget.
    BudgetExhausted {
        /// The effective budget that was available (work units).
        budget: u64,
        /// The minimum work the cheapest fallback would have needed.
        required: u64,
    },
    /// A query panicked; the panic was caught at the API boundary (the
    /// `try_*` / `*_isolated` entry points) and converted.
    QueryPanicked {
        /// Best-effort panic payload message.
        message: String,
    },
}

impl core::fmt::Display for UnnError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            UnnError::InvalidDistribution {
                index: Some(i),
                reason,
            } => {
                write!(f, "invalid distribution at index {i}: {reason}")
            }
            UnnError::InvalidDistribution {
                index: None,
                reason,
            } => {
                write!(f, "invalid distribution: {reason}")
            }
            UnnError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            UnnError::DegenerateGeometry { reason } => write!(f, "degenerate geometry: {reason}"),
            UnnError::BudgetExhausted { budget, required } => {
                write!(
                    f,
                    "budget exhausted: {budget} work units available, cheapest fallback needs {required}"
                )
            }
            UnnError::QueryPanicked { message } => write!(f, "query panicked: {message}"),
        }
    }
}

impl std::error::Error for UnnError {}

impl From<DistrError> for UnnError {
    fn from(e: DistrError) -> Self {
        UnnError::InvalidDistribution {
            index: None,
            reason: e.to_string(),
        }
    }
}

impl From<DiscreteError> for UnnError {
    fn from(e: DiscreteError) -> Self {
        UnnError::InvalidDistribution {
            index: None,
            reason: e.to_string(),
        }
    }
}

impl From<NonzeroError> for UnnError {
    fn from(e: NonzeroError) -> Self {
        let index = match &e {
            NonzeroError::NonFiniteDisk { index }
            | NonzeroError::NegativeRadius { index, .. }
            | NonzeroError::EmptySupport { index }
            | NonzeroError::NonFiniteLocation { index, .. } => Some(*index),
        };
        UnnError::InvalidDistribution {
            index,
            reason: e.to_string(),
        }
    }
}

impl From<QuantifyError> for UnnError {
    fn from(e: QuantifyError) -> Self {
        match e {
            QuantifyError::DegenerateInput(reason) => UnnError::DegenerateGeometry { reason },
            QuantifyError::Panicked(message) => UnnError::QueryPanicked { message },
        }
    }
}

impl From<VoronoiError> for UnnError {
    fn from(e: VoronoiError) -> Self {
        UnnError::DegenerateGeometry {
            reason: e.to_string(),
        }
    }
}

/// What [`crate::PnnIndex::try_build`] does with invalid or degenerate
/// inputs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValidationPolicy {
    /// Reject: any invalid distribution or duplicate point is a typed
    /// error. On clean inputs, `Strict` and `Repair` build *identical*
    /// indexes (asserted by the degenerate-geometry property tests).
    #[default]
    Strict,
    /// Fix what is fixable, reject the rest:
    ///
    /// * discrete supports are repaired location-wise — non-finite
    ///   locations and non-positive weights dropped, exact duplicate
    ///   locations merged (weights summed), the rest renormalized; a
    ///   support with nothing salvageable is still an error;
    /// * exact duplicate *points* (identical distributions) are deduped,
    ///   keeping the first occurrence — the built index then holds fewer
    ///   points than the input and indices refer to the deduped set
    ///   ([`crate::PnnIndex::points`] shows what was kept);
    /// * everything else behaves like [`ValidationPolicy::Strict`].
    Repair,
}

/// A deterministic per-query work budget.
///
/// Work units are counted in *location touches*: the exact discrete sweep
/// costs its total location count `N`, numeric integration costs
/// `numeric_steps · n`, and one Monte-Carlo round costs `1` (its per-round
/// search is logarithmic, amortized below one location touch per round on
/// the instances the cap matters for). The two fields are capped jointly:
/// the effective budget is their minimum. `deadline_proxy` exists so
/// callers with a latency target can derive a second, tighter cap from a
/// calibrated work-per-second rate without giving up determinism — wall
/// clock never enters the query path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryBudget {
    /// Hard cap on work units.
    pub max_work: u64,
    /// Deadline expressed as work units (a calibrated time proxy).
    pub deadline_proxy: u64,
}

impl QueryBudget {
    /// No limit: budgeted entry points behave like their exact
    /// counterparts.
    pub fn unlimited() -> Self {
        QueryBudget {
            max_work: u64::MAX,
            deadline_proxy: u64::MAX,
        }
    }

    /// A pure work cap with no deadline component.
    pub fn with_work(max_work: u64) -> Self {
        QueryBudget {
            max_work,
            deadline_proxy: u64::MAX,
        }
    }

    /// The binding constraint: `min(max_work, deadline_proxy)`.
    pub fn effective(&self) -> u64 {
        self.max_work.min(self.deadline_proxy)
    }
}

impl Default for QueryBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// A budgeted quantification answer ([`crate::PnnIndex::quantify_within`]).
#[derive(Clone, Debug, PartialEq)]
pub enum QuantifyOutcome {
    /// The exact (or configured-ε) answer fit the budget.
    Exact {
        /// The probabilities `π_i(q)`.
        pi: Vec<f64>,
        /// Which estimator produced them.
        method: QuantifyMethod,
        /// Work units spent.
        work: u64,
    },
    /// The exact answer did not fit; capped adaptive Monte-Carlo ran
    /// instead and certifies the (honest, possibly large) accuracy below.
    Degraded {
        /// The estimated probabilities `π̂_i(q)`.
        pi: Vec<f64>,
        /// The certified half-width at stopping: with probability
        /// `≥ 1 − δ`, every `|π̂_i − π_i|` is at most this.
        achieved_epsilon: f64,
        /// Monte-Carlo rounds consumed.
        rounds_used: usize,
        /// Work units spent.
        work: u64,
    },
}

impl QuantifyOutcome {
    /// The probability vector, whichever path produced it.
    pub fn pi(&self) -> &[f64] {
        match self {
            QuantifyOutcome::Exact { pi, .. } | QuantifyOutcome::Degraded { pi, .. } => pi,
        }
    }

    /// `true` when the budget forced the fallback path.
    pub fn is_degraded(&self) -> bool {
        matches!(self, QuantifyOutcome::Degraded { .. })
    }

    /// Work units spent producing the answer.
    pub fn work(&self) -> u64 {
        match self {
            QuantifyOutcome::Exact { work, .. } | QuantifyOutcome::Degraded { work, .. } => *work,
        }
    }
}
