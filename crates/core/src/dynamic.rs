//! Dynamic probabilistic-NN index: the [`unn_dynamic`] engine behind the
//! crate's user-facing conventions (validation policies, query budgets,
//! batch determinism).
//!
//! [`DynamicPnnIndex`] maintains a live set of uncertain points under
//! [`insert`](DynamicPnnIndex::insert) / [`remove`](DynamicPnnIndex::remove)
//! with the Bentley–Saxe logarithmic method: geometrically-sized immutable
//! blocks, merge cascades on insert, tombstones plus threshold-triggered
//! compaction on remove — amortized O(polylog) rebuild work per update
//! instead of the static index's full O(s·n) rebuild.
//!
//! Queries run on a [`DynamicSnapshot`] — a cheap `Arc`-backed frozen view
//! that later mutations cannot perturb — and are **bit-identical for any
//! block decomposition of the same live set**: `NN≠0` composes the global
//! pruning threshold across blocks (Lemma 2.1), and Monte-Carlo rounds key
//! every point's sample stream by its stable [`PointId`], extending the
//! [`query_stream_seed`](crate::batch::query_stream_seed) determinism
//! contract from batch position to point identity.
//!
//! ```
//! use unn::dynamic::DynamicPnnIndex;
//! use unn::geom::Point;
//! use unn::Uncertain;
//!
//! let mut index = DynamicPnnIndex::new();
//! let a = index.insert(Uncertain::uniform_disk(Point::new(0.0, 0.0), 1.0));
//! let b = index.insert(Uncertain::uniform_disk(Point::new(5.0, 0.0), 1.0));
//! let snap = index.snapshot();
//! let q = Point::new(1.0, 0.0);
//! assert_eq!(snap.nn_nonzero(q), vec![a]);
//!
//! index.remove(a);
//! // The old snapshot is frozen; a fresh one sees the removal.
//! assert_eq!(snap.nn_nonzero(q), vec![a]);
//! assert_eq!(index.snapshot().nn_nonzero(q), vec![b]);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

use rayon::prelude::*;
use unn_distr::{DiscreteDistribution, Uncertain};
use unn_dynamic::{DynamicEngine, DynamicError, EngineConfig, EngineSnapshot};
use unn_geom::Point;
use unn_quantify::{
    adaptive_over_winners, quantification_exact, quantification_numeric, AdaptiveQuantify,
    MonteCarloIndex,
};

use crate::batch::BatchOptions;
use crate::index::{PnnConfig, QuantifyMethod};
use crate::resilience::{QuantifyOutcome, QueryBudget, UnnError, ValidationPolicy};

pub use unn_dynamic::{CompactionPolicy, DynamicStats, FilterPrecision, PointId};

/// Configuration for [`DynamicPnnIndex`]: the static query parameters plus
/// the dynamic lifecycle knobs.
#[derive(Clone, Debug)]
pub struct DynamicPnnConfig {
    /// Seed, ε/δ targets, numeric resolution, adaptive schedule — shared
    /// with the static [`crate::PnnIndex`].
    pub base: PnnConfig,
    /// Monte-Carlo rounds instantiated per block (additionally capped by
    /// `base.max_mc_rounds`). Every block holds the same round count, so
    /// per-round winners compose across blocks.
    pub mc_rounds: usize,
    /// Compact everything into one block once tombstones exceed this
    /// fraction of stored slots. Must lie in `(0, 1)`.
    pub max_dead_fraction: f64,
    /// How inserts reshape the block set: classic Bentley–Saxe cascades
    /// ([`CompactionPolicy::Logarithmic`], the default), a hard cap on block
    /// count ([`CompactionPolicy::Tiered`], `max_blocks >= 1`), or a single
    /// always-merged block ([`CompactionPolicy::MergeToOne`]). Every policy
    /// yields bit-identical query answers — this knob trades update cost
    /// against read-path fan-out.
    pub policy: CompactionPolicy,
    /// Hot-block promotion: when `Some(r)`, a mutation arriving after at
    /// least `r` snapshot reads per update since the last promotion
    /// collapses the structure into one block (read-heavy phases buy the
    /// single-block read path without paying it on every insert). Must be
    /// finite and positive. `None` (the default) disables promotion.
    pub hot_promote_ratio: Option<f64>,
    /// Distance-fill precision tier of every block's scan structures
    /// ([`FilterPrecision`]): `F32Refined` runs the batched fill phase over
    /// f32 shadow arenas with exact f64 refinement of near-threshold
    /// candidates — bit-identical answers, only faster. `F64` (the default)
    /// is the historical exact kernel.
    pub filter: FilterPrecision,
}

impl Default for DynamicPnnConfig {
    fn default() -> Self {
        DynamicPnnConfig {
            base: PnnConfig::default(),
            mc_rounds: 1024,
            max_dead_fraction: 0.25,
            policy: CompactionPolicy::Logarithmic,
            hot_promote_ratio: None,
            filter: FilterPrecision::F64,
        }
    }
}

impl DynamicPnnConfig {
    /// Checks every parameter against its documented range.
    pub fn validate(&self) -> Result<(), UnnError> {
        self.base.validate()?;
        if self.mc_rounds == 0 {
            return Err(UnnError::InvalidConfig {
                reason: "mc_rounds must be at least 1".into(),
            });
        }
        if !(self.max_dead_fraction > 0.0 && self.max_dead_fraction < 1.0) {
            return Err(UnnError::InvalidConfig {
                reason: format!(
                    "max_dead_fraction must be in (0, 1), got {}",
                    self.max_dead_fraction
                ),
            });
        }
        if let CompactionPolicy::Tiered { max_blocks } = self.policy {
            if max_blocks == 0 {
                return Err(UnnError::InvalidConfig {
                    reason: "Tiered policy needs max_blocks >= 1".into(),
                });
            }
        }
        if let Some(r) = self.hot_promote_ratio {
            if !(r.is_finite() && r > 0.0) {
                return Err(UnnError::InvalidConfig {
                    reason: format!("hot_promote_ratio must be finite and positive, got {r}"),
                });
            }
        }
        Ok(())
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            seed: self.base.seed,
            mc_rounds: self.mc_rounds.min(self.base.max_mc_rounds).max(1),
            max_dead_fraction: self.max_dead_fraction,
            policy: self.policy,
            hot_promote_ratio: self.hot_promote_ratio,
            filter: self.filter,
        }
    }
}

/// Dynamic probabilistic nearest-neighbor index (see the module docs).
///
/// Mutations take `&mut self`; queries go through cheap frozen
/// [`DynamicPnnIndex::snapshot`]s, which are `Send + Sync + Clone` and can
/// be fanned out across threads.
pub struct DynamicPnnIndex {
    engine: DynamicEngine,
    config: DynamicPnnConfig,
}

impl Default for DynamicPnnIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl DynamicPnnIndex {
    /// An empty index with the default configuration.
    pub fn new() -> Self {
        let config = DynamicPnnConfig::default();
        DynamicPnnIndex {
            engine: DynamicEngine::new(config.engine_config()),
            config,
        }
    }

    /// An empty index with a validated configuration.
    pub fn with_config(config: DynamicPnnConfig) -> Result<Self, UnnError> {
        config.validate()?;
        Ok(DynamicPnnIndex {
            engine: DynamicEngine::new(config.engine_config()),
            config,
        })
    }

    /// Builds from an initial point set (ids `0..points.len()` in order),
    /// validating the configuration first. The initial set lands as one
    /// block (a single build instead of an insert cascade), which makes
    /// bootstrap affordable even under [`CompactionPolicy::MergeToOne`];
    /// query answers are bit-identical either way.
    pub fn from_points(points: Vec<Uncertain>, config: DynamicPnnConfig) -> Result<Self, UnnError> {
        let mut index = Self::with_config(config)?;
        index.bulk_insert(points);
        Ok(index)
    }

    /// Inserts a batch of points as **one** block build, returning their
    /// fresh consecutive ids. Equivalent to inserting one-by-one (same ids,
    /// bit-identical query answers) at a fraction of the rebuild cost.
    pub fn bulk_insert(&mut self, points: Vec<Uncertain>) -> Vec<PointId> {
        self.engine.bulk_insert(points)
    }

    /// Inserts a point under a fresh id and returns it. Amortized
    /// O(polylog) block-rebuild work per call.
    pub fn insert(&mut self, point: Uncertain) -> PointId {
        self.engine.insert(point)
    }

    /// Inserts under a caller-chosen id. Ids of removed points may be
    /// re-used; a currently-live collision is rejected.
    pub fn insert_with_id(&mut self, id: PointId, point: Uncertain) -> Result<(), UnnError> {
        self.engine.insert_with_id(id, point).map_err(|e| match e {
            DynamicError::IdInUse { id } => UnnError::DegenerateGeometry {
                reason: format!("point id {id} is already live"),
            },
        })
    }

    /// Validating insert, mirroring [`crate::PnnIndex::try_build`]'s
    /// per-point boundary: `Strict` rejects invalid distributions, `Repair`
    /// fixes what it can; either failure surfaces as
    /// [`UnnError::InvalidDistribution`] (with no index — the point never
    /// joined the set).
    ///
    /// Validation cannot catch a distribution whose *sampler* panics (a
    /// `Chaos` wrapper delegates validation to its healthy inner model), so
    /// the block build runs under `catch_unwind` and a sampling panic comes
    /// back as [`UnnError::QueryPanicked`]. The engine orders every
    /// mutation after the panic-prone build step, so a caught panic leaves
    /// the index exactly as it was — live set, epoch, and counters
    /// untouched, later churn and queries unaffected.
    pub fn try_insert(
        &mut self,
        point: Uncertain,
        policy: ValidationPolicy,
    ) -> Result<PointId, UnnError> {
        let ok = match policy {
            ValidationPolicy::Strict => point.validate().map(|()| point),
            ValidationPolicy::Repair => point.repair(),
        };
        match ok {
            Ok(p) => {
                let engine = &mut self.engine;
                // AssertUnwindSafe: on Err the engine is still consistent by
                // the build-before-mutate ordering documented above.
                catch_unwind(AssertUnwindSafe(|| engine.insert(p))).map_err(|payload| {
                    UnnError::QueryPanicked {
                        message: unn_quantify::panic_message(payload),
                    }
                })
            }
            Err(e) => Err(UnnError::InvalidDistribution {
                index: None,
                reason: e.to_string(),
            }),
        }
    }

    /// Tombstones `id`; returns `false` if no live point carries it.
    pub fn remove(&mut self, id: PointId) -> bool {
        self.engine.remove(id)
    }

    /// True if `id` is currently live.
    pub fn contains(&self, id: PointId) -> bool {
        self.engine.contains(id)
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// True when no point is live.
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }

    /// Monotone version counter; bumps on every successful mutation.
    pub fn epoch(&self) -> u64 {
        self.engine.epoch()
    }

    /// Block/lifecycle counters (merges, compactions, tombstones, …).
    pub fn stats(&self) -> DynamicStats {
        self.engine.stats()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DynamicPnnConfig {
        &self.config
    }

    /// Monte-Carlo rounds instantiated per block.
    pub fn mc_rounds(&self) -> usize {
        self.engine.rounds()
    }

    /// A consistent frozen view of the current live set. O(n) to take,
    /// shares all block storage; later mutations never perturb it.
    pub fn snapshot(&self) -> DynamicSnapshot {
        DynamicSnapshot {
            inner: Arc::new(SnapInner {
                core: self.engine.snapshot(),
                merged: OnceLock::new(),
            }),
            epsilon: self.config.base.epsilon,
            delta: self.config.base.delta,
            numeric_steps: self.config.base.numeric_steps,
            adaptive_min_rounds: self.config.base.adaptive_min_rounds,
        }
    }

    /// One-shot [`DynamicSnapshot::nn_nonzero`] on a fresh snapshot.
    pub fn nn_nonzero(&self, q: Point) -> Vec<PointId> {
        self.snapshot().nn_nonzero(q)
    }

    /// One-shot [`DynamicSnapshot::quantify`] on a fresh snapshot.
    pub fn quantify(&self, q: Point) -> (Vec<f64>, QuantifyMethod) {
        self.snapshot().quantify(q)
    }

    /// One-shot [`DynamicSnapshot::quantify_exact`] on a fresh snapshot.
    pub fn quantify_exact(&self, q: Point) -> (Vec<f64>, QuantifyMethod) {
        self.snapshot().quantify_exact(q)
    }

    /// One-shot [`DynamicSnapshot::quantify_within`] on a fresh snapshot.
    pub fn quantify_within(
        &self,
        q: Point,
        budget: QueryBudget,
    ) -> Result<QuantifyOutcome, UnnError> {
        self.snapshot().quantify_within(q, budget)
    }
}

/// The lazily-materialized merged live view (exact quantification needs the
/// points densely, in live-id order).
struct MergedView {
    points: Vec<Uncertain>,
    discrete: Option<Vec<DiscreteDistribution>>,
}

struct SnapInner {
    core: EngineSnapshot,
    merged: OnceLock<MergedView>,
}

/// Frozen view of a [`DynamicPnnIndex`] at one epoch.
///
/// All probability vectors are dense and indexed like
/// [`DynamicSnapshot::live_ids`] (sorted ascending), so slot `r` of a
/// result always refers to `live_ids()[r]` — a stable mapping independent
/// of block layout. Cloning is O(1) (shared `Arc`).
#[derive(Clone)]
pub struct DynamicSnapshot {
    inner: Arc<SnapInner>,
    epsilon: f64,
    delta: f64,
    numeric_steps: usize,
    adaptive_min_rounds: usize,
}

// Snapshots fan out across rayon workers in the batch methods.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DynamicPnnIndex>();
    assert_send_sync::<DynamicSnapshot>();
};

impl DynamicSnapshot {
    /// Live ids, sorted ascending — the index layout of every dense result.
    pub fn live_ids(&self) -> &[PointId] {
        self.inner.core.live_ids()
    }

    /// Number of live points in the view.
    pub fn len(&self) -> usize {
        self.inner.core.live_len()
    }

    /// True when the view holds no live points.
    pub fn is_empty(&self) -> bool {
        self.inner.core.live_len() == 0
    }

    /// Engine epoch this snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.inner.core.epoch()
    }

    /// Monte-Carlo rounds backing [`DynamicSnapshot::quantify`].
    pub fn mc_rounds(&self) -> usize {
        self.inner.core.rounds()
    }

    /// The live points in live-id order (cloned out of block storage).
    pub fn live_points(&self) -> Vec<(PointId, Uncertain)> {
        self.inner.core.live_points()
    }

    /// The accuracy the per-block round count actually guarantees: Eq. 6
    /// inverted at `s` for the live set — same honesty contract as
    /// [`crate::PnnIndex::mc_achieved_epsilon`].
    pub fn achieved_epsilon(&self) -> f64 {
        let core = &self.inner.core;
        MonteCarloIndex::epsilon_for(
            core.rounds(),
            self.delta,
            core.live_len().max(1),
            core.k_max(),
        )
    }

    fn merged(&self) -> &MergedView {
        self.inner.merged.get_or_init(|| {
            let points: Vec<Uncertain> = self
                .inner
                .core
                .live_points()
                .into_iter()
                .map(|(_, p)| p)
                .collect();
            let discrete = points.iter().map(|p| p.as_discrete().cloned()).collect();
            MergedView { points, discrete }
        })
    }

    /// `NN≠0(q)` over the live set (Lemma 2.1 composed across blocks),
    /// sorted ascending. Bit-identical to the static index on the same
    /// live set, for every block layout.
    pub fn nn_nonzero(&self, q: Point) -> Vec<PointId> {
        self.inner.core.nn_nonzero(q)
    }

    /// [`DynamicSnapshot::nn_nonzero`] through the unpruned linear fold —
    /// same floats, no shared-bound pruning. Kept as the differential
    /// oracle for the pruning test suites; prefer `nn_nonzero`.
    pub fn nn_nonzero_unpruned(&self, q: Point) -> Vec<PointId> {
        self.inner.core.nn_nonzero_unpruned(q)
    }

    /// [`DynamicSnapshot::quantify`]'s probability vector through the
    /// unpruned per-round winner fold — the differential oracle matching
    /// [`DynamicSnapshot::nn_nonzero_unpruned`].
    pub fn quantify_unpruned(&self, q: Point) -> Vec<f64> {
        self.inner.core.quantify_unpruned(q)
    }

    /// Number of blocks backing this view (compaction-policy diagnostics).
    pub fn blocks(&self) -> usize {
        self.inner.core.blocks()
    }

    /// ε-approximate quantification probabilities over the live set, from
    /// the per-block Monte-Carlo rounds. Deterministic under churn: the
    /// estimate is a pure function of `(live set, seed, q)`.
    pub fn quantify(&self, q: Point) -> (Vec<f64>, QuantifyMethod) {
        (
            self.inner.core.quantify(q),
            QuantifyMethod::MonteCarlo {
                achieved_epsilon: self.achieved_epsilon(),
            },
        )
    }

    /// Exact (all-discrete live set, Eq. 2 sweep) or high-resolution
    /// numeric (otherwise) quantification over a materialized merged view.
    pub fn quantify_exact(&self, q: Point) -> (Vec<f64>, QuantifyMethod) {
        if self.is_empty() {
            return (Vec::new(), QuantifyMethod::ExactSweep);
        }
        let merged = self.merged();
        if let Some(objs) = &merged.discrete {
            (quantification_exact(objs, q), QuantifyMethod::ExactSweep)
        } else {
            (
                quantification_numeric(&merged.points, q, self.numeric_steps),
                QuantifyMethod::NumericIntegration,
            )
        }
    }

    /// Adaptive early-stopping Monte-Carlo quantification: per-round
    /// winners compose across blocks, then run through the same
    /// doubling-checkpoint stopping rule as
    /// [`crate::PnnIndex::quantify_adaptive`].
    pub fn quantify_adaptive(&self, q: Point, eps: f64, delta: f64) -> AdaptiveQuantify {
        let winners = self.inner.core.winner_ranks(q);
        adaptive_over_winners(
            &winners,
            self.len(),
            eps,
            delta,
            self.adaptive_min_rounds,
            self.inner.core.rounds(),
        )
    }

    /// The work an exact answer costs at this view, in [`QueryBudget`]
    /// units (location touches) — same accounting as
    /// [`crate::PnnIndex::exact_work`].
    pub fn exact_work(&self) -> u64 {
        let merged = self.merged();
        if let Some(objs) = &merged.discrete {
            objs.iter().map(|o| o.len() as u64).sum()
        } else {
            self.numeric_steps as u64 * merged.points.len() as u64
        }
    }

    /// Budgeted quantification with graceful degradation, mirroring
    /// [`crate::PnnIndex::quantify_within`]: exact if it fits, else capped
    /// adaptive Monte-Carlo as [`QuantifyOutcome::Degraded`] carrying the
    /// honest certified accuracy, else [`UnnError::BudgetExhausted`] when
    /// not even one round fits.
    pub fn quantify_within(
        &self,
        q: Point,
        budget: QueryBudget,
    ) -> Result<QuantifyOutcome, UnnError> {
        let cap = budget.effective();
        if self.is_empty() {
            return Ok(QuantifyOutcome::Exact {
                pi: Vec::new(),
                method: QuantifyMethod::ExactSweep,
                work: 0,
            });
        }
        let exact_work = self.exact_work();
        if exact_work <= cap {
            let (pi, method) = self.quantify_exact(q);
            return Ok(QuantifyOutcome::Exact {
                pi,
                method,
                work: exact_work,
            });
        }
        if cap == 0 {
            return Err(UnnError::BudgetExhausted {
                budget: cap,
                required: 1,
            });
        }
        let max_rounds = usize::try_from(cap).unwrap_or(usize::MAX);
        let winners = self.inner.core.winner_ranks(q);
        let a = adaptive_over_winners(
            &winners,
            self.len(),
            self.epsilon,
            self.delta,
            self.adaptive_min_rounds,
            max_rounds,
        );
        Ok(QuantifyOutcome::Degraded {
            work: a.rounds_used as u64,
            achieved_epsilon: a.half_width,
            rounds_used: a.rounds_used,
            pi: a.pi,
        })
    }

    /// Batched [`DynamicSnapshot::nn_nonzero`] under `opts`, bit-identical
    /// to the sequential loop for every thread count.
    pub fn nn_nonzero_batch_with(
        &self,
        queries: &[Point],
        opts: &BatchOptions,
    ) -> Vec<Vec<PointId>> {
        opts.run(|| queries.par_iter().map(|&q| self.nn_nonzero(q)).collect())
    }

    /// Batched [`DynamicSnapshot::quantify`] under `opts` (probability
    /// vectors only; the method is uniform across the batch).
    pub fn quantify_batch_with(&self, queries: &[Point], opts: &BatchOptions) -> Vec<Vec<f64>> {
        opts.run(|| queries.par_iter().map(|&q| self.quantify(q).0).collect())
    }

    /// Batched [`DynamicSnapshot::quantify_adaptive`] under `opts`.
    pub fn quantify_adaptive_batch_with(
        &self,
        queries: &[Point],
        eps: f64,
        delta: f64,
        opts: &BatchOptions,
    ) -> Vec<AdaptiveQuantify> {
        opts.run(|| {
            queries
                .par_iter()
                .map(|&q| self.quantify_adaptive(q, eps, delta))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn small_config() -> DynamicPnnConfig {
        DynamicPnnConfig {
            mc_rounds: 256,
            ..DynamicPnnConfig::default()
        }
    }

    fn random_disks(seed: u64, n: usize) -> Vec<Uncertain> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Uncertain::uniform_disk(
                    Point::new(rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0)),
                    rng.random_range(0.3..2.0),
                )
            })
            .collect()
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        let mut cfg = small_config();
        cfg.mc_rounds = 0;
        assert!(matches!(
            DynamicPnnIndex::with_config(cfg).err(),
            Some(UnnError::InvalidConfig { .. })
        ));
        let mut cfg = small_config();
        cfg.max_dead_fraction = 1.5;
        assert!(matches!(
            DynamicPnnIndex::with_config(cfg).err(),
            Some(UnnError::InvalidConfig { .. })
        ));
        let mut cfg = small_config();
        cfg.base.epsilon = -1.0;
        assert!(DynamicPnnIndex::with_config(cfg).is_err());
    }

    #[test]
    fn try_insert_policies_agree_on_clean_points() {
        let mut strict =
            DynamicPnnIndex::with_config(small_config()).unwrap_or_else(|e| panic!("config: {e}"));
        let mut repair =
            DynamicPnnIndex::with_config(small_config()).unwrap_or_else(|e| panic!("config: {e}"));
        for p in random_disks(30, 6) {
            let a = strict
                .try_insert(p.clone(), ValidationPolicy::Strict)
                .unwrap_or_else(|e| panic!("strict: {e}"));
            let b = repair
                .try_insert(p, ValidationPolicy::Repair)
                .unwrap_or_else(|e| panic!("repair: {e}"));
            assert_eq!(a, b, "both policies must assign the same ids");
        }
        let q = Point::new(0.5, 0.5);
        assert_eq!(strict.nn_nonzero(q), repair.nn_nonzero(q));
        assert_eq!(strict.quantify(q).0, repair.quantify(q).0);
    }

    #[test]
    fn quantify_sums_to_one_and_matches_live_layout() {
        let mut index =
            DynamicPnnIndex::with_config(small_config()).unwrap_or_else(|e| panic!("config: {e}"));
        for p in random_disks(31, 9) {
            index.insert(p);
        }
        index.remove(4);
        let snap = index.snapshot();
        assert_eq!(snap.len(), 8);
        assert_eq!(snap.live_ids(), &[0, 1, 2, 3, 5, 6, 7, 8]);
        let q = Point::new(0.5, -0.5);
        let (pi, method) = snap.quantify(q);
        assert_eq!(pi.len(), 8);
        assert!(matches!(method, QuantifyMethod::MonteCarlo { .. }));
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn quantify_within_degrades_and_errors_like_static() {
        let mut index =
            DynamicPnnIndex::with_config(small_config()).unwrap_or_else(|e| panic!("config: {e}"));
        for p in random_disks(32, 8) {
            index.insert(p);
        }
        let snap = index.snapshot();
        let q = Point::new(0.0, 0.0);
        // Continuous set: exact costs numeric_steps * n, far over 64.
        let out = snap
            .quantify_within(q, QueryBudget::with_work(64))
            .unwrap_or_else(|e| panic!("budget 64: {e}"));
        assert!(out.is_degraded());
        let QuantifyOutcome::Degraded { rounds_used, .. } = &out else {
            unreachable!()
        };
        assert!(*rounds_used <= 64);
        assert!(matches!(
            snap.quantify_within(q, QueryBudget::with_work(0)),
            Err(UnnError::BudgetExhausted { .. })
        ));
        let exact = snap
            .quantify_within(q, QueryBudget::unlimited())
            .unwrap_or_else(|e| panic!("unlimited: {e}"));
        assert!(!exact.is_degraded());
    }

    #[test]
    fn empty_snapshot_answers_are_empty() {
        let index = DynamicPnnIndex::new();
        let snap = index.snapshot();
        let q = Point::new(1.0, 1.0);
        assert!(snap.nn_nonzero(q).is_empty());
        assert!(snap.quantify(q).0.is_empty());
        assert!(snap.quantify_exact(q).0.is_empty());
        let a = snap.quantify_adaptive(q, 0.1, 0.01);
        assert!(a.pi.is_empty() && a.rounds_used == 0);
        let out = snap
            .quantify_within(q, QueryBudget::with_work(0))
            .unwrap_or_else(|e| panic!("empty must fit any budget: {e}"));
        assert!(!out.is_degraded());
    }
}
