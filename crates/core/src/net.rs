//! Façade over the [`unn_net`] network transport.
//!
//! Everything needed to serve a [`Dispatcher`](crate::serve::Dispatcher)
//! over TCP or in-memory loopback, re-exported under the core crate:
//!
//! ```no_run
//! use std::sync::{Arc, Mutex};
//! use std::time::Duration;
//! use unn::geom::Point;
//! use unn::net::{tcp_connector, ClientConfig, NetClient, NetServer, ServerConfig};
//! use unn::observe::MonotonicClock;
//! use unn::serve::{DispatchConfig, Dispatcher, Request, ServeConfig, ShardPolicy, ShardSet};
//!
//! let mut set = ShardSet::new(3, ShardPolicy::Hash, ServeConfig::default()).unwrap();
//! set.insert(unn::Uncertain::uniform_disk(Point::new(0.0, 0.0), 1.0));
//! let clock = Arc::new(MonotonicClock);
//! let d = Dispatcher::for_snapshot(&set.snapshot(), DispatchConfig::default(), clock.clone()).unwrap();
//! let server = NetServer::bind("127.0.0.1:0", Arc::new(Mutex::new(d)), ServerConfig::default()).unwrap();
//!
//! let mut client = NetClient::new(
//!     tcp_connector(server.local_addr(), Duration::from_secs(5)),
//!     ClientConfig::default(),
//!     clock,
//! );
//! let replies = client.serve(&[Request::NnNonzero(Point::new(0.5, 0.5))]).unwrap();
//! assert_eq!(replies.len(), 1);
//! server.shutdown();
//! ```

pub use unn_net::{
    tcp_connector, ChaosDuplex, ClientConfig, ClientStats, Connection, Duplex, FrameFault,
    LoopbackDuplex, NetClient, NetError, NetServer, ServerConfig, TcpDuplex,
};
