//! Parallel batch query engine over a shared [`PnnIndex`].
//!
//! All [`PnnIndex`] query methods take `&self` and the index is
//! `Send + Sync` (statically asserted below), so a batch of queries fans
//! out over a rayon pool with every worker borrowing the same index. The
//! module guarantees:
//!
//! * **Determinism** — each batch method returns results *bit-identical* to
//!   the corresponding sequential loop, for every thread count and
//!   scheduling order. Deterministic queries (`nn_nonzero`, `quantify`,
//!   `quantify_exact`, `expected_nn`) are pure functions of `(index, q)`;
//!   the randomized [`PnnIndex::quantify_fresh_batch`] derives one RNG
//!   stream per query from `(config.seed, query_index)` (see
//!   [`query_stream_seed`]), never from shared or thread-local RNG state.
//! * **Input-order output** — result `i` always answers query `i`.
//! * **Allocation-free hot paths** — each worker carries a scratch state
//!   ([`rayon`'s `map_init`]) reused across its queries: the Lemma 2.1
//!   reporting buffers and the Eq. 2 sweep's `O(N)` working memory are
//!   allocated once per worker, not once per query.
//!
//! Thread count comes from the ambient rayon pool by default;
//! [`BatchOptions::with_threads`] pins it per call:
//!
//! ```
//! use unn::batch::BatchOptions;
//! use unn::geom::Point;
//! use unn::{PnnIndex, Uncertain};
//!
//! let index = PnnIndex::new(vec![
//!     Uncertain::uniform_disk(Point::new(0.0, 0.0), 1.0),
//!     Uncertain::uniform_disk(Point::new(5.0, 1.0), 2.0),
//! ]);
//! let queries: Vec<Point> = (0..100).map(|i| Point::new(i as f64 * 0.1, 0.0)).collect();
//! let batch = index.nn_nonzero_batch_with(&queries, &BatchOptions::with_threads(4));
//! let sequential: Vec<_> = queries.iter().map(|&q| index.nn_nonzero(q)).collect();
//! assert_eq!(batch, sequential);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use unn_geom::Point;
use unn_quantify::{quantification_exact_into, quantification_monte_carlo_into, ExactScratch};

use unn_quantify::AdaptiveQuantify;

use crate::index::{NonzeroBackend, PnnConfig, PnnIndex, QuantifyMethod};
use crate::resilience::{QuantifyOutcome, QueryBudget, UnnError};

/// Per-slot result of an `*_isolated` batch method: the query's answer, or
/// the typed error it degraded to (a caught panic, a non-finite query, …).
pub type BatchOutcome<T> = Result<T, UnnError>;

/// Runs one query under panic isolation: a panic anywhere below `f` is
/// caught here, inside the worker's closure, so the rayon worker never
/// unwinds and every other slot of the batch proceeds untouched.
pub(crate) fn isolate<T>(q: Point, f: impl FnOnce() -> T) -> BatchOutcome<T> {
    if !q.is_finite() {
        return Err(UnnError::DegenerateGeometry {
            reason: format!("query point has non-finite coordinate ({}, {})", q.x, q.y),
        });
    }
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| UnnError::QueryPanicked {
        message: unn_quantify::panic_message(payload),
    })
}

// Compile-time guarantee behind every `&self`-sharing batch method: the
// index (and the config snapshot workers read) must stay `Send + Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PnnIndex>();
    assert_send_sync::<PnnConfig>();
};

/// Execution policy for one batch call.
#[derive(Clone, Debug, Default)]
pub struct BatchOptions {
    /// Worker thread count; `None` inherits the ambient rayon pool
    /// (hardware parallelism unless inside a `ThreadPool::install`).
    pub threads: Option<usize>,
}

impl BatchOptions {
    /// Policy pinning the batch to exactly `threads` workers
    /// (`1` = sequential on the calling thread).
    pub fn with_threads(threads: usize) -> Self {
        BatchOptions {
            threads: Some(threads.max(1)),
        }
    }

    /// Runs `op` under this policy's thread pool. A pool that cannot be
    /// built (resource exhaustion) degrades to the ambient pool rather
    /// than panicking — the results are bit-identical either way, only
    /// the parallelism differs.
    pub(crate) fn run<R>(&self, op: impl FnOnce() -> R) -> R {
        match self
            .threads
            .and_then(|n| rayon::ThreadPoolBuilder::new().num_threads(n).build().ok())
        {
            Some(pool) => pool.install(op),
            None => op(),
        }
    }
}

/// The RNG-stream seed for query `index` in a batch rooted at `seed`.
///
/// Two rounds of splitmix64 over a Weyl-shifted combination of `(seed,
/// index)`: streams for distinct indices are pairwise uncorrelated, and the
/// scheme is position-based — the stream belongs to the query's *index in
/// the batch*, not to the worker that happens to execute it, which is what
/// makes randomized batch results independent of thread scheduling.
pub fn query_stream_seed(seed: u64, index: u64) -> u64 {
    let mut state = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    rand::split_mix_64(&mut state);
    rand::split_mix_64(&mut state)
}

impl PnnIndex {
    /// [`PnnIndex::nn_nonzero`] for a batch of queries, in input order,
    /// on the ambient thread pool.
    pub fn nn_nonzero_batch(&self, queries: &[Point]) -> Vec<Vec<usize>> {
        self.nn_nonzero_batch_with(queries, &BatchOptions::default())
    }

    /// [`PnnIndex::nn_nonzero_batch`] under an explicit execution policy.
    pub fn nn_nonzero_batch_with(&self, queries: &[Point], opts: &BatchOptions) -> Vec<Vec<usize>> {
        opts.run(|| match &self.nonzero {
            NonzeroBackend::Disks(idx) => queries
                .par_iter()
                .map_init(Vec::new, |buf, &q| {
                    idx.query_into(q, buf);
                    buf.clone()
                })
                .collect(),
            NonzeroBackend::Discrete(idx) => queries
                .par_iter()
                .map_init(Vec::new, |buf, &q| {
                    idx.query_into(q, buf);
                    buf.clone()
                })
                .collect(),
            NonzeroBackend::Generic => queries
                .par_iter()
                .map_init(
                    || (Vec::new(), Vec::new()),
                    |(caps, buf), &q| {
                        self.nn_nonzero_generic_into(q, caps, buf);
                        buf.clone()
                    },
                )
                .collect(),
        })
    }

    /// [`PnnIndex::quantify`] for a batch of queries: the probability
    /// vectors in input order plus the (input-wide) method used.
    pub fn quantify_batch(&self, queries: &[Point]) -> (Vec<Vec<f64>>, QuantifyMethod) {
        self.quantify_batch_with(queries, &BatchOptions::default())
    }

    /// [`PnnIndex::quantify_batch`] under an explicit execution policy.
    pub fn quantify_batch_with(
        &self,
        queries: &[Point],
        opts: &BatchOptions,
    ) -> (Vec<Vec<f64>>, QuantifyMethod) {
        opts.run(|| {
            if let Some(spiral) = &self.spiral {
                let eps = self.config.epsilon;
                let pis = queries.par_iter().map(|&q| spiral.query(q, eps)).collect();
                (pis, QuantifyMethod::Spiral)
            } else {
                let pis = queries
                    .par_iter()
                    .map_init(Vec::new, |buf, &q| {
                        self.mc.query_into(q, buf);
                        buf.clone()
                    })
                    .collect();
                (
                    pis,
                    QuantifyMethod::MonteCarlo {
                        achieved_epsilon: self.mc_achieved_epsilon,
                    },
                )
            }
        })
    }

    /// [`PnnIndex::quantify_adaptive`] for a batch of queries, in input
    /// order, on the ambient thread pool.
    ///
    /// Each query's stopping decision is a pure function of `(index, q,
    /// eps, delta)` — the pre-drawn rounds are consumed in build order — so
    /// the batch inherits the full determinism contract: bit-identical
    /// results (estimates, consumed rounds, half-widths) for every thread
    /// count and query order.
    pub fn quantify_adaptive_batch(
        &self,
        queries: &[Point],
        eps: f64,
        delta: f64,
    ) -> Vec<AdaptiveQuantify> {
        self.quantify_adaptive_batch_with(queries, eps, delta, &BatchOptions::default())
    }

    /// [`PnnIndex::quantify_adaptive_batch`] under an explicit execution
    /// policy.
    pub fn quantify_adaptive_batch_with(
        &self,
        queries: &[Point],
        eps: f64,
        delta: f64,
        opts: &BatchOptions,
    ) -> Vec<AdaptiveQuantify> {
        opts.run(|| {
            queries
                .par_iter()
                .map(|&q| self.quantify_adaptive(q, eps, delta))
                .collect()
        })
    }

    /// [`PnnIndex::quantify_exact`] for a batch of queries: exact sweep
    /// (discrete) or numeric integration (continuous), in input order.
    pub fn quantify_exact_batch(&self, queries: &[Point]) -> (Vec<Vec<f64>>, QuantifyMethod) {
        self.quantify_exact_batch_with(queries, &BatchOptions::default())
    }

    /// [`PnnIndex::quantify_exact_batch`] under an explicit execution
    /// policy. The Eq. 2 sweep's working memory is per-worker scratch.
    pub fn quantify_exact_batch_with(
        &self,
        queries: &[Point],
        opts: &BatchOptions,
    ) -> (Vec<Vec<f64>>, QuantifyMethod) {
        opts.run(|| {
            if let Some(objs) = &self.discrete {
                let pis = queries
                    .par_iter()
                    .map_init(
                        || (Vec::new(), ExactScratch::default()),
                        |(pi, scratch), &q| {
                            quantification_exact_into(objs, q, pi, scratch);
                            pi.clone()
                        },
                    )
                    .collect();
                (pis, QuantifyMethod::ExactSweep)
            } else {
                let steps = self.config.numeric_steps;
                let pis = queries
                    .par_iter()
                    .map(|&q| unn_quantify::quantification_numeric(&self.points, q, steps))
                    .collect();
                (pis, QuantifyMethod::NumericIntegration)
            }
        })
    }

    /// [`PnnIndex::expected_nn`] for a batch of queries, in input order.
    pub fn expected_nn_batch(&self, queries: &[Point]) -> Vec<Option<(usize, f64)>> {
        self.expected_nn_batch_with(queries, &BatchOptions::default())
    }

    /// [`PnnIndex::expected_nn_batch`] under an explicit execution policy.
    pub fn expected_nn_batch_with(
        &self,
        queries: &[Point],
        opts: &BatchOptions,
    ) -> Vec<Option<(usize, f64)>> {
        opts.run(|| {
            queries
                .par_iter()
                .map(|&q| self.expected.expected_nn(q))
                .collect()
        })
    }

    /// Fresh-instantiation Monte-Carlo quantification of a batch with one
    /// deterministic RNG stream per query.
    ///
    /// Query `i` draws its `rounds` instantiations from
    /// `SmallRng::seed_from_u64(query_stream_seed(config.seed, i))`, making
    /// the output a pure function of `(points, config.seed, queries,
    /// rounds)`: bit-identical to the sequential loop
    /// `queries.iter().enumerate().map(|(i, q)| index.quantify_fresh(q, …))`
    /// with the same per-index seeding, for every thread count.
    pub fn quantify_fresh_batch(&self, queries: &[Point], rounds: usize) -> Vec<Vec<f64>> {
        self.quantify_fresh_batch_with(queries, rounds, &BatchOptions::default())
    }

    /// [`PnnIndex::quantify_fresh_batch`] under an explicit execution
    /// policy.
    pub fn quantify_fresh_batch_with(
        &self,
        queries: &[Point],
        rounds: usize,
        opts: &BatchOptions,
    ) -> Vec<Vec<f64>> {
        let seed = self.config.seed;
        opts.run(|| {
            queries
                .par_iter()
                .enumerate()
                .map_init(Vec::new, |pi, (i, &q)| {
                    let mut rng = SmallRng::seed_from_u64(query_stream_seed(seed, i as u64));
                    quantification_monte_carlo_into(&self.points, q, rounds, &mut rng, pi);
                    pi.clone()
                })
                .collect()
        })
    }

    // ------------------------------------------------------------------
    // Panic-isolated batches.
    //
    // Each query runs under `catch_unwind` *inside* the worker's map
    // closure: a poison query (an injected fault, a latent bug) turns into
    // `BatchOutcome::Err` for its own slot while every other slot's result
    // stays bit-identical to the sequential run without the poison query —
    // the determinism contract survives partial failure. The per-worker
    // scratch buffers stay safe across a caught panic because every
    // `*_into` method clears them before writing.
    // ------------------------------------------------------------------

    /// [`PnnIndex::nn_nonzero_batch`] with per-query panic isolation.
    pub fn nn_nonzero_batch_isolated(&self, queries: &[Point]) -> Vec<BatchOutcome<Vec<usize>>> {
        self.nn_nonzero_batch_isolated_with(queries, &BatchOptions::default())
    }

    /// [`PnnIndex::nn_nonzero_batch_isolated`] under an explicit execution
    /// policy.
    pub fn nn_nonzero_batch_isolated_with(
        &self,
        queries: &[Point],
        opts: &BatchOptions,
    ) -> Vec<BatchOutcome<Vec<usize>>> {
        opts.run(|| {
            queries
                .par_iter()
                .map(|&q| isolate(q, || self.nn_nonzero(q)))
                .collect()
        })
    }

    /// [`PnnIndex::quantify_batch`] with per-query panic isolation.
    pub fn quantify_batch_isolated(
        &self,
        queries: &[Point],
    ) -> Vec<BatchOutcome<(Vec<f64>, QuantifyMethod)>> {
        self.quantify_batch_isolated_with(queries, &BatchOptions::default())
    }

    /// [`PnnIndex::quantify_batch_isolated`] under an explicit execution
    /// policy.
    pub fn quantify_batch_isolated_with(
        &self,
        queries: &[Point],
        opts: &BatchOptions,
    ) -> Vec<BatchOutcome<(Vec<f64>, QuantifyMethod)>> {
        opts.run(|| {
            queries
                .par_iter()
                .map(|&q| isolate(q, || self.quantify(q)))
                .collect()
        })
    }

    /// [`PnnIndex::quantify_adaptive_batch`] with per-query panic
    /// isolation.
    pub fn quantify_adaptive_batch_isolated(
        &self,
        queries: &[Point],
        eps: f64,
        delta: f64,
    ) -> Vec<BatchOutcome<AdaptiveQuantify>> {
        self.quantify_adaptive_batch_isolated_with(queries, eps, delta, &BatchOptions::default())
    }

    /// [`PnnIndex::quantify_adaptive_batch_isolated`] under an explicit
    /// execution policy.
    pub fn quantify_adaptive_batch_isolated_with(
        &self,
        queries: &[Point],
        eps: f64,
        delta: f64,
        opts: &BatchOptions,
    ) -> Vec<BatchOutcome<AdaptiveQuantify>> {
        opts.run(|| {
            queries
                .par_iter()
                .map(|&q| isolate(q, || self.quantify_adaptive(q, eps, delta)))
                .collect()
        })
    }

    /// Budgeted batch quantification ([`PnnIndex::quantify_within`]) with
    /// per-query panic isolation: every slot carries an exact answer, a
    /// degraded answer with its certified accuracy, or a typed error.
    pub fn quantify_guarded_batch(
        &self,
        queries: &[Point],
        budget: QueryBudget,
    ) -> Vec<BatchOutcome<QuantifyOutcome>> {
        self.quantify_guarded_batch_with(queries, budget, &BatchOptions::default())
    }

    /// [`PnnIndex::quantify_guarded_batch`] under an explicit execution
    /// policy.
    pub fn quantify_guarded_batch_with(
        &self,
        queries: &[Point],
        budget: QueryBudget,
        opts: &BatchOptions,
    ) -> Vec<BatchOutcome<QuantifyOutcome>> {
        opts.run(|| {
            queries
                .par_iter()
                .map(|&q| isolate(q, || self.quantify_within(q, budget)).and_then(|r| r))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use unn_distr::{DiscreteDistribution, TruncatedGaussian, Uncertain};

    fn discrete_points(seed: u64) -> Vec<Uncertain> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..10)
            .map(|_| {
                let c = Point::new(rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0));
                Uncertain::Discrete(
                    DiscreteDistribution::uniform(
                        (0..3)
                            .map(|_| {
                                Point::new(
                                    c.x + rng.random_range(-2.0..2.0),
                                    c.y + rng.random_range(-2.0..2.0),
                                )
                            })
                            .collect(),
                    )
                    .unwrap(),
                )
            })
            .collect()
    }

    fn mixed_points(seed: u64) -> Vec<Uncertain> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..8)
            .map(|i| {
                let c = Point::new(rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0));
                if i % 2 == 0 {
                    Uncertain::uniform_disk(c, rng.random_range(0.5..2.0))
                } else {
                    Uncertain::Gaussian(TruncatedGaussian::with_sigmas(c, 0.6, 3.0))
                }
            })
            .collect()
    }

    fn queries(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(-25.0..25.0), rng.random_range(-25.0..25.0)))
            .collect()
    }

    #[test]
    fn batch_matches_sequential_discrete() {
        let idx = PnnIndex::new(discrete_points(400));
        let qs = queries(64, 401);
        let opts = BatchOptions::with_threads(4);
        assert_eq!(
            idx.nn_nonzero_batch_with(&qs, &opts),
            qs.iter().map(|&q| idx.nn_nonzero(q)).collect::<Vec<_>>()
        );
        let (pis, m) = idx.quantify_batch_with(&qs, &opts);
        assert_eq!(m, QuantifyMethod::Spiral);
        assert_eq!(
            pis,
            qs.iter().map(|&q| idx.quantify(q).0).collect::<Vec<_>>()
        );
        let (exact, m) = idx.quantify_exact_batch_with(&qs, &opts);
        assert_eq!(m, QuantifyMethod::ExactSweep);
        assert_eq!(
            exact,
            qs.iter()
                .map(|&q| idx.quantify_exact(q).0)
                .collect::<Vec<_>>()
        );
        assert_eq!(
            idx.expected_nn_batch_with(&qs, &opts),
            qs.iter().map(|&q| idx.expected_nn(q)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn batch_matches_sequential_continuous() {
        let idx = PnnIndex::new(mixed_points(402));
        let qs = queries(24, 403);
        let opts = BatchOptions::with_threads(3);
        let (pis, m) = idx.quantify_batch_with(&qs, &opts);
        assert!(matches!(m, QuantifyMethod::MonteCarlo { .. }));
        assert_eq!(
            pis,
            qs.iter().map(|&q| idx.quantify(q).0).collect::<Vec<_>>()
        );
        assert_eq!(
            idx.nn_nonzero_batch_with(&qs, &opts),
            qs.iter().map(|&q| idx.nn_nonzero(q)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn adaptive_batch_matches_sequential() {
        let idx = PnnIndex::new(mixed_points(408));
        let qs = queries(32, 409);
        let seq: Vec<_> = qs
            .iter()
            .map(|&q| idx.quantify_adaptive(q, 0.05, 0.01))
            .collect();
        let batch =
            idx.quantify_adaptive_batch_with(&qs, 0.05, 0.01, &BatchOptions::with_threads(4));
        assert_eq!(batch, seq);
    }

    #[test]
    fn fresh_batch_is_schedule_independent() {
        let idx = PnnIndex::new(discrete_points(404));
        let qs = queries(32, 405);
        let reference = idx.quantify_fresh_batch_with(&qs, 200, &BatchOptions::with_threads(1));
        for threads in [2, 4, 8] {
            assert_eq!(
                idx.quantify_fresh_batch_with(&qs, 200, &BatchOptions::with_threads(threads)),
                reference,
                "threads = {threads}"
            );
        }
        // And matches the sequential per-index loop exactly.
        let seq: Vec<Vec<f64>> = qs
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                let mut rng =
                    SmallRng::seed_from_u64(query_stream_seed(idx.config().seed, i as u64));
                idx.quantify_fresh(q, 200, &mut rng)
            })
            .collect();
        assert_eq!(reference, seq);
    }

    #[test]
    fn stream_seeds_are_spread_out() {
        // Adjacent indices and adjacent seeds must not collide.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..8u64 {
            for i in 0..1024u64 {
                assert!(seen.insert(query_stream_seed(seed, i)));
            }
        }
    }

    #[test]
    fn empty_batches_and_empty_index() {
        let idx = PnnIndex::new(discrete_points(406));
        assert!(idx.nn_nonzero_batch(&[]).is_empty());
        assert!(idx.quantify_batch(&[]).0.is_empty());
        let empty = PnnIndex::new(Vec::new());
        let qs = queries(4, 407);
        assert_eq!(empty.quantify_fresh_batch(&qs, 10), vec![Vec::new(); 4]);
    }
}
