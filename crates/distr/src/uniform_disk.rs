//! Uniform distribution on a disk — the paper's canonical continuous model.
//!
//! The distance from a query `q` to a point uniform on disk `D = (c, R)` has
//! a fully closed-form cdf and pdf via circle–circle lens areas:
//!
//! * `G_q(r) = area(D ∩ B(q, r)) / area(D)`,
//! * `g_q(r) = dG/dr = (arc length of ∂B(q, r) inside D) / area(D)`.
//!
//! The pdf `g_q` is exactly the curve shown in the paper's Figure 1 (disk of
//! radius 5 at the origin, `q = (6, 8)`), reproduced by experiment E13.

use rand::{Rng, RngExt};
use unn_geom::{Aabb, Disk, Point, Vector};

use crate::error::DistrError;
use crate::integrate::adaptive_simpson;
use crate::traits::UncertainPoint;

/// An uncertain point distributed uniformly over a disk.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UniformDisk {
    disk: Disk,
}

impl UniformDisk {
    /// Uniform distribution over the given disk (radius must be positive).
    ///
    /// # Panics
    ///
    /// On invalid input; [`UniformDisk::try_new`] is the non-panicking
    /// equivalent.
    pub fn new(disk: Disk) -> Self {
        match Self::try_new(disk) {
            Ok(u) => u,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: rejects a non-finite center and a zero,
    /// negative, or non-finite radius instead of panicking. (A zero-radius
    /// disk is a *certain* point; model it as
    /// [`crate::DiscreteDistribution::certain`].)
    pub fn try_new(disk: Disk) -> Result<Self, DistrError> {
        if !disk.center.is_finite() {
            return Err(DistrError::NonFiniteCoordinate {
                model: "uniform-disk",
                point: disk.center,
            });
        }
        if !(disk.radius > 0.0 && disk.radius.is_finite()) {
            return Err(DistrError::BadParameter {
                model: "uniform-disk",
                name: "radius",
                value: disk.radius,
            });
        }
        Ok(UniformDisk { disk })
    }

    /// Convenience constructor from center and radius.
    pub fn from_center(center: Point, radius: f64) -> Self {
        match Self::try_from_center(center, radius) {
            Ok(u) => u,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`UniformDisk::from_center`].
    pub fn try_from_center(center: Point, radius: f64) -> Result<Self, DistrError> {
        if !center.is_finite() {
            return Err(DistrError::NonFiniteCoordinate {
                model: "uniform-disk",
                point: center,
            });
        }
        if !(radius > 0.0 && radius.is_finite()) {
            return Err(DistrError::BadParameter {
                model: "uniform-disk",
                name: "radius",
                value: radius,
            });
        }
        Ok(UniformDisk {
            disk: Disk::new(center, radius),
        })
    }

    /// Re-checks the construction invariants on an existing value (the
    /// index-build validation hook).
    pub fn validate(&self) -> Result<(), DistrError> {
        Self::try_new(self.disk).map(|_| ())
    }

    /// The support disk.
    #[inline]
    pub fn disk(&self) -> Disk {
        self.disk
    }

    /// Distance pdf `g_q(r)` (paper Eq. just above Eq. 1; Figure 1).
    ///
    /// Closed form: the length of the arc of the circle of radius `r` around
    /// `q` that lies inside the support disk, divided by the disk area.
    pub fn distance_pdf(&self, q: Point, r: f64) -> f64 {
        if r <= 0.0 {
            return 0.0;
        }
        let ll = q.dist(self.disk.center);
        let rr = self.disk.radius;
        let area = self.disk.area();
        if ll == 0.0 {
            return if r <= rr {
                2.0 * core::f64::consts::PI * r / area
            } else {
                0.0
            };
        }
        if r <= (ll - rr).abs() {
            // Circle entirely inside (if l < rr) contributes a full circle;
            // entirely outside contributes nothing.
            return if ll < rr {
                2.0 * core::f64::consts::PI * r / area
            } else {
                0.0
            };
        }
        if r >= ll + rr {
            return 0.0;
        }
        // Proper crossing: half-angle of the arc inside the support.
        let cos_half = ((r * r + ll * ll - rr * rr) / (2.0 * r * ll)).clamp(-1.0, 1.0);
        let half = cos_half.acos();
        2.0 * r * half / area
    }
}

impl UncertainPoint for UniformDisk {
    fn min_dist(&self, q: Point) -> f64 {
        self.disk.min_dist(q)
    }

    fn max_dist(&self, q: Point) -> f64 {
        self.disk.max_dist(q)
    }

    fn distance_cdf(&self, q: Point, r: f64) -> f64 {
        if r <= 0.0 {
            return 0.0;
        }
        let ball = Disk::new(q, r);
        self.disk.lens_area(&ball) / self.disk.area()
    }

    fn sample(&self, rng: &mut dyn Rng) -> Point {
        // sqrt trick for uniform area density.
        let u: f64 = rng.random();
        let phi: f64 = rng.random_range(0.0..core::f64::consts::TAU);
        self.disk.center + Vector::from_angle(phi) * (self.disk.radius * u.sqrt())
    }

    fn mean(&self) -> Point {
        self.disk.center
    }

    fn expected_dist(&self, q: Point) -> f64 {
        // E[d] = ∫ r g(r) dr over [δ, Δ]; g is smooth except at the kink
        // r = |l - R|, so split there.
        let lo = self.min_dist(q);
        let hi = self.max_dist(q);
        let kink = (q.dist(self.disk.center) - self.disk.radius).abs();
        let mut total = 0.0;
        let mut a = lo;
        if kink > lo && kink < hi {
            total += adaptive_simpson(|r| r * self.distance_pdf(q, r), a, kink, 1e-10);
            a = kink;
        }
        total + adaptive_simpson(|r| r * self.distance_pdf(q, r), a, hi, 1e-10)
    }

    fn support_bbox(&self) -> Aabb {
        let c = self.disk.center;
        let r = self.disk.radius;
        Aabb::new(Point::new(c.x - r, c.y - r), Point::new(c.x + r, c.y + r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testutil::{check_cdf_against_sampling, check_moments_against_sampling};
    use proptest::prelude::*;

    /// The paper's Figure 1 instance.
    fn fig1() -> (UniformDisk, Point) {
        (
            UniformDisk::from_center(Point::ORIGIN, 5.0),
            Point::new(6.0, 8.0),
        )
    }

    #[test]
    fn fig1_support_bounds() {
        let (u, q) = fig1();
        // |q| = 10, so distances range over [5, 15] (Figure 1b).
        assert_eq!(u.min_dist(q), 5.0);
        assert_eq!(u.max_dist(q), 15.0);
        assert_eq!(u.distance_pdf(q, 4.9), 0.0);
        assert_eq!(u.distance_pdf(q, 15.1), 0.0);
        assert!(u.distance_pdf(q, 10.0) > 0.0);
    }

    #[test]
    fn fig1_pdf_integrates_to_one() {
        let (u, q) = fig1();
        let total = adaptive_simpson(|r| u.distance_pdf(q, r), 5.0, 15.0, 1e-10);
        assert!((total - 1.0).abs() < 1e-6, "total = {total}");
    }

    #[test]
    fn pdf_is_derivative_of_cdf() {
        let (u, q) = fig1();
        for &r in &[6.0, 8.0, 10.0, 12.0, 14.0] {
            let h = 1e-6;
            let numeric = (u.distance_cdf(q, r + h) - u.distance_cdf(q, r - h)) / (2.0 * h);
            let analytic = u.distance_pdf(q, r);
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "r={r}: numeric={numeric} analytic={analytic}"
            );
        }
    }

    #[test]
    fn query_inside_disk() {
        let u = UniformDisk::from_center(Point::ORIGIN, 2.0);
        let q = Point::new(0.5, 0.0);
        assert_eq!(u.min_dist(q), 0.0);
        assert_eq!(u.max_dist(q), 2.5);
        // Small r: the ball around q is entirely inside, cdf = r^2 / R^2.
        let r = 0.3;
        assert!((u.distance_cdf(q, r) - r * r / 4.0).abs() < 1e-12);
        assert!((u.distance_pdf(q, r) - 2.0 * r / 4.0).abs() < 1e-12);
    }

    #[test]
    fn centered_query_closed_forms() {
        let u = UniformDisk::from_center(Point::ORIGIN, 3.0);
        let q = Point::ORIGIN;
        assert!((u.distance_cdf(q, 1.5) - 0.25).abs() < 1e-12);
        // E[d] = 2R/3 for a centered query.
        assert!((u.expected_dist(q) - 2.0).abs() < 1e-8);
    }

    #[test]
    fn sampling_agreement() {
        let (u, q) = fig1();
        check_cdf_against_sampling(&u, q, 60_000, 0.01, 11);
        check_moments_against_sampling(&u, q, 60_000, 0.01, 12);
        // Also with the query inside the support.
        let u2 = UniformDisk::from_center(Point::new(1.0, -2.0), 4.0);
        let q2 = Point::new(0.0, -1.0);
        check_cdf_against_sampling(&u2, q2, 60_000, 0.01, 13);
    }

    proptest! {
        #[test]
        fn prop_cdf_monotone(
            cx in -10.0f64..10.0, cy in -10.0f64..10.0, rad in 0.1f64..5.0,
            qx in -15.0f64..15.0, qy in -15.0f64..15.0,
        ) {
            let u = UniformDisk::from_center(Point::new(cx, cy), rad);
            let q = Point::new(qx, qy);
            let lo = u.min_dist(q);
            let hi = u.max_dist(q);
            let mut prev = -1e-12;
            for i in 0..=16 {
                let r = lo + (hi - lo) * i as f64 / 16.0;
                let c = u.distance_cdf(q, r);
                prop_assert!(c + 1e-9 >= prev);
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&c));
                prev = c;
            }
        }

        #[test]
        fn prop_pdf_nonnegative_and_normalized(
            l in 0.0f64..12.0, rad in 0.5f64..5.0,
        ) {
            let u = UniformDisk::from_center(Point::ORIGIN, rad);
            let q = Point::new(l, 0.0);
            let lo = u.min_dist(q);
            let hi = u.max_dist(q);
            let kink = (l - rad).abs();
            let total = crate::integrate::integrate_piecewise(
                |r| u.distance_pdf(q, r), lo, hi, &[kink], 1e-10);
            prop_assert!((total - 1.0).abs() < 1e-5, "total = {total}");
        }

        #[test]
        fn prop_expected_dist_jensen(
            cx in -5.0f64..5.0, cy in -5.0f64..5.0, rad in 0.2f64..4.0,
            qx in -10.0f64..10.0, qy in -10.0f64..10.0,
        ) {
            let u = UniformDisk::from_center(Point::new(cx, cy), rad);
            let q = Point::new(qx, qy);
            let e = u.expected_dist(q);
            prop_assert!(e >= q.dist(u.mean()) - 1e-7);
            prop_assert!(e >= u.min_dist(q) - 1e-7);
            prop_assert!(e <= u.max_dist(q) + 1e-7);
        }
    }
}
