//! Uniform distribution on a convex polygon.
//!
//! Theorem 2.6 extends the disk analysis to semialgebraic uncertainty
//! regions of constant description complexity; convex polygons are the
//! standard practical instance (e.g. map-matched road cells, bounding
//! shapes from computer vision). The distance cdf is exact via the
//! circle–polygon intersection area of `unn-geom`; sampling uses a
//! triangle-fan decomposition.

use rand::{Rng, RngExt};
use unn_geom::circular::circle_polygon_area;
use unn_geom::{Aabb, ConvexPolygon, Point, Vector};

use crate::error::DistrError;
use crate::integrate::adaptive_simpson;
use crate::traits::UncertainPoint;

/// An uncertain point uniform over a convex polygon.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(
    feature = "serde",
    derive(serde::Serialize, serde::Deserialize),
    serde(from = "PolygonRaw", into = "PolygonRaw")
)]
pub struct UniformPolygon {
    poly: ConvexPolygon,
    area: f64,
    /// Cumulative areas of the fan triangles `(v0, v_i, v_{i+1})`.
    fan_cum: Vec<f64>,
    centroid: Point,
    bbox: Aabb,
}

impl UniformPolygon {
    /// Builds from a convex polygon with positive area (CCW vertices).
    ///
    /// # Panics
    ///
    /// On invalid input; [`UniformPolygon::try_new`] is the non-panicking
    /// equivalent.
    pub fn new(poly: ConvexPolygon) -> Self {
        match Self::try_new(poly) {
            Ok(u) => u,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: rejects non-finite vertices and zero-area
    /// (degenerate, fewer than 3 vertices, or collinear) polygons instead
    /// of panicking.
    pub fn try_new(poly: ConvexPolygon) -> Result<Self, DistrError> {
        if let Some(&v) = poly.vertices().iter().find(|v| !v.is_finite()) {
            return Err(DistrError::NonFiniteCoordinate {
                model: "uniform-polygon",
                point: v,
            });
        }
        let area = poly.area();
        if !(area > 0.0 && area.is_finite()) || poly.len() < 3 {
            return Err(DistrError::EmptySupport {
                model: "uniform-polygon",
            });
        }
        Ok(Self::new_unchecked(poly, area))
    }

    /// Re-checks the construction invariants on an existing value (the
    /// index-build validation hook).
    pub fn validate(&self) -> Result<(), DistrError> {
        Self::try_new(self.poly.clone()).map(|_| ())
    }

    fn new_unchecked(poly: ConvexPolygon, area: f64) -> Self {
        let verts = poly.vertices();
        let v0 = verts[0];
        let mut fan_cum = Vec::with_capacity(verts.len() - 2);
        let mut acc = 0.0;
        // Area centroid: weighted average of fan-triangle centroids.
        let (mut cx, mut cy) = (0.0, 0.0);
        for i in 1..verts.len() - 1 {
            let (a, b) = (verts[i], verts[i + 1]);
            let t_area = 0.5 * (a - v0).cross(b - v0);
            acc += t_area;
            fan_cum.push(acc);
            cx += t_area * (v0.x + a.x + b.x) / 3.0;
            cy += t_area * (v0.y + a.y + b.y) / 3.0;
        }
        let bbox = poly.bbox();
        UniformPolygon {
            centroid: Point::new(cx / area, cy / area),
            poly,
            area,
            fan_cum,
            bbox,
        }
    }

    /// Builds from CCW vertices.
    pub fn from_ccw_vertices(verts: Vec<Point>) -> Self {
        Self::new(ConvexPolygon::from_ccw_vertices(verts))
    }

    /// A regular `n`-gon approximation of a disk (handy for tests and for
    /// migrating disk workloads to the polygon code path).
    pub fn regular(center: Point, radius: f64, n: usize) -> Self {
        assert!(n >= 3);
        let verts: Vec<Point> = (0..n)
            .map(|i| {
                let a = core::f64::consts::TAU * i as f64 / n as f64;
                center + Vector::from_angle(a) * radius
            })
            .collect();
        Self::from_ccw_vertices(verts)
    }

    /// The support polygon.
    pub fn polygon(&self) -> &ConvexPolygon {
        &self.poly
    }
}

/// Serialization mirror rebuilding the fan decomposition on load.
#[cfg(feature = "serde")]
#[derive(serde::Serialize, serde::Deserialize)]
struct PolygonRaw {
    poly: ConvexPolygon,
}

#[cfg(feature = "serde")]
impl From<UniformPolygon> for PolygonRaw {
    fn from(p: UniformPolygon) -> Self {
        PolygonRaw { poly: p.poly }
    }
}

#[cfg(feature = "serde")]
impl From<PolygonRaw> for UniformPolygon {
    fn from(raw: PolygonRaw) -> Self {
        UniformPolygon::new(raw.poly)
    }
}

impl UncertainPoint for UniformPolygon {
    fn min_dist(&self, q: Point) -> f64 {
        if self.poly.contains(q) {
            return 0.0;
        }
        self.poly
            .edges()
            .map(|e| e.dist2_to_point(q))
            .fold(f64::INFINITY, f64::min)
            .sqrt()
    }

    fn max_dist(&self, q: Point) -> f64 {
        unn_geom::hull::farthest_dist(self.poly.vertices(), q)
    }

    fn distance_cdf(&self, q: Point, r: f64) -> f64 {
        if r <= 0.0 {
            return 0.0;
        }
        (circle_polygon_area(q, r, &self.poly) / self.area).clamp(0.0, 1.0)
    }

    fn sample(&self, rng: &mut dyn Rng) -> Point {
        // Pick a fan triangle by area, then a uniform point inside it.
        let u: f64 = rng.random_range(0.0..self.area);
        let idx = self.fan_cum.partition_point(|&c| c < u);
        let verts = self.poly.vertices();
        let (a, b, c) = (
            verts[0],
            verts[idx + 1],
            verts[(idx + 2).min(verts.len() - 1)],
        );
        let (mut s, mut t) = (rng.random::<f64>(), rng.random::<f64>());
        if s + t > 1.0 {
            s = 1.0 - s;
            t = 1.0 - t;
        }
        a + (b - a) * s + (c - a) * t
    }

    fn mean(&self) -> Point {
        self.centroid
    }

    fn expected_dist(&self, q: Point) -> f64 {
        let lo = self.min_dist(q);
        let hi = self.max_dist(q);
        lo + adaptive_simpson(|r| 1.0 - self.distance_cdf(q, r), lo, hi, 1e-8)
    }

    fn support_bbox(&self) -> Aabb {
        self.bbox
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testutil::{check_cdf_against_sampling, check_moments_against_sampling};
    use crate::uniform_disk::UniformDisk;
    use proptest::prelude::*;

    fn quad() -> UniformPolygon {
        UniformPolygon::from_ccw_vertices(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(3.0, 4.0),
            Point::new(-1.0, 3.0),
        ])
    }

    #[test]
    fn support_distances() {
        let p = quad();
        assert_eq!(p.min_dist(Point::new(1.0, 1.5)), 0.0); // inside
        let q = Point::new(-3.0, 0.0);
        assert!(p.min_dist(q) > 0.0);
        assert!(p.max_dist(q) > p.min_dist(q));
        // Max distance attained at a vertex.
        let want = p
            .polygon()
            .vertices()
            .iter()
            .map(|v| v.dist(q))
            .fold(0.0f64, f64::max);
        assert_eq!(p.max_dist(q), want);
    }

    #[test]
    fn cdf_and_moments_vs_sampling() {
        let p = quad();
        check_cdf_against_sampling(&p, Point::new(5.0, -1.0), 60_000, 0.012, 700);
        check_moments_against_sampling(&p, Point::new(5.0, -1.0), 60_000, 0.012, 701);
        // Query inside the support.
        check_cdf_against_sampling(&p, Point::new(1.5, 2.0), 60_000, 0.012, 702);
    }

    #[test]
    fn regular_polygon_approximates_disk() {
        // A 64-gon's distance cdf tracks the disk's everywhere.
        let c = Point::new(1.0, -2.0);
        let poly = UniformPolygon::regular(c, 3.0, 64);
        let disk = UniformDisk::from_center(c, 3.0);
        let q = Point::new(5.0, 1.0);
        for i in 1..20 {
            let r = 0.5 * i as f64;
            let a = poly.distance_cdf(q, r);
            let b = disk.distance_cdf(q, r);
            assert!((a - b).abs() < 0.01, "r={r}: poly={a} disk={b}");
        }
        assert!((poly.expected_dist(q) - disk.expected_dist(q)).abs() < 0.02);
        assert!(poly.mean().dist(c) < 1e-9);
    }

    #[test]
    fn centroid_is_area_centroid() {
        // L-shaped-ish asymmetric quad: the area centroid differs from the
        // vertex average; verify against the fan decomposition by sampling.
        let p = quad();
        let m = p.mean();
        assert!(p.polygon().contains(m));
        // Known: for a triangle the centroid is the vertex average.
        let tri = UniformPolygon::from_ccw_vertices(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 3.0),
        ]);
        assert!(tri.mean().dist(Point::new(1.0, 1.0)) < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_cdf_monotone_bounded(
            qx in -8.0f64..8.0, qy in -8.0f64..8.0,
        ) {
            let p = quad();
            let q = Point::new(qx, qy);
            let lo = p.min_dist(q);
            let hi = p.max_dist(q);
            prop_assert!(lo <= hi);
            let mut prev = -1e-12;
            for i in 0..=12 {
                let r = lo + (hi - lo) * i as f64 / 12.0;
                let c = p.distance_cdf(q, r);
                prop_assert!(c + 1e-9 >= prev);
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&c));
                prev = c;
            }
            prop_assert!((p.distance_cdf(q, hi) - 1.0).abs() < 1e-9);
            prop_assert!(p.distance_cdf(q, lo) < 1e-9 || lo == 0.0);
        }

        #[test]
        fn prop_samples_inside_polygon(seed in 0u64..500) {
            use rand::rngs::SmallRng;
            use rand::SeedableRng;
            let p = quad();
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..50 {
                let s = p.sample(&mut rng);
                prop_assert!(p.polygon().contains(s), "{s:?} outside");
            }
        }
    }
}
