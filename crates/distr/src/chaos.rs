//! Fault-injection distribution for resilience testing.
//!
//! A [`ChaosDistribution`] wraps any [`Uncertain`] model and misbehaves on
//! demand: it can panic when a distance query hits a designated poison
//! point, or panic / emit a NaN location on the k-th `sample()` call. It
//! exists so the fault-injection harness (`tests/fault_injection.rs` in the
//! workspace root) and the batch panic-isolation tests can drive *real*
//! failures through every public entry point without patching library
//! internals.
//!
//! Determinism notes, because the batch engine's contract depends on them:
//!
//! * [`ChaosMode::PanicAtQuery`] is a pure function of the query point —
//!   which batch slot trips it does not depend on thread scheduling, so it
//!   is the mode the parallel panic-isolation tests use.
//! * The `*OnSample` modes count calls through a shared atomic counter.
//!   Under a parallel batch the k-th call is scheduling-dependent; they are
//!   meant for sequential harnesses (index build, single queries).
//!
//! This is a testing utility: it passes [`Uncertain::validate`] by
//! delegating to the wrapped model, precisely so that a chaos point can be
//! planted behind validation, the way a latent production fault would be.

use core::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;
use unn_geom::{Aabb, Point};

use crate::traits::UncertainPoint;
use crate::Uncertain;

/// How a [`ChaosDistribution`] misbehaves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChaosMode {
    /// Distance queries (`min_dist`, `max_dist`, `distance_cdf`) panic when
    /// evaluated at exactly this query point; all other queries delegate.
    /// Deterministic per query — safe under parallel batches.
    PanicAtQuery(Point),
    /// The `k`-th call to `sample` (1-based, counted across clones' shared
    /// history only within one value — clones restart from a snapshot)
    /// panics; other calls delegate. Scheduling-dependent under parallelism.
    PanicOnSample(u64),
    /// The `k`-th call to `sample` returns `(NaN, NaN)`; other calls
    /// delegate. Scheduling-dependent under parallelism.
    NanOnSample(u64),
}

/// An uncertain point that injects faults (see the module docs).
#[derive(Debug)]
pub struct ChaosDistribution {
    inner: Box<Uncertain>,
    mode: ChaosMode,
    calls: AtomicU64,
}

impl ChaosDistribution {
    /// Wraps `inner` with the given failure mode.
    pub fn new(inner: Uncertain, mode: ChaosMode) -> Self {
        ChaosDistribution {
            inner: Box::new(inner),
            mode,
            calls: AtomicU64::new(0),
        }
    }

    /// The wrapped (well-behaved) model.
    pub fn inner(&self) -> &Uncertain {
        &self.inner
    }

    /// The configured failure mode.
    pub fn mode(&self) -> ChaosMode {
        self.mode
    }

    /// How many `sample` calls this value has served so far.
    pub fn samples_served(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    fn poison_check(&self, q: Point) {
        if let ChaosMode::PanicAtQuery(p) = self.mode {
            if q == p {
                panic!("chaos: distance query at poison point ({}, {})", q.x, q.y);
            }
        }
    }
}

impl Clone for ChaosDistribution {
    fn clone(&self) -> Self {
        ChaosDistribution {
            inner: self.inner.clone(),
            mode: self.mode,
            calls: AtomicU64::new(self.calls.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for ChaosDistribution {
    /// Structural equality over the wrapped model and mode; the sample
    /// counter is transient state and ignored.
    fn eq(&self, other: &Self) -> bool {
        self.mode == other.mode && self.inner == other.inner
    }
}

impl UncertainPoint for ChaosDistribution {
    fn min_dist(&self, q: Point) -> f64 {
        self.poison_check(q);
        self.inner.min_dist(q)
    }

    fn max_dist(&self, q: Point) -> f64 {
        self.poison_check(q);
        self.inner.max_dist(q)
    }

    fn distance_cdf(&self, q: Point, r: f64) -> f64 {
        self.poison_check(q);
        self.inner.distance_cdf(q, r)
    }

    fn sample(&self, rng: &mut dyn Rng) -> Point {
        let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        match self.mode {
            ChaosMode::PanicOnSample(k) if call == k => {
                panic!("chaos: sample call {call} configured to panic")
            }
            ChaosMode::NanOnSample(k) if call == k => Point::new(f64::NAN, f64::NAN),
            _ => self.inner.sample(rng),
        }
    }

    fn mean(&self) -> Point {
        self.inner.mean()
    }

    fn expected_dist(&self, q: Point) -> f64 {
        self.poison_check(q);
        self.inner.expected_dist(q)
    }

    fn support_bbox(&self) -> Aabb {
        self.inner.support_bbox()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn base() -> Uncertain {
        Uncertain::uniform_disk(Point::new(1.0, 2.0), 0.5)
    }

    #[test]
    fn delegates_when_not_poisoned() {
        let c = ChaosDistribution::new(base(), ChaosMode::PanicAtQuery(Point::new(9.0, 9.0)));
        let q = Point::new(4.0, 2.0);
        assert_eq!(c.min_dist(q), base().min_dist(q));
        assert_eq!(c.max_dist(q), base().max_dist(q));
        assert_eq!(c.support_bbox(), base().support_bbox());
    }

    #[test]
    fn poison_point_panics() {
        let p = Point::new(3.0, -1.0);
        let c = ChaosDistribution::new(base(), ChaosMode::PanicAtQuery(p));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.min_dist(p)));
        assert!(r.is_err());
        // Any other point is fine.
        assert!(c.min_dist(Point::new(3.0, -1.0 + 1e-9)).is_finite());
    }

    #[test]
    fn kth_sample_faults() {
        let c = ChaosDistribution::new(base(), ChaosMode::NanOnSample(3));
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(c.sample(&mut rng).is_finite());
        assert!(c.sample(&mut rng).is_finite());
        assert!(!c.sample(&mut rng).is_finite());
        assert!(c.sample(&mut rng).is_finite());
        assert_eq!(c.samples_served(), 4);
    }
}
