//! Truncated isotropic Gaussian uncertain points.
//!
//! The paper (after [BSI08, CCMC08]) assumes Gaussian location uncertainty is
//! *truncated* to a bounded support so that `Δ_i(q)` is finite. We truncate
//! at a radius `t·σ` around the center. Sampling is Box–Muller with
//! rejection; the distance cdf has no elementary closed form and is computed
//! by adaptive quadrature over the radial density:
//!
//! ```text
//!   G_q(r) = (1/Z) ∫_0^T  (ρ/σ²) e^{-ρ²/2σ²} · w(ρ) / 2π  dρ ,
//! ```
//!
//! where `w(ρ)` is the angular width of directions `φ` with
//! `|c + ρ·u(φ) - q| <= r`, and `Z = 1 - e^{-T²/2σ²}` is the truncated mass.

use rand::{Rng, RngExt};
use unn_geom::{Aabb, Point, Vector};

use crate::error::DistrError;
use crate::integrate::{adaptive_simpson, integrate_piecewise};
use crate::traits::UncertainPoint;

/// An uncertain point with truncated isotropic Gaussian distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TruncatedGaussian {
    center: Point,
    sigma: f64,
    /// Truncation radius (absolute, not in units of sigma).
    radius: f64,
}

impl TruncatedGaussian {
    /// Gaussian with standard deviation `sigma`, truncated at `radius`
    /// around `center`. Both must be positive.
    ///
    /// # Panics
    ///
    /// On invalid parameters; [`TruncatedGaussian::try_new`] is the
    /// non-panicking equivalent.
    pub fn new(center: Point, sigma: f64, radius: f64) -> Self {
        match Self::try_new(center, sigma, radius) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: rejects a non-finite center and non-positive
    /// or non-finite `sigma`/`radius` instead of panicking.
    pub fn try_new(center: Point, sigma: f64, radius: f64) -> Result<Self, DistrError> {
        if !center.is_finite() {
            return Err(DistrError::NonFiniteCoordinate {
                model: "gaussian",
                point: center,
            });
        }
        if !(sigma > 0.0 && sigma.is_finite()) {
            return Err(DistrError::BadParameter {
                model: "gaussian",
                name: "sigma",
                value: sigma,
            });
        }
        if !(radius > 0.0 && radius.is_finite()) {
            return Err(DistrError::BadParameter {
                model: "gaussian",
                name: "radius",
                value: radius,
            });
        }
        Ok(TruncatedGaussian {
            center,
            sigma,
            radius,
        })
    }

    /// Truncates at `k` standard deviations (the common "3-sigma" choice).
    pub fn with_sigmas(center: Point, sigma: f64, k: f64) -> Self {
        Self::new(center, sigma, k * sigma)
    }

    /// Fallible [`TruncatedGaussian::with_sigmas`].
    pub fn try_with_sigmas(center: Point, sigma: f64, k: f64) -> Result<Self, DistrError> {
        Self::try_new(center, sigma, k * sigma)
    }

    /// Re-checks the construction invariants on an existing value (the
    /// index-build validation hook; always `Ok` for values built through
    /// the constructors of this version).
    pub fn validate(&self) -> Result<(), DistrError> {
        Self::try_new(self.center, self.sigma, self.radius).map(|_| ())
    }

    /// Center of the distribution.
    #[inline]
    pub fn center(&self) -> Point {
        self.center
    }

    /// Standard deviation.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Truncation radius.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Mass of the untruncated Gaussian within the truncation radius.
    #[inline]
    fn z(&self) -> f64 {
        1.0 - (-self.radius * self.radius / (2.0 * self.sigma * self.sigma)).exp()
    }

    /// Angular width (radians, in `[0, 2π]`) of directions `φ` such that the
    /// point at polar `(ρ, φ)` around the center is within `r` of `q`.
    fn angular_width(&self, l: f64, rho: f64, r: f64) -> f64 {
        if rho == 0.0 || l == 0.0 {
            return if (l - rho).abs() <= r {
                core::f64::consts::TAU
            } else {
                0.0
            };
        }
        let v = (rho * rho + l * l - r * r) / (2.0 * rho * l);
        if v >= 1.0 {
            0.0
        } else if v <= -1.0 {
            core::f64::consts::TAU
        } else {
            2.0 * v.acos()
        }
    }
}

impl UncertainPoint for TruncatedGaussian {
    fn min_dist(&self, q: Point) -> f64 {
        (q.dist(self.center) - self.radius).max(0.0)
    }

    fn max_dist(&self, q: Point) -> f64 {
        q.dist(self.center) + self.radius
    }

    fn distance_cdf(&self, q: Point, r: f64) -> f64 {
        if r <= self.min_dist(q) {
            return 0.0;
        }
        if r >= self.max_dist(q) {
            return 1.0;
        }
        let l = q.dist(self.center);
        let s2 = self.sigma * self.sigma;
        let density = |rho: f64| {
            (rho / s2)
                * (-rho * rho / (2.0 * s2)).exp()
                * (self.angular_width(l, rho, r) / core::f64::consts::TAU)
        };
        // Kinks where the circle of radius r around q is tangent to the
        // circle of radius rho around c: rho = |l - r| and rho = l + r.
        let val = integrate_piecewise(density, 0.0, self.radius, &[(l - r).abs(), l + r], 1e-10);
        (val / self.z()).clamp(0.0, 1.0)
    }

    fn sample(&self, rng: &mut dyn Rng) -> Point {
        // Box–Muller, rejecting draws outside the truncation radius.
        loop {
            let u1: f64 = rng.random();
            let u2: f64 = rng.random();
            let mag = self.sigma * (-2.0 * u1.max(1e-300).ln()).sqrt();
            let v = Vector::from_angle(core::f64::consts::TAU * u2) * mag;
            if v.norm() <= self.radius {
                return self.center + v;
            }
        }
    }

    fn mean(&self) -> Point {
        self.center
    }

    fn expected_dist(&self, q: Point) -> f64 {
        // E[d] = δ + ∫_δ^Δ (1 - G(r)) dr.
        let lo = self.min_dist(q);
        let hi = self.max_dist(q);
        lo + adaptive_simpson(|r| 1.0 - self.distance_cdf(q, r), lo, hi, 1e-7)
    }

    fn support_bbox(&self) -> Aabb {
        let c = self.center;
        let r = self.radius;
        Aabb::new(Point::new(c.x - r, c.y - r), Point::new(c.x + r, c.y + r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testutil::{check_cdf_against_sampling, check_moments_against_sampling};
    use proptest::prelude::*;

    #[test]
    fn support_bounds() {
        let g = TruncatedGaussian::with_sigmas(Point::new(1.0, 2.0), 0.5, 3.0);
        let q = Point::new(4.0, 2.0);
        assert_eq!(g.min_dist(q), 1.5);
        assert_eq!(g.max_dist(q), 4.5);
        assert_eq!(g.distance_cdf(q, 1.4), 0.0);
        assert_eq!(g.distance_cdf(q, 4.6), 1.0);
    }

    #[test]
    fn centered_query_matches_rayleigh() {
        // With q at the center, d is a truncated Rayleigh:
        // G(r) = (1 - e^{-r²/2σ²}) / Z.
        let g = TruncatedGaussian::with_sigmas(Point::ORIGIN, 1.0, 4.0);
        let q = Point::ORIGIN;
        for &r in &[0.5, 1.0, 2.0, 3.0] {
            let analytic = (1.0 - (-r * r / 2.0f64).exp()) / (1.0 - (-8.0f64).exp());
            let got = g.distance_cdf(q, r);
            assert!(
                (got - analytic).abs() < 1e-7,
                "r={r}: got={got} analytic={analytic}"
            );
        }
    }

    #[test]
    fn sampling_agreement() {
        let g = TruncatedGaussian::with_sigmas(Point::new(-1.0, 0.5), 0.8, 3.0);
        let q = Point::new(1.0, 1.0);
        check_cdf_against_sampling(&g, q, 50_000, 0.012, 21);
        check_moments_against_sampling(&g, q, 50_000, 0.012, 22);
    }

    #[test]
    fn truncation_respected() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let g = TruncatedGaussian::with_sigmas(Point::ORIGIN, 1.0, 2.0);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..2_000 {
            let p = g.sample(&mut rng);
            assert!(p.to_vector().norm() <= 2.0 + 1e-12);
        }
    }

    proptest! {
        #[test]
        fn prop_cdf_monotone_bounded(
            l in 0.0f64..6.0, sigma in 0.2f64..2.0, k in 1.5f64..4.0,
        ) {
            let g = TruncatedGaussian::with_sigmas(Point::ORIGIN, sigma, k);
            let q = Point::new(l, 0.0);
            let lo = g.min_dist(q);
            let hi = g.max_dist(q);
            let mut prev = -1e-9;
            for i in 0..=12 {
                let r = lo + (hi - lo) * i as f64 / 12.0;
                let c = g.distance_cdf(q, r);
                prop_assert!(c + 1e-7 >= prev, "non-monotone at r={r}");
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&c));
                prev = c;
            }
            prop_assert!((g.distance_cdf(q, hi) - 1.0).abs() < 1e-6);
        }

        #[test]
        fn prop_expected_dist_sane(
            l in 0.0f64..6.0, sigma in 0.2f64..2.0,
        ) {
            let g = TruncatedGaussian::with_sigmas(Point::ORIGIN, sigma, 3.0);
            let q = Point::new(l, 0.0);
            let e = g.expected_dist(q);
            prop_assert!(e >= g.min_dist(q) - 1e-6);
            prop_assert!(e <= g.max_dist(q) + 1e-6);
            prop_assert!(e >= q.dist(g.mean()) - 1e-5); // Jensen
        }
    }
}
