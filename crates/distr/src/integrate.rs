//! Small numeric-integration toolkit (adaptive Simpson).
//!
//! Used for distance cdfs and expected distances of continuous uncertain
//! points where no closed form exists (truncated Gaussians), and by the
//! numeric-integration quantification baseline (`[CKP04]`-style) in
//! `unn-quantify`.

/// Adaptive Simpson quadrature of `f` over `[a, b]` with absolute tolerance
/// `tol` and a recursion-depth cap.
///
/// The classic Lyness scheme: recurse while the two-panel refinement differs
/// from the single panel by more than `15 * tol`.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    simpson_rec(&f, a, b, fa, fm, fb, simpson_est(a, b, fa, fm, fb), tol, 24)
}

#[inline]
fn simpson_est(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn simpson_rec<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson_est(a, m, fa, flm, fm);
    let right = simpson_est(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        return left + right + delta / 15.0;
    }
    simpson_rec(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)
        + simpson_rec(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)
}

/// Integrates a piecewise-smooth function by splitting at the given
/// breakpoints (which need not be sorted or inside the interval).
pub fn integrate_piecewise<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    b: f64,
    breakpoints: &[f64],
    tol: f64,
) -> f64 {
    let mut cuts: Vec<f64> = breakpoints
        .iter()
        .copied()
        .filter(|&x| x > a && x < b)
        .collect();
    cuts.push(a);
    cuts.push(b);
    cuts.sort_by(f64::total_cmp);
    cuts.dedup();
    let mut total = 0.0;
    for w in cuts.windows(2) {
        total += adaptive_simpson(&f, w[0], w[1], tol);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::PI;
    use proptest::prelude::*;

    #[test]
    fn integrates_polynomial_exactly() {
        // Simpson is exact for cubics.
        let v = adaptive_simpson(|x| x * x * x - 2.0 * x + 1.0, 0.0, 2.0, 1e-12);
        assert!((v - (4.0 - 4.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn integrates_transcendental() {
        let v = adaptive_simpson(f64::sin, 0.0, PI, 1e-12);
        assert!((v - 2.0).abs() < 1e-10);
        let v = adaptive_simpson(|x| (-x * x / 2.0).exp(), -8.0, 8.0, 1e-12);
        assert!((v - (2.0 * PI).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn handles_sqrt_endpoint_singularity() {
        // Integral of sqrt(1 - x^2) over [-1, 1] = pi/2 (semicircle area).
        let v = adaptive_simpson(|x| (1.0 - x * x).max(0.0).sqrt(), -1.0, 1.0, 1e-10);
        assert!((v - PI / 2.0).abs() < 1e-7, "v = {v}");
    }

    #[test]
    fn piecewise_with_kink() {
        // |x| over [-1, 2]: exact 0.5 + 2.
        let v = integrate_piecewise(|x: f64| x.abs(), -1.0, 2.0, &[0.0], 1e-12);
        assert!((v - 2.5).abs() < 1e-10);
    }

    #[test]
    fn empty_interval() {
        assert_eq!(adaptive_simpson(|x| x, 3.0, 3.0, 1e-9), 0.0);
    }

    proptest! {
        #[test]
        fn prop_linearity(a in -3.0f64..3.0, b in 0.0f64..3.0, c in -2.0f64..2.0) {
            let hi = a + b;
            let v1 = adaptive_simpson(|x| c * x.sin(), a, hi, 1e-10);
            let v2 = c * adaptive_simpson(f64::sin, a, hi, 1e-10);
            prop_assert!((v1 - v2).abs() < 1e-7 * (1.0 + v2.abs()));
        }

        #[test]
        fn prop_additivity(a in -3.0f64..0.0, m in 0.0f64..2.0, b in 2.0f64..5.0) {
            let f = |x: f64| (x * 1.3).cos() + 0.1 * x;
            let whole = adaptive_simpson(f, a, b, 1e-10);
            let split = adaptive_simpson(f, a, m, 1e-10) + adaptive_simpson(f, m, b, 1e-10);
            prop_assert!((whole - split).abs() < 1e-7);
        }
    }
}
