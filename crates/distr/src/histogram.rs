//! Histogram (non-parametric) uncertain points.
//!
//! The paper's problem definition explicitly allows non-parametric pdfs
//! "such as a histogram". A [`HistogramDistribution`] is a uniform grid of
//! cells over a bounding box with a probability mass per cell; within a cell
//! the density is uniform. The distance cdf is computed *exactly* via the
//! closed-form area of a circle–rectangle intersection (no sampling).

use rand::{Rng, RngExt};
use unn_geom::{Aabb, Point};

use crate::error::DistrError;
use crate::traits::UncertainPoint;

/// A histogram-shaped uncertain point on a regular grid.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(
    feature = "serde",
    derive(serde::Serialize, serde::Deserialize),
    serde(from = "HistogramRaw", into = "HistogramRaw")
)]
pub struct HistogramDistribution {
    bbox: Aabb,
    nx: usize,
    ny: usize,
    /// Normalized cell masses, row-major (`iy * nx + ix`).
    mass: Vec<f64>,
    /// Prefix sums for sampling.
    cum: Vec<f64>,
    mean: Point,
}

impl HistogramDistribution {
    /// Builds a histogram over `bbox` with `nx × ny` cells and the given
    /// (unnormalized, non-negative) masses in row-major order. At least one
    /// mass must be positive.
    ///
    /// # Panics
    ///
    /// On invalid input; [`HistogramDistribution::try_new`] is the
    /// non-panicking equivalent.
    pub fn new(bbox: Aabb, nx: usize, ny: usize, masses: Vec<f64>) -> Self {
        match Self::try_new(bbox, nx, ny, masses) {
            Ok(h) => h,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: rejects an empty or non-finite grid box, a
    /// zero-cell grid, a mass vector of the wrong length, and negative or
    /// non-finite masses (or a non-positive total) instead of panicking.
    pub fn try_new(bbox: Aabb, nx: usize, ny: usize, masses: Vec<f64>) -> Result<Self, DistrError> {
        if nx == 0 || ny == 0 {
            return Err(DistrError::EmptySupport { model: "histogram" });
        }
        if masses.len() != nx * ny {
            return Err(DistrError::LengthMismatch {
                expected: nx * ny,
                got: masses.len(),
            });
        }
        if !bbox.min.is_finite() || !bbox.max.is_finite() {
            return Err(DistrError::NonFiniteCoordinate {
                model: "histogram",
                point: if bbox.min.is_finite() {
                    bbox.max
                } else {
                    bbox.min
                },
            });
        }
        if bbox.is_empty() || bbox.width() <= 0.0 || bbox.height() <= 0.0 {
            return Err(DistrError::EmptySupport { model: "histogram" });
        }
        if let Some(&m) = masses.iter().find(|&&m| !(m >= 0.0 && m.is_finite())) {
            return Err(DistrError::BadParameter {
                model: "histogram",
                name: "mass",
                value: m,
            });
        }
        let total: f64 = masses.iter().sum();
        if !(total > 0.0 && total.is_finite()) {
            return Err(DistrError::BadParameter {
                model: "histogram",
                name: "total mass",
                value: total,
            });
        }
        let mass: Vec<f64> = masses.iter().map(|m| m / total).collect();
        let mut cum = Vec::with_capacity(mass.len());
        let mut acc = 0.0;
        for &m in &mass {
            acc += m;
            cum.push(acc);
        }
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        let (cw, ch) = (bbox.width() / nx as f64, bbox.height() / ny as f64);
        let (mut mx, mut my) = (0.0, 0.0);
        for iy in 0..ny {
            for ix in 0..nx {
                let m = mass[iy * nx + ix];
                mx += m * (bbox.min.x + (ix as f64 + 0.5) * cw);
                my += m * (bbox.min.y + (iy as f64 + 0.5) * ch);
            }
        }
        Ok(HistogramDistribution {
            bbox,
            nx,
            ny,
            mass,
            cum,
            mean: Point::new(mx, my),
        })
    }

    /// Re-checks the construction invariants on an existing value (the
    /// index-build validation hook).
    pub fn validate(&self) -> Result<(), DistrError> {
        Self::try_new(self.bbox, self.nx, self.ny, self.mass.clone()).map(|_| ())
    }

    /// Grid resolution `(nx, ny)`.
    #[inline]
    pub fn resolution(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// The cell rectangle of cell `(ix, iy)`.
    fn cell(&self, ix: usize, iy: usize) -> Aabb {
        let cw = self.bbox.width() / self.nx as f64;
        let ch = self.bbox.height() / self.ny as f64;
        let min = Point::new(
            self.bbox.min.x + ix as f64 * cw,
            self.bbox.min.y + iy as f64 * ch,
        );
        Aabb::new(min, Point::new(min.x + cw, min.y + ch))
    }
}

/// Serialization mirror rebuilding derived fields through the constructor.
#[cfg(feature = "serde")]
#[derive(serde::Serialize, serde::Deserialize)]
struct HistogramRaw {
    bbox: Aabb,
    nx: usize,
    ny: usize,
    mass: Vec<f64>,
}

#[cfg(feature = "serde")]
impl From<HistogramDistribution> for HistogramRaw {
    fn from(h: HistogramDistribution) -> Self {
        HistogramRaw {
            bbox: h.bbox,
            nx: h.nx,
            ny: h.ny,
            mass: h.mass,
        }
    }
}

#[cfg(feature = "serde")]
impl From<HistogramRaw> for HistogramDistribution {
    fn from(raw: HistogramRaw) -> Self {
        HistogramDistribution::new(raw.bbox, raw.nx, raw.ny, raw.mass)
    }
}

/// Exact area of the intersection of the disk `(center q, radius r)` with an
/// axis-aligned rectangle.
///
/// Shifts the rectangle so the circle is centered at the origin and
/// integrates the clipped chord height
/// `len(x) = max(0, min(y1, h(x)) - max(y0, -h(x)))`, `h(x) = √(r²-x²)`,
/// splitting at the kinks (where `±h` crosses `y0`/`y1`) so each piece has
/// the closed-form antiderivative `∫h = (x·h + r²·asin(x/r)) / 2`.
pub fn circle_rect_overlap_area(q: Point, r: f64, rect: &Aabb) -> f64 {
    if r <= 0.0 || rect.is_empty() {
        return 0.0;
    }
    let (x0, x1) = (rect.min.x - q.x, rect.max.x - q.x);
    let (y0, y1) = (rect.min.y - q.y, rect.max.y - q.y);
    let a = x0.max(-r);
    let b = x1.min(r);
    if a >= b {
        return 0.0;
    }
    // Kinks: x where h(x) = |y0| or |y1|.
    let mut cuts = vec![a, b];
    for y in [y0, y1] {
        if y.abs() < r {
            let x = (r * r - y * y).sqrt();
            for cand in [x, -x] {
                if cand > a && cand < b {
                    cuts.push(cand);
                }
            }
        }
    }
    cuts.sort_by(f64::total_cmp);
    cuts.dedup();

    // Antiderivative of h(x) = sqrt(r² - x²).
    let cap_f = |x: f64| {
        let xc = x.clamp(-r, r);
        0.5 * (xc * (r * r - xc * xc).max(0.0).sqrt() + r * r * (xc / r).asin())
    };

    let mut area = 0.0;
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let m = 0.5 * (lo + hi);
        let h_m = (r * r - m * m).max(0.0).sqrt();
        let top_is_circle = h_m < y1;
        let bot_is_circle = -h_m > y0;
        let top_val = if top_is_circle { h_m } else { y1 };
        let bot_val = if bot_is_circle { -h_m } else { y0 };
        if top_val <= bot_val {
            continue; // empty strip
        }
        let top_int = if top_is_circle {
            cap_f(hi) - cap_f(lo)
        } else {
            y1 * (hi - lo)
        };
        let bot_int = if bot_is_circle {
            -(cap_f(hi) - cap_f(lo))
        } else {
            y0 * (hi - lo)
        };
        area += top_int - bot_int;
    }
    area.max(0.0)
}

impl UncertainPoint for HistogramDistribution {
    fn min_dist(&self, q: Point) -> f64 {
        // Minimum over cells with positive mass.
        let mut best = f64::INFINITY;
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                if self.mass[iy * self.nx + ix] > 0.0 {
                    best = best.min(self.cell(ix, iy).min_dist(q));
                }
            }
        }
        best
    }

    fn max_dist(&self, q: Point) -> f64 {
        let mut best = 0.0f64;
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                if self.mass[iy * self.nx + ix] > 0.0 {
                    best = best.max(self.cell(ix, iy).max_dist(q));
                }
            }
        }
        best
    }

    fn distance_cdf(&self, q: Point, r: f64) -> f64 {
        if r <= 0.0 {
            return 0.0;
        }
        let mut total = 0.0;
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let m = self.mass[iy * self.nx + ix];
                if m == 0.0 {
                    continue;
                }
                let cell = self.cell(ix, iy);
                if cell.min_dist(q) >= r {
                    continue;
                }
                if cell.max_dist(q) <= r {
                    total += m;
                    continue;
                }
                let cell_area = (cell.width() * cell.height()).max(f64::MIN_POSITIVE);
                total += m * circle_rect_overlap_area(q, r, &cell) / cell_area;
            }
        }
        total.clamp(0.0, 1.0)
    }

    fn sample(&self, rng: &mut dyn Rng) -> Point {
        let u: f64 = rng.random();
        let idx = self
            .cum
            .partition_point(|&c| c < u)
            .min(self.mass.len() - 1);
        let (ix, iy) = (idx % self.nx, idx / self.nx);
        let cell = self.cell(ix, iy);
        Point::new(
            rng.random_range(cell.min.x..cell.max.x),
            rng.random_range(cell.min.y..cell.max.y),
        )
    }

    fn mean(&self) -> Point {
        self.mean
    }

    fn expected_dist(&self, q: Point) -> f64 {
        // E[d] = δ + ∫ (1 - G) over the support range.
        let lo = self.min_dist(q);
        let hi = self.max_dist(q);
        lo + crate::integrate::adaptive_simpson(|r| 1.0 - self.distance_cdf(q, r), lo, hi, 1e-8)
    }

    fn support_bbox(&self) -> Aabb {
        self.bbox
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testutil::{check_cdf_against_sampling, check_moments_against_sampling};
    use core::f64::consts::PI;
    use proptest::prelude::*;

    #[test]
    fn circle_rect_area_limits() {
        let rect = Aabb::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0));
        // Huge circle covers the rect.
        assert!((circle_rect_overlap_area(Point::ORIGIN, 10.0, &rect) - 4.0).abs() < 1e-12);
        // Tiny circle fully inside the rect.
        assert!((circle_rect_overlap_area(Point::ORIGIN, 0.5, &rect) - PI * 0.25).abs() < 1e-12);
        // Far circle misses.
        assert_eq!(
            circle_rect_overlap_area(Point::new(100.0, 0.0), 1.0, &rect),
            0.0
        );
        // Half overlap: circle centered on rect edge, small radius.
        let v = circle_rect_overlap_area(Point::new(1.0, 0.0), 0.5, &rect);
        assert!((v - PI * 0.125).abs() < 1e-12, "v = {v}");
        // Quarter overlap at a corner.
        let v = circle_rect_overlap_area(Point::new(1.0, 1.0), 0.5, &rect);
        assert!((v - PI * 0.0625).abs() < 1e-12, "v = {v}");
    }

    #[test]
    fn circle_rect_area_vs_grid() {
        let rect = Aabb::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
        for &(qx, qy, r) in &[
            (0.5, 0.5, 0.8),
            (-0.3, 0.2, 1.0),
            (2.0, 1.0, 1.5),
            (1.0, -0.5, 0.7),
        ] {
            let q = Point::new(qx, qy);
            let analytic = circle_rect_overlap_area(q, r, &rect);
            // Fine grid check.
            let n = 400;
            let mut hits = 0u64;
            for i in 0..n {
                for j in 0..n {
                    let p = Point::new(
                        rect.min.x + rect.width() * (i as f64 + 0.5) / n as f64,
                        rect.min.y + rect.height() * (j as f64 + 0.5) / n as f64,
                    );
                    if p.dist2(q) <= r * r {
                        hits += 1;
                    }
                }
            }
            let approx = hits as f64 * rect.width() * rect.height() / (n * n) as f64;
            assert!(
                (analytic - approx).abs() < 0.01,
                "q=({qx},{qy}) r={r}: analytic={analytic} approx={approx}"
            );
        }
    }

    fn sample_hist() -> HistogramDistribution {
        // 2x2 grid with unequal masses.
        HistogramDistribution::new(
            Aabb::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0)),
            2,
            2,
            vec![1.0, 2.0, 3.0, 4.0],
        )
    }

    #[test]
    fn construction_and_moments() {
        let h = sample_hist();
        assert_eq!(h.resolution(), (2, 2));
        // Mean: weighted centers (0.5,0.5)*0.1 + (1.5,0.5)*0.2 + (0.5,1.5)*0.3
        // + (1.5,1.5)*0.4.
        let m = h.mean();
        assert!((m.x - (0.05 + 0.3 + 0.15 + 0.6)).abs() < 1e-12);
        assert!((m.y - (0.05 + 0.1 + 0.45 + 0.6)).abs() < 1e-12);
    }

    #[test]
    fn min_max_skip_empty_cells() {
        let h = HistogramDistribution::new(
            Aabb::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0)),
            2,
            1,
            vec![0.0, 1.0], // only the right cell carries mass
        );
        let q = Point::new(-1.0, 0.5);
        assert_eq!(h.min_dist(q), 2.0);
        // Farthest point of the right cell from q: corner (2, 0) or (2, 1).
        assert!((h.max_dist(q) - (9.0f64 + 0.25).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cdf_against_sampling() {
        let h = sample_hist();
        let q = Point::new(2.5, -0.5);
        check_cdf_against_sampling(&h, q, 50_000, 0.012, 31);
        check_moments_against_sampling(&h, q, 50_000, 0.012, 32);
    }

    proptest! {
        #[test]
        fn prop_circle_rect_area_bounds(
            qx in -3.0f64..3.0, qy in -3.0f64..3.0, r in 0.01f64..4.0,
        ) {
            let rect = Aabb::new(Point::new(-1.0, -0.5), Point::new(1.0, 0.5));
            let v = circle_rect_overlap_area(Point::new(qx, qy), r, &rect);
            prop_assert!(v >= 0.0);
            prop_assert!(v <= PI * r * r + 1e-9);
            prop_assert!(v <= rect.width() * rect.height() + 1e-9);
        }

        #[test]
        fn prop_circle_rect_area_monotone_in_r(
            qx in -3.0f64..3.0, qy in -3.0f64..3.0,
        ) {
            let rect = Aabb::new(Point::new(-1.0, -0.5), Point::new(1.0, 0.5));
            let q = Point::new(qx, qy);
            let mut prev = 0.0;
            for i in 1..=12 {
                let r = 0.3 * i as f64;
                let v = circle_rect_overlap_area(q, r, &rect);
                prop_assert!(v + 1e-10 >= prev);
                prev = v;
            }
        }

        #[test]
        fn prop_hist_cdf_monotone(
            masses in proptest::collection::vec(0.0f64..5.0, 9),
            qx in -3.0f64..5.0, qy in -3.0f64..5.0,
        ) {
            prop_assume!(masses.iter().sum::<f64>() > 0.1);
            let h = HistogramDistribution::new(
                Aabb::new(Point::new(0.0, 0.0), Point::new(3.0, 3.0)), 3, 3, masses);
            let q = Point::new(qx, qy);
            let lo = h.min_dist(q);
            let hi = h.max_dist(q);
            let mut prev = -1e-9;
            for i in 0..=10 {
                let r = lo + (hi - lo) * i as f64 / 10.0;
                let c = h.distance_cdf(q, r);
                prop_assert!(c + 1e-9 >= prev);
                prev = c;
            }
            prop_assert!((h.distance_cdf(q, hi + 1e-9) - 1.0).abs() < 1e-9);
        }
    }
}
