//! # unn-distr — uncertain-point models
//!
//! Implements the paper's locational uncertainty models (§1.1): an uncertain
//! point is a probability distribution over locations in the plane, either
//! discrete (`k` weighted locations) or continuous with bounded support
//! (uniform on a disk, truncated Gaussian, histogram).
//!
//! The common interface is [`UncertainPoint`]; the closed enum [`Uncertain`]
//! lets heterogeneous sets live in one collection without dynamic dispatch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod discrete;
pub mod error;
pub mod gaussian;
pub mod histogram;
pub mod integrate;
pub mod traits;
pub mod uniform_disk;
pub mod uniform_polygon;

pub use chaos::{ChaosDistribution, ChaosMode};
pub use discrete::{AliasTable, DiscreteDistribution, DiscreteError};
pub use error::DistrError;
pub use gaussian::TruncatedGaussian;
pub use histogram::{circle_rect_overlap_area, HistogramDistribution};
pub use traits::UncertainPoint;
pub use uniform_disk::UniformDisk;
pub use uniform_polygon::UniformPolygon;

use rand::Rng;
use unn_geom::{Aabb, Disk, Point};

/// Any supported uncertain-point model.
///
/// Dispatches [`UncertainPoint`] over the concrete models; use this for
/// heterogeneous inputs (e.g. a sensor database mixing GPS disks and
/// particle-filter histograms).
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Uncertain {
    /// Discrete distribution of description complexity `k`.
    Discrete(DiscreteDistribution),
    /// Uniform distribution over a disk.
    UniformDisk(UniformDisk),
    /// Truncated isotropic Gaussian.
    Gaussian(TruncatedGaussian),
    /// Histogram over a regular grid.
    Histogram(HistogramDistribution),
    /// Uniform distribution over a convex polygon.
    Polygon(UniformPolygon),
    /// Fault-injection wrapper for resilience testing (see [`chaos`]).
    Chaos(ChaosDistribution),
}

impl Uncertain {
    /// A certain (single-location) point.
    pub fn certain(p: Point) -> Self {
        Uncertain::Discrete(DiscreteDistribution::certain(p))
    }

    /// Uniform distribution over a disk.
    pub fn uniform_disk(center: Point, radius: f64) -> Self {
        Uncertain::UniformDisk(UniformDisk::from_center(center, radius))
    }

    /// The disk support if this is a uniform-disk point.
    pub fn as_disk(&self) -> Option<Disk> {
        match self {
            Uncertain::UniformDisk(u) => Some(u.disk()),
            _ => None,
        }
    }

    /// The discrete distribution if this is a discrete point.
    pub fn as_discrete(&self) -> Option<&DiscreteDistribution> {
        match self {
            Uncertain::Discrete(d) => Some(d),
            _ => None,
        }
    }

    /// Approximates any model by a discrete distribution of `k` sampled
    /// locations with uniform weights — the reduction of Theorem 4.5, which
    /// proves that `k(α) = O(α⁻² log(1/δ'))` samples keep every
    /// quantification probability within `αn` (Lemma 4.4).
    ///
    /// For an already-discrete point this *resamples* (matching the theorem's
    /// analysis); callers that want the exact discrete distribution should
    /// use it directly.
    pub fn discretize(&self, k: usize, rng: &mut dyn Rng) -> DiscreteDistribution {
        assert!(k > 0, "need at least one sample");
        let pts: Vec<Point> = (0..k).map(|_| self.sample(rng)).collect();
        match DiscreteDistribution::uniform(pts) {
            Ok(d) => d,
            // k > 0 locations were drawn; only non-finite samples (a faulty
            // model) can fail here.
            Err(e) => panic!("discretize: {e}"),
        }
    }

    /// Checks that this value satisfies every construction invariant of its
    /// model: finite coordinates, positive weights/masses/radii, non-empty
    /// support. Always `Ok` for values built through this crate's checked
    /// constructors; catches values deserialized or constructed around them.
    ///
    /// A [`Chaos`](Uncertain::Chaos) wrapper validates its *inner* model —
    /// it is a testing double and deliberately passes as whatever it wraps.
    pub fn validate(&self) -> Result<(), DistrError> {
        match self {
            Uncertain::Discrete(d) => {
                // `DiscreteDistribution` re-validated through its own
                // constructor on the defining data.
                DiscreteDistribution::new(d.points().to_vec(), d.weights().to_vec())
                    .map(|_| ())
                    .map_err(DistrError::from)
            }
            Uncertain::UniformDisk(u) => u.validate(),
            Uncertain::Gaussian(g) => g.validate(),
            Uncertain::Histogram(h) => h.validate(),
            Uncertain::Polygon(p) => p.validate(),
            Uncertain::Chaos(c) => c.inner().validate(),
        }
    }

    /// Returns a repaired copy of this value, fixing what [`validate`]
    /// (see [`Uncertain::validate`]) would reject when a fix is
    /// well-defined, and erroring otherwise:
    ///
    /// * discrete: non-finite locations and non-positive weights are
    ///   dropped, coincident locations merged
    ///   ([`DiscreteDistribution::repair`]);
    /// * everything else: validation failures are unrepairable (there is no
    ///   canonical fix for a NaN center or a zero-area support) and return
    ///   the underlying error.
    ///
    /// On already-valid input this returns a value that behaves identically
    /// (discrete points may still have coincident locations merged, which
    /// does not change the distribution).
    pub fn repair(&self) -> Result<Uncertain, DistrError> {
        match self {
            Uncertain::Discrete(d) => {
                let r = DiscreteDistribution::repair(d.points().to_vec(), d.weights().to_vec())?;
                Ok(Uncertain::Discrete(r))
            }
            other => other.validate().map(|()| other.clone()),
        }
    }

    /// Sample count `k(α)` from Theorem 4.5 for accuracy `alpha` and failure
    /// probability `delta` (per point), with the constant set to 1/2 from
    /// the classic VC bound for disks ([VC71, LLS01] give `c/α² · log(1/δ)`).
    pub fn discretization_size(alpha: f64, delta: f64) -> usize {
        assert!(alpha > 0.0 && alpha < 1.0 && delta > 0.0 && delta < 1.0);
        ((0.5 / (alpha * alpha)) * (1.0 / delta).ln())
            .ceil()
            .max(1.0) as usize
    }
}

macro_rules! dispatch {
    ($self:ident, $u:ident => $body:expr) => {
        match $self {
            Uncertain::Discrete($u) => $body,
            Uncertain::UniformDisk($u) => $body,
            Uncertain::Gaussian($u) => $body,
            Uncertain::Histogram($u) => $body,
            Uncertain::Polygon($u) => $body,
            Uncertain::Chaos($u) => $body,
        }
    };
}

impl UncertainPoint for Uncertain {
    fn min_dist(&self, q: Point) -> f64 {
        dispatch!(self, u => u.min_dist(q))
    }
    fn max_dist(&self, q: Point) -> f64 {
        dispatch!(self, u => u.max_dist(q))
    }
    fn distance_cdf(&self, q: Point, r: f64) -> f64 {
        dispatch!(self, u => u.distance_cdf(q, r))
    }
    fn sample(&self, rng: &mut dyn Rng) -> Point {
        dispatch!(self, u => u.sample(rng))
    }
    fn mean(&self) -> Point {
        dispatch!(self, u => u.mean())
    }
    fn expected_dist(&self, q: Point) -> f64 {
        dispatch!(self, u => u.expected_dist(q))
    }
    fn support_bbox(&self) -> Aabb {
        dispatch!(self, u => u.support_bbox())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn enum_dispatch_consistency() {
        let models: Vec<Uncertain> = vec![
            Uncertain::certain(Point::new(1.0, 1.0)),
            Uncertain::uniform_disk(Point::new(0.0, 0.0), 2.0),
            Uncertain::Gaussian(TruncatedGaussian::with_sigmas(
                Point::new(3.0, 0.0),
                0.5,
                3.0,
            )),
            Uncertain::Histogram(HistogramDistribution::new(
                Aabb::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0)),
                2,
                2,
                vec![1.0, 1.0, 1.0, 1.0],
            )),
            Uncertain::Polygon(UniformPolygon::from_ccw_vertices(vec![
                Point::new(-1.0, -1.0),
                Point::new(1.0, -1.0),
                Point::new(0.0, 1.5),
            ])),
        ];
        let q = Point::new(5.0, 5.0);
        for m in &models {
            assert!(m.min_dist(q) <= m.max_dist(q));
            assert!(m.distance_cdf(q, m.max_dist(q) + 1e-9) > 1.0 - 1e-9);
            assert!(m.distance_cdf(q, m.min_dist(q) - 1e-9) < 1e-9);
            assert!(m.expected_dist(q) >= m.min_dist(q) - 1e-6);
            assert!(m.support_bbox().contains(m.mean()));
        }
    }

    #[test]
    fn discretize_approximates_cdf() {
        // Lemma 4.4's engine: the discretized cdf tracks the continuous cdf
        // uniformly within alpha.
        let u = Uncertain::uniform_disk(Point::ORIGIN, 3.0);
        let mut rng = SmallRng::seed_from_u64(99);
        let k = Uncertain::discretization_size(0.05, 0.01);
        let d = u.discretize(k, &mut rng);
        assert_eq!(d.len(), k);
        let q = Point::new(4.0, 1.0);
        for i in 0..=20 {
            let r = 1.0 + 6.0 * i as f64 / 20.0;
            let err = (u.distance_cdf(q, r) - d.distance_cdf(q, r)).abs();
            assert!(err < 0.05, "r={r}: err={err}");
        }
    }

    #[test]
    fn discretization_size_scales() {
        let a = Uncertain::discretization_size(0.1, 0.1);
        let b = Uncertain::discretization_size(0.05, 0.1);
        assert!(b >= 4 * a - 4); // quadratic in 1/alpha
        assert!(Uncertain::discretization_size(0.5, 0.5) >= 1);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_round_trips_preserve_behavior() {
        let models: Vec<Uncertain> = vec![
            Uncertain::Discrete(
                DiscreteDistribution::new(
                    vec![Point::new(1.0, 2.0), Point::new(3.0, -1.0)],
                    vec![1.0, 3.0],
                )
                .unwrap(),
            ),
            Uncertain::uniform_disk(Point::new(0.5, -0.5), 2.0),
            Uncertain::Gaussian(TruncatedGaussian::with_sigmas(
                Point::new(3.0, 0.0),
                0.5,
                3.0,
            )),
            Uncertain::Histogram(HistogramDistribution::new(
                Aabb::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0)),
                2,
                2,
                vec![1.0, 2.0, 3.0, 4.0],
            )),
            Uncertain::Polygon(UniformPolygon::from_ccw_vertices(vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(1.0, 2.0),
            ])),
        ];
        let q = Point::new(4.0, 4.0);
        for m in &models {
            let json = serde_json::to_string(m).expect("serialize");
            let back: Uncertain = serde_json::from_str(&json).expect("deserialize");
            // Behavior-level equality: distances, cdf, moments.
            assert_eq!(m.min_dist(q), back.min_dist(q));
            assert_eq!(m.max_dist(q), back.max_dist(q));
            for i in 1..10 {
                let r = i as f64;
                assert_eq!(m.distance_cdf(q, r), back.distance_cdf(q, r));
            }
            assert_eq!(m.mean(), back.mean());
        }
        // Invalid payloads are rejected by the constructor-backed path.
        let bad = r#"{"Discrete":{"points":[{"x":0.0,"y":0.0}],"weights":[-1.0]}}"#;
        assert!(serde_json::from_str::<Uncertain>(bad).is_err());
    }

    #[test]
    fn as_accessors() {
        let d = Uncertain::uniform_disk(Point::ORIGIN, 1.0);
        assert!(d.as_disk().is_some());
        assert!(d.as_discrete().is_none());
        let c = Uncertain::certain(Point::ORIGIN);
        assert!(c.as_disk().is_none());
        assert_eq!(c.as_discrete().unwrap().len(), 1);
    }
}
