//! The common interface of uncertain-point models.

use rand::Rng;
use unn_geom::{Aabb, Point};

/// An uncertain point: a probability distribution over locations in the
/// plane (the paper's *locational model*, §1.1).
///
/// Everything the query structures need is exposed here:
///
/// * the support geometry via [`min_dist`](UncertainPoint::min_dist) /
///   [`max_dist`](UncertainPoint::max_dist) — the paper's `δ_i(q)` and
///   `Δ_i(q)`, which fully determine the nonzero Voronoi diagram;
/// * the distance cdf `G_{q,i}(r) = Pr[d(q, P_i) <= r]` — the quantity the
///   quantification probability (Eq. 1/2) is built from;
/// * random instantiation ([`sample`](UncertainPoint::sample)) — the engine
///   of the Monte-Carlo structure (§4.2).
pub trait UncertainPoint {
    /// Minimum possible distance from `q` to the point: `δ(q)`.
    fn min_dist(&self, q: Point) -> f64;

    /// Maximum possible distance from `q` to the point: `Δ(q)`.
    fn max_dist(&self, q: Point) -> f64;

    /// Distance cdf `G_q(r) = Pr[d(q, P) <= r]`.
    ///
    /// Monotone in `r`, `0` for `r < δ(q)`, `1` for `r >= Δ(q)`.
    fn distance_cdf(&self, q: Point, r: f64) -> f64;

    /// Draws a location according to the distribution.
    fn sample(&self, rng: &mut dyn Rng) -> Point;

    /// The mean location `E[P]`.
    fn mean(&self) -> Point;

    /// Expected distance `E[d(q, P)]` — the ranking criterion of the
    /// companion "part I" paper `[AESZ12]`.
    fn expected_dist(&self, q: Point) -> f64;

    /// A bounding box of the support.
    fn support_bbox(&self) -> Aabb;
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Empirically checks `distance_cdf` against sampling: the maximum
    /// deviation over a grid of radii must be within `tol`.
    pub fn check_cdf_against_sampling<U: UncertainPoint>(
        u: &U,
        q: Point,
        n_samples: usize,
        tol: f64,
        seed: u64,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut dists: Vec<f64> = (0..n_samples).map(|_| u.sample(&mut rng).dist(q)).collect();
        dists.sort_by(f64::total_cmp);
        let lo = u.min_dist(q);
        let hi = u.max_dist(q);
        assert!(hi >= lo);
        for k in 0..=20 {
            let r = lo + (hi - lo) * k as f64 / 20.0;
            let empirical = dists.partition_point(|&d| d <= r) as f64 / n_samples as f64;
            let analytic = u.distance_cdf(q, r);
            assert!(
                (empirical - analytic).abs() <= tol,
                "cdf mismatch at r={r}: empirical={empirical} analytic={analytic}"
            );
        }
        // Boundary conditions.
        assert!(u.distance_cdf(q, lo - 1e-9) <= 1e-12);
        assert!((u.distance_cdf(q, hi + 1e-9) - 1.0).abs() <= 1e-12);
    }

    /// Empirically checks `expected_dist` and `mean` against sampling.
    pub fn check_moments_against_sampling<U: UncertainPoint>(
        u: &U,
        q: Point,
        n_samples: usize,
        tol: f64,
        seed: u64,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sum_d = 0.0;
        let (mut sx, mut sy) = (0.0, 0.0);
        for _ in 0..n_samples {
            let p = u.sample(&mut rng);
            sum_d += p.dist(q);
            sx += p.x;
            sy += p.y;
        }
        let n = n_samples as f64;
        let ed = sum_d / n;
        assert!(
            (ed - u.expected_dist(q)).abs() <= tol * (1.0 + ed),
            "expected_dist mismatch: sampled={ed} analytic={}",
            u.expected_dist(q)
        );
        // Mean coordinates: tolerance scaled by the support extent, which
        // bounds the per-sample standard deviation.
        let bb = u.support_bbox();
        let scale = 1.0 + bb.width().hypot(bb.height());
        let m = u.mean();
        assert!(
            (sx / n - m.x).abs() <= tol * scale,
            "mean.x mismatch: sampled={} analytic={}",
            sx / n,
            m.x
        );
        assert!(
            (sy / n - m.y).abs() <= tol * scale,
            "mean.y mismatch: sampled={} analytic={}",
            sy / n,
            m.y
        );
    }
}
