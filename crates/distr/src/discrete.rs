//! Discrete uncertain points: finitely many locations with probabilities.
//!
//! This is the paper's *discrete distribution of description complexity `k`*:
//! `P = {p_1, ..., p_k}` with location probabilities `w_i` summing to 1.
//! Sampling is provided both by inverse-cdf binary search (the balanced
//! binary tree of `[MR95]` that the paper cites) and by Walker's alias method
//! (`O(1)` per draw after `O(k)` preprocessing) — the Monte-Carlo structure
//! benchmarks both.

use rand::{Rng, RngExt};
use unn_geom::hull::convex_hull;
use unn_geom::{Aabb, Point};

use crate::traits::UncertainPoint;

/// Errors constructing a discrete distribution.
#[derive(Clone, Debug, PartialEq)]
pub enum DiscreteError {
    /// No locations were given.
    Empty,
    /// A weight was zero, negative, or non-finite.
    BadWeight(f64),
    /// A location coordinate was NaN or infinite.
    NonFiniteLocation(Point),
    /// Location and weight slices had different lengths.
    LengthMismatch {
        /// Number of locations supplied.
        points: usize,
        /// Number of weights supplied.
        weights: usize,
    },
}

impl core::fmt::Display for DiscreteError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DiscreteError::Empty => write!(f, "discrete distribution needs at least one location"),
            DiscreteError::BadWeight(w) => write!(f, "weight {w} is not positive and finite"),
            DiscreteError::NonFiniteLocation(p) => {
                write!(f, "location ({}, {}) is not finite", p.x, p.y)
            }
            DiscreteError::LengthMismatch { points, weights } => {
                write!(f, "{points} locations but {weights} weights")
            }
        }
    }
}

impl std::error::Error for DiscreteError {}

/// A discrete uncertain point.
///
/// Weights are normalized to sum to 1 on construction. Location order is
/// preserved (the paper's `p_{ij}` indexing).
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(
    feature = "serde",
    derive(serde::Serialize, serde::Deserialize),
    serde(try_from = "DiscreteRaw", into = "DiscreteRaw")
)]
pub struct DiscreteDistribution {
    points: Vec<Point>,
    weights: Vec<f64>,
    /// Prefix sums of weights; `cum.last() == 1.0` (up to rounding, forced).
    cum: Vec<f64>,
    /// Convex hull of the locations, for O(h) farthest-distance queries.
    hull: Vec<Point>,
    mean: Point,
    bbox: Aabb,
}

impl DiscreteDistribution {
    /// Builds a discrete uncertain point from locations and (unnormalized)
    /// positive weights.
    pub fn new(points: Vec<Point>, weights: Vec<f64>) -> Result<Self, DiscreteError> {
        if points.is_empty() {
            return Err(DiscreteError::Empty);
        }
        if points.len() != weights.len() {
            return Err(DiscreteError::LengthMismatch {
                points: points.len(),
                weights: weights.len(),
            });
        }
        if let Some(&p) = points.iter().find(|p| !p.is_finite()) {
            return Err(DiscreteError::NonFiniteLocation(p));
        }
        let mut total = 0.0;
        for &w in &weights {
            if !(w > 0.0 && w.is_finite()) {
                return Err(DiscreteError::BadWeight(w));
            }
            total += w;
        }
        let weights: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cum.push(acc);
        }
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        let hull = convex_hull(&points);
        let (mut mx, mut my) = (0.0, 0.0);
        for (p, w) in points.iter().zip(&weights) {
            mx += w * p.x;
            my += w * p.y;
        }
        let bbox = Aabb::of_points(&points);
        Ok(DiscreteDistribution {
            points,
            weights,
            cum,
            hull,
            mean: Point::new(mx, my),
            bbox,
        })
    }

    /// Uniform distribution over the given locations.
    pub fn uniform(points: Vec<Point>) -> Result<Self, DiscreteError> {
        let n = points.len();
        Self::new(points, vec![1.0; n.max(1)])
    }

    /// A certain (single-location) point.
    ///
    /// # Panics
    ///
    /// If `p` is not finite.
    pub fn certain(p: Point) -> Self {
        match Self::new(vec![p], vec![1.0]) {
            Ok(d) => d,
            Err(e) => panic!("certain point: {e}"),
        }
    }

    /// Builds a discrete uncertain point from possibly-degenerate input by
    /// repairing what [`DiscreteDistribution::new`] would reject:
    ///
    /// * locations with non-finite coordinates are dropped (with their
    ///   weights);
    /// * non-positive or non-finite weights are dropped (with their
    ///   locations);
    /// * exactly coincident locations are merged, summing their weights.
    ///
    /// Returns [`DiscreteError::Empty`] when nothing survives, and
    /// [`DiscreteError::LengthMismatch`] for unequal slice lengths (that is
    /// an API misuse, not a data defect). On input that `new` accepts the
    /// result is identical to `new` up to duplicate merging.
    pub fn repair(points: Vec<Point>, weights: Vec<f64>) -> Result<Self, DiscreteError> {
        if points.len() != weights.len() {
            return Err(DiscreteError::LengthMismatch {
                points: points.len(),
                weights: weights.len(),
            });
        }
        let mut kept: Vec<Point> = Vec::with_capacity(points.len());
        let mut kept_w: Vec<f64> = Vec::with_capacity(points.len());
        for (p, w) in points.into_iter().zip(weights) {
            if !(p.is_finite() && w > 0.0 && w.is_finite()) {
                continue;
            }
            // Merge exact duplicates (linear scan: k is the description
            // complexity, small by assumption).
            if let Some(j) = kept.iter().position(|&k| k == p) {
                kept_w[j] += w;
            } else {
                kept.push(p);
                kept_w.push(w);
            }
        }
        Self::new(kept, kept_w)
    }

    /// Locations, in construction order.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Normalized weights, aligned with [`points`](Self::points).
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Description complexity `k` (number of locations).
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if there are no locations (cannot occur for constructed values).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Ratio of the largest to the smallest weight — this point's
    /// contribution to the paper's *spread* `ρ` (Eq. 9).
    pub fn weight_spread(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for &w in &self.weights {
            lo = lo.min(w);
            hi = hi.max(w);
        }
        hi / lo
    }

    /// Builds an alias table for O(1) sampling.
    pub fn alias_table(&self) -> AliasTable {
        AliasTable::new(&self.weights)
    }

    /// Samples a location index by inverse-cdf binary search.
    pub fn sample_index(&self, rng: &mut dyn Rng) -> usize {
        let u: f64 = rng.random();
        self.cum.partition_point(|&c| c < u).min(self.len() - 1)
    }
}

impl UncertainPoint for DiscreteDistribution {
    fn min_dist(&self, q: Point) -> f64 {
        unn_geom::hull::nearest_dist(&self.points, q)
    }

    fn max_dist(&self, q: Point) -> f64 {
        unn_geom::hull::farthest_on_hull(&self.hull, q)
    }

    fn distance_cdf(&self, q: Point, r: f64) -> f64 {
        if r < 0.0 {
            return 0.0;
        }
        // Compare distances (not squared) so that `r = max_dist(q)` — itself
        // a rounded square root — includes the farthest location exactly.
        self.points
            .iter()
            .zip(&self.weights)
            .filter(|(p, _)| p.dist(q) <= r)
            .map(|(_, w)| w)
            .sum()
    }

    fn sample(&self, rng: &mut dyn Rng) -> Point {
        self.points[self.sample_index(rng)]
    }

    fn mean(&self) -> Point {
        self.mean
    }

    fn expected_dist(&self, q: Point) -> f64 {
        self.points
            .iter()
            .zip(&self.weights)
            .map(|(p, w)| w * p.dist(q))
            .sum()
    }

    fn support_bbox(&self) -> Aabb {
        self.bbox
    }
}

/// Serialization mirror: only the defining data; derived fields (cdf,
/// hull, moments) are rebuilt on deserialization so invariants hold.
#[cfg(feature = "serde")]
#[derive(serde::Serialize, serde::Deserialize)]
struct DiscreteRaw {
    points: Vec<Point>,
    weights: Vec<f64>,
}

#[cfg(feature = "serde")]
impl From<DiscreteDistribution> for DiscreteRaw {
    fn from(d: DiscreteDistribution) -> Self {
        DiscreteRaw {
            points: d.points,
            weights: d.weights,
        }
    }
}

#[cfg(feature = "serde")]
impl TryFrom<DiscreteRaw> for DiscreteDistribution {
    type Error = DiscreteError;
    fn try_from(raw: DiscreteRaw) -> Result<Self, DiscreteError> {
        DiscreteDistribution::new(raw.points, raw.weights)
    }
}

/// Walker's alias method: O(1) sampling from a discrete distribution.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from (already normalized or unnormalized) positive
    /// weights.
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            let leftover = prob[l as usize] - (1.0 - prob[s as usize]);
            prob[l as usize] = leftover;
            if leftover < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining entries keep prob ~1 up to rounding.
        AliasTable { prob, alias }
    }

    /// Draws an index.
    #[inline]
    pub fn sample(&self, rng: &mut dyn Rng) -> usize {
        let n = self.prob.len();
        let i = rng.random_range(0..n);
        let u: f64 = rng.random();
        if u < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testutil::{check_cdf_against_sampling, check_moments_against_sampling};
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tri() -> DiscreteDistribution {
        DiscreteDistribution::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(0.0, 2.0),
            ],
            vec![1.0, 2.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            DiscreteDistribution::new(vec![], vec![]),
            Err(DiscreteError::Empty)
        ));
        assert!(matches!(
            DiscreteDistribution::new(vec![Point::ORIGIN], vec![0.0]),
            Err(DiscreteError::BadWeight(_))
        ));
        assert!(matches!(
            DiscreteDistribution::new(vec![Point::ORIGIN], vec![1.0, 1.0]),
            Err(DiscreteError::LengthMismatch { .. })
        ));
        // Normalization.
        let d = tri();
        assert!((d.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(d.weights()[1], 0.5);
    }

    #[test]
    fn min_max_dist() {
        let d = tri();
        let q = Point::new(-1.0, 0.0);
        assert_eq!(d.min_dist(q), 1.0);
        assert_eq!(d.max_dist(q), 3.0);
    }

    #[test]
    fn distance_cdf_steps() {
        let d = tri();
        let q = Point::new(0.0, 0.0);
        assert_eq!(d.distance_cdf(q, -1.0), 0.0);
        assert_eq!(d.distance_cdf(q, 0.0), 0.25);
        assert_eq!(d.distance_cdf(q, 1.9), 0.25);
        assert_eq!(d.distance_cdf(q, 2.0), 1.0);
    }

    #[test]
    fn expected_dist_exact() {
        let d = tri();
        let q = Point::ORIGIN;
        assert!((d.expected_dist(q) - (0.25 * 0.0 + 0.5 * 2.0 + 0.25 * 2.0)).abs() < 1e-12);
        assert_eq!(d.mean(), Point::new(1.0, 0.5));
    }

    #[test]
    fn weight_spread() {
        assert_eq!(tri().weight_spread(), 2.0);
        assert_eq!(
            DiscreteDistribution::certain(Point::ORIGIN).weight_spread(),
            1.0
        );
    }

    #[test]
    fn sampling_matches_weights() {
        let d = tri();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[d.sample_index(&mut rng)] += 1;
        }
        for (c, w) in counts.iter().zip(d.weights()) {
            let freq = *c as f64 / n as f64;
            assert!((freq - w).abs() < 0.01, "freq {freq} vs weight {w}");
        }
    }

    #[test]
    fn alias_table_matches_weights() {
        let d = tri();
        let table = d.alias_table();
        let mut rng = SmallRng::seed_from_u64(8);
        let mut counts = [0usize; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        for (c, w) in counts.iter().zip(d.weights()) {
            let freq = *c as f64 / n as f64;
            assert!((freq - w).abs() < 0.01, "freq {freq} vs weight {w}");
        }
    }

    #[test]
    fn cdf_and_moments_against_sampling() {
        let d = tri();
        let q = Point::new(3.0, 1.0);
        check_cdf_against_sampling(&d, q, 40_000, 0.01, 42);
        check_moments_against_sampling(&d, q, 40_000, 0.01, 43);
    }

    proptest! {
        #[test]
        fn prop_cdf_monotone_and_bounded(
            pts in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..12),
            ws in proptest::collection::vec(0.01f64..10.0, 12),
            qx in -20.0f64..20.0, qy in -20.0f64..20.0,
        ) {
            let k = pts.len();
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let d = DiscreteDistribution::new(pts, ws[..k].to_vec()).unwrap();
            let q = Point::new(qx, qy);
            let lo = d.min_dist(q);
            let hi = d.max_dist(q);
            prop_assert!(lo <= hi + 1e-12);
            let mut prev = -1e-12;
            for i in 0..=10 {
                let r = lo + (hi - lo) * i as f64 / 10.0;
                let c = d.distance_cdf(q, r);
                prop_assert!(c >= prev - 1e-12);
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&c));
                prev = c;
            }
            prop_assert!((d.distance_cdf(q, hi) - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_expected_dist_between_min_max(
            pts in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..12),
            qx in -20.0f64..20.0, qy in -20.0f64..20.0,
        ) {
            let d = DiscreteDistribution::uniform(
                pts.into_iter().map(|(x, y)| Point::new(x, y)).collect()
            ).unwrap();
            let q = Point::new(qx, qy);
            let e = d.expected_dist(q);
            prop_assert!(e >= d.min_dist(q) - 1e-9);
            prop_assert!(e <= d.max_dist(q) + 1e-9);
            // Jensen: E[d(q,P)] >= d(q, E[P]).
            prop_assert!(e >= q.dist(d.mean()) - 1e-9);
        }
    }
}
