//! Typed construction and validation errors for the uncertainty models.
//!
//! Every fallible `try_*` constructor in this crate returns a
//! [`DistrError`]; the legacy panicking constructors delegate to the same
//! validation and panic with the error's message. Index-level validation
//! (`unn::resilience`) re-checks already-constructed values through
//! [`crate::Uncertain::validate`] and wraps this type in `UnnError`.

use unn_geom::Point;

use crate::discrete::DiscreteError;

/// Why a distribution is (or would be) invalid.
#[derive(Clone, Debug, PartialEq)]
pub enum DistrError {
    /// A location, center, or vertex coordinate was NaN or infinite.
    NonFiniteCoordinate {
        /// Which model rejected the value.
        model: &'static str,
        /// The offending point.
        point: Point,
    },
    /// A scalar parameter (radius, sigma, weight, mass) was outside its
    /// valid range — non-positive where positivity is required, or
    /// non-finite.
    BadParameter {
        /// Which model rejected the value.
        model: &'static str,
        /// Parameter name as it appears in the constructor.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A support that must carry probability mass was empty: no locations,
    /// no positive mass, zero area, or an empty grid.
    EmptySupport {
        /// Which model rejected the input.
        model: &'static str,
    },
    /// Supplied slices disagreed in length.
    LengthMismatch {
        /// Expected number of entries.
        expected: usize,
        /// Number actually supplied.
        got: usize,
    },
}

impl core::fmt::Display for DistrError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DistrError::NonFiniteCoordinate { model, point } => {
                write!(
                    f,
                    "{model}: non-finite coordinate ({}, {})",
                    point.x, point.y
                )
            }
            DistrError::BadParameter { model, name, value } => {
                write!(f, "{model}: parameter `{name}` = {value} is out of range")
            }
            DistrError::EmptySupport { model } => {
                write!(f, "{model}: support carries no probability mass")
            }
            DistrError::LengthMismatch { expected, got } => {
                write!(f, "expected {expected} entries, got {got}")
            }
        }
    }
}

impl std::error::Error for DistrError {}

impl From<DiscreteError> for DistrError {
    fn from(e: DiscreteError) -> Self {
        match e {
            DiscreteError::Empty => DistrError::EmptySupport { model: "discrete" },
            DiscreteError::BadWeight(w) => DistrError::BadParameter {
                model: "discrete",
                name: "weight",
                value: w,
            },
            DiscreteError::NonFiniteLocation(p) => DistrError::NonFiniteCoordinate {
                model: "discrete",
                point: p,
            },
            DiscreteError::LengthMismatch { points, weights } => DistrError::LengthMismatch {
                expected: points,
                got: weights,
            },
        }
    }
}
