//! Immutable block: a static Monte-Carlo-instantiated index over one
//! logarithmic-method size class.
//!
//! A [`BlockCore`] is built once (at insert, merge, or compaction time) and
//! never mutated; liveness is tracked outside it by the engine's per-slot
//! alive bitmap. All sampling is keyed by **stable point id**
//! ([`unn_quantify::point_stream_seed`]), so a point's per-round sample
//! sequence is identical in every block it ever inhabits — the property that
//! makes Monte-Carlo estimates invariant to merge history.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use unn_distr::{Uncertain, UncertainPoint};
use unn_geom::{Aabb, Point};
use unn_quantify::point_stream_seed;
use unn_spatial::{KdForest, KdTree};

use crate::PointId;

/// Immutable per-block data: points, their ids, and the spatial structures
/// needed to answer pruning and round-winner queries.
#[derive(Clone, Debug)]
pub struct BlockCore {
    /// Stable ids, sorted ascending (the block's membership key).
    pub(crate) ids: Vec<PointId>,
    /// The uncertain points, parallel to `ids`.
    pub(crate) points: Vec<Uncertain>,
    /// Support bounding boxes, parallel to `ids`.
    pub(crate) support: Vec<Aabb>,
    /// Kd-tree over support-box centers; `min_adjusted` over it minimizes
    /// `support[j].max_dist(q)` — the per-block Δ_b(q) pruning radius.
    pub(crate) delta_tree: KdTree,
    /// Per-round forest: round `r` holds the `r`-th sample of every point,
    /// in block order. Used for layout-invariant linear fallbacks.
    pub(crate) forest: KdForest,
    /// One kd-tree over **all** `s·n` samples, sample of point `j` in round
    /// `r` stored at position `r·n + j`. Ball queries against it report all
    /// (round, point) pairs within the global pruning radius.
    pub(crate) global: KdTree,
}

impl BlockCore {
    /// Builds a block from `(id, point)` entries. Entries need not be sorted;
    /// the block sorts them by id. `s` is the number of Monte-Carlo rounds
    /// (must be ≥ 1) and `seed` the index-level base seed.
    pub fn build(mut entries: Vec<(PointId, Uncertain)>, seed: u64, s: usize) -> Self {
        debug_assert!(s >= 1);
        entries.sort_unstable_by_key(|(id, _)| *id);
        let n = entries.len();
        let mut ids = Vec::with_capacity(n);
        let mut points = Vec::with_capacity(n);
        for (id, p) in entries {
            ids.push(id);
            points.push(p);
        }
        let support: Vec<Aabb> = points.iter().map(|p| p.support_bbox()).collect();
        let centers: Vec<Point> = support.iter().map(|b| b.center()).collect();
        let delta_tree = KdTree::new(&centers);
        // Column-fill: point j's samples come from its own id-keyed stream,
        // independent of which other points share the block.
        let mut all = vec![Point::new(0.0, 0.0); s * n];
        for (j, p) in points.iter().enumerate() {
            let mut rng = SmallRng::seed_from_u64(point_stream_seed(seed, ids[j]));
            for r in 0..s {
                all[r * n + j] = p.sample(&mut rng);
            }
        }
        let mut forest = KdForest::new();
        for r in 0..s {
            forest.push_round(&all[r * n..(r + 1) * n]);
        }
        let global = KdTree::new(&all);
        Self {
            ids,
            points,
            support,
            delta_tree,
            forest,
            global,
        }
    }

    /// Number of slots in the block (live + tombstoned).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the block holds no slots at all.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Stable ids in this block, sorted ascending.
    pub fn ids(&self) -> &[PointId] {
        &self.ids
    }

    /// Position of `id` in this block, if present (live or dead).
    pub fn find(&self, id: PointId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// Per-block pruning radius `Δ_b(q) = min_{live j} support[j].max_dist(q)`,
    /// or `+∞` if every slot is tombstoned.
    pub fn prune_radius(&self, q: Point, alive: &[bool]) -> f64 {
        self.delta_tree
            .min_adjusted(q, &|j| {
                if alive[j] {
                    self.support[j].max_dist(q)
                } else {
                    f64::INFINITY
                }
            })
            .map_or(f64::INFINITY, |(_, d)| d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unn_geom::Point;

    fn disk(x: f64, y: f64, r: f64) -> Uncertain {
        Uncertain::uniform_disk(Point::new(x, y), r)
    }

    #[test]
    fn samples_keyed_by_id_not_block_position() {
        // The same point id must produce identical round samples whether it
        // lives alone or alongside other points.
        let solo = BlockCore::build(vec![(7, disk(1.0, 2.0, 0.5))], 42, 8);
        let merged = BlockCore::build(
            vec![(3, disk(-4.0, 0.0, 1.0)), (7, disk(1.0, 2.0, 0.5))],
            42,
            8,
        );
        let j = merged.find(7).unwrap_or(usize::MAX);
        for r in 0..8 {
            let (solo_pts, _) = solo.forest.round_points(r);
            let (m_pts, _) = merged.forest.round_points(r);
            assert_eq!(solo_pts[0], m_pts[j]);
        }
    }

    #[test]
    fn prune_radius_skips_tombstones() {
        let b = BlockCore::build(
            vec![(0, disk(0.0, 0.0, 0.1)), (1, disk(100.0, 0.0, 0.1))],
            1,
            2,
        );
        let q = Point::new(0.0, 0.0);
        let all_alive = b.prune_radius(q, &[true, true]);
        assert!(all_alive <= 0.5, "near disk should dominate: {all_alive}");
        let near_dead = b.prune_radius(q, &[false, true]);
        assert!(near_dead >= 99.0, "must fall back to far disk: {near_dead}");
        assert!(b.prune_radius(q, &[false, false]).is_infinite());
    }
}
