//! Immutable block: a static Monte-Carlo-instantiated index over one
//! logarithmic-method size class.
//!
//! A [`BlockCore`] is built once (at insert, merge, or compaction time) and
//! never mutated; liveness is tracked outside it by the engine's per-slot
//! alive bitmap. All sampling is keyed by **stable point id**
//! ([`unn_quantify::point_stream_seed`]), so a point's per-round sample
//! sequence is identical in every block it ever inhabits — the property that
//! makes Monte-Carlo estimates invariant to merge history.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use unn_distr::{Uncertain, UncertainPoint};
use unn_geom::{Aabb, Point};
use unn_nonzero::DeltaCompose;
use unn_quantify::point_stream_seed;
use unn_spatial::{FilterPrecision, KdConfig, KdForest, KdTree};

use crate::PointId;

/// Immutable per-block data: points, their ids, and the spatial structures
/// needed to answer pruning and round-winner queries.
#[derive(Clone, Debug)]
pub struct BlockCore {
    /// Stable ids, sorted ascending (the block's membership key).
    pub(crate) ids: Vec<PointId>,
    /// The uncertain points, parallel to `ids`.
    pub(crate) points: Vec<Uncertain>,
    /// Support bounding boxes, parallel to `ids`.
    pub(crate) support: Vec<Aabb>,
    /// Kd-tree over support-box centers, with asymmetric aux bounds:
    /// `lo[j] = min_halfwidth(support[j])` (valid lower offset for the box
    /// `max_dist` family minimized by `prune_radius`) and `hi[j] =
    /// circumradius(support[j])` (valid upper offset for the distribution
    /// `min_dist` family reported by `report_nonzero`). The stage-1
    /// `fold_delta_capped` walk prunes on the raw center distance alone —
    /// a *distribution* `max_dist` admits no positive lower offset (a
    /// two-point support across a box diagonal beats `d(q, center) + lo`).
    pub(crate) delta_tree: KdTree,
    /// Per-round forest: round `r` holds the `r`-th sample of every point,
    /// in block order. Used for layout-invariant linear fallbacks.
    pub(crate) forest: KdForest,
    /// One kd-tree over **all** `s·n` samples, sample of point `j` in round
    /// `r` stored at position `r·n + j`. Ball queries against it report all
    /// (round, point) pairs within the global pruning radius.
    pub(crate) global: KdTree,
}

impl BlockCore {
    /// Builds a block from `(id, point)` entries. Entries need not be sorted;
    /// the block sorts them by id. `s` is the number of Monte-Carlo rounds
    /// (must be ≥ 1) and `seed` the index-level base seed.
    pub fn build(entries: Vec<(PointId, Uncertain)>, seed: u64, s: usize) -> Self {
        Self::build_with_filter(entries, seed, s, FilterPrecision::F64)
    }

    /// [`BlockCore::build`] with an explicit fill-phase precision tier for
    /// the block's scan structures (the global sample tree and per-round
    /// forest). Query answers are bit-identical under either tier.
    pub fn build_with_filter(
        mut entries: Vec<(PointId, Uncertain)>,
        seed: u64,
        s: usize,
        filter: FilterPrecision,
    ) -> Self {
        debug_assert!(s >= 1);
        entries.sort_unstable_by_key(|(id, _)| *id);
        let n = entries.len();
        let mut ids = Vec::with_capacity(n);
        let mut points = Vec::with_capacity(n);
        for (id, p) in entries {
            ids.push(id);
            points.push(p);
        }
        let support: Vec<Aabb> = points.iter().map(|p| p.support_bbox()).collect();
        let centers: Vec<Point> = support.iter().map(|b| b.center()).collect();
        let lo: Vec<f64> = support
            .iter()
            .map(|b| (b.width().min(b.height()) / 2.0).max(0.0))
            .collect();
        let hi: Vec<f64> = support.iter().map(|b| b.center().dist(b.max)).collect();
        let delta_tree = KdTree::with_aux_bounds(&centers, &lo, &hi);
        // Column-fill: point j's samples come from its own id-keyed stream,
        // independent of which other points share the block.
        let mut all = vec![Point::new(0.0, 0.0); s * n];
        for (j, p) in points.iter().enumerate() {
            let mut rng = SmallRng::seed_from_u64(point_stream_seed(seed, ids[j]));
            for r in 0..s {
                all[r * n + j] = p.sample(&mut rng);
            }
        }
        let mut forest = KdForest::new();
        forest.set_filter(filter);
        for r in 0..s {
            forest.push_round(&all[r * n..(r + 1) * n]);
        }
        // Scan-heavy leaf layout: the global tree only ever serves ball
        // queries whose folds are (distance, id)-lex minima — abort and
        // result depend on the ball's membership, not the leaf layout —
        // so bigger batched leaves are observationally safe and faster.
        let global = KdTree::with_config(&all, KdConfig::scan_heavy().with_filter(filter));
        Self {
            ids,
            points,
            support,
            delta_tree,
            forest,
            global,
        }
    }

    /// Number of slots in the block (live + tombstoned).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the block holds no slots at all.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Stable ids in this block, sorted ascending.
    pub fn ids(&self) -> &[PointId] {
        &self.ids
    }

    /// Position of `id` in this block, if present (live or dead).
    pub fn find(&self, id: PointId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// Per-block pruning radius `Δ_b(q) = min_{live j} support[j].max_dist(q)`,
    /// or `+∞` if every slot is tombstoned.
    pub fn prune_radius(&self, q: Point, alive: &[bool]) -> f64 {
        self.prune_radius_from(q, alive, f64::INFINITY)
    }

    /// [`BlockCore::prune_radius`] seeded with an incumbent from other
    /// blocks: returns `min(init, Δ_b(q))` exactly, but prunes the descent
    /// against the incumbent from the first node. Threading the result
    /// block-to-block computes the same global `min_b Δ_b(q)` as
    /// independent per-block minima folded by `min`.
    pub fn prune_radius_from(&self, q: Point, alive: &[bool], init: f64) -> f64 {
        self.delta_tree
            .min_adjusted_from(q, init, &|j| {
                if alive[j] {
                    self.support[j].max_dist(q)
                } else {
                    f64::INFINITY
                }
            })
            .map_or(init, |(_, d)| d)
    }

    /// Lower bound on `max_dist_j(q)` over every slot (live or dead): the
    /// root box of the center tree. Support-box centers lie in their
    /// distribution's convex hull, so `d(q, center_j) <= max_dist_j(q)` and
    /// the root distance bounds the whole block. Used to order blocks
    /// best-first and skip blocks that cannot tighten a stage-1 fold.
    pub fn delta_fold_bound(&self, q: Point) -> f64 {
        self.delta_tree.root_min_dist(q)
    }

    /// Lower bound on this block's [`BlockCore::prune_radius`] (root box
    /// distance plus the minimum half-width offset); `+∞` for a block with
    /// no slots.
    pub fn prune_radius_bound(&self, q: Point) -> f64 {
        self.delta_tree.root_lower_bound(q)
    }

    /// Lower bound on the distance from `q` to any Monte-Carlo sample in
    /// this block (root box of the global sample tree). A ball query with
    /// radius below it cannot report anything.
    pub fn ball_bound(&self, q: Point) -> f64 {
        self.global.root_min_dist(q)
    }

    /// Stage-1 fold with shared-bound pruning: folds every live
    /// `(max_dist_j(q), id_j)` pair whose subtree can still change `fold`
    /// (per [`DeltaCompose::prune_bound`]) — bit-identical fold state to the
    /// full linear scan, skipping most of the tree once two tight Δs are
    /// known. Tombstoned slots inside surviving leaves are counted and
    /// skipped.
    pub fn fold_delta_capped(&self, q: Point, alive: &[bool], fold: &mut DeltaCompose) {
        self.delta_tree
            .prune_with_cap(q, fold.prune_bound(), &mut |j| {
                if alive[j] {
                    fold.observe(self.points[j].max_dist(q), self.ids[j]);
                } else {
                    unn_observe::dyn_tombstone_filtered();
                }
                fold.prune_bound()
            });
    }

    /// Stage-2 report under a finished stage-1 fold: pushes every live id
    /// with `min_dist_j(q) < cap_for(id)`. The kd walk prunes on
    /// `d(q, center) - circumradius >= prune_bound()` (the loosest cap any
    /// id receives), then re-checks the exact per-id cap at the leaves —
    /// the same comparisons, on the same floats, as the flat scan.
    pub fn report_nonzero(
        &self,
        q: Point,
        alive: &[bool],
        fold: &DeltaCompose,
        out: &mut Vec<PointId>,
    ) {
        let t = fold.prune_bound();
        self.delta_tree.report_adjusted_below(
            q,
            t,
            &|j| {
                if alive[j] {
                    self.points[j].min_dist(q)
                } else {
                    f64::INFINITY
                }
            },
            &mut |j, v| {
                if v < fold.cap_for(self.ids[j]) {
                    out.push(self.ids[j]);
                }
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unn_geom::Point;

    fn disk(x: f64, y: f64, r: f64) -> Uncertain {
        Uncertain::uniform_disk(Point::new(x, y), r)
    }

    #[test]
    fn samples_keyed_by_id_not_block_position() {
        // The same point id must produce identical round samples whether it
        // lives alone or alongside other points.
        let solo = BlockCore::build(vec![(7, disk(1.0, 2.0, 0.5))], 42, 8);
        let merged = BlockCore::build(
            vec![(3, disk(-4.0, 0.0, 1.0)), (7, disk(1.0, 2.0, 0.5))],
            42,
            8,
        );
        let j = merged.find(7).unwrap_or(usize::MAX);
        for r in 0..8 {
            let (solo_xs, solo_ys, _) = solo.forest.round_soa(r);
            let (m_xs, m_ys, _) = merged.forest.round_soa(r);
            assert_eq!(solo_xs[0], m_xs[j]);
            assert_eq!(solo_ys[0], m_ys[j]);
        }
    }

    #[test]
    fn capped_fold_matches_linear_scan() {
        // fold_delta_capped / report_nonzero must reproduce the flat
        // two-pass Lemma 2.1 scan bit-for-bit, tombstones included.
        let entries: Vec<(PointId, Uncertain)> = (0u32..17)
            .map(|i| {
                let x = f64::from(i % 5) * 3.0 - 6.0;
                let y = f64::from(i / 5) * 2.5 - 4.0;
                (
                    u64::from(i) * 3 + 1,
                    disk(x, y, 0.3 + f64::from(i % 3) * 0.4),
                )
            })
            .collect();
        let b = BlockCore::build(entries.clone(), 9, 4);
        let alive: Vec<bool> = (0..17).map(|i| i % 4 != 2).collect();
        let q = Point::new(1.5, -2.0);

        let mut flat = DeltaCompose::new();
        for (j, id) in b.ids().iter().enumerate() {
            if alive[j] {
                flat.observe(b.points[j].max_dist(q), *id);
            }
        }
        let mut capped = DeltaCompose::new();
        b.fold_delta_capped(q, &alive, &mut capped);
        assert_eq!(flat, capped);

        let mut want: Vec<PointId> = b
            .ids()
            .iter()
            .enumerate()
            .filter(|(j, id)| alive[*j] && b.points[*j].min_dist(q) < flat.cap_for(**id))
            .map(|(_, id)| *id)
            .collect();
        want.sort_unstable();
        let mut got = Vec::new();
        b.report_nonzero(q, &alive, &capped, &mut got);
        got.sort_unstable();
        assert_eq!(want, got);
        assert!(
            !got.is_empty(),
            "query inside the grid must report something"
        );
    }

    #[test]
    fn prune_radius_skips_tombstones() {
        let b = BlockCore::build(
            vec![(0, disk(0.0, 0.0, 0.1)), (1, disk(100.0, 0.0, 0.1))],
            1,
            2,
        );
        let q = Point::new(0.0, 0.0);
        let all_alive = b.prune_radius(q, &[true, true]);
        assert!(all_alive <= 0.5, "near disk should dominate: {all_alive}");
        let near_dead = b.prune_radius(q, &[false, true]);
        assert!(near_dead >= 99.0, "must fall back to far disk: {near_dead}");
        assert!(b.prune_radius(q, &[false, false]).is_infinite());
    }
}
