//! Logarithmic-method engine: block lifecycle (insert cascades, tombstone
//! removals, compaction) and frozen query snapshots.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use unn_distr::{Uncertain, UncertainPoint};
use unn_geom::Point;
use unn_nonzero::DeltaCompose;
use unn_spatial::FilterPrecision;

use crate::block::BlockCore;
use crate::PointId;

/// How the engine bounds its block count on insert. Every policy preserves
/// the engine's query contract bit-for-bit — answers are layout-invariant —
/// and trades update cost against the number of blocks a read must compose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompactionPolicy {
    /// Classic Bentley–Saxe: merge while two blocks share a size class
    /// (`⌊log₂ len⌋`). O(log n) blocks, amortized O(polylog) rebuild work
    /// per insert — the write-optimized default.
    Logarithmic,
    /// Logarithmic cascades followed by greedy smallest-pair merges until
    /// at most `max_blocks` remain (`0` is treated as `1`). Bounds the
    /// read-side composition width at a bounded extra write cost — the
    /// LSM-style middle ground.
    Tiered {
        /// Maximum number of blocks left standing after any insert.
        max_blocks: usize,
    },
    /// Every insert rebuilds the whole live set into a single block.
    /// Read-optimal (queries see exactly one block) but O(n) rebuild work
    /// per insert — for read-dominated sets that rarely change.
    MergeToOne,
}

/// Tuning knobs for the dynamic engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Base seed; every point's Monte-Carlo stream derives from
    /// `point_stream_seed(seed, id)`.
    pub seed: u64,
    /// Monte-Carlo rounds instantiated per block (clamped to ≥ 1).
    pub mc_rounds: usize,
    /// Compact the whole structure into one block once
    /// `dead > max_dead_fraction · (live + dead)`.
    pub max_dead_fraction: f64,
    /// Block-count policy applied after every insert.
    pub policy: CompactionPolicy,
    /// Hot-block promotion: when `Some(r)`, a mutation that observes
    /// `snapshot reads ≥ r · updates` (both counted since the last
    /// promotion) on a multi-block engine merges everything into one block.
    /// Background-free: the check runs inside `insert`/`remove`, reads are
    /// counted by query snapshots via a shared atomic. `None` disables it.
    pub hot_promote_ratio: Option<f64>,
    /// Fill-phase precision tier of every block's scan structures
    /// ([`unn_spatial::FilterPrecision`]): `F32Refined` halves leaf-arena
    /// fill bandwidth with answers bit-identical to the `F64` default.
    pub filter: FilterPrecision,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed,
            mc_rounds: 1024,
            max_dead_fraction: 0.25,
            policy: CompactionPolicy::Logarithmic,
            hot_promote_ratio: None,
            filter: FilterPrecision::F64,
        }
    }
}

/// Errors surfaced by fallible engine mutations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DynamicError {
    /// `insert_with_id` collided with an id that is currently live.
    IdInUse {
        /// The conflicting id.
        id: PointId,
    },
}

impl fmt::Display for DynamicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicError::IdInUse { id } => write!(f, "point id {id} is already live"),
        }
    }
}

impl std::error::Error for DynamicError {}

/// Lifecycle counters and live-set sizes, for observability and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DynamicStats {
    /// Points currently live.
    pub live: usize,
    /// Tombstoned slots still occupying block storage.
    pub tombstones: usize,
    /// Number of blocks.
    pub blocks: usize,
    /// Slot count of the largest block (live + dead).
    pub largest_block: usize,
    /// Monotone version counter; bumps on every successful mutation.
    pub epoch: u64,
    /// Total logarithmic-method merges performed.
    pub merges: u64,
    /// Total full compactions performed.
    pub compactions: u64,
    /// Total hot-block promotions performed (read-ratio-triggered
    /// merge-to-one rebuilds).
    pub promotions: u64,
    /// Total blocks ever built (inserts + merges + compactions).
    pub blocks_built: u64,
    /// Snapshot queries counted toward the promotion heuristic since the
    /// last promotion (or forever, when promotion is disabled).
    pub reads: u64,
}

/// One block plus its copy-on-write liveness bitmap.
#[derive(Clone, Debug)]
struct Slot {
    core: Arc<BlockCore>,
    alive: Arc<Vec<bool>>,
    live: usize,
}

/// Mutable dynamic index over uncertain points.
///
/// Inserts build a singleton block and cascade-merge while two blocks share
/// a size class (`⌊log₂ len⌋`), so blocks stay geometrically sized and each
/// point is rebuilt O(log n) times. Removals tombstone in place; crossing
/// the dead-fraction threshold triggers a full compaction. All queries go
/// through [`DynamicEngine::snapshot`].
#[derive(Clone, Debug)]
pub struct DynamicEngine {
    config: EngineConfig,
    slots: Vec<Slot>,
    next_id: PointId,
    epoch: u64,
    live: usize,
    dead: usize,
    merges: u64,
    compactions: u64,
    promotions: u64,
    blocks_built: u64,
    /// Snapshot read counter shared with every [`EngineSnapshot`] this
    /// engine hands out (cloning the engine shares it too — reads against
    /// either clone's snapshots feed both promotion heuristics).
    reads: Arc<AtomicU64>,
    /// Mutations since the last promotion (the denominator of the
    /// read/update ratio).
    updates_since_promote: u64,
}

impl Default for DynamicEngine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl DynamicEngine {
    /// Creates an empty engine.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            slots: Vec::new(),
            next_id: 0,
            epoch: 0,
            live: 0,
            dead: 0,
            merges: 0,
            compactions: 0,
            promotions: 0,
            blocks_built: 0,
            reads: Arc::new(AtomicU64::new(0)),
            updates_since_promote: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Monte-Carlo rounds per block (config value clamped to ≥ 1).
    pub fn rounds(&self) -> usize {
        self.config.mc_rounds.max(1)
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no point is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Monotone version counter; bumps on every successful mutation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True if `id` is currently live.
    pub fn contains(&self, id: PointId) -> bool {
        self.slots
            .iter()
            .any(|s| s.core.find(id).is_some_and(|j| s.alive[j]))
    }

    /// The live point with id `id`, if any.
    pub fn get(&self, id: PointId) -> Option<&Uncertain> {
        self.slots.iter().find_map(|s| {
            s.core
                .find(id)
                .filter(|&j| s.alive[j])
                .map(|j| &s.core.points[j])
        })
    }

    /// Inserts a point under a fresh id and returns it.
    pub fn insert(&mut self, point: Uncertain) -> PointId {
        let id = self.next_id;
        // Claim the id only after the panic-prone build inside
        // `insert_entry` has succeeded, so a caught sampling panic does not
        // burn it (the id streams of twin engines stay in lockstep).
        self.insert_entry(id, point);
        self.next_id += 1;
        id
    }

    /// Inserts a point under a caller-chosen id.
    ///
    /// Fails with [`DynamicError::IdInUse`] if `id` is currently live;
    /// re-using the id of a removed point is allowed (tombstoned copies in
    /// older blocks are ignored by queries and dropped at the next merge).
    pub fn insert_with_id(&mut self, id: PointId, point: Uncertain) -> Result<(), DynamicError> {
        if self.contains(id) {
            return Err(DynamicError::IdInUse { id });
        }
        self.next_id = self.next_id.max(id.saturating_add(1));
        self.insert_entry(id, point);
        Ok(())
    }

    fn insert_entry(&mut self, id: PointId, point: Uncertain) {
        // Mutation ordering is panic-atomic: the singleton block build (the
        // only step that runs distribution sampling code and can panic) goes
        // first and touches no engine state until it succeeds, and every
        // policy merge is individually build-before-remove. A panic escaping
        // here therefore leaves the engine in a consistent (at worst
        // under-compacted) state that later mutations and queries handle
        // normally.
        self.push_block(vec![(id, point)]);
        self.live += 1;
        self.epoch += 1;
        self.apply_policy();
        self.note_update();
    }

    /// Inserts many points as **one** block under fresh consecutive ids
    /// (then applies the compaction policy once), returning the ids.
    /// Query-equivalent to inserting one by one — answers are
    /// layout-invariant — but builds O(1) blocks instead of O(n), which is
    /// what makes bootstrapping a [`CompactionPolicy::MergeToOne`] engine
    /// affordable.
    pub fn bulk_insert(&mut self, points: Vec<Uncertain>) -> Vec<PointId> {
        if points.is_empty() {
            return Vec::new();
        }
        let ids: Vec<PointId> = (0..points.len() as PointId)
            .map(|k| self.next_id + k)
            .collect();
        let entries: Vec<(PointId, Uncertain)> = ids.iter().copied().zip(points).collect();
        let added = entries.len();
        // Build first, mutate after — see `insert_entry` for the panic
        // contract. The ids are claimed only once the build has succeeded.
        self.push_block(entries);
        self.next_id += added as PointId;
        self.live += added;
        self.epoch += 1;
        self.apply_policy();
        self.note_update();
        ids
    }

    /// Tombstones `id`. Returns `false` (and leaves the epoch untouched) if
    /// no live point carries that id.
    pub fn remove(&mut self, id: PointId) -> bool {
        for idx in 0..self.slots.len() {
            // A dead copy of `id` may linger in an older block while the
            // live copy sits elsewhere — only mutate the live one, and only
            // clone the bitmap (`make_mut`) once we know we will flip a bit.
            if let Some(j) = self.slots[idx].core.find(id) {
                if self.slots[idx].alive[j] {
                    let slot = &mut self.slots[idx];
                    Arc::make_mut(&mut slot.alive)[j] = false;
                    slot.live -= 1;
                    self.live -= 1;
                    self.dead += 1;
                    self.epoch += 1;
                    self.maybe_compact();
                    self.note_update();
                    return true;
                }
            }
        }
        false
    }

    /// Builds a [`Slot`] from `entries` without touching engine state.
    /// [`BlockCore::build`] runs distribution sampling code and is the one
    /// place a hostile (chaos) distribution can panic — callers sequence all
    /// their mutations *after* this returns so an unwinding build leaves the
    /// engine exactly as it was.
    fn build_slot(&self, entries: Vec<(PointId, Uncertain)>) -> Option<Slot> {
        if entries.is_empty() {
            return None;
        }
        let live = entries.len();
        let core = Arc::new(BlockCore::build_with_filter(
            entries,
            self.config.seed,
            self.rounds(),
            self.config.filter,
        ));
        let alive = Arc::new(vec![true; core.len()]);
        Some(Slot { core, alive, live })
    }

    /// Builds a block from `entries` and registers it (no cascade).
    fn push_block(&mut self, entries: Vec<(PointId, Uncertain)>) {
        debug_assert!(!entries.is_empty());
        if let Some(slot) = self.build_slot(entries) {
            self.blocks_built += 1;
            self.slots.push(slot);
        }
    }

    /// Applies the configured [`CompactionPolicy`] after an insert.
    fn apply_policy(&mut self) {
        match self.config.policy {
            CompactionPolicy::Logarithmic => self.cascade(),
            CompactionPolicy::Tiered { max_blocks } => {
                self.cascade();
                let cap = max_blocks.max(1);
                while self.slots.len() > cap {
                    // Merge the two smallest blocks (ties broken by slot
                    // order); each round removes at least one slot.
                    let (mut a, mut b) = (0usize, 1usize);
                    if self.slots[b].core.len() < self.slots[a].core.len() {
                        std::mem::swap(&mut a, &mut b);
                    }
                    for i in 2..self.slots.len() {
                        let l = self.slots[i].core.len();
                        if l < self.slots[a].core.len() {
                            b = a;
                            a = i;
                        } else if l < self.slots[b].core.len() {
                            b = i;
                        }
                    }
                    self.merge_slots(a, b);
                }
            }
            CompactionPolicy::MergeToOne => {
                if self.slots.len() > 1 {
                    self.merges += 1;
                    unn_observe::dyn_merge();
                    self.merge_all();
                }
            }
        }
    }

    /// Bumps the update counter and fires hot-block promotion when the
    /// read/update ratio crosses the configured bound on a multi-block
    /// engine. Called once per successful mutation.
    fn note_update(&mut self) {
        self.updates_since_promote = self.updates_since_promote.saturating_add(1);
        let Some(ratio) = self.config.hot_promote_ratio else {
            return;
        };
        if self.slots.len() <= 1 {
            return;
        }
        let reads = self.reads.load(Ordering::Relaxed);
        if reads as f64 >= ratio * self.updates_since_promote as f64 && reads > 0 {
            self.promotions += 1;
            unn_observe::dyn_promotion();
            self.merge_all();
            self.reads.store(0, Ordering::Relaxed);
            self.updates_since_promote = 0;
        }
    }

    /// Merges blocks while any two share a size class. Each merge removes at
    /// least one slot, so the loop terminates.
    fn cascade(&mut self) {
        loop {
            let mut found = None;
            'outer: for i in 0..self.slots.len() {
                for j in (i + 1)..self.slots.len() {
                    if self.slots[i].core.len().ilog2() == self.slots[j].core.len().ilog2() {
                        found = Some((i, j));
                        break 'outer;
                    }
                }
            }
            let Some((i, j)) = found else { break };
            self.merge_slots(i, j);
        }
    }

    /// Merges the blocks at slot indices `i` and `j` into one. The merged
    /// block is built *before* either source slot is removed or any counter
    /// moves, so a build panic (hostile distribution) aborts the merge with
    /// the engine untouched.
    fn merge_slots(&mut self, i: usize, j: usize) {
        debug_assert_ne!(i, j);
        let (a, b) = (&self.slots[i], &self.slots[j]);
        let mut entries = Vec::with_capacity(a.live + b.live);
        for slot in [a, b] {
            for k in 0..slot.core.len() {
                if slot.alive[k] {
                    entries.push((slot.core.ids[k], slot.core.points[k].clone()));
                }
            }
        }
        let dropped = (a.core.len() - a.live) + (b.core.len() - b.live);
        let built = self.build_slot(entries);
        let (hi, lo) = (i.max(j), i.min(j));
        self.slots.swap_remove(hi);
        self.slots.swap_remove(lo);
        self.merges += 1;
        unn_observe::dyn_merge();
        self.dead -= dropped;
        if let Some(slot) = built {
            self.blocks_built += 1;
            self.slots.push(slot);
        }
    }

    /// Rebuilds everything live into one block once tombstones dominate.
    fn maybe_compact(&mut self) {
        let total = self.live + self.dead;
        if self.dead == 0 || (self.dead as f64) <= self.config.max_dead_fraction * (total as f64) {
            return;
        }
        self.compactions += 1;
        unn_observe::dyn_compaction();
        self.merge_all();
    }

    /// Rebuilds the whole live set into a single block, dropping every
    /// tombstone. Shared by compaction, [`CompactionPolicy::MergeToOne`],
    /// and hot-block promotion — callers bump their own counters first.
    fn merge_all(&mut self) {
        let mut entries = Vec::with_capacity(self.live);
        for slot in &self.slots {
            for j in 0..slot.core.len() {
                if slot.alive[j] {
                    entries.push((slot.core.ids[j], slot.core.points[j].clone()));
                }
            }
        }
        // Build before clearing (panic-atomicity; see `build_slot`).
        let built = self.build_slot(entries);
        self.slots.clear();
        self.dead = 0;
        if let Some(slot) = built {
            self.blocks_built += 1;
            self.slots.push(slot);
        }
    }

    /// Block lengths (live + tombstoned slots), in slot order — the raw
    /// material for compaction-policy invariant checks.
    pub fn block_sizes(&self) -> Vec<usize> {
        self.slots.iter().map(|s| s.core.len()).collect()
    }

    /// Lifecycle counters and sizes.
    pub fn stats(&self) -> DynamicStats {
        DynamicStats {
            live: self.live,
            tombstones: self.dead,
            blocks: self.slots.len(),
            largest_block: self.slots.iter().map(|s| s.core.len()).max().unwrap_or(0),
            epoch: self.epoch,
            merges: self.merges,
            compactions: self.compactions,
            promotions: self.promotions,
            blocks_built: self.blocks_built,
            reads: self.reads.load(Ordering::Relaxed),
        }
    }

    /// A consistent frozen view of the current live set. O(n) to take (it
    /// collects the sorted live-id list) but shares all block storage.
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut live_ids = Vec::with_capacity(self.live);
        let mut k_max = 1usize;
        for slot in &self.slots {
            for j in 0..slot.core.len() {
                if slot.alive[j] {
                    live_ids.push(slot.core.ids[j]);
                    k_max = k_max.max(slot.core.points[j].as_discrete().map_or(1, |d| d.len()));
                }
            }
        }
        live_ids.sort_unstable();
        EngineSnapshot {
            slots: self
                .slots
                .iter()
                .map(|s| (Arc::clone(&s.core), Arc::clone(&s.alive)))
                .collect(),
            live_ids,
            epoch: self.epoch,
            s: self.rounds(),
            k_max,
            reads: Arc::clone(&self.reads),
        }
    }
}

/// Immutable view of the engine at one epoch. Queries against a snapshot
/// never observe later mutations; all answers are **layout-invariant** —
/// bit-identical for any block decomposition of the same live set.
#[derive(Clone, Debug)]
pub struct EngineSnapshot {
    slots: Vec<(Arc<BlockCore>, Arc<Vec<bool>>)>,
    live_ids: Vec<PointId>,
    epoch: u64,
    s: usize,
    k_max: usize,
    /// Shared with the owning engine: queries bump it so mutations can see
    /// the read/update ratio for hot-block promotion.
    reads: Arc<AtomicU64>,
}

impl EngineSnapshot {
    /// Live ids, sorted ascending.
    pub fn live_ids(&self) -> &[PointId] {
        &self.live_ids
    }

    /// Number of live points in the view.
    pub fn live_len(&self) -> usize {
        self.live_ids.len()
    }

    /// Engine epoch this snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Monte-Carlo rounds per block.
    pub fn rounds(&self) -> usize {
        self.s
    }

    /// Largest discrete support size among live points (≥ 1).
    pub fn k_max(&self) -> usize {
        self.k_max
    }

    /// The live points as `(id, point)` pairs, sorted by id. Materializes a
    /// merged copy — used for exact quantification and oracle checks.
    pub fn live_points(&self) -> Vec<(PointId, Uncertain)> {
        let mut out = Vec::with_capacity(self.live_ids.len());
        for (core, alive) in &self.slots {
            for j in 0..core.len() {
                if alive[j] {
                    out.push((core.ids[j], core.points[j].clone()));
                }
            }
        }
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// Ids with nonzero probability of being the nearest neighbor of `q`
    /// (paper §2), sorted ascending.
    ///
    /// Composes per Lemma 2.1 with **shared-bound pruning**: stage 1 orders
    /// blocks best-first by their root lower bound and threads one
    /// shrinking cap ([`DeltaCompose::prune_bound`]) through every
    /// per-block kd descent, skipping whole blocks — without probing them —
    /// once the cap undercuts their bound; stage 2 reports through each
    /// block's center tree under the same cap. Both stages fold the same
    /// floats through the same strict comparisons as the flat scan, so the
    /// answer is bit-identical to [`EngineSnapshot::nn_nonzero_unpruned`]
    /// and to the static index on the same live set.
    pub fn nn_nonzero(&self, q: Point) -> Vec<PointId> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let fold = self.fold_delta(q);
        let mut out = Vec::new();
        for (core, alive) in &self.slots {
            core.report_nonzero(q, alive, &fold, &mut out);
        }
        out.sort_unstable();
        out
    }

    /// The stage-1 Lemma 2.1 fold for `q` over this snapshot, exposed for
    /// **cross-shard composition** (`unn-serve`): because
    /// [`DeltaCompose::merge`] is the same commutative fold as observing all
    /// pairs flat, merging the `delta_fold`s of snapshots over disjoint live
    /// sets yields a fold bit-identical to one unsharded snapshot over the
    /// union — the pruned per-snapshot fold's observable state already
    /// equals its unpruned scan (see [`EngineSnapshot::nn_nonzero`]).
    /// Counts one read toward hot-block promotion.
    pub fn delta_fold(&self, q: Point) -> DeltaCompose {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.fold_delta(q)
    }

    /// Stage-2 report under an externally merged fold: pushes every live id
    /// whose minimum distance undercuts `fold`'s cap for it. With `fold`
    /// merged across shards, the union of per-shard reports equals the
    /// unsharded [`EngineSnapshot::nn_nonzero`] answer (unsorted here;
    /// callers sort the concatenation).
    pub fn report_nonzero_under(&self, q: Point, fold: &DeltaCompose, out: &mut Vec<PointId>) {
        for (core, alive) in &self.slots {
            core.report_nonzero(q, alive, fold, out);
        }
    }

    /// Stage-1 fold with cross-block pruning: blocks ordered best-first by
    /// [`BlockCore::delta_fold_bound`]; once the running
    /// [`DeltaCompose::prune_bound`] drops below the next block's bound,
    /// every remaining block is skipped (the order is ascending and the cap
    /// only shrinks). The fold's observable state — `prune_bound` and every
    /// `cap_for` — is bit-identical to the unpruned full scan.
    fn fold_delta(&self, q: Point) -> DeltaCompose {
        let mut fold = DeltaCompose::new();
        let mut order: Vec<(f64, u32)> = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, (core, _))| (core.delta_fold_bound(q), i as u32))
            .collect();
        order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for &(bound, i) in &order {
            if bound >= fold.prune_bound() {
                break;
            }
            unn_observe::dyn_block_probed();
            let (core, alive) = &self.slots[i as usize];
            core.fold_delta_capped(q, alive, &mut fold);
        }
        fold
    }

    /// The pre-pruning reference composition: unconditional per-block
    /// linear scans, exactly the shape the shared-bound path must reproduce
    /// bit-for-bit. Kept as the differential oracle for the pruning test
    /// suites (and their observe-counter regression checks); it probes
    /// every block, so production reads should use
    /// [`EngineSnapshot::nn_nonzero`].
    pub fn nn_nonzero_unpruned(&self, q: Point) -> Vec<PointId> {
        let mut fold = DeltaCompose::new();
        for (core, alive) in &self.slots {
            unn_observe::dyn_block_probed();
            for j in 0..core.len() {
                if alive[j] {
                    fold.observe(core.points[j].max_dist(q), core.ids[j]);
                } else {
                    unn_observe::dyn_tombstone_filtered();
                }
            }
        }
        let mut out = Vec::new();
        for (core, alive) in &self.slots {
            for j in 0..core.len() {
                if alive[j] && core.points[j].min_dist(q) < fold.cap_for(core.ids[j]) {
                    out.push(core.ids[j]);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Per-round Monte-Carlo winners `(distance, id)` for `q`.
    ///
    /// The global pruning radius is the min over per-block Δ_b(q); each
    /// block then folds its in-ball samples into the shared per-round
    /// `(distance, id)` lexicographic minimum. The round winner has
    /// distance ≤ Δ(q) (its sample lies inside its own support box), so the
    /// ball query over the winner's own block always reports it; blocks that
    /// exhaust the visit cap fall back to a full linear scan, which folds
    /// the same minimum. Tie-breaking by stable id keeps the result
    /// independent of block layout and traversal order.
    pub fn round_winners(&self, q: Point) -> Vec<(f64, PointId)> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.round_winners_seeded(q, true)
    }

    /// The pre-pruning reference: per-block Δ minima folded independently
    /// and every block's ball probed unconditionally. Bit-identical output
    /// to [`EngineSnapshot::round_winners`]; kept as the differential
    /// oracle for the pruning suites.
    pub fn round_winners_unpruned(&self, q: Point) -> Vec<(f64, PointId)> {
        self.round_winners_seeded(q, false)
    }

    fn round_winners_seeded(&self, q: Point, pruned: bool) -> Vec<(f64, PointId)> {
        if self.live_ids.is_empty() {
            return Vec::new();
        }
        let s = self.s;
        let delta = if pruned {
            self.shared_delta(q)
        } else {
            let mut delta = f64::INFINITY;
            for (core, alive) in &self.slots {
                delta = delta.min(core.prune_radius(q, alive));
            }
            delta
        };
        let seed = delta * (1.0 + 1e-12);
        unn_observe::seed_radius(seed);
        let mut best: Vec<(f64, PointId)> = vec![(f64::INFINITY, PointId::MAX); s];
        for (core, alive) in &self.slots {
            // A block whose closest sample sits beyond the seed radius
            // contributes nothing — the ball traversal's root test would
            // prune it immediately. Skipping it (without counting a probe)
            // cannot change any round's fold.
            if pruned && core.ball_bound(q) > seed {
                continue;
            }
            unn_observe::dyn_block_probed();
            let n_b = core.len();
            if n_b == 0 {
                continue;
            }
            let complete = core.global.in_disk_capped(q, seed, 32 * s, &mut |pos, d| {
                let j = pos % n_b;
                if alive[j] {
                    let id = core.ids[j];
                    let e = &mut best[pos / n_b];
                    if d < e.0 || (d == e.0 && id < e.1) {
                        *e = (d, id);
                    }
                } else {
                    unn_observe::dyn_tombstone_filtered();
                }
            });
            if !complete {
                // Cap exhausted: rescan every round of this block linearly.
                // Re-folding already-observed samples is idempotent.
                for (r, e) in best.iter_mut().enumerate() {
                    Self::fold_round(core, alive, q, r, e);
                }
            }
        }
        // Ulp safety net: a round every block's ball fold missed gets a
        // cross-block linear scan (live set is non-empty, so this fills it).
        for (r, e) in best.iter_mut().enumerate() {
            if e.1 == PointId::MAX {
                for (core, alive) in &self.slots {
                    if !core.is_empty() {
                        Self::fold_round(core, alive, q, r, e);
                    }
                }
            }
        }
        best
    }

    /// The global pruning radius `Δ(q) = min_b Δ_b(q)` computed with one
    /// incumbent threaded through blocks ordered best-first by
    /// [`BlockCore::prune_radius_bound`]; blocks whose bound reaches the
    /// incumbent are skipped outright. Exactly the same value as the
    /// independent per-block minima folded by `min` — branch-and-bound with
    /// a shared incumbent still visits every candidate that could lower it.
    fn shared_delta(&self, q: Point) -> f64 {
        let mut order: Vec<(f64, u32)> = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, (core, _))| (core.prune_radius_bound(q), i as u32))
            .collect();
        order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut delta = f64::INFINITY;
        for &(bound, i) in &order {
            if bound >= delta {
                break;
            }
            let (core, alive) = &self.slots[i as usize];
            delta = core.prune_radius_from(q, alive, delta);
        }
        delta
    }

    /// Folds round `r` of `core` into `e` by linear scan (layout-invariant:
    /// strict `(distance, id)` lexicographic minimum over live samples).
    fn fold_round(core: &BlockCore, alive: &[bool], q: Point, r: usize, e: &mut (f64, PointId)) {
        let (xs, ys, rids) = core.forest.round_soa(r);
        for (k, rid) in rids.iter().enumerate() {
            let j = *rid as usize;
            if alive[j] {
                // Same operation order as `Point::dist`, so the fold is
                // bit-identical to the pre-SoA AoS scan.
                let dx = xs[k] - q.x;
                let dy = ys[k] - q.y;
                let d = (dx * dx + dy * dy).sqrt();
                let id = core.ids[j];
                if d < e.0 || (d == e.0 && id < e.1) {
                    *e = (d, id);
                }
            }
        }
    }

    /// Round winners mapped to ranks in [`EngineSnapshot::live_ids`] —
    /// the index layout expected by `adaptive_over_winners`.
    pub fn winner_ranks(&self, q: Point) -> Vec<u32> {
        self.ranks_of(self.round_winners(q))
    }

    fn ranks_of(&self, winners: Vec<(f64, PointId)>) -> Vec<u32> {
        winners
            .into_iter()
            .map(|(_, id)| {
                let rank = self.live_ids.binary_search(&id);
                debug_assert!(rank.is_ok(), "winner id {id} not in live set");
                rank.unwrap_or(0) as u32
            })
            .collect()
    }

    /// Monte-Carlo estimate of `π_i(q)` over the live set (dense, indexed
    /// like [`EngineSnapshot::live_ids`]), using all `s` rounds.
    pub fn quantify(&self, q: Point) -> Vec<f64> {
        if self.live_ids.is_empty() {
            return Vec::new();
        }
        let ranks = self.winner_ranks(q);
        self.pi_from_ranks(&ranks)
    }

    /// [`EngineSnapshot::quantify`] through the unpruned winner fold —
    /// bit-identical output, kept as the differential oracle for the
    /// pruning suites.
    pub fn quantify_unpruned(&self, q: Point) -> Vec<f64> {
        if self.live_ids.is_empty() {
            return Vec::new();
        }
        let ranks = self.ranks_of(self.round_winners_unpruned(q));
        self.pi_from_ranks(&ranks)
    }

    fn pi_from_ranks(&self, ranks: &[u32]) -> Vec<f64> {
        let mut counts = vec![0u32; self.live_ids.len()];
        for r in ranks {
            counts[*r as usize] += 1;
        }
        let inv = 1.0 / (self.s as f64);
        counts.into_iter().map(|c| f64::from(c) * inv).collect()
    }

    /// Number of blocks in the view (diagnostics and tests).
    pub fn blocks(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unn_geom::Point;

    fn disk(x: f64, y: f64, r: f64) -> Uncertain {
        Uncertain::uniform_disk(Point::new(x, y), r)
    }

    fn grid_engine(n: usize, cfg: EngineConfig) -> DynamicEngine {
        let mut e = DynamicEngine::new(cfg);
        for i in 0..n {
            let (x, y) = ((i % 8) as f64, (i / 8) as f64);
            e.insert(disk(x * 3.0, y * 3.0, 0.4));
        }
        e
    }

    #[test]
    fn block_count_tracks_popcount() {
        let cfg = EngineConfig {
            mc_rounds: 4,
            ..EngineConfig::default()
        };
        for n in [1usize, 2, 3, 7, 8, 13] {
            let e = grid_engine(n, cfg);
            assert_eq!(
                e.stats().blocks,
                n.count_ones() as usize,
                "n = {n}: sizes should match the binary representation"
            );
            assert_eq!(e.len(), n);
        }
    }

    #[test]
    fn remove_tombstones_then_compacts() {
        let cfg = EngineConfig {
            mc_rounds: 4,
            ..EngineConfig::default()
        };
        let mut e = grid_engine(8, cfg);
        assert!(e.remove(0));
        assert!(!e.remove(0), "double-remove must fail");
        assert!(!e.contains(0));
        assert_eq!(e.stats().tombstones, 1);
        assert!(e.remove(1));
        assert_eq!(e.stats().tombstones, 2);
        // Third removal pushes dead fraction past 0.25 -> full compaction.
        assert!(e.remove(2));
        let st = e.stats();
        assert_eq!(st.tombstones, 0);
        assert_eq!(st.blocks, 1);
        assert!(st.compactions >= 1);
        assert_eq!(e.len(), 5);
    }

    #[test]
    fn reinsert_after_remove_and_id_collision() {
        let cfg = EngineConfig {
            mc_rounds: 4,
            ..EngineConfig::default()
        };
        let mut e = grid_engine(4, cfg);
        assert_eq!(
            e.insert_with_id(2, disk(0.0, 0.0, 0.1)),
            Err(DynamicError::IdInUse { id: 2 })
        );
        assert!(e.remove(2));
        assert_eq!(e.insert_with_id(2, disk(9.0, 9.0, 0.2)), Ok(()));
        assert!(e.contains(2));
        // Fresh ids must never collide with the re-used one.
        let fresh = e.insert(disk(1.0, 1.0, 0.1));
        assert!(fresh > 3);
    }

    #[test]
    fn snapshot_is_isolated_from_later_updates() {
        let cfg = EngineConfig {
            mc_rounds: 16,
            ..EngineConfig::default()
        };
        let mut e = DynamicEngine::new(cfg);
        let a = e.insert(disk(0.0, 0.0, 0.5));
        let b = e.insert(disk(10.0, 0.0, 0.5));
        let snap = e.snapshot();
        e.remove(a);
        let q = Point::new(0.0, 0.0);
        assert_eq!(snap.nn_nonzero(q), vec![a], "frozen view still sees a");
        assert_eq!(e.snapshot().nn_nonzero(q), vec![b]);
        assert!(snap.epoch() < e.epoch());
    }

    #[test]
    fn round_winners_invariant_to_block_layout() {
        let cfg = EngineConfig {
            mc_rounds: 64,
            ..EngineConfig::default()
        };
        // Same live set reached via three different histories.
        let forward = grid_engine(13, cfg);
        let mut reversed = DynamicEngine::new(cfg);
        for i in (0..13u64).rev() {
            let (x, y) = ((i % 8) as f64, (i / 8) as f64);
            reversed
                .insert_with_id(i, disk(x * 3.0, y * 3.0, 0.4))
                .unwrap_or_else(|e| panic!("insert {i}: {e}"));
        }
        let mut churned = grid_engine(13, cfg);
        for i in [3u64, 7, 11] {
            assert!(churned.remove(i));
        }
        for i in [3u64, 7, 11] {
            let (x, y) = ((i % 8) as f64, (i / 8) as f64);
            churned
                .insert_with_id(i, disk(x * 3.0, y * 3.0, 0.4))
                .unwrap_or_else(|e| panic!("reinsert {i}: {e}"));
        }
        assert_ne!(
            forward.stats().blocks_built,
            churned.stats().blocks_built,
            "histories should differ structurally"
        );
        let (sf, sr, sc) = (forward.snapshot(), reversed.snapshot(), churned.snapshot());
        assert_eq!(sf.live_ids(), sr.live_ids());
        assert_eq!(sf.live_ids(), sc.live_ids());
        for q in [
            Point::new(0.0, 0.0),
            Point::new(5.5, 2.5),
            Point::new(21.0, 3.0),
            Point::new(-4.0, 9.0),
        ] {
            let w = sf.round_winners(q);
            assert_eq!(w, sr.round_winners(q), "reversed layout diverged at {q:?}");
            assert_eq!(w, sc.round_winners(q), "churned layout diverged at {q:?}");
            assert_eq!(sf.nn_nonzero(q), sr.nn_nonzero(q));
            assert_eq!(sf.nn_nonzero(q), sc.nn_nonzero(q));
        }
    }
}
