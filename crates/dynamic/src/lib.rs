//! # unn-dynamic — dynamic uncertain-NN index (logarithmic method)
//!
//! Maintains a live set of uncertain points under `insert` / `remove` using
//! the Bentley–Saxe logarithmic method: the set is partitioned into
//! geometrically-sized **immutable blocks**; an insert builds a singleton
//! block and cascades merges while two blocks share a size class, so each
//! point participates in O(log n) rebuilds over its lifetime. Removals are
//! **tombstones** (a copy-on-write alive bitmap per block); when the dead
//! fraction exceeds a threshold the whole structure compacts into one block.
//!
//! Queries run against an [`EngineSnapshot`] — a cheap frozen view (shared
//! `Arc`s of the block cores and bitmaps) that is immune to concurrent
//! updates. Per-block partial results compose losslessly:
//!
//! * `NN≠0` composes via [`unn_nonzero::DeltaCompose`] (Lemma 2.1): the
//!   global pruning threshold is the min over blocks, and the candidate
//!   re-filter is a pure per-point predicate — results are **bit-identical**
//!   regardless of block layout or merge history.
//! * Monte-Carlo rounds key each point's RNG stream by its **stable id**
//!   ([`unn_quantify::point_stream_seed`]), so round samples — and hence the
//!   estimate — do not change when a point migrates between blocks.
//!
//! The user-facing facade (validation policies, budgets, batch queries)
//! lives in `unn::dynamic`; this crate is the engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod engine;

/// Stable identity of a point across merges, compactions, and snapshots.
pub type PointId = u64;

pub use block::BlockCore;
pub use engine::{
    CompactionPolicy, DynamicEngine, DynamicError, DynamicStats, EngineConfig, EngineSnapshot,
};
pub use unn_spatial::FilterPrecision;
