//! Compaction-policy state machine: drive random insert/remove histories
//! through the raw engine and assert each policy's structural invariants
//! after **every** operation — not just at the end.
//!
//! * `Logarithmic`: post-insert, no two blocks share a size class; for
//!   insert-only histories that pins the block count to
//!   `popcount(n)` exactly (tombstones let stale classes linger until a
//!   later merge sweeps them, so the class-distinctness form is the honest
//!   invariant under churn).
//! * `Tiered { max_blocks }`: never more than `max_blocks` blocks after a
//!   mutation settles.
//! * `MergeToOne`: exactly one block after any insert, at most one ever.
//! * All policies: the dead fraction never exceeds `max_dead_fraction`
//!   after a mutation, and the compaction counter increments exactly when a
//!   removal pushes the fraction over the threshold.
//! * Hot promotion: with `hot_promote_ratio = Some(r)`, a mutation that
//!   arrives after ≥ `r` reads per update collapses the engine to one
//!   block and bumps `promotions`.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn_distr::Uncertain;
use unn_dynamic::{CompactionPolicy, DynamicEngine, EngineConfig, PointId};
use unn_geom::Point;

const MAX_DEAD: f64 = 0.25;

fn engine(policy: CompactionPolicy, ratio: Option<f64>) -> DynamicEngine {
    DynamicEngine::new(EngineConfig {
        seed: 11,
        mc_rounds: 8,
        max_dead_fraction: MAX_DEAD,
        policy,
        hot_promote_ratio: ratio,
        ..EngineConfig::default()
    })
}

fn disk(rng: &mut SmallRng) -> Uncertain {
    Uncertain::uniform_disk(
        Point::new(rng.random_range(-20.0..20.0), rng.random_range(-20.0..20.0)),
        rng.random_range(0.3..2.0),
    )
}

/// Size classes (`ilog2` of block length) must be pairwise distinct right
/// after a Logarithmic insert settles.
fn assert_distinct_classes(e: &DynamicEngine) {
    let sizes = e.block_sizes();
    let mut classes: Vec<u32> = sizes.iter().map(|s| s.ilog2()).collect();
    classes.sort_unstable();
    let before = classes.len();
    classes.dedup();
    assert_eq!(
        before,
        classes.len(),
        "two blocks share a size class: {sizes:?}"
    );
}

fn dead_fraction_ok(e: &DynamicEngine) {
    let s = e.stats();
    let total = s.live + s.tombstones;
    assert!(
        s.tombstones == 0 || s.tombstones as f64 <= MAX_DEAD * total as f64,
        "dead fraction exceeded threshold: {} dead of {total}",
        s.tombstones
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn policies_hold_their_structural_invariants(
        ops in proptest::collection::vec((proptest::bool::ANY, 0u64..1_000_000), 1..60),
        seed in 0u64..10_000,
    ) {
        for policy in [
            CompactionPolicy::Logarithmic,
            CompactionPolicy::Tiered { max_blocks: 2 },
            CompactionPolicy::Tiered { max_blocks: 4 },
            CompactionPolicy::MergeToOne,
        ] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut e = engine(policy, None);
            let mut live: Vec<PointId> = Vec::new();
            let mut inserts_only = true;
            for &(is_insert, raw) in &ops {
                if is_insert {
                    live.push(e.insert(disk(&mut rng)));
                } else if !live.is_empty() {
                    inserts_only = false;
                    let victim = live.remove((raw as usize) % live.len());
                    prop_assert!(e.remove(victim));
                } else {
                    continue;
                }
                prop_assert_eq!(e.len(), live.len());
                dead_fraction_ok(&e);
                let blocks = e.stats().blocks;
                match policy {
                    CompactionPolicy::Logarithmic => {
                        if is_insert {
                            assert_distinct_classes(&e);
                        }
                        if inserts_only {
                            prop_assert_eq!(
                                blocks,
                                live.len().count_ones() as usize,
                                "insert-only Logarithmic block count"
                            );
                        }
                    }
                    CompactionPolicy::Tiered { max_blocks } => {
                        prop_assert!(
                            blocks <= max_blocks,
                            "{} blocks over Tiered cap {}",
                            blocks,
                            max_blocks
                        );
                    }
                    CompactionPolicy::MergeToOne => {
                        prop_assert!(blocks <= 1, "MergeToOne left {} blocks", blocks);
                        if is_insert {
                            prop_assert_eq!(blocks, 1);
                        }
                    }
                }
            }
        }
    }

    /// Tombstone compaction fires exactly when a removal crosses
    /// `max_dead_fraction` — never sooner, never later.
    #[test]
    fn compaction_fires_exactly_at_threshold(
        n in 8usize..40,
        seed in 0u64..10_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut e = engine(CompactionPolicy::Logarithmic, None);
        let ids = e.bulk_insert((0..n).map(|_| disk(&mut rng)).collect());
        let mut live = n;
        let mut dead = 0usize;
        for (k, &id) in ids.iter().enumerate().take(n - 1) {
            let before = e.stats().compactions;
            prop_assert!(e.remove(id));
            live -= 1;
            dead += 1;
            // The engine's threshold is against *current* storage
            // (live + tombstones), which shrinks after each compaction.
            let crossed = dead as f64 > MAX_DEAD * ((live + dead) as f64);
            let after = e.stats().compactions;
            if crossed {
                prop_assert_eq!(after, before + 1, "removal {} must compact", k);
                // Compaction dropped every tombstone into one rebuilt block.
                prop_assert_eq!(e.stats().tombstones, 0);
                prop_assert_eq!(e.stats().blocks, 1);
                dead = 0;
            } else {
                prop_assert_eq!(after, before, "removal {} must not compact", k);
                prop_assert_eq!(e.stats().tombstones, dead);
            }
        }
    }
}

/// Hot promotion: reads accumulate on snapshots, and the first mutation at
/// or past the configured read/update ratio collapses the engine.
#[test]
fn hot_promotion_collapses_read_heavy_engines() {
    let mut rng = SmallRng::seed_from_u64(99);
    let mut e = engine(CompactionPolicy::Logarithmic, Some(8.0));
    for _ in 0..6 {
        e.insert(disk(&mut rng));
    }
    assert!(e.stats().blocks > 1, "6 inserts must leave 2 blocks");
    assert_eq!(e.stats().promotions, 0);

    // The ratio weighs reads against updates since the last promotion: the
    // 6 bootstrap inserts plus the one below make 7, so 56 reads hit the
    // ratio-8 bound exactly at that mutation (which cascades to 3 blocks,
    // keeping the promotion's multi-block guard open).
    let snap = e.snapshot();
    for _ in 0..56 {
        snap.nn_nonzero(Point::new(0.0, 0.0));
    }
    assert_eq!(e.stats().reads, 56, "snapshot reads must reach the engine");
    e.insert(disk(&mut rng));
    let s = e.stats();
    assert_eq!(s.promotions, 1, "read-heavy mutation must promote");
    assert_eq!(s.blocks, 1, "promotion collapses to one block");
    assert_eq!(s.reads, 0, "promotion resets the read counter");

    // A cold engine (no reads since promotion) must not promote again.
    e.insert(disk(&mut rng));
    assert_eq!(e.stats().promotions, 1);
}

/// `bulk_insert` is equivalent to one-by-one insertion: same ids, same
/// answers, one block instead of a cascade.
#[test]
fn bulk_insert_matches_incremental_inserts() {
    let mut rng = SmallRng::seed_from_u64(5);
    let points: Vec<Uncertain> = (0..13).map(|_| disk(&mut rng)).collect();
    let mut bulk = engine(CompactionPolicy::Logarithmic, None);
    let ids = bulk.bulk_insert(points.clone());
    assert_eq!(ids, (0..13).collect::<Vec<PointId>>());
    assert_eq!(bulk.stats().blocks, 1, "bulk bootstrap is one build");

    let mut incr = engine(CompactionPolicy::Logarithmic, None);
    for p in points {
        incr.insert(p);
    }
    let (bs, is) = (bulk.snapshot(), incr.snapshot());
    assert_eq!(bs.live_ids(), is.live_ids());
    for i in 0..6 {
        let q = Point::new(f64::from(i) * 7.0 - 18.0, f64::from(i) * -5.0 + 11.0);
        assert_eq!(bs.nn_nonzero(q), is.nn_nonzero(q));
        assert_eq!(bs.quantify(q), is.quantify(q));
    }
}
