//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the [`proptest!`]
//! macro (with optional `#![proptest_config(..)]`), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, range and tuple strategies,
//! `collection::vec` / `collection::btree_set`, and `bool::ANY`.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case reports the generated inputs verbatim;
//! * generation is deterministic: the RNG stream is derived from the test
//!   function name, so failures reproduce across runs and machines;
//! * rejected cases (`prop_assume!`) are re-drawn without a global retry cap.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod strategy {
    //! The [`Strategy`] trait and elementary strategies.

    use rand::rngs::SmallRng;
    use rand::{RngExt, SampleUniform};
    use std::ops::Range;

    /// Generates values of `Value` from an RNG. (No shrinking.)
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            rng.random_range(self.start..self.end)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::RngExt;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Size specification: a fixed length or a half-open range of lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut SmallRng) -> usize {
            if self.lo + 1 == self.hi {
                self.lo
            } else {
                rng.random_range(self.lo..self.hi)
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s (size is a best-effort target: drawing
    /// duplicate elements yields a smaller set, as in real proptest).
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` strategy with a target size drawn from `size`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::RngExt;

    /// A fair coin.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The fair-coin strategy instance.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut SmallRng) -> bool {
            rng.random_bool(0.5)
        }
    }
}

pub mod test_runner {
    //! Configuration and case-level error plumbing.

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; draw new ones.
        Reject(String),
        /// `prop_assert!`-style failure; the property is falsified.
        Fail(String),
    }

    impl TestCaseError {
        /// A rejection (assume failure).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
        /// A property failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Per-block configuration (`#![proptest_config(..)]`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    /// The name proptest exports.
    pub type ProptestConfig = Config;

    impl Config {
        /// A config running `cases` successful cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Result type the generated test body returns internally.
pub type TestCaseResult = Result<(), test_runner::TestCaseError>;

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::SmallRng;
    pub use rand::SeedableRng;

    /// Deterministic per-test seed: FNV-1a over the test path.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Deterministic RNG used by the runner (re-exported for the macro).
pub fn runner_rng(test_name: &str) -> SmallRng {
    SmallRng::seed_from_u64(__rt::seed_for(test_name))
}

/// Defines property tests. Supports the subset of real proptest syntax used
/// in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in -1.0f64..1.0, v in proptest::collection::vec(0u32..9, 1..5)) {
///         prop_assert!(x.abs() <= 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($cfg) $($rest)*);
    };
    (@block ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::runner_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut rejected: u64 = 0;
                while passed < config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let values = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)*),
                        $(&$arg,)*
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { { $body } ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > 1_000_000 {
                                panic!(
                                    "proptest '{}': too many prop_assume! rejections",
                                    stringify!($name)
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed after {} passing case(s)\n  inputs: {}\n  {}",
                                stringify!($name), passed, values, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let left = $a;
        let right = $b;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let left = $a;
        let right = $b;
        if !(left == right) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    }};
}

/// Rejects the current case (draws a fresh one) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

pub mod prelude {
    //! Everything a test module needs: `use proptest::prelude::*;`.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_vecs(
            x in -2.0f64..2.0,
            n in 1usize..9,
            v in collection::vec((0u32..100, crate::bool::ANY), 0..20),
        ) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..9).contains(&n));
            prop_assert!(v.len() < 20);
            for (u, _) in &v {
                prop_assert!(*u < 100, "u = {}", u);
            }
        }
    }

    proptest! {
        #[test]
        fn assume_redraws(a in 0u32..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }
    }

    #[test]
    #[allow(unnameable_test_items)]
    fn failure_is_reported() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #[test]
                fn always_fails(x in 0u32..5) {
                    prop_assert!(x > 100, "x = {} is small", x);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
