//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion used by `unn-bench`: benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: after a short warm-up, each benchmark runs in
//! adaptively sized batches until the measurement budget is spent, then
//! reports the mean and best batch time per iteration. No statistical
//! analysis, plots, or baselines — numbers print to stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Identifier of one benchmark inside a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the closure given to [`Bencher::iter`]-driven benchmarks.
pub struct Bencher {
    measure: Duration,
    result: Option<Measurement>,
}

#[derive(Clone, Copy, Debug)]
struct Measurement {
    mean_ns: f64,
    best_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, preventing the result from being optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and batch-size calibration: grow until one batch takes
        // at least ~1ms (or a growth cap is hit).
        let mut batch: u64 = 1;
        let warmup_deadline = Instant::now() + Duration::from_millis(50);
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
            if Instant::now() > warmup_deadline {
                break;
            }
        }
        // Measurement batches.
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut best_ns = f64::INFINITY;
        while total < self.measure {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            best_ns = best_ns.min(dt.as_nanos() as f64 / batch as f64);
            total += dt;
            iters += batch;
        }
        self.result = Some(Measurement {
            mean_ns: total.as_nanos() as f64 / iters.max(1) as f64,
            best_ns,
            iters,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Kept for API compatibility; the stub's batch sizing is adaptive, so
    /// this only scales the measurement budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion's default is 100 samples; scale our fixed budget.
        let scale = (n.max(10) as f64 / 100.0).clamp(0.1, 2.0);
        self.criterion.measure = Duration::from_secs_f64(0.3 * scale);
        self
    }

    /// Same compatibility note as [`BenchmarkGroup::sample_size`].
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure = d.min(Duration::from_secs(2));
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&label, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        self.criterion
            .run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (printing is immediate in this stub; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness handle.
pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = name.to_string();
        self.run_one(&label, &mut f);
        self
    }

    fn run_one(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            measure: self.measure,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(m) => println!(
                "{label:<48} mean {:>12}/iter   best {:>12}/iter   ({} iters)",
                fmt_ns(m.mean_ns),
                fmt_ns(m.best_ns),
                m.iters
            ),
            None => println!("{label:<48} (no measurement)"),
        }
    }
}

/// Declares a group-runner function from a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub_smoke");
        g.sample_size(10);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(32), &32u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
