//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of rayon the workspace uses on top of `std::thread::scope`:
//!
//! * [`prelude`] — `par_iter()` on slices, `into_par_iter()` on ranges and
//!   vectors, with `map`, `map_init`, `enumerate`, and `collect`;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — a *logical* pool:
//!   `install` scopes a thread-count override rather than keeping worker
//!   threads alive (workers are scoped threads spawned per parallel call,
//!   which for batch workloads costs microseconds);
//! * [`current_num_threads`].
//!
//! Semantics guarantees relied on by `unn::batch`:
//!
//! * **Deterministic output order** — `collect` returns results in input
//!   order regardless of thread scheduling;
//! * **No cross-item state** — `map` closures receive one item at a time;
//!   `map_init` state is per-worker scratch, never shared between items in
//!   a way observable by the caller;
//! * **Panic propagation** — a panicking item panics the calling thread
//!   after all workers have stopped.
//!
//! Unlike real rayon there is no work stealing: items are claimed in
//! contiguous chunks from an atomic cursor, which provides the same
//! load-balancing for uniform batch workloads.

#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    POOL_OVERRIDE
        .with(|c| c.get())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Error building a thread pool (never produced by this stub; kept for API
/// compatibility with `rayon::ThreadPoolBuildError`).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Clone, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (thread count = hardware default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads; `0` means the hardware default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.num_threads
        };
        Ok(ThreadPool { n })
    }
}

/// A logical thread pool: a scoped thread-count policy for parallel calls.
#[derive(Clone, Debug)]
pub struct ThreadPool {
    n: usize,
}

impl ThreadPool {
    /// Number of threads parallel calls under this pool use.
    pub fn current_num_threads(&self) -> usize {
        self.n
    }

    /// Runs `op` with this pool governing every parallel operation invoked
    /// (directly) inside it on the current thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(POOL_OVERRIDE.with(|c| c.replace(Some(self.n))));
        op()
    }
}

/// Chunked parallel map over `0..len`, preserving index order in the output.
///
/// `make_state` runs once per worker; the state is threaded through every
/// item that worker processes (scratch-buffer reuse). With `threads <= 1`
/// the whole map runs inline on the caller with a single state.
fn par_map_internal<R, S>(
    len: usize,
    threads: usize,
    make_state: &(dyn Fn() -> S + Sync),
    f: &(dyn Fn(&mut S, usize) -> R + Sync),
) -> Vec<R>
where
    R: Send,
    S: Send,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(len);
    if threads == 1 {
        let mut state = make_state();
        return (0..len).map(|i| f(&mut state, i)).collect();
    }
    // Contiguous chunks claimed from an atomic cursor: deterministic
    // content (keyed by index), balanced for uniform batch workloads.
    let chunk = len.div_ceil(threads * 8).max(1);
    let cursor = AtomicUsize::new(0);
    let worker = |_wid: usize| -> std::thread::Result<Vec<(usize, Vec<R>)>> {
        catch_unwind(AssertUnwindSafe(|| {
            let mut state = make_state();
            let mut out = Vec::new();
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                let end = (start + chunk).min(len);
                let vals: Vec<R> = (start..end).map(|i| f(&mut state, i)).collect();
                out.push((start, vals));
            }
            out
        }))
    };
    let mut pieces: Vec<(usize, Vec<R>)> = Vec::new();
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| scope.spawn(move || worker(w)))
            .collect();
        for h in handles {
            // The worker body is fully wrapped in catch_unwind, so the
            // outer join error case is unreachable; fold it into the same
            // deferred-resume path as an in-closure panic.
            match h.join() {
                Ok(Ok(mut p)) => pieces.append(&mut p),
                Ok(Err(e)) | Err(e) => panic = Some(e),
            }
        }
    });
    if let Some(e) = panic {
        resume_unwind(e);
    }
    pieces.sort_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(len);
    for (_, mut vals) in pieces {
        out.append(&mut vals);
    }
    debug_assert_eq!(out.len(), len);
    out
}

/// Eagerly computed parallel-map results; `collect` finalizes the type.
pub struct Collected<R>(Vec<R>);

impl<R: Send> Collected<R> {
    /// Finalizes into any container buildable from a `Vec` (in input order).
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(self.0)
    }

    /// Consumes results in input order.
    pub fn for_each(self, mut f: impl FnMut(R)) {
        self.0.into_iter().for_each(&mut f);
    }

    /// Sums the results.
    pub fn sum<T: std::iter::Sum<R>>(self) -> T {
        self.0.into_iter().sum()
    }
}

impl<R> IntoIterator for Collected<R> {
    type Item = R;
    type IntoIter = std::vec::IntoIter<R>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

/// Parallel iterator over `&[T]`.
pub struct SliceParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> SliceParIter<'a, T> {
    /// Parallel map.
    pub fn map<R, F>(self, f: F) -> Collected<R>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        let items = self.items;
        Collected(par_map_internal(
            items.len(),
            current_num_threads(),
            &|| (),
            &|(), i| f(&items[i]),
        ))
    }

    /// Parallel map with per-worker scratch state.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> Collected<R>
    where
        S: Send,
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> R + Sync,
    {
        let items = self.items;
        Collected(par_map_internal(
            items.len(),
            current_num_threads(),
            &init,
            &|s, i| f(s, &items[i]),
        ))
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> EnumParIter<'a, T> {
        EnumParIter { items: self.items }
    }
}

/// Parallel iterator over `(index, &T)` pairs.
pub struct EnumParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> EnumParIter<'a, T> {
    /// Parallel map over `(index, &item)`.
    pub fn map<R, F>(self, f: F) -> Collected<R>
    where
        R: Send,
        F: Fn((usize, &'a T)) -> R + Sync,
    {
        let items = self.items;
        Collected(par_map_internal(
            items.len(),
            current_num_threads(),
            &|| (),
            &|(), i| f((i, &items[i])),
        ))
    }

    /// Parallel map over `(index, &item)` with per-worker scratch state.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> Collected<R>
    where
        S: Send,
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, (usize, &'a T)) -> R + Sync,
    {
        let items = self.items;
        Collected(par_map_internal(
            items.len(),
            current_num_threads(),
            &init,
            &|s, i| f(s, (i, &items[i])),
        ))
    }
}

/// Parallel iterator over an index range.
pub struct RangeParIter {
    range: Range<usize>,
}

impl RangeParIter {
    /// Parallel map over the indices.
    pub fn map<R, F>(self, f: F) -> Collected<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        Collected(par_map_internal(
            len,
            current_num_threads(),
            &|| (),
            &|(), i| f(start + i),
        ))
    }

    /// Parallel map over the indices with per-worker scratch state.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> Collected<R>
    where
        S: Send,
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        Collected(par_map_internal(
            len,
            current_num_threads(),
            &init,
            &|s, i| f(s, start + i),
        ))
    }
}

/// Conversion into an owning/consuming parallel iterator.
pub trait IntoParallelIterator {
    /// The parallel-iterator type.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeParIter;
    fn into_par_iter(self) -> RangeParIter {
        RangeParIter { range: self }
    }
}

/// Conversion into a borrowing parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The item type.
    type Item: 'a;
    /// The parallel-iterator type.
    type Iter;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { items: self }
    }
}

pub mod prelude {
    //! `use rayon::prelude::*;`
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let got: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        let want: Vec<u64> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn enumerate_and_range() {
        let items = vec!["a", "b", "c", "d"];
        let got: Vec<(usize, &str)> = items.par_iter().enumerate().map(|(i, s)| (i, *s)).collect();
        assert_eq!(got, vec![(0, "a"), (1, "b"), (2, "c"), (3, "d")]);
        let sq: Vec<usize> = (3..8).into_par_iter().map(|i| i * i).collect();
        assert_eq!(sq, vec![9, 16, 25, 36, 49]);
    }

    #[test]
    fn map_init_reuses_state_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..50_000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let got: Vec<usize> = pool.install(|| {
            items
                .par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                        Vec::<usize>::new()
                    },
                    |scratch, &x| {
                        scratch.clear();
                        scratch.push(x);
                        scratch[0] + 1
                    },
                )
                .collect()
        });
        assert_eq!(got.len(), items.len());
        assert!(got.iter().enumerate().all(|(i, &v)| v == i + 1));
        let n_inits = inits.load(Ordering::Relaxed);
        assert!(
            n_inits <= 4,
            "scratch must be per-worker, got {n_inits} inits"
        );
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let items: Vec<u64> = (0..4096).map(|i| i * 2_654_435_761 % 97).collect();
        let reference: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: Vec<u64> = pool.install(|| items.par_iter().map(|&x| x * x + 1).collect());
            assert_eq!(got, reference, "threads = {threads}");
        }
    }

    #[test]
    fn panics_propagate() {
        let items: Vec<usize> = (0..100).collect();
        let result = std::panic::catch_unwind(|| {
            let _: Vec<usize> = items
                .par_iter()
                .map(|&x| {
                    if x == 57 {
                        panic!("boom");
                    }
                    x
                })
                .collect();
        });
        assert!(result.is_err());
    }
}
