//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, API-compatible subset of `rand` as a
//! path dependency. It provides:
//!
//! * [`Rng`] — the dyn-safe core trait (`next_u32` / `next_u64`), used as
//!   `&mut dyn Rng` throughout the distribution sampling code;
//! * [`RngExt`] — the extension trait with `random()`, `random_range(..)`
//!   and `random_bool()`, blanket-implemented for every `Rng` (including
//!   `dyn Rng`);
//! * [`SeedableRng`] with `seed_from_u64`;
//! * [`rngs::SmallRng`] — xoshiro256++ seeded through SplitMix64.
//!
//! All generators are fully deterministic given a seed, which the test and
//! batch-query layers rely on (see `unn::batch` for the
//! `(seed, query_index)` stream-derivation scheme).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Core random-number source: dyn-safe, everything else derives from it.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the "standard" domain
/// (`[0, 1)` for floats, the full range for integers, fair coin for bools).
pub trait StandardUniform: Sized {
    /// Draws one standard sample from a bit source.
    fn sample_standard(next: &mut dyn FnMut() -> u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: StandardUniform + PartialOrd + Copy {
    /// Draws uniformly from `[lo, hi)`. Panics if the range is empty.
    fn sample_range(next: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
    /// Draws uniformly from `[lo, hi]`. Panics if `hi < lo`.
    fn sample_range_inclusive(next: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard(next: &mut dyn FnMut() -> u64) -> Self {
        // 53 random bits scaled into [0, 1).
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f64 {
    fn sample_range(next: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
        let u = f64::sample_standard(next);
        let v = lo + (hi - lo) * u;
        // Guard against round-up to `hi` for extreme ranges.
        if v < hi {
            v
        } else {
            lo
        }
    }
    fn sample_range_inclusive(next: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
        lo + (hi - lo) * f64::sample_standard(next)
    }
}

impl StandardUniform for f32 {
    fn sample_standard(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleUniform for f32 {
    fn sample_range(next: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
        let v = lo + (hi - lo) * f32::sample_standard(next);
        if v < hi {
            v
        } else {
            lo
        }
    }
    fn sample_range_inclusive(next: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
        lo + (hi - lo) * f32::sample_standard(next)
    }
}

impl StandardUniform for bool {
    fn sample_standard(next: &mut dyn FnMut() -> u64) -> Self {
        next() & 1 == 1
    }
}

/// Uniform `[0, span)` via 128-bit widening multiply (Lemire reduction,
/// without the rejection step: the bias is < 2⁻⁶⁴ per draw, far below
/// anything the statistical tests in this workspace can resolve).
#[inline]
fn bounded(next: &mut dyn FnMut() -> u64, span: u64) -> u64 {
    ((next() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl StandardUniform for $t {
            fn sample_standard(next: &mut dyn FnMut() -> u64) -> Self {
                next() as $t
            }
        }
        impl SampleUniform for $t {
            fn sample_range(next: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty integer range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(bounded(next, span) as $t)
            }
            fn sample_range_inclusive(
                next: &mut dyn FnMut() -> u64,
                lo: Self,
                hi: Self,
            ) -> Self {
                assert!(lo <= hi, "cannot sample empty integer range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return next() as $t;
                }
                lo.wrapping_add(bounded(next, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Convenience methods over any [`Rng`], mirroring `rand`'s `Rng` extension
/// surface (`random`, `random_range`, `random_bool`).
pub trait RngExt: Rng {
    /// A standard sample: `[0, 1)` for floats, full range for integers.
    fn random<T: StandardUniform>(&mut self) -> T {
        let mut src = |/* bits */| self.next_u64();
        T::sample_standard(&mut src)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let mut src = || self.next_u64();
        range.sample_from(&mut src)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from this range.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T {
        T::sample_range(next, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T {
        T::sample_range_inclusive(next, *self.start(), *self.end())
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Deterministically constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Constructs the generator from another source of randomness.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::seed_from_u64(rng.next_u64())
    }
}

/// SplitMix64 step — used for seeding and for one-shot stream derivation.
#[inline]
pub fn split_mix_64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{split_mix_64, Rng, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    ///
    /// Matches the role of `rand::rngs::SmallRng`: not cryptographically
    /// secure, excellent statistical quality for simulation workloads.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed through SplitMix64, per the xoshiro authors'
            // recommendation; guarantees a nonzero state.
            let mut sm = seed;
            let s = [
                split_mix_64(&mut sm),
                split_mix_64(&mut sm),
                split_mix_64(&mut sm),
                split_mix_64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }
    }

    /// Alias: the workspace treats `StdRng` and `SmallRng` identically.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_are_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x: f64 = rng.random_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&x));
            let i: usize = rng.random_range(0..10);
            seen[i] = true;
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn unit_interval_mean_is_half() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn dyn_rng_object_usable() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dyn_rng: &mut dyn super::Rng = &mut rng;
        let v: f64 = dyn_rng.random_range(0.0..1.0);
        assert!((0.0..1.0).contains(&v));
    }
}
