//! Offline placeholder for `serde`.
//!
//! The workspace's `serde` cargo features are **off by default** and cannot
//! be enabled offline (the real `serde` + derive macros are unavailable in
//! this build environment). This crate exists so that the optional
//! `serde = { workspace = true, optional = true }` dependency edges resolve.
//!
//! Enabling a `serde` feature of any workspace crate produces a compile
//! error pointing here, rather than a confusing registry failure.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
compile_error!(
    "the offline serde placeholder has no derive support; \
     build without the workspace `serde` features"
);
