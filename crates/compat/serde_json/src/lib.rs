//! Offline placeholder for `serde_json`.
//!
//! Only referenced from tests gated behind the workspace's `serde` feature,
//! which is off by default and unsupported in this offline build
//! environment (see the `serde` placeholder crate). This crate exists so
//! the dev-dependency edge resolves.

#![forbid(unsafe_code)]
