//! Experiments E1–E7: complexity and query performance of the nonzero
//! Voronoi diagram (paper §2–3). Each function regenerates one table of
//! EXPERIMENTS.md.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use unn::geom::{Aabb, Point};
use unn::nonzero::{
    collinear_quadratic, count_distinct, count_distinct_discrete, discrete_nonzero_vertices,
    disjoint_disks, equal_radii_cubic, mixed_radii_cubic, nonzero_vertices, DiskNonzeroIndex,
    NonzeroSubdivision,
};

use crate::util::{loglog_slope, random_disks, random_queries, time_ms, time_per_call_us, Table};

/// E1 / Theorem 2.5: complexity of `𝒱≠0` on random disks is `O(n³)`.
pub fn t1_random_disks(scale: u32) -> Table {
    let mut t = Table::new(
        "T1 (Thm 2.5): V!=0 vertex count, random disks  [paper: O(n^3) worst case]",
        &["n", "vertices", "n^3", "ratio"],
    );
    let ns: &[usize] = if scale >= 2 {
        &[8, 12, 16, 24, 32, 48]
    } else {
        &[8, 12, 16, 24]
    };
    let mut pts = Vec::new();
    for &n in ns {
        let disks = random_disks(n, 40.0, 0.5, 4.0, 1000 + n as u64);
        let verts = nonzero_vertices(&disks, 1e-9);
        let count = count_distinct(&verts, 1e-7);
        pts.push((n as f64, count as f64));
        t.row(vec![
            n.to_string(),
            count.to_string(),
            (n * n * n).to_string(),
            format!("{:.4}", count as f64 / (n * n * n) as f64),
        ]);
    }
    let slope = loglog_slope(&pts);
    t.note(format!(
        "measured growth exponent {slope:.2}; paper bound: <= 3 (random data is typically sub-cubic)"
    ));
    t.note(format!("PASS = exponent <= 3.2: {}", slope <= 3.2));
    t
}

/// E2 / Theorem 2.7: the mixed-radii construction realizes `Ω(n³)`.
pub fn t2_lb_mixed(scale: u32) -> Table {
    let mut t = Table::new(
        "T2 (Thm 2.7): Omega(n^3) lower-bound construction, mixed radii",
        &["m", "n=4m", "predicted 4m^3", "measured", "measured/pred"],
    );
    let ms: &[usize] = if scale >= 2 {
        &[1, 2, 3, 4, 5]
    } else {
        &[1, 2, 3]
    };
    let mut pts = Vec::new();
    let mut all_pass = true;
    for &m in ms {
        let inst = mixed_radii_cubic(m);
        let verts = nonzero_vertices(&inst.disks, 1e-9);
        let count = count_distinct(&verts, inst.snap);
        all_pass &= count >= inst.predicted_vertices;
        pts.push((4.0 * m as f64, count as f64));
        t.row(vec![
            m.to_string(),
            (4 * m).to_string(),
            inst.predicted_vertices.to_string(),
            count.to_string(),
            format!("{:.2}", count as f64 / inst.predicted_vertices as f64),
        ]);
    }
    t.note(format!(
        "growth exponent {:.2} (cubic predicted)",
        loglog_slope(&pts)
    ));
    t.note(format!(
        "PASS = measured >= predicted everywhere: {all_pass}"
    ));
    t
}

/// E3 / Theorem 2.8: `Ω(n³)` with unit disks only.
pub fn t3_lb_equal(scale: u32) -> Table {
    let mut t = Table::new(
        "T3 (Thm 2.8): Omega(n^3) lower-bound construction, equal radii",
        &["m", "n=3m", "predicted m^3", "measured", "measured/pred"],
    );
    let ms: &[usize] = if scale >= 2 {
        &[2, 3, 4, 5, 6]
    } else {
        &[2, 3, 4]
    };
    let mut pts = Vec::new();
    let mut all_pass = true;
    for &m in ms {
        let inst = equal_radii_cubic(m);
        let verts = nonzero_vertices(&inst.disks, 1e-9);
        let count = count_distinct(&verts, inst.snap);
        all_pass &= count >= inst.predicted_vertices;
        pts.push((3.0 * m as f64, count as f64));
        t.row(vec![
            m.to_string(),
            (3 * m).to_string(),
            inst.predicted_vertices.to_string(),
            count.to_string(),
            format!("{:.2}", count as f64 / inst.predicted_vertices as f64),
        ]);
    }
    t.note(format!(
        "growth exponent {:.2} (cubic predicted)",
        loglog_slope(&pts)
    ));
    t.note(format!(
        "PASS = measured >= predicted everywhere: {all_pass}"
    ));
    t
}

/// E4 / Theorem 2.10 + Lemma 2.9: disjoint disks give `O(λn²)`, and the
/// collinear construction realizes `Ω(n²)`.
pub fn t4_disjoint(scale: u32) -> Table {
    let mut t = Table::new(
        "T4 (Thm 2.10 / Lemma 2.9): disjoint disks  [paper: O(lambda n^2), Omega(n^2)]",
        &["workload", "n", "lambda", "vertices"],
    );
    let mut rng = SmallRng::seed_from_u64(2000);
    // (a) growth in n at fixed lambda.
    let ns: &[usize] = if scale >= 2 {
        &[8, 16, 32, 48, 64]
    } else {
        &[8, 16, 32]
    };
    let mut pts_n = Vec::new();
    for &n in ns {
        let disks = disjoint_disks(n, 2.0, &mut rng);
        let count = count_distinct(&nonzero_vertices(&disks, 1e-9), 1e-7);
        pts_n.push((n as f64, count as f64));
        t.row(vec![
            "n-sweep".into(),
            n.to_string(),
            "2".into(),
            count.to_string(),
        ]);
    }
    // (b) growth in lambda at fixed n.
    let lambdas: &[f64] = if scale >= 2 {
        &[1.001, 2.0, 4.0, 8.0, 16.0]
    } else {
        &[1.001, 2.0, 4.0]
    };
    let n_fixed = if scale >= 2 { 32 } else { 16 };
    let mut pts_l = Vec::new();
    for &l in lambdas {
        let disks = disjoint_disks(n_fixed, l, &mut rng);
        let count = count_distinct(&nonzero_vertices(&disks, 1e-9), 1e-7);
        pts_l.push((l, count as f64));
        t.row(vec![
            "lambda-sweep".into(),
            n_fixed.to_string(),
            format!("{l:.1}"),
            count.to_string(),
        ]);
    }
    // (c) the explicit Omega(n^2) construction.
    for m in [3usize, 5, 8] {
        let inst = collinear_quadratic(m);
        let count = count_distinct(&nonzero_vertices(&inst.disks, 1e-9), inst.snap);
        t.row(vec![
            "collinear-LB".into(),
            (2 * m).to_string(),
            "1.0".into(),
            format!("{count} (predicted >= {})", inst.predicted_vertices),
        ]);
    }
    let slope_n = loglog_slope(&pts_n);
    // The O(lambda n^2) claim is an upper bound; on random disjoint data the
    // realized count need not grow with lambda (bigger disks also spread over
    // a bigger board). Check the bound itself with a small constant.
    let lambda_bound_ok = pts_l
        .iter()
        .all(|&(l, c)| c <= 4.0 * l.max(1.0) * (n_fixed * n_fixed) as f64);
    t.note(format!(
        "n-exponent {slope_n:.2} (paper upper bound: 2); all lambda rows within 4*lambda*n^2: {lambda_bound_ok}"
    ));
    t.note(format!(
        "PASS = n-exponent <= 2.5 and lambda bound holds: {}",
        slope_n <= 2.5 && lambda_bound_ok
    ));
    t
}

/// E5 / Theorem 2.14: discrete distributions give `O(kn³)`.
pub fn t5_discrete(scale: u32) -> Table {
    let mut t = Table::new(
        "T5 (Thm 2.14): discrete-case V!=0 vertices  [paper: O(k n^3)]",
        &["n", "k", "vertices"],
    );
    let universe = Aabb::new(Point::new(-200.0, -200.0), Point::new(300.0, 300.0));
    let ns: &[usize] = if scale >= 2 {
        &[4, 6, 8, 12]
    } else {
        &[4, 6, 8]
    };
    let ks: &[usize] = if scale >= 2 {
        &[1, 2, 4, 6]
    } else {
        &[1, 2, 4]
    };
    let mut pts_n = Vec::new();
    let mut pts_k = Vec::new();
    for &n in ns {
        let objs: Vec<Vec<Point>> =
            crate::util::random_discrete(n, 3, 60.0, 4.0, 1.0, 3000 + n as u64)
                .iter()
                .map(|d| d.points().to_vec())
                .collect();
        let count =
            count_distinct_discrete(&discrete_nonzero_vertices(&objs, &universe, 1e-9), 1e-7);
        pts_n.push((n as f64, count as f64));
        t.row(vec![n.to_string(), "3".into(), count.to_string()]);
    }
    for &k in ks {
        let objs: Vec<Vec<Point>> =
            crate::util::random_discrete(6, k, 60.0, 4.0, 1.0, 4000 + k as u64)
                .iter()
                .map(|d| d.points().to_vec())
                .collect();
        let count =
            count_distinct_discrete(&discrete_nonzero_vertices(&objs, &universe, 1e-9), 1e-7);
        pts_k.push((k as f64, count as f64));
        t.row(vec!["6".into(), k.to_string(), count.to_string()]);
    }
    t.note(format!(
        "n-exponent {:.2} (paper: <= 3), k-exponent {:.2} (paper: ~1 for the extra factor)",
        loglog_slope(&pts_n),
        loglog_slope(&pts_k)
    ));
    t.note(format!(
        "PASS = n-exponent <= 3.3 and k growth non-decreasing: {}",
        loglog_slope(&pts_n) <= 3.3 && pts_k.last().expect("nonempty").1 >= pts_k[0].1
    ));
    t
}

/// E6 / Theorems 2.5, 2.11: construction time of the subdivision scales
/// near `O(n² log n + μ)`.
pub fn t6_construction(scale: u32) -> Table {
    let mut t = Table::new(
        "T6 (Thm 2.5/2.11): construction cost  [paper: O(n^2 log n + mu) expected]",
        &["n", "enum ms", "subdivision ms", "mu (verts)"],
    );
    let ns: &[usize] = if scale >= 2 {
        &[8, 16, 32, 48, 64]
    } else {
        &[8, 16, 24]
    };
    let bbox = Aabb::new(Point::new(-10.0, -10.0), Point::new(50.0, 50.0));
    let mut enum_pts = Vec::new();
    for &n in ns {
        let disks = random_disks(n, 40.0, 0.5, 3.0, 5000 + n as u64);
        let (verts, enum_ms) = time_ms(|| nonzero_vertices(&disks, 1e-9));
        let mu = count_distinct(&verts, 1e-7);
        let (_, sub_ms) = time_ms(|| NonzeroSubdivision::build(&disks, bbox, 5e-3));
        enum_pts.push((n as f64, enum_ms.max(1e-3)));
        t.row(vec![
            n.to_string(),
            format!("{enum_ms:.1}"),
            format!("{sub_ms:.1}"),
            mu.to_string(),
        ]);
    }
    t.note(format!(
        "vertex-enumeration time exponent {:.2} (O(n^3 log n) implementation of the O(n^2 log n + mu) bound)",
        loglog_slope(&enum_pts)
    ));
    t
}

/// E7 / Theorems 2.11, 3.1: `NN≠0` query time — subdivision point location
/// vs two-stage structure vs naive scan.
pub fn t7_queries(scale: u32) -> Table {
    let mut t = Table::new(
        "T7 (Thm 2.11/3.1): NN!=0 query time  [paper: O(log n + t) vs naive O(n)]",
        &["n", "two-stage us", "naive us", "speedup", "mean |t|"],
    );
    let ns: &[usize] = if scale >= 2 {
        &[100, 1_000, 10_000, 100_000]
    } else {
        &[100, 1_000, 10_000]
    };
    for &n in ns {
        // Constant density: side grows with sqrt(n) so output size t stays
        // O(1) and the query-time scaling is visible.
        let side = (n as f64).sqrt() * 4.0;
        let disks = random_disks(n, side, 0.5, 2.0, 6000 + n as u64);
        let idx = DiskNonzeroIndex::new(&disks);
        let queries = random_queries(200, side, 6001 + n as u64);
        let mut qi = 0usize;
        let two_stage = time_per_call_us(200, || {
            let q = queries[qi % queries.len()];
            qi += 1;
            idx.query(q)
        });
        let mut qi = 0usize;
        let reps_naive = if n >= 100_000 { 50 } else { 200 };
        let naive = time_per_call_us(reps_naive, || {
            let q = queries[qi % queries.len()];
            qi += 1;
            idx.query_naive(q)
        });
        let mean_t: f64 = queries
            .iter()
            .take(100)
            .map(|&q| idx.query(q).len() as f64)
            .sum::<f64>()
            / 100.0;
        t.row(vec![
            n.to_string(),
            format!("{two_stage:.1}"),
            format!("{naive:.1}"),
            format!("{:.1}x", naive / two_stage),
            format!("{mean_t:.1}"),
        ]);
    }
    // Subdivision point location at small n.
    let disks = random_disks(24, 40.0, 0.5, 2.0, 6100);
    let bbox = Aabb::new(Point::new(-10.0, -10.0), Point::new(50.0, 50.0));
    let sub = NonzeroSubdivision::build(&disks, bbox, 5e-3);
    let queries = random_queries(200, 40.0, 6101);
    let mut qi = 0usize;
    let loc_us = time_per_call_us(200, || {
        let q = queries[qi % queries.len()];
        qi += 1;
        sub.query(q)
    });
    t.note(format!(
        "subdivision point location at n=24: {loc_us:.1} us/query (Thm 2.11 structure; simpler but heavier than two-stage)"
    ));
    t.note("PASS = two-stage beats naive at the largest n (see speedup column)");
    t
}

/// T15: the extension structures — guaranteed Voronoi (`[SE08]`), `L∞`
/// queries (§3 remark (ii)), the Apollonius diagram `𝕄`, and probabilistic
/// k-NN membership.
pub fn t15_extensions(scale: u32) -> Table {
    use unn::geom::Disk;
    use unn::nonzero::{ApolloniusDiagram, GuaranteedNnIndex, LinfNonzeroIndex};
    let mut t = Table::new(
        "T15: extensions — guaranteed NN, L-infinity, Apollonius, kNN membership",
        &["structure", "n", "metric / param", "result"],
    );
    let ns: &[usize] = if scale >= 2 {
        &[1_000, 10_000]
    } else {
        &[1_000]
    };
    for &n in ns {
        let side = (n as f64).sqrt() * 4.0;
        let disks = random_disks(n, side, 0.3, 1.5, 8000 + n as u64);
        let queries = random_queries(300, side, 8001 + n as u64);

        // Guaranteed NN: hit rate and query time.
        let g = GuaranteedNnIndex::new(&disks);
        let hits = queries
            .iter()
            .filter(|&&q| g.guaranteed_nn(q).is_some())
            .count();
        let mut qi = 0usize;
        let gus = time_per_call_us(300, || {
            let q = queries[qi % queries.len()];
            qi += 1;
            g.guaranteed_nn(q)
        });
        t.row(vec![
            "guaranteed NN".into(),
            n.to_string(),
            "L2".into(),
            format!(
                "{:.0}% guaranteed, {gus:.1} us/query",
                100.0 * hits as f64 / queries.len() as f64
            ),
        ]);

        // L-infinity two-stage queries over bounding boxes.
        let rects: Vec<unn::geom::Aabb> = disks
            .iter()
            .map(|d| {
                unn::geom::Aabb::new(
                    Point::new(d.center.x - d.radius, d.center.y - d.radius),
                    Point::new(d.center.x + d.radius, d.center.y + d.radius),
                )
            })
            .collect();
        let linf = LinfNonzeroIndex::new(&rects);
        let mut qi = 0usize;
        let lus = time_per_call_us(300, || {
            let q = queries[qi % queries.len()];
            qi += 1;
            linf.query(q)
        });
        let mean_t: f64 = queries
            .iter()
            .take(100)
            .map(|&q| linf.query(q).len() as f64)
            .sum::<f64>()
            / 100.0;
        t.row(vec![
            "NN!=0 two-stage".into(),
            n.to_string(),
            "L-infinity".into(),
            format!("{lus:.1} us/query, mean |t| = {mean_t:.1}"),
        ]);
    }

    // Apollonius diagram complexity: linear growth check.
    let mut pts = Vec::new();
    for &n in &[32usize, 64, 128, 256] {
        let disks = random_disks(n, 60.0, 0.2, 2.0, 8100 + n as u64);
        let ap = ApolloniusDiagram::build(&disks);
        pts.push((n as f64, ap.total_arcs() as f64));
        t.row(vec![
            "Apollonius M".into(),
            n.to_string(),
            "-".into(),
            format!("{} envelope arcs", ap.total_arcs()),
        ]);
    }
    t.note(format!(
        "Apollonius arc-count growth exponent {:.2} ([AB86]: diagram complexity O(n))",
        loglog_slope(&pts)
    ));

    // kNN membership sums to k (exact DP).
    let objs = crate::util::random_discrete(12, 3, 40.0, 3.0, 2.0, 8200);
    let q = Point::new(20.0, 20.0);
    let sums: Vec<String> = (1..=4)
        .map(|k| {
            let pi = unn::quantify::knn_membership_exact(&objs, q, k);
            format!("k={k}: {:.6}", pi.iter().sum::<f64>())
        })
        .collect();
    t.row(vec![
        "kNN membership sum (= k)".into(),
        "12".into(),
        "exact DP".into(),
        sums.join(", "),
    ]);
    let _ = Disk::new(Point::ORIGIN, 1.0);
    t
}
