//! Transport overhead benchmark for the network serving tier; writes
//! `BENCH_net.json` (qps and ns/query for in-process, loopback, and
//! localhost-TCP serving, with wire bytes per query and the framing
//! overhead against the in-process baseline) at the repo root.
//!
//! ```sh
//! cargo run -p unn-bench --release --bin bench_net
//! ```
//!
//! Three phases over the same shard set and the same request stream:
//!
//! * **in_process** — direct `Dispatcher::serve` calls, the baseline;
//! * **loopback** — the full wire protocol (encode → frame → server state
//!   machine → decode) through the in-memory duplex, no socket;
//! * **tcp** — the same through a real localhost socket.
//!
//! The run *asserts* its own contract: every loopback and TCP reply is
//! bit-identical to the in-process baseline, nothing is retried or
//! reconnected, and the wire moves a nonzero number of bytes.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::geom::Point;
use unn::net::{tcp_connector, ClientConfig, LoopbackDuplex, NetClient, NetServer, ServerConfig};
use unn::observe::NullClock;
use unn::serve::{
    DispatchConfig, Dispatcher, Reply, Request, ServeConfig, ShardPolicy, ShardSet,
    ShardSetSnapshot,
};
use unn::Uncertain;

const N_SHARDS: usize = 4;
const N_POINTS: usize = 2_048;
const S: usize = 192;
const BATCHES: usize = 40;
const BATCH_SIZE: usize = 32;

fn build_set(rng: &mut SmallRng) -> ShardSet {
    let cfg = ServeConfig {
        mc_rounds: S,
        ..ServeConfig::default()
    };
    let mut set =
        ShardSet::new(N_SHARDS, ShardPolicy::Hash, cfg).expect("static serve config is valid");
    for _ in 0..N_POINTS {
        set.insert(Uncertain::uniform_disk(
            Point::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)),
            rng.random_range(0.5..2.0),
        ));
    }
    set
}

fn batches(seed: u64) -> Vec<Vec<Request>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..BATCHES)
        .map(|_| {
            (0..BATCH_SIZE)
                .map(|i| {
                    let q = Point::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0));
                    if i % 4 == 0 {
                        Request::NnNonzero(q)
                    } else {
                        Request::Quantify(q)
                    }
                })
                .collect()
        })
        .collect()
}

/// The deterministic dispatcher every phase serves from: NullClock, so
/// replies carry no wall-clock jitter and bit-identity is checkable.
fn dispatcher(snap: &ShardSetSnapshot) -> Dispatcher {
    let cfg = DispatchConfig {
        threads: Some(4),
        ..DispatchConfig::default()
    };
    Dispatcher::for_snapshot(snap, cfg, Arc::new(NullClock))
        .expect("static dispatch config is valid")
}

struct PhaseResult {
    name: &'static str,
    queries: u64,
    qps: f64,
    ns_per_query: f64,
    bytes_out_per_query: f64,
    bytes_in_per_query: f64,
    frames_out: u64,
    frames_in: u64,
    overhead_ns_per_query: f64,
    overhead_pct: f64,
}

fn phase_result(
    name: &'static str,
    wall: Duration,
    stats: Option<unn::net::ClientStats>,
    baseline_ns: Option<f64>,
) -> PhaseResult {
    let queries = (BATCHES * BATCH_SIZE) as u64;
    let ns_per_query = wall.as_nanos() as f64 / queries as f64;
    let overhead = baseline_ns.map(|b| ns_per_query - b).unwrap_or(0.0);
    let stats = stats.unwrap_or_default();
    PhaseResult {
        name,
        queries,
        qps: queries as f64 / wall.as_secs_f64(),
        ns_per_query,
        bytes_out_per_query: stats.bytes_out as f64 / queries as f64,
        bytes_in_per_query: stats.bytes_in as f64 / queries as f64,
        frames_out: stats.frames_out,
        frames_in: stats.frames_in,
        overhead_ns_per_query: overhead,
        overhead_pct: baseline_ns.map(|b| 100.0 * overhead / b).unwrap_or(0.0),
    }
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(0xbe7c0);
    let set = build_set(&mut rng);
    let snap = set.snapshot();
    let reqs = batches(0x4e7);

    // Phase 1: in-process baseline (also the bit-identity oracle).
    let mut d = dispatcher(&snap);
    let start = Instant::now();
    let oracle: Vec<Vec<Reply>> = reqs.iter().map(|b| d.serve(b)).collect();
    let in_process = phase_result("in_process", start.elapsed(), None, None);

    // Phase 2: loopback — full codec + server state machine, no socket.
    let mut client = NetClient::new(
        LoopbackDuplex::connector(
            Arc::new(Mutex::new(dispatcher(&snap))),
            ServerConfig::default(),
        ),
        ClientConfig::default(),
        Arc::new(NullClock),
    );
    let start = Instant::now();
    for (b, want) in reqs.iter().zip(&oracle) {
        let got = client.serve(b).expect("loopback serve");
        assert_eq!(&got, want, "loopback replies must be bit-identical");
    }
    let wall = start.elapsed();
    let stats = client.stats();
    assert_eq!(stats.reconnects, 0);
    assert_eq!(stats.retried_attempts, 0);
    assert!(stats.bytes_out > 0 && stats.bytes_in > 0);
    let loopback = phase_result("loopback", wall, Some(stats), Some(in_process.ns_per_query));

    // Phase 3: localhost TCP.
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::new(Mutex::new(dispatcher(&snap))),
        ServerConfig::default(),
    )
    .expect("bind 127.0.0.1:0");
    let mut client = NetClient::new(
        tcp_connector(server.local_addr(), Duration::from_secs(30)),
        ClientConfig::default(),
        Arc::new(NullClock),
    );
    let start = Instant::now();
    for (b, want) in reqs.iter().zip(&oracle) {
        let got = client.serve(b).expect("tcp serve");
        assert_eq!(&got, want, "TCP replies must be bit-identical");
    }
    let wall = start.elapsed();
    let stats = client.stats();
    assert_eq!(stats.reconnects, 0);
    assert_eq!(stats.retried_attempts, 0);
    let tcp = phase_result("tcp", wall, Some(stats), Some(in_process.ns_per_query));
    server.shutdown();

    let mut out = String::from("{\n  \"bench\": \"net\",\n");
    out.push_str(&format!(
        "  \"shards\": {N_SHARDS},\n  \"n\": {N_POINTS},\n  \"s\": {S},\n"
    ));
    out.push_str(&format!(
        "  \"batch_size\": {BATCH_SIZE},\n  \"batches\": {BATCHES},\n"
    ));
    out.push_str(
        "  \"unit\": { \"qps\": \"queries_per_sec\", \"overhead\": \"ns_per_query_vs_in_process\" },\n",
    );
    out.push_str("  \"phases\": [\n");
    let phases = [in_process, loopback, tcp];
    for (i, p) in phases.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"phase\": \"{}\", \"queries\": {}, \"qps\": {:.1}, \"ns_per_query\": {:.0}, \"bytes_out_per_query\": {:.1}, \"bytes_in_per_query\": {:.1}, \"frames_out\": {}, \"frames_in\": {}, \"overhead_ns_per_query\": {:.0}, \"overhead_pct\": {:.1} }}{}\n",
            p.name,
            p.queries,
            p.qps,
            p.ns_per_query,
            p.bytes_out_per_query,
            p.bytes_in_per_query,
            p.frames_out,
            p.frames_in,
            p.overhead_ns_per_query,
            p.overhead_pct,
            if i + 1 < phases.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_net.json", &out).expect("write BENCH_net.json");
    println!("{out}");
    for p in &phases {
        eprintln!(
            "{:>11}: {:>9.0} qps, {:>8.0} ns/query, {:>6.1}/{:>6.1} bytes out/in per query",
            p.name, p.qps, p.ns_per_query, p.bytes_out_per_query, p.bytes_in_per_query
        );
    }
}
