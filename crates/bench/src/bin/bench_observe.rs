//! Pipeline-observability harness; writes `BENCH_observe.json` (aggregated
//! [`unn::observe::PipelineMetrics`] snapshots per instance size) at the repo
//! root.
//!
//! ```sh
//! cargo run -p unn-bench --release --features observe --bin bench_observe
//! ```
//!
//! Without `--features observe` the binary still runs — the result-derived
//! fields (rounds used/total, outcomes, latency) stay live, but the deep
//! traversal counters read zero and the JSON says `"counters_enabled": false`.
//!
//! Per size `n`, two batches over a shared query set:
//!
//! * `adaptive`   — `quantify_adaptive_batch_observed` at (ε = 0.05,
//!   δ = 0.01): rounds-used histogram, ball-fold vs descent split,
//!   checkpoint count, kd/forest pruning effectiveness;
//! * `nn_nonzero` — `nn_nonzero_batch_observed`: Lemma 2.1 stage-2
//!   candidate counts and kd pruning for the nonzero-NN path.

use unn::batch::BatchOptions;
use unn::observe::{MonotonicClock, PipelineMetrics};
use unn::PnnIndex;
use unn_bench::util::{as_uncertain, random_discrete, random_queries};

const EPS: f64 = 0.05;
const DELTA: f64 = 0.01;
const QUERIES: usize = 256;

struct SizeReport {
    n: usize,
    s: usize,
    adaptive_json: String,
    nn_json: String,
}

fn run_size(n: usize) -> SizeReport {
    let side = (n as f64).sqrt() * 8.0;
    let objs = random_discrete(n, 3, side, 3.0, 2.0, 70 + n as u64);
    let points = as_uncertain(&objs);
    let queries = random_queries(QUERIES, side, 71 + n as u64);
    let idx = PnnIndex::new(points);
    let clock = MonotonicClock;
    let opts = BatchOptions::default();

    let adaptive = PipelineMetrics::new();
    idx.quantify_adaptive_batch_observed(&queries, EPS, DELTA, &opts, &adaptive, &clock);
    let adaptive = adaptive.snapshot();

    let nn = PipelineMetrics::new();
    idx.nn_nonzero_batch_observed(&queries, &opts, &nn, &clock);
    let nn = nn.snapshot();

    println!("== n = {n}: adaptive quantify (eps={EPS}, delta={DELTA}) ==");
    print!("{}", adaptive.render_text());
    println!("== n = {n}: nonzero NN ==");
    print!("{}", nn.render_text());

    SizeReport {
        n,
        s: idx.mc_rounds(),
        adaptive_json: adaptive.render_json(),
        nn_json: nn.render_json(),
    }
}

fn main() {
    let mut out = String::from("{\n  \"bench\": \"observe_pipeline\",\n");
    out.push_str(&format!(
        "  \"counters_enabled\": {},\n  \"eps\": {EPS}, \"delta\": {DELTA}, \"queries\": {QUERIES},\n",
        unn::observe::counters_enabled()
    ));
    if !unn::observe::counters_enabled() {
        println!("note: deep counters are compiled out; rerun with --features observe");
    }
    out.push_str("  \"sizes\": [\n");
    let reports: Vec<SizeReport> = [256usize, 2048].iter().map(|&n| run_size(n)).collect();
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"n\": {}, \"s\": {},\n      \"adaptive\": {},\n      \"nn_nonzero\": {} }}{}\n",
            r.n,
            r.s,
            r.adaptive_json.replace('\n', "\n      "),
            r.nn_json.replace('\n', "\n      "),
            if i + 1 == reports.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_observe.json", &out).expect("write BENCH_observe.json");
    println!("wrote BENCH_observe.json");
}
