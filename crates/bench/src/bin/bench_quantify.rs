//! Timing harness for the quantification fast path; writes
//! `BENCH_quantify.json` (median ns/query per variant) at the repo root.
//!
//! ```sh
//! cargo run -p unn-bench --release --bin bench_quantify
//! ```
//!
//! Variants at each `n`:
//!
//! * `arena_pruned`    — arena forest, Δ(q)-seeded descents (the default,
//!   batched SoA kernels);
//! * `arena_scalar`    — the same query routed through the retained scalar
//!   kernels (the differential oracle): `pruned/scalar` is the kernel
//!   speedup;
//! * `arena_unpruned`  — arena forest, `f64::INFINITY` seed;
//! * `perround_trees`  — legacy layout: one kd-tree allocation per round;
//! * `adaptive`        — early-stopped estimate at (ε = 0.05, δ = 0.01),
//!   with the mean fraction of the `s` budget it consumed.
//!
//! Two layout sweeps at `n = 4096` feed the `KdConfig` constants
//! (EXPERIMENTS.md T20):
//!
//! * `leaf_sweep` — global-ball fold latency by leaf size (picks
//!   `KdConfig::scan_heavy().leaf_size`);
//! * `bf_crossover` — flat batched scan vs default tree descent on small
//!   inputs (picks `brute_force_below`).
//!
//! The run **fails** (nonzero exit) if the batched fast path regresses
//! against the scalar oracle at `n = 4096` — the in-bench kernel gate.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::distr::UncertainPoint;
use unn::geom::Point;
use unn::quantify::{McBackend, MonteCarloIndex};
use unn::spatial::{FilterPrecision, KdConfig, KdTree};
use unn_bench::util::{as_uncertain, random_discrete, random_queries};

const S: usize = 512;
const REPS: usize = 9;

/// Median ns/query of `f` run over the query set, `REPS` repetitions.
fn median_ns_per_query(queries: &[Point], mut f: impl FnMut(Point)) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let start = Instant::now();
            for &q in queries {
                f(q);
            }
            start.elapsed().as_secs_f64() * 1e9 / queries.len() as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct SizeResult {
    n: usize,
    arena_pruned: f64,
    arena_f32: f64,
    arena_scalar: f64,
    arena_unpruned: f64,
    perround_trees: f64,
    adaptive: f64,
    adaptive_rounds_frac: f64,
}

fn run_size(n: usize) -> SizeResult {
    let side = (n as f64).sqrt() * 8.0;
    let objs = random_discrete(n, 3, side, 3.0, 2.0, 70 + n as u64);
    let points = as_uncertain(&objs);
    let queries = random_queries(128, side, 71 + n as u64);
    let mut rng = SmallRng::seed_from_u64(72);
    let mc = MonteCarloIndex::build(&points, S, McBackend::KdTree, &mut rng);
    // The f32-filtered twin: same seed, same draws, same structures — the
    // only difference is the fill-phase precision tier.
    let mut rng = SmallRng::seed_from_u64(72);
    let mc32 = MonteCarloIndex::build_with_filter(
        &points,
        S,
        McBackend::KdTree,
        &mut rng,
        FilterPrecision::F32Refined,
    );
    let mut rng = SmallRng::seed_from_u64(72);
    let per_round: Vec<KdTree> = (0..S)
        .map(|_| {
            let inst: Vec<Point> = points.iter().map(|p| p.sample(&mut rng)).collect();
            KdTree::new(&inst)
        })
        .collect();

    let mut buf = Vec::new();
    let arena_pruned = median_ns_per_query(&queries, |q| {
        mc.query_into(q, &mut buf);
        std::hint::black_box(buf.len());
    });
    let arena_f32 = median_ns_per_query(&queries, |q| {
        mc32.query_into(q, &mut buf);
        std::hint::black_box(buf.len());
    });
    // Differential checks ride along with the timing: the scalar oracle
    // AND the f32-filtered twin must reproduce the batched f64 path bit
    // for bit on every bench query.
    let (mut scalar_buf, mut f32_buf) = (Vec::new(), Vec::new());
    for &q in &queries {
        mc.query_into(q, &mut buf);
        mc.query_into_scalar(q, &mut scalar_buf);
        mc32.query_into(q, &mut f32_buf);
        assert!(
            buf.iter()
                .zip(&scalar_buf)
                .all(|(a, b)| a.to_bits() == b.to_bits())
                && buf.len() == scalar_buf.len(),
            "scalar oracle diverged from batched path at n={n}, q={q:?}"
        );
        assert!(
            buf.iter()
                .zip(&f32_buf)
                .all(|(a, b)| a.to_bits() == b.to_bits())
                && buf.len() == f32_buf.len(),
            "f32-filtered path diverged from exact f64 at n={n}, q={q:?}"
        );
    }
    let arena_scalar = median_ns_per_query(&queries, |q| {
        mc.query_into_scalar(q, &mut buf);
        std::hint::black_box(buf.len());
    });
    let arena_unpruned = median_ns_per_query(&queries, |q| {
        mc.query_into_seeded(q, f64::INFINITY, &mut buf);
        std::hint::black_box(buf.len());
    });
    let perround_trees = median_ns_per_query(&queries, |q| {
        buf.clear();
        buf.resize(n, 0.0);
        for t in &per_round {
            buf[t.nearest(q).expect("nonempty").id] += 1.0;
        }
        let w = 1.0 / S as f64;
        for v in buf.iter_mut() {
            *v *= w;
        }
        std::hint::black_box(buf.len());
    });
    let mut rounds_total = 0usize;
    let adaptive = median_ns_per_query(&queries, |q| {
        std::hint::black_box(mc.quantify_adaptive(q, 0.05, 0.01).rounds_used);
    });
    for &q in &queries {
        rounds_total += mc.quantify_adaptive(q, 0.05, 0.01).rounds_used;
    }
    SizeResult {
        n,
        arena_pruned,
        arena_f32,
        arena_scalar,
        arena_unpruned,
        perround_trees,
        adaptive,
        adaptive_rounds_frac: rounds_total as f64 / (queries.len() * S) as f64,
    }
}

/// Global-ball fold latency by leaf size at `n = 4096`: rebuilds the
/// `s·n`-sample global tree under each candidate `leaf_size` and times the
/// Δ(q)-seeded capped ball fold (the winners_into hot loop). The argmin
/// informs `KdConfig::scan_heavy`.
fn run_leaf_sweep() -> (Vec<(usize, f64)>, usize) {
    let n = 4096usize;
    let side = (n as f64).sqrt() * 8.0;
    let objs = random_discrete(n, 3, side, 3.0, 2.0, 70 + n as u64);
    let points = as_uncertain(&objs);
    let queries = random_queries(128, side, 71 + n as u64);
    let mut rng = SmallRng::seed_from_u64(72);
    let mc = MonteCarloIndex::build(&points, S, McBackend::KdTree, &mut rng);
    // Reconstruct the same s·n instantiation arena the index built (same
    // seed, same draw order).
    let mut rng = SmallRng::seed_from_u64(72);
    let mut all: Vec<Point> = Vec::with_capacity(S * n);
    for _ in 0..S {
        all.extend(points.iter().map(|p| p.sample(&mut rng)));
    }
    let seeds: Vec<f64> = queries
        .iter()
        .map(|&q| mc.prune_radius(q) * (1.0 + 1e-12))
        .collect();
    let mut sweep = Vec::new();
    for leaf in [8usize, 16, 32, 64, 128, 256, 512] {
        let tree = KdTree::with_config(
            &all,
            KdConfig {
                leaf_size: leaf,
                brute_force_below: leaf,
                ..KdConfig::default()
            },
        );
        let mut best: Vec<(f64, u32)> = Vec::new();
        let mut qi = 0usize;
        // Same magic-multiply round/object split as the real fold.
        let magic = u64::MAX / n as u64 + 1;
        let ns = median_ns_per_query(&queries, |q| {
            best.clear();
            best.resize(S, (f64::INFINITY, u32::MAX));
            let seed = seeds[qi % queries.len()];
            qi += 1;
            let complete = tree.in_disk_capped(q, seed, 32 * S, &mut |pos, d| {
                let r = ((pos as u128 * magic as u128) >> 64) as usize;
                let obj = (pos - r * n) as u32;
                let e = &mut best[r];
                if d < e.0 || (d == e.0 && obj < e.1) {
                    *e = (d, obj);
                }
            });
            std::hint::black_box(complete);
        });
        sweep.push((leaf, ns));
    }
    let chosen = sweep
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map_or(32, |&(l, _)| l);
    (sweep, chosen)
}

/// Brute-force crossover: largest input size where a single flat batched
/// leaf answers `nearest` at least as fast as the default tree descent.
/// Informs `KdConfig::brute_force_below`.
fn run_bf_crossover() -> (Vec<(usize, f64, f64)>, usize) {
    let mut rows = Vec::new();
    let mut crossover = 0usize;
    for n in [8usize, 16, 32, 64, 128, 256] {
        let side = 200.0;
        let mut rng = SmallRng::seed_from_u64(700 + n as u64);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)))
            .collect();
        let queries = random_queries(256, side, 701 + n as u64);
        let tree = KdTree::new(&pts);
        let flat = KdTree::with_config(
            &pts,
            KdConfig {
                leaf_size: n,
                brute_force_below: n,
                ..KdConfig::default()
            },
        );
        let tree_ns = median_ns_per_query(&queries, |q| {
            std::hint::black_box(tree.nearest(q).map(|nb| nb.id));
        });
        let flat_ns = median_ns_per_query(&queries, |q| {
            std::hint::black_box(flat.nearest(q).map(|nb| nb.id));
        });
        if flat_ns <= tree_ns {
            crossover = n;
        }
        rows.push((n, tree_ns, flat_ns));
    }
    (rows, crossover)
}

/// Fill-phase microbench at `n = 4096`: one flat leaf (every query scans
/// all slots in a single batch) probed with a small `in_disk` radius, so
/// the run time is dominated by the distance-fill phase rather than the
/// consumer. Returns `(f64_ns, f32_ns)` per query; the f32 tier must be
/// at least 1.2× faster (the acceptance bar checked in `main`). The visit
/// streams of both tiers are asserted bit-identical before timing.
fn run_fill_phase() -> (f64, f64) {
    let n = 4096usize;
    let side = 200.0;
    let mut rng = SmallRng::seed_from_u64(7300);
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)))
        .collect();
    let queries = random_queries(128, side, 7301);
    let flat = KdConfig {
        leaf_size: n,
        brute_force_below: n,
        ..KdConfig::default()
    };
    let t64 = KdTree::with_config(&pts, flat);
    let t32 = KdTree::with_config(&pts, flat.with_filter(FilterPrecision::F32Refined));
    // ~1–2 expected points per ball at this density: nearly every slot is
    // a fill-and-reject, the case the f32 tier accelerates.
    let r = 2.0;
    let (mut s64, mut s32) = (Vec::new(), Vec::new());
    for &q in &queries {
        s64.clear();
        s32.clear();
        t64.in_disk(q, r, &mut |i, d| s64.push((i, d.to_bits())));
        t32.in_disk(q, r, &mut |i, d| s32.push((i, d.to_bits())));
        assert_eq!(s64, s32, "f32 fill-phase visit stream diverged at {q:?}");
    }
    let mut acc = 0u64;
    let f64_ns = median_ns_per_query(&queries, |q| {
        t64.in_disk(q, r, &mut |i, _| acc ^= i as u64);
        std::hint::black_box(acc);
    });
    let f32_ns = median_ns_per_query(&queries, |q| {
        t32.in_disk(q, r, &mut |i, _| acc ^= i as u64);
        std::hint::black_box(acc);
    });
    (f64_ns, f32_ns)
}

/// Adaptive stopping on a well-separated instance (one object wins every
/// round): fraction of a `s = 4000` budget the stopper actually consumes at
/// (ε = 0.05, δ = 0.01), and the mean certified half-width.
fn run_separated() -> (usize, f64, f64) {
    let s = 4000usize;
    let points: Vec<unn::Uncertain> = (0..64)
        .map(|i| unn::Uncertain::uniform_disk(Point::new(1000.0 * i as f64, 0.0), 0.5))
        .collect();
    let mut rng = SmallRng::seed_from_u64(80);
    let mc = MonteCarloIndex::build(&points, s, McBackend::KdTree, &mut rng);
    let queries: Vec<Point> = (0..32)
        .map(|i| Point::new(1000.0 * (i % 64) as f64 + 3.0, -2.0))
        .collect();
    let (mut rounds_total, mut hw_total) = (0usize, 0.0f64);
    for &q in &queries {
        let a = mc.quantify_adaptive(q, 0.05, 0.01);
        rounds_total += a.rounds_used;
        hw_total += a.half_width;
    }
    (
        s,
        rounds_total as f64 / (queries.len() * s) as f64,
        hw_total / queries.len() as f64,
    )
}

fn main() {
    let mut out = String::from("{\n  \"bench\": \"quantify_fast_path\",\n");
    out.push_str(&format!(
        "  \"s\": {S},\n  \"unit\": \"ns_per_query_median\",\n"
    ));
    out.push_str("  \"sizes\": [\n");
    let results: Vec<SizeResult> = [64usize, 512, 4096].iter().map(|&n| run_size(n)).collect();
    for (i, r) in results.iter().enumerate() {
        println!(
            "n={:5}  arena_pruned={:.0}ns  arena_f32={:.0}ns  arena_scalar={:.0}ns  \
             arena_unpruned={:.0}ns  perround_trees={:.0}ns  adaptive={:.0}ns \
             (rounds {:.1}% of s)  speedup(perround/pruned)={:.2}x  \
             kernel(scalar/pruned)={:.2}x  f32(pruned/f32)={:.2}x",
            r.n,
            r.arena_pruned,
            r.arena_f32,
            r.arena_scalar,
            r.arena_unpruned,
            r.perround_trees,
            r.adaptive,
            100.0 * r.adaptive_rounds_frac,
            r.perround_trees / r.arena_pruned,
            r.arena_scalar / r.arena_pruned,
            r.arena_pruned / r.arena_f32
        );
        out.push_str(&format!(
            "    {{ \"n\": {}, \"arena_pruned\": {:.1}, \"arena_f32\": {:.1}, \
             \"arena_scalar\": {:.1}, \"arena_unpruned\": {:.1}, \
             \"perround_trees\": {:.1}, \"adaptive\": {:.1}, \
             \"adaptive_rounds_frac\": {:.4}, \"speedup_perround_over_pruned\": {:.3}, \
             \"speedup_scalar_over_pruned\": {:.3}, \"speedup_f64_over_f32\": {:.3} }}{}\n",
            r.n,
            r.arena_pruned,
            r.arena_f32,
            r.arena_scalar,
            r.arena_unpruned,
            r.perround_trees,
            r.adaptive,
            r.adaptive_rounds_frac,
            r.perround_trees / r.arena_pruned,
            r.arena_scalar / r.arena_pruned,
            r.arena_pruned / r.arena_f32,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");

    let (sweep, chosen_leaf) = run_leaf_sweep();
    print!("leaf sweep (n=4096 global-ball fold): ");
    for &(l, ns) in &sweep {
        print!("leaf={l}:{ns:.0}ns  ");
    }
    println!("-> chosen {chosen_leaf}");
    out.push_str("  \"leaf_sweep\": [\n");
    for (i, &(l, ns)) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"leaf_size\": {l}, \"ball_fold_ns\": {ns:.1} }}{}\n",
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"chosen_leaf_size\": {chosen_leaf},\n"));

    let (bf_rows, bf_crossover) = run_bf_crossover();
    print!("brute-force crossover: ");
    for &(n, t, f) in &bf_rows {
        print!("n={n}:tree {t:.0}ns/flat {f:.0}ns  ");
    }
    println!("-> crossover {bf_crossover}");
    out.push_str("  \"bf_crossover\": [\n");
    for (i, &(n, t, f)) in bf_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"n\": {n}, \"tree_ns\": {t:.1}, \"flat_ns\": {f:.1} }}{}\n",
            if i + 1 == bf_rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"chosen_brute_force_below\": {bf_crossover},\n"
    ));

    let (sep_s, sep_frac, sep_hw) = run_separated();
    println!(
        "separated: adaptive used {:.1}% of s={sep_s} (mean half-width {:.4} <= 0.05)",
        100.0 * sep_frac,
        sep_hw
    );
    out.push_str(&format!(
        "  \"adaptive_separated\": {{ \"s\": {sep_s}, \"eps\": 0.05, \"delta\": 0.01, \
         \"rounds_frac\": {sep_frac:.4}, \"mean_half_width\": {sep_hw:.4} }},\n"
    ));

    let (fill64, fill32) = run_fill_phase();
    let fill_speedup = fill64 / fill32;
    println!(
        "fill phase (n=4096, flat leaf): f64 {fill64:.0}ns  f32 {fill32:.0}ns  \
         ({fill_speedup:.2}x)"
    );
    out.push_str(&format!(
        "  \"fill_phase\": {{ \"n\": 4096, \"f64_ns\": {fill64:.1}, \"f32_ns\": {fill32:.1}, \
         \"speedup\": {fill_speedup:.3} }}\n}}\n"
    ));
    std::fs::write("BENCH_quantify.json", &out).expect("write BENCH_quantify.json");
    println!("wrote BENCH_quantify.json");

    // In-bench kernel acceptance gate: the batched fast path must not
    // regress against the retained scalar oracle on the headline size.
    let head = results.last().expect("sizes nonempty");
    let kernel_speedup = head.arena_scalar / head.arena_pruned;
    println!(
        "kernel gate (n={}): batched {:.0}ns vs scalar {:.0}ns ({kernel_speedup:.2}x)",
        head.n, head.arena_pruned, head.arena_scalar
    );
    assert!(
        kernel_speedup >= 0.95,
        "batched kernels regressed versus the scalar oracle at n={}: {:.0}ns vs {:.0}ns",
        head.n,
        head.arena_pruned,
        head.arena_scalar
    );
    // f32 filter acceptance bar: the half-width fill must buy at least
    // 1.2x on the fill-dominated microbench, or the tier is not paying
    // for its refinement pass.
    assert!(
        fill_speedup >= 1.2,
        "f32 fill-phase tier below the 1.2x acceptance bar at n=4096: \
         f64 {fill64:.0}ns vs f32 {fill32:.0}ns ({fill_speedup:.2}x)"
    );
}
