//! Timing harness for the quantification fast path; writes
//! `BENCH_quantify.json` (median ns/query per variant) at the repo root.
//!
//! ```sh
//! cargo run -p unn-bench --release --bin bench_quantify
//! ```
//!
//! Variants at each `n`:
//!
//! * `arena_pruned`    — arena forest, Δ(q)-seeded descents (the default);
//! * `arena_unpruned`  — arena forest, `f64::INFINITY` seed;
//! * `perround_trees`  — legacy layout: one kd-tree allocation per round;
//! * `adaptive`        — early-stopped estimate at (ε = 0.05, δ = 0.01),
//!   with the mean fraction of the `s` budget it consumed.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use unn::distr::UncertainPoint;
use unn::geom::Point;
use unn::quantify::{McBackend, MonteCarloIndex};
use unn::spatial::KdTree;
use unn_bench::util::{as_uncertain, random_discrete, random_queries};

const S: usize = 512;
const REPS: usize = 9;

/// Median ns/query of `f` run over the query set, `REPS` repetitions.
fn median_ns_per_query(queries: &[Point], mut f: impl FnMut(Point)) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let start = Instant::now();
            for &q in queries {
                f(q);
            }
            start.elapsed().as_secs_f64() * 1e9 / queries.len() as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct SizeResult {
    n: usize,
    arena_pruned: f64,
    arena_unpruned: f64,
    perround_trees: f64,
    adaptive: f64,
    adaptive_rounds_frac: f64,
}

fn run_size(n: usize) -> SizeResult {
    let side = (n as f64).sqrt() * 8.0;
    let objs = random_discrete(n, 3, side, 3.0, 2.0, 70 + n as u64);
    let points = as_uncertain(&objs);
    let queries = random_queries(128, side, 71 + n as u64);
    let mut rng = SmallRng::seed_from_u64(72);
    let mc = MonteCarloIndex::build(&points, S, McBackend::KdTree, &mut rng);
    let mut rng = SmallRng::seed_from_u64(72);
    let per_round: Vec<KdTree> = (0..S)
        .map(|_| {
            let inst: Vec<Point> = points.iter().map(|p| p.sample(&mut rng)).collect();
            KdTree::new(&inst)
        })
        .collect();

    let mut buf = Vec::new();
    let arena_pruned = median_ns_per_query(&queries, |q| {
        mc.query_into(q, &mut buf);
        std::hint::black_box(buf.len());
    });
    let arena_unpruned = median_ns_per_query(&queries, |q| {
        mc.query_into_seeded(q, f64::INFINITY, &mut buf);
        std::hint::black_box(buf.len());
    });
    let perround_trees = median_ns_per_query(&queries, |q| {
        buf.clear();
        buf.resize(n, 0.0);
        for t in &per_round {
            buf[t.nearest(q).expect("nonempty").id] += 1.0;
        }
        let w = 1.0 / S as f64;
        for v in buf.iter_mut() {
            *v *= w;
        }
        std::hint::black_box(buf.len());
    });
    let mut rounds_total = 0usize;
    let adaptive = median_ns_per_query(&queries, |q| {
        std::hint::black_box(mc.quantify_adaptive(q, 0.05, 0.01).rounds_used);
    });
    for &q in &queries {
        rounds_total += mc.quantify_adaptive(q, 0.05, 0.01).rounds_used;
    }
    SizeResult {
        n,
        arena_pruned,
        arena_unpruned,
        perround_trees,
        adaptive,
        adaptive_rounds_frac: rounds_total as f64 / (queries.len() * S) as f64,
    }
}

/// Adaptive stopping on a well-separated instance (one object wins every
/// round): fraction of a `s = 4000` budget the stopper actually consumes at
/// (ε = 0.05, δ = 0.01), and the mean certified half-width.
fn run_separated() -> (usize, f64, f64) {
    let s = 4000usize;
    let points: Vec<unn::Uncertain> = (0..64)
        .map(|i| unn::Uncertain::uniform_disk(Point::new(1000.0 * i as f64, 0.0), 0.5))
        .collect();
    let mut rng = SmallRng::seed_from_u64(80);
    let mc = MonteCarloIndex::build(&points, s, McBackend::KdTree, &mut rng);
    let queries: Vec<Point> = (0..32)
        .map(|i| Point::new(1000.0 * (i % 64) as f64 + 3.0, -2.0))
        .collect();
    let (mut rounds_total, mut hw_total) = (0usize, 0.0f64);
    for &q in &queries {
        let a = mc.quantify_adaptive(q, 0.05, 0.01);
        rounds_total += a.rounds_used;
        hw_total += a.half_width;
    }
    (
        s,
        rounds_total as f64 / (queries.len() * s) as f64,
        hw_total / queries.len() as f64,
    )
}

fn main() {
    let mut out = String::from("{\n  \"bench\": \"quantify_fast_path\",\n");
    out.push_str(&format!(
        "  \"s\": {S},\n  \"unit\": \"ns_per_query_median\",\n"
    ));
    out.push_str("  \"sizes\": [\n");
    let results: Vec<SizeResult> = [64usize, 512, 4096].iter().map(|&n| run_size(n)).collect();
    for (i, r) in results.iter().enumerate() {
        println!(
            "n={:5}  arena_pruned={:.0}ns  arena_unpruned={:.0}ns  perround_trees={:.0}ns  \
             adaptive={:.0}ns (rounds {:.1}% of s)  speedup(perround/pruned)={:.2}x",
            r.n,
            r.arena_pruned,
            r.arena_unpruned,
            r.perround_trees,
            r.adaptive,
            100.0 * r.adaptive_rounds_frac,
            r.perround_trees / r.arena_pruned
        );
        out.push_str(&format!(
            "    {{ \"n\": {}, \"arena_pruned\": {:.1}, \"arena_unpruned\": {:.1}, \
             \"perround_trees\": {:.1}, \"adaptive\": {:.1}, \
             \"adaptive_rounds_frac\": {:.4}, \"speedup_perround_over_pruned\": {:.3} }}{}\n",
            r.n,
            r.arena_pruned,
            r.arena_unpruned,
            r.perround_trees,
            r.adaptive,
            r.adaptive_rounds_frac,
            r.perround_trees / r.arena_pruned,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    let (sep_s, sep_frac, sep_hw) = run_separated();
    println!(
        "separated: adaptive used {:.1}% of s={sep_s} (mean half-width {:.4} <= 0.05)",
        100.0 * sep_frac,
        sep_hw
    );
    out.push_str(&format!(
        "  \"adaptive_separated\": {{ \"s\": {sep_s}, \"eps\": 0.05, \"delta\": 0.01, \
         \"rounds_frac\": {sep_frac:.4}, \"mean_half_width\": {sep_hw:.4} }}\n}}\n"
    ));
    std::fs::write("BENCH_quantify.json", &out).expect("write BENCH_quantify.json");
    println!("wrote BENCH_quantify.json");
}
