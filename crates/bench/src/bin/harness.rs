//! Regenerates every experiment table of EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p unn-bench --release --bin harness            # all, full scale
//! cargo run -p unn-bench --release --bin harness -- --quick # smaller sweeps
//! cargo run -p unn-bench --release --bin harness -- t7 t10  # selected tables
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { 1 } else { 2 };
    let wanted: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    for (id, f) in unn_bench::all_experiments() {
        if !wanted.is_empty() && !wanted.iter().any(|w| w.as_str() == id) {
            continue;
        }
        let start = std::time::Instant::now();
        let table = f(scale);
        println!("{}", table.render());
        println!("[{id} took {:.1}s]\n", start.elapsed().as_secs_f64());
    }
}
