//! Closed-loop load benchmark for the sharded serving tier; writes
//! `BENCH_serve.json` (sustained qps at a p99 latency bound, with
//! shed/degraded/retried accounting per phase) at the repo root.
//!
//! ```sh
//! cargo run -p unn-bench --release --bin bench_serve
//! ```
//!
//! Five phases, each a closed loop (the next batch is issued only when the
//! previous one has been answered) over the same shard set:
//!
//! * **healthy** — all shards up, exact-tier admission;
//! * **churn** — the same load while remove+insert pairs mutate the shard
//!   set between batches (each batch serves from a fresh epoch snapshot);
//! * **slow_shard** — one shard reports 5ms calls against a 1ms timeout:
//!   retries, breaker trips, and partial-coverage degraded answers;
//! * **panic_shard** — one shard panics on every query: the dispatcher
//!   isolates it, answers stay honest over the covered shards;
//! * **shed** — admission capacity forces the exact→adaptive→capped ladder
//!   and finally honest shedding.
//!
//! The run *asserts* its own contract: p99 under the bound in every phase,
//! zero sheds/faults in the healthy phases, nonzero degraded/retried/shed
//! counts where faults or pressure are injected.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::geom::Point;
use unn::observe::MonotonicClock;
use unn::serve::{
    AdmissionConfig, ChaosShard, DispatchConfig, Dispatcher, FaultKind, Outcome, Request,
    ServeConfig, ShardPolicy, ShardSet,
};
use unn::Uncertain;

const N_SHARDS: usize = 4;
const N_POINTS: usize = 2_048;
const S: usize = 192;
const BATCHES: usize = 40;
const BATCH_SIZE: usize = 32;
const CHURN_PAIRS_PER_BATCH: usize = 8;
const P99_BOUND_US: u64 = 400_000; // 400ms — a generous serving SLO.

fn serve_config() -> ServeConfig {
    ServeConfig {
        mc_rounds: S,
        ..ServeConfig::default()
    }
}

fn random_disk(rng: &mut SmallRng) -> Uncertain {
    Uncertain::uniform_disk(
        Point::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)),
        rng.random_range(0.5..2.0),
    )
}

fn build_set(rng: &mut SmallRng) -> ShardSet {
    let mut set = ShardSet::new(N_SHARDS, ShardPolicy::Hash, serve_config())
        .expect("static serve config is valid");
    for _ in 0..N_POINTS {
        set.insert(random_disk(rng));
    }
    set
}

fn batch(rng: &mut SmallRng) -> Vec<Request> {
    (0..BATCH_SIZE)
        .map(|i| {
            let q = Point::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0));
            if i % 4 == 0 {
                Request::NnNonzero(q)
            } else {
                Request::Quantify(q)
            }
        })
        .collect()
}

struct PhaseResult {
    name: &'static str,
    queries: u64,
    qps: f64,
    p50_us: u64,
    p99_us: u64,
    answered_exact: u64,
    degraded: u64,
    shed: u64,
    retries: u64,
    timeouts: u64,
    shard_panics: u64,
    breaker_trips: u64,
}

/// Drives `BATCHES` closed-loop batches through `d`, optionally churning
/// `set` and refreshing the dispatcher between batches.
fn run_phase(
    name: &'static str,
    d: &mut Dispatcher,
    set: Option<&mut ShardSet>,
    rng: &mut SmallRng,
) -> PhaseResult {
    let mut churn = set;
    let mut live: Vec<u64> = Vec::new();
    let start = Instant::now();
    let mut served = 0u64;
    for _ in 0..BATCHES {
        let reqs = batch(rng);
        let replies = d.serve(&reqs);
        assert_eq!(replies.len(), reqs.len(), "every request is answered");
        for r in &replies {
            if let Outcome::Adaptive { pi, .. } | Outcome::Capped { pi, .. } = &r.outcome {
                assert!(pi.iter().all(|p| p.is_finite()), "no NaN ever leaks");
            }
        }
        served += replies.len() as u64;
        if let Some(set) = churn.as_deref_mut() {
            if live.is_empty() {
                live = set.snapshot().live_ids().to_vec();
            }
            for _ in 0..CHURN_PAIRS_PER_BATCH {
                let k = rng.random_range(0..live.len());
                let victim = live.swap_remove(k);
                assert!(set.remove(victim));
                live.push(set.insert(random_disk(rng)));
            }
            d.refresh(&set.snapshot());
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let m = d.metrics();
    let p50 = m.query_latency.quantile_upper(0.50);
    let p99 = m.query_latency.quantile_upper(0.99);
    assert!(
        p99 <= P99_BOUND_US,
        "{name}: p99 {p99}µs exceeds the {P99_BOUND_US}µs bound"
    );
    PhaseResult {
        name,
        queries: m.queries,
        qps: served as f64 / wall,
        p50_us: p50,
        p99_us: p99,
        answered_exact: m.answered_exact,
        degraded: m.degraded,
        shed: m.shed,
        retries: m.retries,
        timeouts: m.timeouts,
        shard_panics: m.shard_panics,
        breaker_trips: m.breaker_trips,
    }
}

fn dispatcher(set: &ShardSet, cfg: DispatchConfig) -> Dispatcher {
    Dispatcher::for_snapshot(&set.snapshot(), cfg, Arc::new(MonotonicClock))
        .expect("static dispatch config is valid")
}

fn main() {
    // Injected chaos panics are caught by the dispatcher; keep their
    // backtraces off stderr so real assertion failures stay visible.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.starts_with("chaos:"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.starts_with("chaos:"))
            })
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let mut rng = SmallRng::seed_from_u64(0x5e17e);
    let mut set = build_set(&mut rng);
    let base = DispatchConfig {
        threads: Some(4),
        call_timeout_nanos: 1_000_000_000,
        ..DispatchConfig::default()
    };

    let mut phases: Vec<PhaseResult> = Vec::new();

    // Phase 1: healthy. Full coverage, nothing shed, nothing degraded.
    let mut d = dispatcher(&set, base);
    let r = run_phase("healthy", &mut d, None, &mut rng);
    assert_eq!(r.shed, 0, "healthy phase must not shed");
    assert_eq!(r.shard_panics, 0);
    phases.push(r);

    // Phase 2: churn. Same contract while the live set mutates underneath.
    let mut d = dispatcher(&set, base);
    let r = run_phase("churn", &mut d, Some(&mut set), &mut rng);
    assert_eq!(r.shed, 0, "churn alone must not shed");
    phases.push(r);

    // Phase 3: slow shard. 5ms injected latency against a 1ms timeout.
    let mut d = dispatcher(
        &set,
        DispatchConfig {
            call_timeout_nanos: 1_000_000,
            ..base
        },
    );
    d.wrap_shard(0, |inner| {
        Box::new(ChaosShard::new(inner, FaultKind::SlowBy(5_000_000)))
    });
    let r = run_phase("slow_shard", &mut d, None, &mut rng);
    assert!(r.timeouts > 0, "slow shard must time out");
    assert!(r.retries > 0, "timeouts must be retried");
    assert!(r.degraded > 0, "lost coverage must be flagged degraded");
    assert!(r.breaker_trips > 0, "consecutive timeouts must trip");
    phases.push(r);

    // Phase 4: panicking shard. Faults are isolated, never escape.
    let mut d = dispatcher(&set, base);
    d.wrap_shard(1, |inner| {
        Box::new(ChaosShard::new(inner, FaultKind::PanicOnQuery))
    });
    let r = run_phase("panic_shard", &mut d, None, &mut rng);
    assert!(r.shard_panics > 0);
    assert!(r.degraded > 0);
    phases.push(r);

    // Phase 5: admission pressure. The ladder downgrades, then sheds.
    let mut d = dispatcher(
        &set,
        DispatchConfig {
            admission: AdmissionConfig {
                work_capacity: (S as u64) * (BATCH_SIZE as u64) / 4,
                nn_cost: 8,
                capped_rounds: 64,
                feedback: None,
            },
            ..base
        },
    );
    let r = run_phase("shed", &mut d, None, &mut rng);
    assert!(r.shed > 0, "pressure must shed");
    assert!(r.degraded > 0, "the ladder must downgrade before shedding");
    phases.push(r);

    let mut out = String::from("{\n  \"bench\": \"serve\",\n");
    out.push_str(&format!(
        "  \"shards\": {N_SHARDS},\n  \"n\": {N_POINTS},\n  \"s\": {S},\n"
    ));
    out.push_str(&format!(
        "  \"batch_size\": {BATCH_SIZE},\n  \"p99_bound_us\": {P99_BOUND_US},\n"
    ));
    out.push_str(
        "  \"unit\": { \"qps\": \"queries_per_sec\", \"latency\": \"us_bucket_upper\" },\n",
    );
    out.push_str("  \"phases\": [\n");
    for (i, r) in phases.iter().enumerate() {
        println!(
            "{:>11}: {:>7.0} qps  p50 {:>7}us  p99 {:>7}us  exact {:>4}  degraded {:>4}  \
             shed {:>3}  retries {:>3}  trips {}",
            r.name,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.answered_exact,
            r.degraded,
            r.shed,
            r.retries,
            r.breaker_trips
        );
        out.push_str(&format!(
            "    {{ \"phase\": \"{}\", \"queries\": {}, \"qps\": {:.1}, \"p50_us\": {}, \
             \"p99_us\": {}, \"answered_exact\": {}, \"degraded\": {}, \"shed\": {}, \
             \"retries\": {}, \"timeouts\": {}, \"shard_panics\": {}, \"breaker_trips\": {} }}{}\n",
            r.name,
            r.queries,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.answered_exact,
            r.degraded,
            r.shed,
            r.retries,
            r.timeouts,
            r.shard_panics,
            r.breaker_trips,
            if i + 1 == phases.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_serve.json", &out).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
