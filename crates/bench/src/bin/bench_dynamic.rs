//! Churn benchmark for the dynamic index; writes `BENCH_dynamic.json`
//! (sustained update throughput and median query latency, dynamic vs
//! rebuild-from-scratch) at the repo root.
//!
//! ```sh
//! cargo run -p unn-bench --release --bin bench_dynamic
//! ```
//!
//! For each `n ∈ {256, 1024, 4096}`:
//!
//! * **updates** — mixed churn (each update pair = remove a random live
//!   point + insert a fresh one, so `n` stays constant) at two churn rates
//!   (the fraction of the live set replaced during the measurement),
//!   against the baseline that rebuilds a static [`PnnIndex`] from scratch
//!   after every update — the only option before the dynamic subsystem;
//! * **queries** — median ns/query for `NN≠0` and Monte-Carlo
//!   quantification on the churned dynamic snapshot vs the static index on
//!   the same live set, with the same per-block round count `s`.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::dynamic::{CompactionPolicy, DynamicPnnConfig, DynamicPnnIndex, FilterPrecision, PointId};
use unn::geom::Point;
use unn::{PnnConfig, PnnIndex, Uncertain};
use unn_bench::util::random_queries;

const S: usize = 192;
const QUERY_REPS: usize = 5;

fn base_config() -> PnnConfig {
    PnnConfig {
        max_mc_rounds: S,
        ..PnnConfig::default()
    }
}

fn dynamic_config() -> DynamicPnnConfig {
    DynamicPnnConfig {
        base: base_config(),
        mc_rounds: S,
        ..DynamicPnnConfig::default()
    }
}

fn random_disk(rng: &mut SmallRng, side: f64) -> Uncertain {
    Uncertain::uniform_disk(
        Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)),
        rng.random_range(0.5..2.0),
    )
}

fn median_ns_per_query(queries: &[Point], mut f: impl FnMut(Point)) -> f64 {
    let mut samples: Vec<f64> = (0..QUERY_REPS)
        .map(|_| {
            let start = Instant::now();
            for &q in queries {
                f(q);
            }
            start.elapsed().as_secs_f64() * 1e9 / queries.len() as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct ChurnResult {
    rate: f64,
    dynamic_updates_per_sec: f64,
    dynamic_updates_per_sec_f32: f64,
    rebuild_updates_per_sec: f64,
    speedup: f64,
}

/// One mixed read/write phase: `pairs` remove+insert pairs under `policy`,
/// with query batches interleaved between update strides.
struct PolicyResult {
    policy: &'static str,
    rate: f64,
    pairs: usize,
    updates_per_sec: f64,
    query_nn_nonzero_ns: f64,
    query_quantify_ns: f64,
    blocks: usize,
}

struct SizeResult {
    n: usize,
    churn: Vec<ChurnResult>,
    policies: Vec<PolicyResult>,
    q_nonzero_dynamic: f64,
    q_nonzero_dynamic_f32: f64,
    q_nonzero_static: f64,
    q_quantify_dynamic: f64,
    q_quantify_dynamic_f32: f64,
    q_quantify_static: f64,
    blocks: usize,
    merges: u64,
    compactions: u64,
}

const POLICIES: [(&str, CompactionPolicy); 3] = [
    ("logarithmic", CompactionPolicy::Logarithmic),
    ("tiered", CompactionPolicy::Tiered { max_blocks: 3 }),
    ("merge_to_one", CompactionPolicy::MergeToOne),
];

/// Runs one interleaved phase: strides of update pairs alternating with a
/// query batch on a fresh snapshot (so every batch sees the churned state,
/// block layout included). Returns sustained update throughput and the
/// median-of-batches ns/query for both read paths.
fn mixed_phase(
    index: &mut DynamicPnnIndex,
    live: &mut [PointId],
    pairs: usize,
    side: f64,
    rng: &mut SmallRng,
    queries: &[Point],
) -> (f64, f64, f64) {
    let stride = (pairs / 8).max(1);
    let mut update_secs = 0.0;
    let mut nn_samples: Vec<f64> = Vec::new();
    let mut qt_samples: Vec<f64> = Vec::new();
    let mut done = 0usize;
    while done < pairs {
        let burst = stride.min(pairs - done);
        let start = Instant::now();
        for _ in 0..burst {
            let slot = rng.random_range(0..live.len());
            assert!(index.remove(live[slot]), "mirror out of sync");
            live[slot] = index.insert(random_disk(rng, side));
        }
        update_secs += start.elapsed().as_secs_f64();
        done += burst;

        let snap = index.snapshot();
        let start = Instant::now();
        for &q in queries {
            std::hint::black_box(snap.nn_nonzero(q).len());
        }
        nn_samples.push(start.elapsed().as_secs_f64() * 1e9 / queries.len() as f64);
        let start = Instant::now();
        for &q in queries {
            std::hint::black_box(snap.quantify(q).0.len());
        }
        qt_samples.push(start.elapsed().as_secs_f64() * 1e9 / queries.len() as f64);
    }
    nn_samples.sort_by(f64::total_cmp);
    qt_samples.sort_by(f64::total_cmp);
    (
        (2 * pairs) as f64 / update_secs,
        nn_samples[nn_samples.len() / 2],
        qt_samples[qt_samples.len() / 2],
    )
}

/// The per-policy mixed read/write matrix at one size: every policy runs
/// 1% / 10% / 50% churn phases back-to-back on one index (bulk-inserted
/// bootstrap, so even `MergeToOne` starts from a single affordable build).
/// `MergeToOne` pays a full rebuild per insert, so its phases are capped to
/// a handful of pairs — the recorded `pairs` is the honest count.
fn run_policies(n: usize, side: f64, queries: &[Point]) -> Vec<PolicyResult> {
    let mut out = Vec::new();
    for (name, policy) in POLICIES {
        let mut rng = SmallRng::seed_from_u64(140 + n as u64);
        let mut index = DynamicPnnIndex::with_config(DynamicPnnConfig {
            policy,
            ..dynamic_config()
        })
        .unwrap_or_else(|e| panic!("config: {e}"));
        let points: Vec<Uncertain> = (0..n).map(|_| random_disk(&mut rng, side)).collect();
        let mut live = index.bulk_insert(points);
        for rate in [0.01f64, 0.1, 0.5] {
            let mut pairs = ((n as f64 * rate) as usize).max(8);
            if matches!(policy, CompactionPolicy::MergeToOne) {
                pairs = pairs.min(if n >= 4096 { 8 } else { 16 });
            }
            let (updates_per_sec, nn_ns, qt_ns) =
                mixed_phase(&mut index, &mut live, pairs, side, &mut rng, queries);
            out.push(PolicyResult {
                policy: name,
                rate,
                pairs,
                updates_per_sec,
                query_nn_nonzero_ns: nn_ns,
                query_quantify_ns: qt_ns,
                blocks: index.stats().blocks,
            });
        }
    }
    out
}

/// Pre-draws a churn op stream (slot to replace + replacement disk). Slot
/// choices depend only on the constant live-set length, so the same stream
/// replays verbatim into the f32-filtered twin index and both end up with
/// identical live sets and block layouts.
fn draw_ops(pairs: usize, n: usize, side: f64, rng: &mut SmallRng) -> Vec<(usize, Uncertain)> {
    (0..pairs)
        .map(|_| (rng.random_range(0..n), random_disk(rng, side)))
        .collect()
}

/// Sustained dynamic throughput: applies the pre-drawn remove+insert
/// stream (counted as `2·pairs` updates) and returns updates/sec.
fn dynamic_updates_per_sec(
    index: &mut DynamicPnnIndex,
    live: &mut [PointId],
    ops: &[(usize, Uncertain)],
) -> f64 {
    let start = Instant::now();
    for (slot, disk) in ops {
        assert!(index.remove(live[*slot]), "mirror out of sync");
        live[*slot] = index.insert(disk.clone());
    }
    (2 * ops.len()) as f64 / start.elapsed().as_secs_f64()
}

/// Baseline: every update forces a from-scratch static build (point-set
/// cloning excluded from the timer; sampling and structure construction
/// dominate regardless).
fn rebuild_updates_per_sec(points: &[Uncertain], rebuilds: usize) -> f64 {
    let copies: Vec<Vec<Uncertain>> = (0..rebuilds).map(|_| points.to_vec()).collect();
    let start = Instant::now();
    for pts in copies {
        std::hint::black_box(PnnIndex::build(pts, base_config()));
    }
    rebuilds as f64 / start.elapsed().as_secs_f64()
}

fn run_size(n: usize) -> SizeResult {
    let side = (n as f64).sqrt() * 8.0;
    let mut rng = SmallRng::seed_from_u64(90 + n as u64);
    let mut index =
        DynamicPnnIndex::with_config(dynamic_config()).unwrap_or_else(|e| panic!("config: {e}"));
    // The f32-filtered twin replays the identical op stream, so its block
    // layout, ids, and per-block Monte-Carlo draws match the f64 index —
    // any answer divergence below is a kernel bug, not bench noise.
    let mut index32 = DynamicPnnIndex::with_config(DynamicPnnConfig {
        filter: FilterPrecision::F32Refined,
        ..dynamic_config()
    })
    .unwrap_or_else(|e| panic!("config: {e}"));
    let initial: Vec<Uncertain> = (0..n).map(|_| random_disk(&mut rng, side)).collect();
    let mut live: Vec<PointId> = initial.iter().map(|p| index.insert(p.clone())).collect();
    let mut live32: Vec<PointId> = initial.into_iter().map(|p| index32.insert(p)).collect();
    assert_eq!(live, live32, "twin id allocation diverged");

    // Mixed churn at two rates; throughput is sustained (merges and
    // compactions triggered inside the timed window are paid for).
    let churn = [0.1f64, 0.5]
        .iter()
        .map(|&rate| {
            let pairs = ((n as f64 * rate) as usize).max(16);
            let ops = draw_ops(pairs, n, side, &mut rng);
            let dynamic = dynamic_updates_per_sec(&mut index, &mut live, &ops);
            let dynamic_f32 = dynamic_updates_per_sec(&mut index32, &mut live32, &ops);
            let rebuilds = if n >= 4096 { 3 } else { 5 };
            let snapshot_points: Vec<Uncertain> = index
                .snapshot()
                .live_points()
                .into_iter()
                .map(|(_, p)| p)
                .collect();
            let rebuild = rebuild_updates_per_sec(&snapshot_points, rebuilds);
            ChurnResult {
                rate,
                dynamic_updates_per_sec: dynamic,
                dynamic_updates_per_sec_f32: dynamic_f32,
                rebuild_updates_per_sec: rebuild,
                speedup: dynamic / rebuild,
            }
        })
        .collect();

    // Query latency on the churned state, dynamic vs static on the same
    // live set with the same round count.
    let snap = index.snapshot();
    let snap32 = index32.snapshot();
    let static_points: Vec<Uncertain> = snap.live_points().into_iter().map(|(_, p)| p).collect();
    let static_index = PnnIndex::build(static_points, base_config());
    let queries = random_queries(128, side, 91 + n as u64);

    // Bit-identity gate: the f32-filtered twin must answer every read path
    // exactly like the f64 index before its latency numbers count.
    for &q in &queries {
        assert_eq!(
            snap.nn_nonzero(q),
            snap32.nn_nonzero(q),
            "f32 nn_nonzero diverged at n={n}, q={q:?}"
        );
        let (pi64, m64) = snap.quantify(q);
        let (pi32, m32) = snap32.quantify(q);
        assert_eq!(m64, m32, "f32 quantify method diverged at n={n}, q={q:?}");
        let b64: Vec<u64> = pi64.iter().map(|v| v.to_bits()).collect();
        let b32: Vec<u64> = pi32.iter().map(|v| v.to_bits()).collect();
        assert_eq!(b64, b32, "f32 quantify bits diverged at n={n}, q={q:?}");
    }

    let q_nonzero_dynamic = median_ns_per_query(&queries, |q| {
        std::hint::black_box(snap.nn_nonzero(q).len());
    });
    let q_nonzero_dynamic_f32 = median_ns_per_query(&queries, |q| {
        std::hint::black_box(snap32.nn_nonzero(q).len());
    });
    let q_nonzero_static = median_ns_per_query(&queries, |q| {
        std::hint::black_box(static_index.nn_nonzero(q).len());
    });
    let q_quantify_dynamic = median_ns_per_query(&queries, |q| {
        std::hint::black_box(snap.quantify(q).0.len());
    });
    let q_quantify_dynamic_f32 = median_ns_per_query(&queries, |q| {
        std::hint::black_box(snap32.quantify(q).0.len());
    });
    let q_quantify_static = median_ns_per_query(&queries, |q| {
        std::hint::black_box(static_index.quantify(q).0.len());
    });

    let policies = run_policies(n, side, &queries);

    let stats = index.stats();
    SizeResult {
        n,
        churn,
        policies,
        q_nonzero_dynamic,
        q_nonzero_dynamic_f32,
        q_nonzero_static,
        q_quantify_dynamic,
        q_quantify_dynamic_f32,
        q_quantify_static,
        blocks: stats.blocks,
        merges: stats.merges,
        compactions: stats.compactions,
    }
}

fn main() {
    let results: Vec<SizeResult> = [256usize, 1024, 4096]
        .iter()
        .map(|&n| run_size(n))
        .collect();

    let mut out = String::from("{\n  \"bench\": \"dynamic_index\",\n");
    out.push_str(&format!("  \"s\": {S},\n"));
    out.push_str(
        "  \"unit\": { \"updates\": \"updates_per_sec\", \"query\": \"ns_per_query_median\" },\n",
    );
    out.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        println!(
            "n={:5}  blocks={} merges={} compactions={}",
            r.n, r.blocks, r.merges, r.compactions
        );
        let mut churn_json = String::new();
        for (j, c) in r.churn.iter().enumerate() {
            println!(
                "  churn {:>4.0}%: dynamic {:>10.0} upd/s (f32 {:>10.0})  rebuild {:>8.2} upd/s  \
                 speedup {:>8.1}x",
                100.0 * c.rate,
                c.dynamic_updates_per_sec,
                c.dynamic_updates_per_sec_f32,
                c.rebuild_updates_per_sec,
                c.speedup
            );
            churn_json.push_str(&format!(
                "      {{ \"rate\": {:.2}, \"dynamic_updates_per_sec\": {:.1}, \
                 \"dynamic_updates_per_sec_f32\": {:.1}, \
                 \"rebuild_updates_per_sec\": {:.3}, \"speedup\": {:.1} }}{}\n",
                c.rate,
                c.dynamic_updates_per_sec,
                c.dynamic_updates_per_sec_f32,
                c.rebuild_updates_per_sec,
                c.speedup,
                if j + 1 == r.churn.len() { "" } else { "," }
            ));
        }
        println!(
            "  query: nn_nonzero {:.0}ns (f32 {:.0}ns, static {:.0}ns)  \
             quantify {:.0}ns (f32 {:.0}ns, static {:.0}ns)",
            r.q_nonzero_dynamic,
            r.q_nonzero_dynamic_f32,
            r.q_nonzero_static,
            r.q_quantify_dynamic,
            r.q_quantify_dynamic_f32,
            r.q_quantify_static
        );
        let mut policy_json = String::new();
        for (j, p) in r.policies.iter().enumerate() {
            println!(
                "  {:>12} @ {:>3.0}%: {:>9.0} upd/s  nn_nonzero {:>8.0}ns  quantify {:>8.0}ns  \
                 ({} pairs, {} blocks)",
                p.policy,
                100.0 * p.rate,
                p.updates_per_sec,
                p.query_nn_nonzero_ns,
                p.query_quantify_ns,
                p.pairs,
                p.blocks
            );
            policy_json.push_str(&format!(
                "      {{ \"policy\": \"{}\", \"rate\": {:.2}, \"pairs\": {}, \
                 \"updates_per_sec\": {:.1}, \"query_nn_nonzero_ns\": {:.1}, \
                 \"query_quantify_ns\": {:.1}, \"blocks\": {} }}{}\n",
                p.policy,
                p.rate,
                p.pairs,
                p.updates_per_sec,
                p.query_nn_nonzero_ns,
                p.query_quantify_ns,
                p.blocks,
                if j + 1 == r.policies.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "    {{ \"n\": {}, \"blocks\": {}, \"merges\": {}, \"compactions\": {},\n      \
             \"churn\": [\n{}      ],\n      \
             \"policies\": [\n{}      ],\n      \
             \"query_nn_nonzero_dynamic\": {:.1}, \"query_nn_nonzero_dynamic_f32\": {:.1}, \
             \"query_nn_nonzero_static\": {:.1},\n      \
             \"query_quantify_dynamic\": {:.1}, \"query_quantify_dynamic_f32\": {:.1}, \
             \"query_quantify_static\": {:.1} }}{}\n",
            r.n,
            r.blocks,
            r.merges,
            r.compactions,
            churn_json,
            policy_json,
            r.q_nonzero_dynamic,
            r.q_nonzero_dynamic_f32,
            r.q_nonzero_static,
            r.q_quantify_dynamic,
            r.q_quantify_dynamic_f32,
            r.q_quantify_static,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");

    // The acceptance bar: sustained dynamic update throughput must beat
    // rebuild-per-update by >= 10x at the largest size under mixed churn.
    let largest = results.last().expect("nonempty sizes");
    let min_speedup = largest
        .churn
        .iter()
        .map(|c| c.speedup)
        .fold(f64::INFINITY, f64::min);
    println!(
        "acceptance: min speedup at n={} is {:.1}x (bar: 10x)",
        largest.n, min_speedup
    );
    assert!(
        min_speedup >= 10.0,
        "dynamic update throughput speedup {min_speedup:.1}x below the 10x bar"
    );

    // Read-path acceptance bar: at the largest size under 10% churn, the
    // best policy's NN!=0 latency must land within 3x of the static index.
    let best_nn = largest
        .policies
        .iter()
        .filter(|p| (p.rate - 0.1).abs() < 1e-9)
        .map(|p| p.query_nn_nonzero_ns)
        .fold(f64::INFINITY, f64::min);
    println!(
        "acceptance: best-policy nn_nonzero at n={} / 10% churn is {:.0}ns vs static {:.0}ns \
         ({:.2}x, bar: 3x)",
        largest.n,
        best_nn,
        largest.q_nonzero_static,
        best_nn / largest.q_nonzero_static
    );
    assert!(
        best_nn <= 3.0 * largest.q_nonzero_static,
        "best-policy nn_nonzero {best_nn:.0}ns exceeds 3x static {:.0}ns",
        largest.q_nonzero_static
    );

    std::fs::write("BENCH_dynamic.json", &out).expect("write BENCH_dynamic.json");
    println!("wrote BENCH_dynamic.json");
}
