//! # unn-bench — experiment harness for the paper reproduction
//!
//! One function per experiment table (E1–E14, see DESIGN.md §3 and
//! EXPERIMENTS.md); the `harness` binary renders them all. Criterion
//! micro-benchmarks live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments_nonzero;
pub mod experiments_quantify;
pub mod util;

pub use util::Table;

/// An experiment entry: identifier plus the table generator (taking the
/// sweep scale: 1 = quick, 2 = full).
pub type Experiment = (&'static str, fn(u32) -> Table);

/// All experiments in order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        (
            "t1",
            experiments_nonzero::t1_random_disks as fn(u32) -> Table,
        ),
        ("t2", experiments_nonzero::t2_lb_mixed),
        ("t3", experiments_nonzero::t3_lb_equal),
        ("t4", experiments_nonzero::t4_disjoint),
        ("t5", experiments_nonzero::t5_discrete),
        ("t6", experiments_nonzero::t6_construction),
        ("t7", experiments_nonzero::t7_queries),
        ("t8", experiments_quantify::t8_vpr),
        ("t9", experiments_quantify::t9_mc),
        ("t10", experiments_quantify::t10_spiral),
        ("t11", experiments_quantify::t11_adversarial),
        ("t12", experiments_quantify::t12_crossover),
        ("t13", experiments_quantify::t13_fig1),
        ("t14", experiments_quantify::t14_ablations),
        ("t15", experiments_nonzero::t15_extensions),
    ]
}
