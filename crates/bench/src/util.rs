//! Shared utilities for the experiment harness: timing, slope fitting,
//! table rendering, and workload generators.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use unn::distr::DiscreteDistribution;
use unn::geom::{Disk, Point};
use unn::Uncertain;

/// Milliseconds spent evaluating `f` (single run).
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Mean microseconds per call over `reps` calls.
pub fn time_per_call_us<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e6 / reps as f64
}

/// Least-squares slope of `ln(y)` against `ln(x)` — the growth exponent of a
/// measured complexity curve.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// A rendered experiment table.
pub struct Table {
    /// Table identifier and caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form conclusion lines (paper-vs-measured verdicts).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

/// Random disks with centers in a square and radii in `[r_lo, r_hi]`.
pub fn random_disks(n: usize, side: f64, r_lo: f64, r_hi: f64, seed: u64) -> Vec<Disk> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Disk::new(
                Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)),
                rng.random_range(r_lo..r_hi),
            )
        })
        .collect()
}

/// Random discrete uncertain points: `n` objects, `k` locations in a cluster
/// of radius `spread_geo`, weights spread over `[1, spread_w]`.
pub fn random_discrete(
    n: usize,
    k: usize,
    side: f64,
    spread_geo: f64,
    spread_w: f64,
    seed: u64,
) -> Vec<DiscreteDistribution> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let cx: f64 = rng.random_range(0.0..side);
            let cy: f64 = rng.random_range(0.0..side);
            let pts: Vec<Point> = (0..k)
                .map(|_| {
                    Point::new(
                        cx + rng.random_range(-spread_geo..spread_geo),
                        cy + rng.random_range(-spread_geo..spread_geo),
                    )
                })
                .collect();
            let ws: Vec<f64> = (0..k)
                .map(|_| rng.random_range(1.0..spread_w.max(1.0 + 1e-12)))
                .collect();
            DiscreteDistribution::new(pts, ws).expect("valid")
        })
        .collect()
}

/// Random query points in the slightly inflated workload square.
pub fn random_queries(m: usize, side: f64, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            Point::new(
                rng.random_range(-0.1 * side..1.1 * side),
                rng.random_range(-0.1 * side..1.1 * side),
            )
        })
        .collect()
}

/// Wraps discrete objects as `Uncertain`.
pub fn as_uncertain(objs: &[DiscreteDistribution]) -> Vec<Uncertain> {
    objs.iter().cloned().map(Uncertain::Discrete).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_cubic_data() {
        let pts: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, (i as f64).powi(3))).collect();
        assert!((loglog_slope(&pts) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("done");
        let s = t.render();
        assert!(s.contains("demo") && s.contains("note: done"));
    }
}
