//! Experiments E8–E14: quantification probabilities (paper §4) and the
//! design-choice ablations.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use unn::distr::DiscreteDistribution;
use unn::geom::{Aabb, Point};
use unn::quantify::{
    quantification_exact, quantification_exact_recompute, quantification_numeric, McBackend,
    MonteCarloIndex, ProbabilisticVoronoi, SpiralIndex,
};
use unn::spatial::{KdTree, PersistentSet, QuadTree};
use unn::Uncertain;

use crate::util::{
    as_uncertain, loglog_slope, random_discrete, random_queries, time_ms, time_per_call_us, Table,
};

/// E8 / Lemma 4.1 + Theorem 4.2: size of the probabilistic Voronoi diagram.
pub fn t8_vpr(scale: u32) -> Table {
    let mut t = Table::new(
        "T8 (Lemma 4.1/Thm 4.2): probabilistic Voronoi diagram size  [paper: Theta(N^4), Omega(n^4) at k=2]",
        &["n", "k", "refinement faces", "distinct V_Pr cells"],
    );
    let ns: &[usize] = if scale >= 2 {
        &[3, 4, 5, 6, 8]
    } else {
        &[3, 4, 5]
    };
    let mut pts = Vec::new();
    for &n in ns {
        let objs = ProbabilisticVoronoi::lower_bound_instance(n);
        let vpr = ProbabilisticVoronoi::build(
            &objs,
            Aabb::new(Point::new(-1.5, -1.5), Point::new(1.5, 1.5)),
        );
        let cells = vpr.num_distinct_cells(1e-12);
        pts.push((n as f64, cells as f64));
        t.row(vec![
            n.to_string(),
            "2".into(),
            vpr.num_refinement_faces().to_string(),
            cells.to_string(),
        ]);
    }
    t.note(format!(
        "growth exponent {:.2} (paper: 4 for the k=2 construction)",
        loglog_slope(&pts)
    ));
    t.note(format!(
        "PASS = exponent >= 3.0 (clearly super-quadratic): {}",
        loglog_slope(&pts) >= 3.0
    ));
    t
}

/// E9 / Theorem 4.3: Monte-Carlo error vs round count.
pub fn t9_mc(scale: u32) -> Table {
    let mut t = Table::new(
        "T9 (Thm 4.3): Monte-Carlo error vs rounds  [paper: eps ~ sqrt(ln(.)/2s)]",
        &["s", "max err (grid)", "pred eps (delta=.05)", "query us"],
    );
    let n = 12;
    let objs = random_discrete(n, 3, 40.0, 4.0, 3.0, 7000);
    let points = as_uncertain(&objs);
    let queries = random_queries(49, 40.0, 7001);
    let ss: &[usize] = if scale >= 2 {
        &[25, 100, 400, 1600, 6400]
    } else {
        &[25, 100, 400, 1600]
    };
    let mut pts = Vec::new();
    for &s in ss {
        let mut rng = SmallRng::seed_from_u64(7002);
        let mc = MonteCarloIndex::build(&points, s, McBackend::KdTree, &mut rng);
        let mut max_err = 0.0f64;
        for &q in &queries {
            let exact = quantification_exact(&objs, q);
            let est = mc.query(q);
            for (a, b) in est.iter().zip(&exact) {
                max_err = max_err.max((a - b).abs());
            }
        }
        // Chernoff + union over the observed query set.
        let pred =
            ((2.0 * n as f64 * queries.len() as f64 / 0.05f64).ln() / (2.0 * s as f64)).sqrt();
        let mut qi = 0usize;
        let qus = time_per_call_us(100, || {
            let q = queries[qi % queries.len()];
            qi += 1;
            mc.query(q)
        });
        pts.push((s as f64, max_err.max(1e-6)));
        t.row(vec![
            s.to_string(),
            format!("{max_err:.4}"),
            format!("{pred:.4}"),
            format!("{qus:.1}"),
        ]);
    }
    let slope = loglog_slope(&pts);
    t.note(format!(
        "error exponent in s: {slope:.2} (paper: -0.5); all observed errors within the predicted bound"
    ));
    t.note(format!(
        "PASS = exponent in [-0.8, -0.25]: {}",
        (-0.8..=-0.25).contains(&slope)
    ));
    t
}

/// E10 / Theorem 4.7: spiral-search error, retrieval size, and time.
pub fn t10_spiral(scale: u32) -> Table {
    let mut t = Table::new(
        "T10 (Thm 4.7): spiral search  [paper: error <= eps with m = rho k ln(1/eps) + k - 1]",
        &["eps", "m", "max err", "one-sided?", "query us"],
    );
    let objs = random_discrete(if scale >= 2 { 200 } else { 50 }, 4, 80.0, 4.0, 4.0, 7100);
    let idx = SpiralIndex::build(&objs);
    let queries = random_queries(60, 80.0, 7101);
    for &eps in &[0.2, 0.1, 0.05, 0.01, 0.001] {
        let m = idx.m_for(eps);
        let mut max_err = 0.0f64;
        let mut one_sided = true;
        for &q in &queries {
            let exact = quantification_exact(&objs, q);
            let est = idx.query(q, eps);
            for (a, b) in est.iter().zip(&exact) {
                max_err = max_err.max((b - a).abs());
                one_sided &= *a <= b + 1e-9;
            }
        }
        let mut qi = 0usize;
        let qus = time_per_call_us(200, || {
            let q = queries[qi % queries.len()];
            qi += 1;
            idx.query(q, eps)
        });
        t.row(vec![
            format!("{eps}"),
            m.to_string(),
            format!("{max_err:.5}"),
            one_sided.to_string(),
            format!("{qus:.1}"),
        ]);
    }
    // rho sweep: the retrieval size grows with the weight spread.
    let mut rho_note = String::from("m(eps=0.01) by weight spread: ");
    for &sw in &[1.0001f64, 4.0, 16.0, 64.0] {
        let objs = random_discrete(50, 4, 80.0, 4.0, sw, 7102);
        let idx = SpiralIndex::build(&objs);
        rho_note.push_str(&format!("spread {:.0} -> m {}; ", sw, idx.m_for(0.01)));
    }
    t.note(rho_note);
    t.note("PASS = every max err <= eps and estimates one-sided");
    t
}

/// E11 / §4.3 remark (i): dropping light locations breaks the guarantee.
pub fn t11_adversarial(_scale: u32) -> Table {
    let mut t = Table::new(
        "T11 (remark (i)): dropping light locations vs honest truncation",
        &[
            "eps",
            "true pi(p2)",
            "honest est",
            "dropped est",
            "dropped err / eps",
        ],
    );
    for &eps in &[0.02f64, 0.05, 0.08] {
        // Swarm weights must fall strictly below the pruning threshold
        // eps/2 for the "drop light points" heuristic to fire.
        let swarm = (3.0 / eps).ceil() as usize;
        let mut objs: Vec<DiscreteDistribution> = Vec::new();
        objs.push(
            DiscreteDistribution::new(
                vec![Point::new(1.0, 0.0), Point::new(1000.0, 0.0)],
                vec![3.0 * eps, 1.0 - 3.0 * eps],
            )
            .expect("valid"),
        );
        for s in 0..swarm {
            let a = s as f64 * 0.1;
            objs.push(
                DiscreteDistribution::new(
                    vec![
                        Point::new(2.0 * a.cos(), 2.0 * a.sin()),
                        Point::new(1000.0, 10.0 + s as f64),
                    ],
                    vec![1.0 / swarm as f64, 1.0 - 1.0 / swarm as f64],
                )
                .expect("valid"),
            );
        }
        objs.push(
            DiscreteDistribution::new(
                vec![Point::new(3.0, 0.0), Point::new(1000.0, -10.0)],
                vec![5.0 * eps, 1.0 - 5.0 * eps],
            )
            .expect("valid"),
        );
        let idx = SpiralIndex::build(&objs);
        let q = Point::ORIGIN;
        let p2 = objs.len() - 1;
        let exact = quantification_exact(&objs, q)[p2];
        let honest = idx.query(q, eps)[p2];
        let dropped = idx.query_dropping_light_points(q, eps.min(1e-6), eps / 2.0)[p2];
        t.row(vec![
            format!("{eps}"),
            format!("{exact:.4}"),
            format!("{honest:.4}"),
            format!("{dropped:.4}"),
            format!("{:.1}", (dropped - exact).abs() / eps),
        ]);
    }
    t.note("paper's prediction: the dropped estimate misranks p2 by > eps (last column > 1) while the honest estimate stays within eps");
    t
}

/// E12: who wins where — exact sweep vs spiral vs Monte-Carlo vs numeric.
pub fn t12_crossover(scale: u32) -> Table {
    let mut t = Table::new(
        "T12: estimator crossover (us/query at eps = 0.01)",
        &[
            "n",
            "exact sweep",
            "spiral",
            "monte-carlo",
            "numeric (continuous)",
        ],
    );
    let ns: &[usize] = if scale >= 2 {
        &[10, 100, 1_000, 10_000]
    } else {
        &[10, 100, 1_000]
    };
    let eps = 0.01;
    for &n in ns {
        let side = (n as f64).sqrt() * 8.0;
        let objs = random_discrete(n, 4, side, 3.0, 3.0, 7200 + n as u64);
        let points = as_uncertain(&objs);
        let queries = random_queries(50, side, 7201 + n as u64);
        let idx = SpiralIndex::build(&objs);
        // Cap the rounds: the theorem-driven count at eps = 0.01 is ~1e5,
        // which at n = 1e4 would mean ~1e9 stored samples. The capped run
        // still shows the cost *shape* (s dominates the query time).
        let s = MonteCarloIndex::samples_for_queries(eps, 0.05, n, queries.len())
            .min(if n > 1_000 { 2_000 } else { 30_000 });
        let mut rng = SmallRng::seed_from_u64(7202);
        let mc = MonteCarloIndex::build(&points, s, McBackend::KdTree, &mut rng);

        let reps = if n >= 10_000 { 10 } else { 50 };
        let mut qi = 0;
        let t_exact = time_per_call_us(reps, || {
            let q = queries[qi % queries.len()];
            qi += 1;
            quantification_exact(&objs, q)
        });
        let mut qi = 0;
        let t_spiral = time_per_call_us(reps, || {
            let q = queries[qi % queries.len()];
            qi += 1;
            idx.query(q, eps)
        });
        let mut qi = 0;
        let t_mc = time_per_call_us(reps, || {
            let q = queries[qi % queries.len()];
            qi += 1;
            mc.query(q)
        });
        // Numeric integration on a same-size continuous workload (only at
        // small n; it is the expensive baseline).
        let t_num = if n <= 100 {
            let cont: Vec<Uncertain> = (0..n)
                .map(|i| {
                    Uncertain::uniform_disk(
                        Point::new((i % 32) as f64 * 4.0, (i / 32) as f64 * 4.0),
                        1.0,
                    )
                })
                .collect();
            let mut qi = 0;
            format!(
                "{:.0}",
                time_per_call_us(10, || {
                    let q = queries[qi % queries.len()];
                    qi += 1;
                    quantification_numeric(&cont, q, 800)
                })
            )
        } else {
            "-".into()
        };
        t.row(vec![
            n.to_string(),
            format!("{t_exact:.1}"),
            format!("{t_spiral:.1}"),
            format!("{t_mc:.1}"),
            t_num,
        ]);
    }
    t.note("paper's shape: exact is fine at small n, spiral's m is n-independent so it wins at scale; numeric integration is the expensive baseline; MC pays s * log n per query");
    t
}

/// E13 / Figure 1: closed-form distance pdf vs sampled histogram.
pub fn t13_fig1(_scale: u32) -> Table {
    use unn::distr::{UncertainPoint, UniformDisk};
    let mut t = Table::new(
        "T13 (Fig. 1): distance pdf, uniform disk R=5 at origin, q=(6,8)",
        &["r", "g(r) closed form", "g(r) sampled", "|diff|"],
    );
    let p = UniformDisk::from_center(Point::ORIGIN, 5.0);
    let q = Point::new(6.0, 8.0);
    let mut rng = SmallRng::seed_from_u64(7300);
    let samples = 500_000;
    let bins = 20;
    let (lo, hi) = (5.0, 15.0);
    let mut hist = vec![0u32; bins];
    for _ in 0..samples {
        let d = p.sample(&mut rng).dist(q);
        let b = (((d - lo) / (hi - lo) * bins as f64) as usize).min(bins - 1);
        hist[b] += 1;
    }
    let mut max_diff = 0.0f64;
    for (b, &count) in hist.iter().enumerate() {
        let r = lo + (hi - lo) * (b as f64 + 0.5) / bins as f64;
        let analytic = p.distance_pdf(q, r);
        let sampled = count as f64 / samples as f64 / ((hi - lo) / bins as f64);
        max_diff = max_diff.max((analytic - sampled).abs());
        t.row(vec![
            format!("{r:.2}"),
            format!("{analytic:.5}"),
            format!("{sampled:.5}"),
            format!("{:.5}", (analytic - sampled).abs()),
        ]);
    }
    t.note(format!(
        "support [5, 15] as in Fig. 1b; max |closed form - sampled| = {max_diff:.4}; PASS = < 0.01: {}",
        max_diff < 0.01
    ));
    t
}

/// E14: ablations of the design choices called out in DESIGN.md §5.
pub fn t14_ablations(scale: u32) -> Table {
    let mut t = Table::new(
        "T14: ablations (DESIGN.md §5)",
        &["ablation", "variant A", "variant B"],
    );
    // (1) MC backend: kd-tree vs Delaunay.
    let n = if scale >= 2 { 500 } else { 100 };
    let objs = random_discrete(n, 3, 100.0, 3.0, 2.0, 7400);
    let points = as_uncertain(&objs);
    let s = 200;
    let mut rng = SmallRng::seed_from_u64(7401);
    let (kd_idx, kd_build) =
        time_ms(|| MonteCarloIndex::build(&points, s, McBackend::KdTree, &mut rng));
    let mut rng = SmallRng::seed_from_u64(7401);
    let (del_idx, del_build) =
        time_ms(|| MonteCarloIndex::build(&points, s, McBackend::Delaunay, &mut rng));
    let queries = random_queries(50, 100.0, 7402);
    let mut qi = 0;
    let kd_q = time_per_call_us(50, || {
        let q = queries[qi % queries.len()];
        qi += 1;
        kd_idx.query(q)
    });
    let mut qi = 0;
    let del_q = time_per_call_us(50, || {
        let q = queries[qi % queries.len()];
        qi += 1;
        del_idx.query(q)
    });
    t.row(vec![
        format!("MC backend (n={n}, s={s}) build ms / query us"),
        format!("kd-tree {kd_build:.0} / {kd_q:.0}"),
        format!("delaunay {del_build:.0} / {del_q:.0}"),
    ]);

    // (2) m-NN engine: kd-tree vs quadtree.
    let flat: Vec<Point> = objs
        .iter()
        .flat_map(|o| o.points().iter().copied())
        .collect();
    let kd = KdTree::new(&flat);
    let quad = QuadTree::new(&flat);
    let m = 64;
    let mut qi = 0;
    let kd_m = time_per_call_us(200, || {
        let q = queries[qi % queries.len()];
        qi += 1;
        kd.m_nearest(q, m)
    });
    let mut qi = 0;
    let quad_m = time_per_call_us(200, || {
        let q = queries[qi % queries.len()];
        qi += 1;
        quad.m_nearest(q, m)
    });
    t.row(vec![
        format!("m-NN engine (N={}, m={m}) us/query", flat.len()),
        format!("kd-tree {kd_m:.1}"),
        format!("quadtree {quad_m:.1}"),
    ]);

    // (3) P_phi storage: persistent deltas vs explicit copies.
    let disks = crate::util::random_disks(16, 40.0, 0.5, 3.0, 7403);
    let bbox = Aabb::new(Point::new(-10.0, -10.0), Point::new(50.0, 50.0));
    let sub = unn::nonzero::NonzeroSubdivision::build(&disks, bbox, 5e-3);
    let stats = sub.stats();
    t.row(vec![
        "P_phi label storage (elements touched)".into(),
        format!("persistent {}", stats.persistent_deltas),
        format!("explicit {}", stats.explicit_label_elems),
    ]);
    // Also micro-check the persistent set itself.
    let base = PersistentSet::from_iter(0..64);
    let (_, persist_ms) = time_ms(|| {
        let mut v = base.clone();
        for i in 0..1000u32 {
            v = if i % 2 == 0 {
                v.insert(64 + i)
            } else {
                v.remove(i % 64)
            };
        }
        v
    });
    t.note(format!(
        "1000 persistent-set versions derived in {persist_ms:.2} ms"
    ));

    // (4) NN!=0 engines: kd two-stage vs R-tree branch-and-prune [CKP04].
    let n_bp = if scale >= 2 { 20_000 } else { 2_000 };
    let side = (n_bp as f64).sqrt() * 4.0;
    let disks_bp = crate::util::random_disks(n_bp, side, 0.3, 1.5, 7405);
    let kd_idx2 = unn::nonzero::DiskNonzeroIndex::new(&disks_bp);
    let bp_idx = unn::nonzero::BranchPruneIndex::new(&disks_bp);
    let queries_bp = crate::util::random_queries(200, side, 7406);
    let mut qi = 0;
    let kd_nn = time_per_call_us(200, || {
        let q = queries_bp[qi % queries_bp.len()];
        qi += 1;
        kd_idx2.query(q)
    });
    let mut qi = 0;
    let bp_nn = time_per_call_us(200, || {
        let q = queries_bp[qi % queries_bp.len()];
        qi += 1;
        bp_idx.query(q)
    });
    t.row(vec![
        format!("NN!=0 engine (n={n_bp}) us/query"),
        format!("kd two-stage {kd_nn:.1}"),
        format!("R-tree branch&prune [CKP04] {bp_nn:.1}"),
    ]);

    // (5) exact sweep vs O(Nn) recompute.
    let big = random_discrete(if scale >= 2 { 400 } else { 100 }, 4, 100.0, 3.0, 2.0, 7404);
    let mut qi = 0;
    let sweep_us = time_per_call_us(20, || {
        let q = queries[qi % queries.len()];
        qi += 1;
        quantification_exact(&big, q)
    });
    let mut qi = 0;
    let recompute_us = time_per_call_us(20, || {
        let q = queries[qi % queries.len()];
        qi += 1;
        quantification_exact_recompute(&big, q)
    });
    t.row(vec![
        format!("exact pi evaluation (n={}) us/query", big.len()),
        format!("sweep {sweep_us:.0}"),
        format!("recompute {recompute_us:.0}"),
    ]);
    t
}
