//! Criterion benches: design-choice ablations (E14, DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use unn::geom::Point;
use unn::quantify::{
    quantification_exact, quantification_exact_recompute, McBackend, MonteCarloIndex,
    SpiralBackend, SpiralIndex,
};
use unn::spatial::{KdTree, QuadTree, UniformGrid};
use unn_bench::util::{as_uncertain, random_discrete, random_queries};

fn bench_mc_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_mc_backend");
    g.sample_size(10);
    let objs = random_discrete(500, 3, 150.0, 3.0, 2.0, 70);
    let points = as_uncertain(&objs);
    for backend in [McBackend::KdTree, McBackend::Delaunay] {
        let name = format!("{backend:?}");
        g.bench_with_input(BenchmarkId::new("build_s100", &name), &backend, |b, &bk| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(71);
                black_box(MonteCarloIndex::build(&points, 100, bk, &mut rng))
            })
        });
        let mut rng = SmallRng::seed_from_u64(71);
        let mc = MonteCarloIndex::build(&points, 100, backend, &mut rng);
        let queries = random_queries(64, 150.0, 72);
        let mut qi = 0usize;
        g.bench_with_input(BenchmarkId::new("query_s100", &name), &backend, |b, _| {
            b.iter(|| {
                let q = queries[qi % queries.len()];
                qi += 1;
                black_box(mc.query(q))
            })
        });
    }
    g.finish();
}

fn bench_mnn_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_mnn_engine");
    let objs = random_discrete(2_000, 4, 300.0, 2.0, 2.0, 73);
    let flat: Vec<Point> = objs
        .iter()
        .flat_map(|o| o.points().iter().copied())
        .collect();
    let kd = KdTree::new(&flat);
    let quad = QuadTree::new(&flat);
    let grid = UniformGrid::auto(&flat);
    let queries = random_queries(64, 300.0, 74);
    let m = 128;
    let mut qi = 0usize;
    g.bench_function("kdtree_m128", |b| {
        b.iter(|| {
            let q = queries[qi % queries.len()];
            qi += 1;
            black_box(kd.m_nearest(q, m))
        })
    });
    let mut qi = 0usize;
    g.bench_function("quadtree_m128", |b| {
        b.iter(|| {
            let q = queries[qi % queries.len()];
            qi += 1;
            black_box(quad.m_nearest(q, m))
        })
    });
    // Grid: plain NN comparison point.
    let mut qi = 0usize;
    g.bench_function("grid_nn", |b| {
        b.iter(|| {
            let q = queries[qi % queries.len()];
            qi += 1;
            black_box(grid.nearest(q))
        })
    });
    g.finish();
}

fn bench_spiral_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_spiral_backend");
    let objs = random_discrete(5_000, 4, 500.0, 2.0, 3.0, 75);
    let idx = SpiralIndex::build(&objs);
    let queries = random_queries(64, 500.0, 76);
    for backend in [SpiralBackend::KdTree, SpiralBackend::QuadTree] {
        let mut qi = 0usize;
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{backend:?}")),
            &backend,
            |b, &bk| {
                b.iter(|| {
                    let q = queries[qi % queries.len()];
                    qi += 1;
                    black_box(idx.query_with(q, 0.01, bk))
                })
            },
        );
    }
    g.finish();
}

fn bench_sweep_vs_recompute(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_exact_sweep");
    let objs = random_discrete(500, 4, 150.0, 3.0, 2.0, 77);
    let queries = random_queries(64, 150.0, 78);
    let mut qi = 0usize;
    g.bench_function("sweep", |b| {
        b.iter(|| {
            let q = queries[qi % queries.len()];
            qi += 1;
            black_box(quantification_exact(&objs, q))
        })
    });
    let mut qi = 0usize;
    g.bench_function("recompute", |b| {
        b.iter(|| {
            let q = queries[qi % queries.len()];
            qi += 1;
            black_box(quantification_exact_recompute(&objs, q))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_mc_backends,
    bench_mnn_engines,
    bench_spiral_backends,
    bench_sweep_vs_recompute
);
criterion_main!(benches);
