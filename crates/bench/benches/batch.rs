//! Criterion benches: parallel batch query engine scaling at 1/2/4/8
//! worker threads against the sequential loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use unn::batch::BatchOptions;
use unn::PnnIndex;
use unn_bench::util::{as_uncertain, random_discrete, random_queries};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_nn_nonzero_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_nn_nonzero");
    g.sample_size(10);
    let n = 2_000usize;
    let side = (n as f64).sqrt() * 8.0;
    let objs = random_discrete(n, 3, side, 3.0, 2.0, 70);
    let idx = PnnIndex::new(as_uncertain(&objs));
    let queries = random_queries(2_048, side, 71);
    g.bench_function("sequential", |b| {
        b.iter(|| {
            black_box(
                queries
                    .iter()
                    .map(|&q| idx.nn_nonzero(q))
                    .collect::<Vec<_>>(),
            )
        })
    });
    for t in THREADS {
        let opts = BatchOptions::with_threads(t);
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |b, _| {
            b.iter(|| black_box(idx.nn_nonzero_batch_with(&queries, &opts)))
        });
    }
    g.finish();
}

fn bench_quantify_exact_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_quantify_exact");
    g.sample_size(10);
    let n = 400usize;
    let side = (n as f64).sqrt() * 8.0;
    let objs = random_discrete(n, 4, side, 3.0, 2.0, 72);
    let idx = PnnIndex::new(as_uncertain(&objs));
    let queries = random_queries(256, side, 73);
    g.bench_function("sequential", |b| {
        b.iter(|| {
            black_box(
                queries
                    .iter()
                    .map(|&q| idx.quantify_exact(q).0)
                    .collect::<Vec<_>>(),
            )
        })
    });
    for t in THREADS {
        let opts = BatchOptions::with_threads(t);
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |b, _| {
            b.iter(|| black_box(idx.quantify_exact_batch_with(&queries, &opts).0))
        });
    }
    g.finish();
}

fn bench_quantify_fresh_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_quantify_fresh");
    g.sample_size(10);
    let objs = random_discrete(200, 3, 120.0, 3.0, 2.0, 74);
    let idx = PnnIndex::new(as_uncertain(&objs));
    let queries = random_queries(256, 120.0, 75);
    for t in THREADS {
        let opts = BatchOptions::with_threads(t);
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |b, _| {
            b.iter(|| black_box(idx.quantify_fresh_batch_with(&queries, 64, &opts)))
        });
    }
    g.finish();
}

fn bench_isolated_batch_overhead(c: &mut Criterion) {
    // The cost of per-query panic isolation (`catch_unwind` per slot plus
    // the Result wrapping) relative to the raw batch on the same queries.
    let mut g = c.benchmark_group("batch_isolated_overhead");
    g.sample_size(10);
    let n = 2_000usize;
    let side = (n as f64).sqrt() * 8.0;
    let objs = random_discrete(n, 3, side, 3.0, 2.0, 76);
    let idx = PnnIndex::new(as_uncertain(&objs));
    let queries = random_queries(2_048, side, 77);
    for t in [1usize, 4] {
        let opts = BatchOptions::with_threads(t);
        g.bench_with_input(BenchmarkId::new("raw", t), &t, |b, _| {
            b.iter(|| black_box(idx.nn_nonzero_batch_with(&queries, &opts)))
        });
        g.bench_with_input(BenchmarkId::new("isolated", t), &t, |b, _| {
            b.iter(|| black_box(idx.nn_nonzero_batch_isolated_with(&queries, &opts)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_nn_nonzero_batch,
    bench_quantify_exact_batch,
    bench_quantify_fresh_batch,
    bench_isolated_batch_overhead
);
criterion_main!(benches);
