//! Criterion benches: expected-distance NN (part-I criterion) and the
//! certified expected-Voronoi quadtree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use unn::geom::{Aabb, Point};
use unn::{ExpectedNnIndex, ExpectedVoronoi, Uncertain};
use unn_bench::util::{as_uncertain, random_discrete, random_queries};

fn workload(n: usize, seed: u64) -> (Vec<Uncertain>, f64) {
    let side = (n as f64).sqrt() * 6.0;
    (
        as_uncertain(&random_discrete(n, 4, side, 2.0, 2.0, seed)),
        side,
    )
}

fn bench_expected_nn(c: &mut Criterion) {
    let mut g = c.benchmark_group("expected_nn");
    for n in [100usize, 1_000, 10_000] {
        let (points, side) = workload(n, 80 + n as u64);
        let idx = ExpectedNnIndex::build(&points);
        let queries = random_queries(128, side, 81 + n as u64);
        let mut qi = 0usize;
        g.bench_with_input(BenchmarkId::new("branch_bound", n), &n, |b, _| {
            b.iter(|| {
                let q = queries[qi % queries.len()];
                qi += 1;
                black_box(idx.expected_nn(q))
            })
        });
        if n <= 1_000 {
            let mut qi = 0usize;
            g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| {
                    let q = queries[qi % queries.len()];
                    qi += 1;
                    black_box(idx.expected_nn_naive(q))
                })
            });
        }
    }
    g.finish();
}

fn bench_evd(c: &mut Criterion) {
    let mut g = c.benchmark_group("expected_voronoi");
    g.sample_size(10);
    let (points, side) = workload(200, 90);
    let bbox = Aabb::new(Point::new(0.0, 0.0), Point::new(side, side));
    g.bench_function("build_n200", |b| {
        b.iter(|| black_box(ExpectedVoronoi::build(&points, bbox, side / 256.0)))
    });
    let evd = ExpectedVoronoi::build(&points, bbox, side / 256.0);
    let queries = random_queries(128, side, 91);
    let mut qi = 0usize;
    g.bench_function("query_n200", |b| {
        b.iter(|| {
            let q = queries[qi % queries.len()];
            qi += 1;
            black_box(evd.query(q))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_expected_nn, bench_evd);
criterion_main!(benches);
