//! Criterion benches: construction of the paper's structures (E6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use unn::geom::{Aabb, Point};
use unn::nonzero::{nonzero_vertices, GammaCurve, NonzeroSubdivision};
use unn_bench::util::random_disks;

fn bench_gamma(c: &mut Criterion) {
    let mut g = c.benchmark_group("gamma_envelope");
    for n in [16usize, 64, 256] {
        let disks = random_disks(n, 100.0, 0.5, 3.0, 42 + n as u64);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| GammaCurve::build(black_box(&disks), 0))
        });
    }
    g.finish();
}

fn bench_vertex_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("vertex_enumeration");
    g.sample_size(10);
    for n in [8usize, 16, 32] {
        let disks = random_disks(n, 50.0, 0.5, 3.0, 43 + n as u64);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| nonzero_vertices(black_box(&disks), 1e-9))
        });
    }
    g.finish();
}

fn bench_subdivision(c: &mut Criterion) {
    let mut g = c.benchmark_group("subdivision_build");
    g.sample_size(10);
    let bbox = Aabb::new(Point::new(-20.0, -20.0), Point::new(70.0, 70.0));
    for n in [8usize, 16, 24] {
        let disks = random_disks(n, 50.0, 0.5, 3.0, 44 + n as u64);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| NonzeroSubdivision::build(black_box(&disks), bbox, 5e-3))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_gamma,
    bench_vertex_enumeration,
    bench_subdivision
);
criterion_main!(benches);
