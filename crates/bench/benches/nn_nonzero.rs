//! Criterion benches: NN!=0 query structures (E7, Thm 2.11/3.1/3.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use unn::geom::{Aabb, Point};
use unn::nonzero::{DiscreteNonzeroIndex, DiskNonzeroIndex, NonzeroSubdivision};
use unn_bench::util::{random_discrete, random_disks, random_queries};

fn bench_two_stage_vs_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("nn_nonzero_disks");
    for n in [1_000usize, 10_000, 100_000] {
        let side = (n as f64).sqrt() * 4.0;
        let disks = random_disks(n, side, 0.5, 2.0, 50 + n as u64);
        let idx = DiskNonzeroIndex::new(&disks);
        let queries = random_queries(256, side, 51 + n as u64);
        let mut qi = 0usize;
        g.bench_with_input(BenchmarkId::new("two_stage", n), &n, |b, _| {
            b.iter(|| {
                let q = queries[qi % queries.len()];
                qi += 1;
                black_box(idx.query(q))
            })
        });
        if n <= 10_000 {
            let mut qi = 0usize;
            g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| {
                    let q = queries[qi % queries.len()];
                    qi += 1;
                    black_box(idx.query_naive(q))
                })
            });
        }
    }
    g.finish();
}

fn bench_discrete_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("nn_nonzero_discrete");
    for n in [1_000usize, 10_000] {
        let side = (n as f64).sqrt() * 4.0;
        let objs = random_discrete(n, 4, side, 1.5, 2.0, 52 + n as u64);
        let idx = DiscreteNonzeroIndex::from_distributions(&objs);
        let queries = random_queries(256, side, 53 + n as u64);
        let mut qi = 0usize;
        g.bench_with_input(BenchmarkId::new("two_stage", n), &n, |b, _| {
            b.iter(|| {
                let q = queries[qi % queries.len()];
                qi += 1;
                black_box(idx.query(q))
            })
        });
    }
    g.finish();
}

fn bench_point_location(c: &mut Criterion) {
    let mut g = c.benchmark_group("nn_nonzero_point_location");
    let bbox = Aabb::new(Point::new(-20.0, -20.0), Point::new(70.0, 70.0));
    for n in [8usize, 16, 24] {
        let disks = random_disks(n, 50.0, 0.5, 2.5, 54 + n as u64);
        let sub = NonzeroSubdivision::build(&disks, bbox, 5e-3);
        let queries = random_queries(256, 50.0, 55 + n as u64);
        let mut qi = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let q = queries[qi % queries.len()];
                qi += 1;
                black_box(sub.query(q))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_two_stage_vs_naive,
    bench_discrete_queries,
    bench_point_location
);
criterion_main!(benches);
