//! Criterion benches: instrumentation overhead guard. The observed batch
//! entry points against their plain counterparts at the default feature set
//! (counter hooks compiled to empty inline fns — the pair must be within
//! noise) and, when built `--features observe`, the live-counter cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use unn::batch::BatchOptions;
use unn::observe::{NullClock, PipelineMetrics};
use unn::PnnIndex;
use unn_bench::util::{as_uncertain, random_discrete, random_queries};

fn bench_nn_nonzero_observed(c: &mut Criterion) {
    let mut g = c.benchmark_group("observe_nn_nonzero");
    g.sample_size(10);
    let n = 2_000usize;
    let side = (n as f64).sqrt() * 8.0;
    let objs = random_discrete(n, 3, side, 3.0, 2.0, 70);
    let idx = PnnIndex::new(as_uncertain(&objs));
    let queries = random_queries(2_048, side, 71);
    let opts = BatchOptions::with_threads(4);
    g.bench_function("plain", |b| {
        b.iter(|| black_box(idx.nn_nonzero_batch_with(&queries, &opts)))
    });
    g.bench_function("observed", |b| {
        b.iter(|| {
            let metrics = PipelineMetrics::new();
            black_box(idx.nn_nonzero_batch_observed(&queries, &opts, &metrics, &NullClock))
        })
    });
    g.finish();
}

fn bench_quantify_adaptive_observed(c: &mut Criterion) {
    let mut g = c.benchmark_group("observe_quantify_adaptive");
    g.sample_size(10);
    let n = 512usize;
    let side = (n as f64).sqrt() * 8.0;
    let objs = random_discrete(n, 3, side, 3.0, 2.0, 72);
    let idx = PnnIndex::new(as_uncertain(&objs));
    let queries = random_queries(256, side, 73);
    let opts = BatchOptions::with_threads(4);
    g.bench_function("plain", |b| {
        b.iter(|| black_box(idx.quantify_adaptive_batch_with(&queries, 0.05, 0.01, &opts)))
    });
    g.bench_function("observed", |b| {
        b.iter(|| {
            let metrics = PipelineMetrics::new();
            black_box(idx.quantify_adaptive_batch_observed(
                &queries, 0.05, 0.01, &opts, &metrics, &NullClock,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_nn_nonzero_observed,
    bench_quantify_adaptive_observed
);
criterion_main!(benches);
