//! Criterion benches: quantification estimators (E9, E10, E12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use unn::quantify::{
    quantification_exact, quantification_numeric, McBackend, MonteCarloIndex, SpiralIndex,
};
use unn_bench::util::{as_uncertain, random_discrete, random_queries};

fn bench_exact_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantify_exact_sweep");
    for n in [100usize, 1_000, 10_000] {
        let side = (n as f64).sqrt() * 8.0;
        let objs = random_discrete(n, 4, side, 3.0, 3.0, 60 + n as u64);
        let queries = random_queries(64, side, 61 + n as u64);
        let mut qi = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let q = queries[qi % queries.len()];
                qi += 1;
                black_box(quantification_exact(&objs, q))
            })
        });
    }
    g.finish();
}

fn bench_spiral(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantify_spiral");
    let n = 10_000usize;
    let side = (n as f64).sqrt() * 8.0;
    let objs = random_discrete(n, 4, side, 3.0, 3.0, 62);
    let idx = SpiralIndex::build(&objs);
    let queries = random_queries(64, side, 63);
    for eps in [0.1f64, 0.01, 0.001] {
        let mut qi = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &e| {
            b.iter(|| {
                let q = queries[qi % queries.len()];
                qi += 1;
                black_box(idx.query(q, e))
            })
        });
    }
    g.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantify_monte_carlo");
    let objs = random_discrete(1_000, 3, 200.0, 3.0, 2.0, 64);
    let points = as_uncertain(&objs);
    let queries = random_queries(64, 200.0, 65);
    for s in [100usize, 400, 1600] {
        let mut rng = SmallRng::seed_from_u64(66);
        let mc = MonteCarloIndex::build(&points, s, McBackend::KdTree, &mut rng);
        let mut qi = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, _| {
            b.iter(|| {
                let q = queries[qi % queries.len()];
                qi += 1;
                black_box(mc.query(q))
            })
        });
    }
    g.finish();
}

fn bench_numeric(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantify_numeric_baseline");
    g.sample_size(10);
    let objs = random_discrete(50, 3, 50.0, 3.0, 2.0, 67);
    let points = as_uncertain(&objs);
    let queries = random_queries(16, 50.0, 68);
    for steps in [200usize, 2000] {
        let mut qi = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &st| {
            b.iter(|| {
                let q = queries[qi % queries.len()];
                qi += 1;
                black_box(quantification_numeric(&points, q, st))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_exact_sweep,
    bench_spiral,
    bench_monte_carlo,
    bench_numeric
);
criterion_main!(benches);
