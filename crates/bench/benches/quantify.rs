//! Criterion benches: quantification estimators (E9, E10, E12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use unn::distr::UncertainPoint;
use unn::quantify::{
    quantification_exact, quantification_numeric, McBackend, MonteCarloIndex, SpiralIndex,
};
use unn::spatial::KdTree;
use unn_bench::util::{as_uncertain, random_discrete, random_queries};

fn bench_exact_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantify_exact_sweep");
    for n in [100usize, 1_000, 10_000] {
        let side = (n as f64).sqrt() * 8.0;
        let objs = random_discrete(n, 4, side, 3.0, 3.0, 60 + n as u64);
        let queries = random_queries(64, side, 61 + n as u64);
        let mut qi = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let q = queries[qi % queries.len()];
                qi += 1;
                black_box(quantification_exact(&objs, q))
            })
        });
    }
    g.finish();
}

fn bench_spiral(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantify_spiral");
    let n = 10_000usize;
    let side = (n as f64).sqrt() * 8.0;
    let objs = random_discrete(n, 4, side, 3.0, 3.0, 62);
    let idx = SpiralIndex::build(&objs);
    let queries = random_queries(64, side, 63);
    for eps in [0.1f64, 0.01, 0.001] {
        let mut qi = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &e| {
            b.iter(|| {
                let q = queries[qi % queries.len()];
                qi += 1;
                black_box(idx.query(q, e))
            })
        });
    }
    g.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantify_monte_carlo");
    let objs = random_discrete(1_000, 3, 200.0, 3.0, 2.0, 64);
    let points = as_uncertain(&objs);
    let queries = random_queries(64, 200.0, 65);
    for s in [100usize, 400, 1600] {
        let mut rng = SmallRng::seed_from_u64(66);
        let mc = MonteCarloIndex::build(&points, s, McBackend::KdTree, &mut rng);
        let mut qi = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, _| {
            b.iter(|| {
                let q = queries[qi % queries.len()];
                qi += 1;
                black_box(mc.query(q))
            })
        });
    }
    g.finish();
}

/// The PR-2 fast path ablation: Δ(q)-pruned arena descent vs the unpruned
/// arena vs the legacy one-kd-tree-per-round layout, plus the adaptive
/// stopper against the same fixed-`s` budget.
fn bench_quantify_fast_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantify_fast_path");
    let s = 512usize;
    for n in [64usize, 512, 4096] {
        let side = (n as f64).sqrt() * 8.0;
        let objs = random_discrete(n, 3, side, 3.0, 2.0, 70 + n as u64);
        let points = as_uncertain(&objs);
        let queries = random_queries(64, side, 71 + n as u64);
        let mut rng = SmallRng::seed_from_u64(72);
        let mc = MonteCarloIndex::build(&points, s, McBackend::KdTree, &mut rng);
        // Legacy layout: one independently allocated kd-tree per round.
        let mut rng = SmallRng::seed_from_u64(72);
        let per_round: Vec<KdTree> = (0..s)
            .map(|_| {
                let inst: Vec<_> = points.iter().map(|p| p.sample(&mut rng)).collect();
                KdTree::new(&inst)
            })
            .collect();

        let mut buf = Vec::new();
        let mut qi = 0usize;
        g.bench_with_input(BenchmarkId::new("arena_pruned", n), &n, |b, _| {
            b.iter(|| {
                let q = queries[qi % queries.len()];
                qi += 1;
                mc.query_into(q, &mut buf);
                black_box(buf.len())
            })
        });
        let mut qi = 0usize;
        g.bench_with_input(BenchmarkId::new("arena_unpruned", n), &n, |b, _| {
            b.iter(|| {
                let q = queries[qi % queries.len()];
                qi += 1;
                mc.query_into_seeded(q, f64::INFINITY, &mut buf);
                black_box(buf.len())
            })
        });
        let mut qi = 0usize;
        g.bench_with_input(BenchmarkId::new("perround_trees", n), &n, |b, _| {
            b.iter(|| {
                let q = queries[qi % queries.len()];
                qi += 1;
                buf.clear();
                buf.resize(n, 0.0);
                for t in &per_round {
                    buf[t.nearest(q).expect("nonempty").id] += 1.0;
                }
                let w = 1.0 / s as f64;
                for v in buf.iter_mut() {
                    *v *= w;
                }
                black_box(buf.len())
            })
        });
        let mut qi = 0usize;
        g.bench_with_input(BenchmarkId::new("adaptive", n), &n, |b, _| {
            b.iter(|| {
                let q = queries[qi % queries.len()];
                qi += 1;
                black_box(mc.quantify_adaptive(q, 0.05, 0.01).rounds_used)
            })
        });
    }
    g.finish();
}

fn bench_numeric(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantify_numeric_baseline");
    g.sample_size(10);
    let objs = random_discrete(50, 3, 50.0, 3.0, 2.0, 67);
    let points = as_uncertain(&objs);
    let queries = random_queries(16, 50.0, 68);
    for steps in [200usize, 2000] {
        let mut qi = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &st| {
            b.iter(|| {
                let q = queries[qi % queries.len()];
                qi += 1;
                black_box(quantification_numeric(&points, q, st))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_exact_sweep,
    bench_spiral,
    bench_monte_carlo,
    bench_quantify_fast_path,
    bench_numeric
);
criterion_main!(benches);
