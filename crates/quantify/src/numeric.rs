//! Numeric integration of Eq. 1 — the `[CKP04]` baseline for continuous
//! distributions.
//!
//! ```text
//!   π_i(q) = ∫ g_{q,i}(r) · Π_{j≠i} (1 - G_{q,j}(r)) dr
//! ```
//!
//! evaluated as a Riemann–Stieltjes sum against the cdf `G_{q,i}`:
//! `π_i ≈ Σ_t S_i(r̄_t) · (G_{q,i}(r_{t+1}) - G_{q,i}(r_t))`, which avoids
//! needing the pdf explicitly (only cdfs are in the [`UncertainPoint`]
//! interface). The grid spans `[δ_i(q), min(Δ_i(q), max_j cutoff)]` where
//! the survival product vanishes. This is exactly the "expensive numerical
//! integration" the paper contrasts its structures against; experiment E12
//! measures the cost gap.

use unn_distr::{Uncertain, UncertainPoint};
use unn_geom::Point;

/// Approximates all `π_i(q)` by numeric integration with `steps` grid cells
/// per object (error `O(1/steps)`).
pub fn quantification_numeric(points: &[Uncertain], q: Point, steps: usize) -> Vec<f64> {
    assert!(steps >= 2);
    let n = points.len();
    let mut pi = vec![0.0; n];
    if n == 0 {
        return pi;
    }
    // The survival product is zero beyond the smallest max-distance over the
    // *other* objects; integrate only where mass can exist.
    let caps: Vec<f64> = points.iter().map(|p| p.max_dist(q)).collect();
    for i in 0..n {
        let lo = points[i].min_dist(q);
        let cutoff = caps
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &c)| c)
            .fold(f64::INFINITY, f64::min);
        let hi = caps[i].min(cutoff.max(lo));
        if hi <= lo {
            // Either certain winner (everything else farther than delta_i
            // can't be: cutoff <= lo means some other object is always
            // closer)… the mass in [lo, lo] is G(lo) which for continuous
            // models is 0; handle the atom for discrete-in-disguise models.
            let atom = points[i].distance_cdf(q, lo);
            if atom > 0.0 {
                let mut survive = 1.0;
                for (j, p) in points.iter().enumerate() {
                    if j != i {
                        survive *= 1.0 - p.distance_cdf(q, lo);
                    }
                }
                pi[i] = atom * survive;
            }
            continue;
        }
        let mut acc = 0.0;
        // An atom exactly at δ_i (always present for discrete models) must
        // be credited explicitly — it sits on the integration boundary.
        let mut g_prev = points[i].distance_cdf(q, lo);
        if g_prev > 0.0 {
            let mut survive = 1.0;
            for (j, p) in points.iter().enumerate() {
                if j != i {
                    survive *= 1.0 - p.distance_cdf(q, lo);
                    if survive == 0.0 {
                        break;
                    }
                }
            }
            acc += g_prev * survive;
        }
        for t in 0..steps {
            let r1 = lo + (hi - lo) * (t + 1) as f64 / steps as f64;
            let rm = lo + (hi - lo) * (t as f64 + 0.5) / steps as f64;
            let g_next = points[i].distance_cdf(q, r1);
            let dg = g_next - g_prev;
            if dg > 0.0 {
                let mut survive = 1.0;
                for (j, p) in points.iter().enumerate() {
                    if j != i {
                        survive *= 1.0 - p.distance_cdf(q, rm);
                        if survive == 0.0 {
                            break;
                        }
                    }
                }
                acc += dg * survive;
            }
            g_prev = g_next;
        }
        pi[i] = acc;
    }
    pi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::quantification_exact;
    use crate::montecarlo::{McBackend, MonteCarloIndex};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use unn_distr::DiscreteDistribution;

    #[test]
    fn matches_exact_on_discrete() {
        let objs: Vec<DiscreteDistribution> = vec![
            DiscreteDistribution::new(
                vec![Point::new(1.0, 0.0), Point::new(4.0, 0.0)],
                vec![0.3, 0.7],
            )
            .unwrap(),
            DiscreteDistribution::new(
                vec![Point::new(2.0, 0.0), Point::new(3.0, 0.0)],
                vec![0.5, 0.5],
            )
            .unwrap(),
        ];
        let points: Vec<Uncertain> = objs.iter().cloned().map(Uncertain::Discrete).collect();
        let q = Point::ORIGIN;
        let want = quantification_exact(&objs, q);
        let got = quantification_numeric(&points, q, 4000);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 0.01, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn symmetric_disks_split_evenly() {
        let points = vec![
            Uncertain::uniform_disk(Point::new(-5.0, 0.0), 2.0),
            Uncertain::uniform_disk(Point::new(5.0, 0.0), 2.0),
        ];
        let pi = quantification_numeric(&points, Point::ORIGIN, 2000);
        assert!((pi[0] - 0.5).abs() < 1e-3, "{pi:?}");
        assert!((pi[1] - 0.5).abs() < 1e-3);
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3);
    }

    #[test]
    fn dominated_point_gets_zero() {
        // A disk strictly farther than another in every instantiation.
        let points = vec![
            Uncertain::uniform_disk(Point::new(1.0, 0.0), 0.5),
            Uncertain::uniform_disk(Point::new(20.0, 0.0), 0.5),
        ];
        let pi = quantification_numeric(&points, Point::ORIGIN, 500);
        assert!((pi[0] - 1.0).abs() < 1e-6);
        assert_eq!(pi[1], 0.0);
    }

    #[test]
    fn agrees_with_monte_carlo_on_mixed_models() {
        let points = vec![
            Uncertain::uniform_disk(Point::new(-3.0, 1.0), 1.5),
            Uncertain::uniform_disk(Point::new(3.0, -1.0), 2.0),
            Uncertain::Gaussian(unn_distr::TruncatedGaussian::with_sigmas(
                Point::new(0.0, 4.0),
                0.8,
                3.0,
            )),
        ];
        let q = Point::new(0.3, 0.2);
        let numeric = quantification_numeric(&points, q, 3000);
        let mut rng = SmallRng::seed_from_u64(180);
        let mc = MonteCarloIndex::build(&points, 60_000, McBackend::KdTree, &mut rng);
        let sampled = mc.query(q);
        for (i, (a, b)) in numeric.iter().zip(&sampled).enumerate() {
            assert!((a - b).abs() < 0.01, "i={i}: numeric={a} mc={b}");
        }
        let sum: f64 = numeric.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum = {sum}");
    }
}
