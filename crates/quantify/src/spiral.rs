//! Spiral search: deterministic ε-approximate quantification (paper §4.3).
//!
//! Retrieve the `m(ρ,ε) = ρk·ln(1/ε) + k − 1` locations of `S = ∪P_i`
//! nearest to `q` and evaluate Eq. 10/11 on that prefix only. Lemma 4.6
//! proves the one-sided guarantee `π̂_i(q) ≤ π_i(q) ≤ π̂_i(q) + ε` where `ρ`
//! is the *spread* of location probabilities (Eq. 9): truncated locations
//! have survival products bounded by `e^{-m'/ρk} ≤ ε`.
//!
//! The m-NN retrieval uses a kd-tree bounded-heap search (or the quadtree
//! branch-and-bound of remark (ii) — both substitutions for the galactic
//! `[AC09]` structure are benchmarked in E14).

use unn_distr::DiscreteDistribution;
use unn_geom::Point;
use unn_spatial::{KdTree, QuadTree};

/// m-NN retrieval engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpiralBackend {
    /// Kd-tree bounded-heap m-NN (default).
    KdTree,
    /// PR-quadtree branch-and-bound (paper remark (ii), `[Har11]`).
    QuadTree,
}

/// Deterministic ε-approximate quantification via truncated sweep.
///
/// ```
/// use unn_distr::DiscreteDistribution;
/// use unn_geom::Point;
/// use unn_quantify::SpiralIndex;
///
/// let objects = vec![
///     DiscreteDistribution::uniform(vec![Point::new(1.0, 0.0), Point::new(3.0, 0.0)]).unwrap(),
///     DiscreteDistribution::uniform(vec![Point::new(2.0, 0.0), Point::new(4.0, 0.0)]).unwrap(),
/// ];
/// let idx = SpiralIndex::build(&objects);
/// let pi = idx.query(Point::new(0.0, 0.0), 0.01);
/// // P_0 is nearer with probability 3/4 (enumerate the four instantiations).
/// assert!((pi[0] - 0.75).abs() <= 0.01);
/// ```
pub struct SpiralIndex {
    kd: KdTree,
    quad: QuadTree,
    /// Owner object of each flat location.
    owner: Vec<u32>,
    /// Location probability of each flat location.
    weight: Vec<f64>,
    n: usize,
    k_max: usize,
    rho: f64,
}

impl SpiralIndex {
    /// Builds the index over discrete uncertain points.
    pub fn build(objects: &[DiscreteDistribution]) -> Self {
        let mut pts = Vec::new();
        let mut owner = Vec::new();
        let mut weight = Vec::new();
        let mut k_max = 1usize;
        let mut wmin = f64::INFINITY;
        let mut wmax = 0.0f64;
        for (i, obj) in objects.iter().enumerate() {
            k_max = k_max.max(obj.len());
            for (p, &w) in obj.points().iter().zip(obj.weights()) {
                pts.push(*p);
                owner.push(i as u32);
                weight.push(w);
                wmin = wmin.min(w);
                wmax = wmax.max(w);
            }
        }
        let rho = if pts.is_empty() { 1.0 } else { wmax / wmin };
        SpiralIndex {
            kd: KdTree::new(&pts),
            quad: QuadTree::new(&pts),
            owner,
            weight,
            n: objects.len(),
            k_max,
            rho,
        }
    }

    /// Number of uncertain points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for an empty index.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The spread `ρ` of location probabilities (Eq. 9).
    pub fn spread(&self) -> f64 {
        self.rho
    }

    /// The paper's truncation size `m(ρ, ε) = ⌈ρk·ln(1/ε)⌉ + k − 1`.
    pub fn m_for(&self, eps: f64) -> usize {
        assert!(eps > 0.0 && eps < 1.0);
        let m = self.rho * self.k_max as f64 * (1.0 / eps).ln();
        (m.ceil() as usize + self.k_max).saturating_sub(1).max(1)
    }

    /// ε-approximate quantification probabilities: a dense vector `π̂` with
    /// `π̂_i ≤ π_i ≤ π̂_i + ε` for every `i` (Lemma 4.6). Implicit zeros for
    /// objects with no retrieved location.
    pub fn query(&self, q: Point, eps: f64) -> Vec<f64> {
        self.query_with(q, eps, SpiralBackend::KdTree)
    }

    /// Same, selecting the retrieval backend.
    pub fn query_with(&self, q: Point, eps: f64, backend: SpiralBackend) -> Vec<f64> {
        let m = self.m_for(eps);
        let retrieved: Vec<(usize, f64)> = match backend {
            SpiralBackend::KdTree => self
                .kd
                .m_nearest(q, m)
                .into_iter()
                .map(|nb| (nb.id, nb.dist))
                .collect(),
            SpiralBackend::QuadTree => self.quad.m_nearest(q, m),
        };
        self.sweep(&retrieved)
    }

    /// Evaluates the truncated Eq. 10/11 on an already-sorted retrieved
    /// prefix of `(location id, distance)`.
    fn sweep(&self, retrieved: &[(usize, f64)]) -> Vec<f64> {
        let mut pi = vec![0.0; self.n];
        // Accumulated retrieved weight per object (the \bar P_j of the
        // paper; may be < 1).
        let mut rem = vec![1.0f64; self.n];
        let mut log_p = 0.0f64;
        let mut zeros = 0usize;

        let len = retrieved.len();
        let mut idx = 0;
        while idx < len {
            let d = retrieved[idx].1;
            let mut end = idx;
            while end < len && retrieved[end].1 == d {
                end += 1;
            }
            for &(loc, _) in &retrieved[idx..end] {
                let j = self.owner[loc] as usize;
                let old = rem[j];
                let new = (old - self.weight[loc]).max(0.0);
                if old > 0.0 {
                    log_p -= old.ln();
                } else {
                    zeros -= 1;
                }
                if new > 0.0 {
                    log_p += new.ln();
                } else {
                    zeros += 1;
                }
                rem[j] = new;
            }
            for &(loc, _) in &retrieved[idx..end] {
                let j = self.owner[loc] as usize;
                let contrib = if rem[j] > 0.0 {
                    if zeros == 0 {
                        (log_p - rem[j].ln()).exp()
                    } else {
                        0.0
                    }
                } else if zeros == 1 {
                    log_p.exp()
                } else {
                    0.0
                };
                pi[j] += self.weight[loc] * contrib;
            }
            idx = end;
        }
        pi
    }

    /// The failure mode of remark (i): evaluates the sweep after *dropping*
    /// every location with weight below `w_min` — used by experiment E11 to
    /// demonstrate that this seemingly-safe pruning breaks the ε-guarantee.
    pub fn query_dropping_light_points(&self, q: Point, eps: f64, w_min: f64) -> Vec<f64> {
        let m = self.m_for(eps);
        // Retrieve as usual, then drop light locations.
        let retrieved: Vec<(usize, f64)> = self
            .kd
            .m_nearest(q, m)
            .into_iter()
            .map(|nb| (nb.id, nb.dist))
            .filter(|&(loc, _)| self.weight[loc] >= w_min)
            .collect();
        self.sweep(&retrieved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::quantification_exact;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_objects(n: usize, k: usize, seed: u64, spread: f64) -> Vec<DiscreteDistribution> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let cx: f64 = rng.random_range(-20.0..20.0);
                let cy: f64 = rng.random_range(-20.0..20.0);
                let pts: Vec<Point> = (0..k)
                    .map(|_| {
                        Point::new(
                            cx + rng.random_range(-4.0..4.0),
                            cy + rng.random_range(-4.0..4.0),
                        )
                    })
                    .collect();
                let ws: Vec<f64> = (0..k).map(|_| rng.random_range(1.0..spread)).collect();
                DiscreteDistribution::new(pts, ws).unwrap()
            })
            .collect()
    }

    #[test]
    fn one_sided_eps_guarantee() {
        // Lemma 4.6: pi_hat <= pi <= pi_hat + eps, for every object.
        for seed in 150..154 {
            let objs = random_objects(12, 3, seed, 3.0);
            let idx = SpiralIndex::build(&objs);
            let mut rng = SmallRng::seed_from_u64(seed + 500);
            for &eps in &[0.2, 0.05, 0.01] {
                for _ in 0..25 {
                    let q =
                        Point::new(rng.random_range(-30.0..30.0), rng.random_range(-30.0..30.0));
                    let approx = idx.query(q, eps);
                    let exact = quantification_exact(&objs, q);
                    for i in 0..objs.len() {
                        assert!(
                            approx[i] <= exact[i] + 1e-9,
                            "overestimate: i={i} {} > {}",
                            approx[i],
                            exact[i]
                        );
                        assert!(
                            exact[i] <= approx[i] + eps + 1e-9,
                            "error > eps: i={i} exact={} approx={} eps={eps}",
                            exact[i],
                            approx[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn full_retrieval_is_exact() {
        // When m >= N the sweep must equal the exact computation.
        let objs = random_objects(6, 3, 160, 2.0);
        let idx = SpiralIndex::build(&objs);
        let q = Point::new(3.0, -2.0);
        // eps small enough that m >= N = 18.
        let eps = 1e-9;
        assert!(idx.m_for(eps) >= 18);
        let approx = idx.query(q, eps);
        let exact = quantification_exact(&objs, q);
        for (a, e) in approx.iter().zip(&exact) {
            assert!((a - e).abs() < 1e-9, "{a} vs {e}");
        }
    }

    #[test]
    fn backends_identical() {
        let objs = random_objects(10, 4, 161, 4.0);
        let idx = SpiralIndex::build(&objs);
        let mut rng = SmallRng::seed_from_u64(162);
        for _ in 0..50 {
            let q = Point::new(rng.random_range(-30.0..30.0), rng.random_range(-30.0..30.0));
            let a = idx.query_with(q, 0.05, SpiralBackend::KdTree);
            let b = idx.query_with(q, 0.05, SpiralBackend::QuadTree);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn m_formula_matches_paper() {
        // m(rho, eps) = rho * k * ln(1/eps) + k - 1 (up to ceiling).
        let objs = random_objects(5, 4, 163, 1.0 + 1e-9); // uniform weights
        let idx = SpiralIndex::build(&objs);
        assert!((idx.spread() - 1.0).abs() < 0.2);
        let m = idx.m_for(0.1);
        let expect = idx.spread() * 4.0 * (10.0f64).ln() + 3.0;
        assert!(
            (m as f64 - expect).abs() <= 2.0,
            "m = {m}, expected ≈ {expect}"
        );
        // Monotone in 1/eps.
        assert!(idx.m_for(0.01) > idx.m_for(0.1));
    }

    #[test]
    fn remark_i_adversarial_example() {
        // The paper's remark (i): dropping locations with weight < eps/k
        // can distort other probabilities by more than eps. Construction:
        // p1 (w = 3eps) closest; then n/2 points from distinct objects with
        // w = 2/n each; then p2 (w = 5eps). True pi(p2) < 2eps but dropping
        // the light points inflates it past 4eps.
        let eps = 0.05;
        let half_n = 50usize;
        let mut objs = Vec::new();
        // Object 0: p1 near q, rest of its mass far away.
        objs.push(
            DiscreteDistribution::new(
                vec![Point::new(1.0, 0.0), Point::new(1000.0, 0.0)],
                vec![3.0 * eps, 1.0 - 3.0 * eps],
            )
            .unwrap(),
        );
        // Light objects: one location at distance ~2, mass 2/n; rest far.
        for t in 0..half_n {
            let angle = t as f64 * 0.1;
            objs.push(
                DiscreteDistribution::new(
                    vec![
                        Point::new(2.0 * angle.cos(), 2.0 * angle.sin()),
                        Point::new(1000.0, 10.0 + t as f64),
                    ],
                    vec![1.0 / half_n as f64, 1.0 - 1.0 / half_n as f64],
                )
                .unwrap(),
            );
        }
        // Object with p2 at distance 3, weight 5 eps.
        objs.push(
            DiscreteDistribution::new(
                vec![Point::new(3.0, 0.0), Point::new(1000.0, -10.0)],
                vec![5.0 * eps, 1.0 - 5.0 * eps],
            )
            .unwrap(),
        );
        let q = Point::ORIGIN;
        let idx = SpiralIndex::build(&objs);
        let exact = quantification_exact(&objs, q);
        let p2 = objs.len() - 1;
        // Dropping light points (w < eps/k = eps/2) breaks the guarantee...
        let dropped = idx.query_dropping_light_points(q, 1e-6, eps / 2.0);
        let err_dropped = (dropped[p2] - exact[p2]).abs();
        assert!(
            err_dropped > eps,
            "dropping light points should break eps: err = {err_dropped}"
        );
        // ...while honest spiral search does not.
        let honest = idx.query(q, eps);
        assert!((honest[p2] - exact[p2]).abs() <= eps + 1e-9);
    }
}
