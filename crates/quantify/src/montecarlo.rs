//! The Monte-Carlo quantification structure (paper §4.2).
//!
//! Preprocessing draws `s` *instantiations* of the uncertain set — one
//! location per uncertain point — and indexes each for nearest-neighbor
//! queries. A query finds the NN owner in every instantiation and estimates
//! `π̂_i(q) = c_i / s`. The Chernoff–Hoeffding bound (Eq. 6) plus a union
//! bound over the `O(N⁴)` cells of the probabilistic Voronoi diagram
//! (Lemma 4.1) gives Theorem 4.3:
//! `s = (1/2ε²)·ln(2n|Q|/δ)` rounds suffice for `|π̂_i − π_i| ≤ ε`
//! everywhere, with probability `≥ 1 − δ`. Continuous distributions reduce
//! to the discrete case by Theorem 4.5's sampling argument (Lemma 4.4).
//!
//! The paper prescribes "Voronoi diagram + point location" per round; the
//! default backend here is a kd-tree per round, with the Delaunay-based
//! nearest-site structure available for the E14 ablation.

use rand::Rng;
use unn_distr::{Uncertain, UncertainPoint};
use unn_geom::Point;
use unn_spatial::KdTree;
use unn_voronoi::Delaunay;

/// Per-round nearest-neighbor backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum McBackend {
    /// Kd-tree per instantiation (default).
    KdTree,
    /// Delaunay triangulation per instantiation (the paper's Voronoi
    /// point-location narrative).
    Delaunay,
}

enum RoundIndex {
    Kd(KdTree),
    Del(Delaunay),
}

impl RoundIndex {
    fn nearest(&self, q: Point) -> usize {
        match self {
            RoundIndex::Kd(t) => t.nearest(q).expect("nonempty round").id,
            RoundIndex::Del(d) => d.nearest(q).expect("nonempty round").0,
        }
    }

    fn k_nearest(&self, q: Point, k: usize) -> Vec<usize> {
        match self {
            RoundIndex::Kd(t) => t.m_nearest(q, k).into_iter().map(|nb| nb.id).collect(),
            RoundIndex::Del(d) => d.m_nearest(q, k).into_iter().map(|(i, _)| i).collect(),
        }
    }
}

/// Monte-Carlo estimator of all quantification probabilities.
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use unn_distr::Uncertain;
/// use unn_geom::Point;
/// use unn_quantify::{McBackend, MonteCarloIndex};
///
/// let points = vec![
///     Uncertain::uniform_disk(Point::new(-5.0, 0.0), 1.0),
///     Uncertain::uniform_disk(Point::new(5.0, 0.0), 1.0),
/// ];
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mc = MonteCarloIndex::build(&points, 2000, McBackend::KdTree, &mut rng);
/// let pi = mc.query(Point::new(0.0, 0.0)); // symmetric: both ~1/2
/// assert!((pi[0] - 0.5).abs() < 0.1);
/// ```
pub struct MonteCarloIndex {
    rounds: Vec<RoundIndex>,
    n: usize,
}

impl MonteCarloIndex {
    /// Builds the structure with `s` instantiations of `points`.
    pub fn build(points: &[Uncertain], s: usize, backend: McBackend, rng: &mut dyn Rng) -> Self {
        assert!(s > 0, "need at least one round");
        let n = points.len();
        let mut rounds = Vec::with_capacity(s);
        for _ in 0..s {
            let insts: Vec<Point> = points.iter().map(|p| p.sample(rng)).collect();
            rounds.push(match backend {
                McBackend::KdTree => RoundIndex::Kd(KdTree::new(&insts)),
                McBackend::Delaunay => RoundIndex::Del(Delaunay::new(&insts)),
            });
        }
        MonteCarloIndex { rounds, n }
    }

    /// Number of rounds `s`.
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Number of uncertain points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no uncertain points were indexed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Estimates `π̂_i(q)` for all `i`; at most `s` entries are nonzero.
    ///
    /// Returns a dense vector (callers wanting sparse output use
    /// [`MonteCarloIndex::query_sparse`]).
    pub fn query(&self, q: Point) -> Vec<f64> {
        let mut pi = Vec::new();
        self.query_into(q, &mut pi);
        pi
    }

    /// [`MonteCarloIndex::query`] into a caller-provided buffer (cleared and
    /// resized to `len()`): batch loops reuse one buffer per worker.
    pub fn query_into(&self, q: Point, pi: &mut Vec<f64>) {
        pi.clear();
        pi.resize(self.n, 0.0);
        if self.n == 0 {
            return;
        }
        let w = 1.0 / self.rounds.len() as f64;
        for r in &self.rounds {
            pi[r.nearest(q)] += w;
        }
    }

    /// Sparse estimate: `(object, π̂)` pairs for objects that won at least
    /// one round, sorted by decreasing probability.
    pub fn query_sparse(&self, q: Point) -> Vec<(usize, f64)> {
        let pi = self.query(q);
        let mut out: Vec<(usize, f64)> = pi
            .into_iter()
            .enumerate()
            .filter(|&(_, p)| p > 0.0)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Estimates the k-NN *membership* probabilities: `π̂_i^{(k)}(q)` is the
    /// fraction of instantiations in which `P_i` is among the `k` nearest.
    /// Same Chernoff bound per entry as [`MonteCarloIndex::query`].
    pub fn query_knn(&self, q: Point, k: usize) -> Vec<f64> {
        let mut pi = vec![0.0; self.n];
        if self.n == 0 || k == 0 {
            return pi;
        }
        let w = 1.0 / self.rounds.len() as f64;
        for r in &self.rounds {
            for i in r.k_nearest(q, k) {
                pi[i] += w;
            }
        }
        pi
    }

    /// Theorem 4.3's round count for accuracy `eps` and failure probability
    /// `delta`, with `|Q| = O((nk)⁴)` cells from Lemma 4.1.
    ///
    /// `s = (1/2ε²) · ln(2n|Q|/δ)` with `|Q| = (nk)⁴` (constant 1).
    pub fn samples_for(eps: f64, delta: f64, n: usize, k: usize) -> usize {
        assert!(eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0);
        let nn = (n.max(1) as f64) * (k.max(1) as f64);
        let q_cells = nn.powi(4);
        let s = (1.0 / (2.0 * eps * eps)) * (2.0 * n.max(1) as f64 * q_cells / delta).ln();
        s.ceil().max(1.0) as usize
    }

    /// The *per-query* round count: if only `m` query points will ever be
    /// asked (instead of uniform-over-the-plane accuracy), the union bound
    /// shrinks to `s = (1/2ε²) ln(2nm/δ)`.
    pub fn samples_for_queries(eps: f64, delta: f64, n: usize, m: usize) -> usize {
        assert!(eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0);
        let s = (1.0 / (2.0 * eps * eps)) * (2.0 * n.max(1) as f64 * m.max(1) as f64 / delta).ln();
        s.ceil().max(1.0) as usize
    }
}

/// One-shot Monte-Carlo estimate with *fresh* instantiations drawn from
/// `rng` at query time (no prebuilt rounds).
///
/// Same estimator as [`MonteCarloIndex::query`] — `π̂_i = c_i / s` with the
/// identical Chernoff–Hoeffding accuracy per Eq. 6 — but the randomness is
/// supplied per call instead of being frozen at build time, so estimates
/// from independent RNG streams are statistically independent. This is the
/// primitive behind the batch layer's deterministic per-query streams
/// (`unn::batch`): seeding `rng` as a pure function of `(seed, query_index)`
/// makes the result reproducible regardless of thread scheduling.
///
/// Each round scans all `n` points once (`O(s·n·k̄)` with `k̄` the mean
/// sample cost); building a per-round tree is only worth it when the same
/// instantiations serve many queries, which is exactly what
/// [`MonteCarloIndex`] is for.
pub fn quantification_monte_carlo(
    points: &[Uncertain],
    q: Point,
    s: usize,
    rng: &mut dyn Rng,
) -> Vec<f64> {
    let mut pi = Vec::new();
    quantification_monte_carlo_into(points, q, s, rng, &mut pi);
    pi
}

/// [`quantification_monte_carlo`] into a caller-provided buffer (cleared
/// and resized to `points.len()`).
pub fn quantification_monte_carlo_into(
    points: &[Uncertain],
    q: Point,
    s: usize,
    rng: &mut dyn Rng,
    pi: &mut Vec<f64>,
) {
    pi.clear();
    pi.resize(points.len(), 0.0);
    if points.is_empty() || s == 0 {
        return;
    }
    let w = 1.0 / s as f64;
    for _ in 0..s {
        let mut best = (0usize, f64::INFINITY);
        for (i, p) in points.iter().enumerate() {
            let d = p.sample(rng).dist(q);
            if d < best.1 {
                best = (i, d);
            }
        }
        pi[best.0] += w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::quantification_exact;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};
    use unn_distr::DiscreteDistribution;

    fn random_discrete(n: usize, k: usize, seed: u64) -> Vec<Uncertain> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let cx: f64 = rng.random_range(-20.0..20.0);
                let cy: f64 = rng.random_range(-20.0..20.0);
                let pts: Vec<Point> = (0..k)
                    .map(|_| {
                        Point::new(
                            cx + rng.random_range(-4.0..4.0),
                            cy + rng.random_range(-4.0..4.0),
                        )
                    })
                    .collect();
                Uncertain::Discrete(DiscreteDistribution::uniform(pts).unwrap())
            })
            .collect()
    }

    fn as_discrete(points: &[Uncertain]) -> Vec<DiscreteDistribution> {
        points
            .iter()
            .map(|p| p.as_discrete().unwrap().clone())
            .collect()
    }

    #[test]
    fn estimates_within_eps_of_exact() {
        let points = random_discrete(8, 3, 140);
        let exact_objs = as_discrete(&points);
        let mut rng = SmallRng::seed_from_u64(141);
        let eps = 0.05;
        // Accuracy at a fixed set of queries: use the per-query bound.
        let s = MonteCarloIndex::samples_for_queries(eps, 0.01, 8, 20);
        let mc = MonteCarloIndex::build(&points, s, McBackend::KdTree, &mut rng);
        let mut qrng = SmallRng::seed_from_u64(142);
        for _ in 0..20 {
            let q = Point::new(
                qrng.random_range(-25.0..25.0),
                qrng.random_range(-25.0..25.0),
            );
            let want = quantification_exact(&exact_objs, q);
            let got = mc.query(q);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((g - w).abs() <= eps, "i={i}: mc={g} exact={w} (eps={eps})");
            }
        }
    }

    #[test]
    fn backends_agree() {
        let points = random_discrete(10, 2, 143);
        let s = 400;
        let mut rng1 = SmallRng::seed_from_u64(144);
        let mut rng2 = SmallRng::seed_from_u64(144); // same seed: same samples
        let kd = MonteCarloIndex::build(&points, s, McBackend::KdTree, &mut rng1);
        let del = MonteCarloIndex::build(&points, s, McBackend::Delaunay, &mut rng2);
        let mut qrng = SmallRng::seed_from_u64(145);
        for _ in 0..30 {
            let q = Point::new(
                qrng.random_range(-25.0..25.0),
                qrng.random_range(-25.0..25.0),
            );
            let a = kd.query(q);
            let b = del.query(q);
            // Identical instantiations: the only divergence is NN ties.
            let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
            assert!(diff < 1e-9, "backends disagree: {diff}");
        }
    }

    #[test]
    fn continuous_models_supported() {
        // Two uniform disks straddling the query: probabilities near 1/2.
        let points = vec![
            Uncertain::uniform_disk(Point::new(-5.0, 0.0), 1.0),
            Uncertain::uniform_disk(Point::new(5.0, 0.0), 1.0),
        ];
        let mut rng = SmallRng::seed_from_u64(146);
        let mc = MonteCarloIndex::build(&points, 4000, McBackend::KdTree, &mut rng);
        let pi = mc.query(Point::ORIGIN);
        assert!((pi[0] - 0.5).abs() < 0.05, "{pi:?}");
        assert!((pi[1] - 0.5).abs() < 0.05);
        // Far to the left, the left disk always wins.
        let pi = mc.query(Point::new(-20.0, 0.0));
        assert!(pi[0] > 0.999);
    }

    #[test]
    fn query_knn_matches_exact_membership() {
        let points = random_discrete(7, 3, 149);
        let objs = as_discrete(&points);
        let mut rng = SmallRng::seed_from_u64(150);
        let mc = MonteCarloIndex::build(&points, 8000, McBackend::KdTree, &mut rng);
        let q = Point::new(0.5, -1.0);
        for k in [1usize, 3, 5] {
            let est = mc.query_knn(q, k);
            let exact = crate::knn::knn_membership_exact(&objs, q, k);
            for (i, (a, b)) in est.iter().zip(&exact).enumerate() {
                assert!((a - b).abs() < 0.03, "k={k} i={i}: mc={a} exact={b}");
            }
            let sum: f64 = est.iter().sum();
            assert!((sum - k.min(7) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_query_consistent() {
        let points = random_discrete(12, 2, 147);
        let mut rng = SmallRng::seed_from_u64(148);
        let mc = MonteCarloIndex::build(&points, 500, McBackend::KdTree, &mut rng);
        let q = Point::new(1.0, 2.0);
        let dense = mc.query(q);
        let sparse = mc.query_sparse(q);
        let sum: f64 = sparse.iter().map(|&(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for &(i, p) in &sparse {
            assert_eq!(dense[i], p);
        }
        // Sorted by decreasing probability.
        for w in sparse.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn fresh_sampling_matches_exact_and_is_deterministic() {
        let points = random_discrete(8, 3, 151);
        let exact_objs = as_discrete(&points);
        let q = Point::new(1.5, -2.0);
        let want = quantification_exact(&exact_objs, q);
        let s = 20_000;
        let mut rng = SmallRng::seed_from_u64(152);
        let got = quantification_monte_carlo(&points, q, s, &mut rng);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 0.02, "i={i}: fresh={g} exact={w}");
        }
        // Identical seed => bit-identical estimate (the batch layer's
        // per-query-stream contract).
        let mut rng2 = SmallRng::seed_from_u64(152);
        let again = quantification_monte_carlo(&points, q, s, &mut rng2);
        assert_eq!(got, again);
        // The _into variant reusing a dirty buffer agrees exactly.
        let mut rng3 = SmallRng::seed_from_u64(152);
        let mut buf = vec![99.0; 3];
        quantification_monte_carlo_into(&points, q, s, &mut rng3, &mut buf);
        assert_eq!(got, buf);
    }

    #[test]
    fn samples_for_formula_shape() {
        // Quadratic in 1/eps, logarithmic in n and 1/delta.
        let s1 = MonteCarloIndex::samples_for(0.1, 0.1, 10, 2);
        let s2 = MonteCarloIndex::samples_for(0.05, 0.1, 10, 2);
        assert!(s2 >= 3 * s1, "s(ε/2) should be ~4x s(ε): {s1} vs {s2}");
        let s3 = MonteCarloIndex::samples_for(0.1, 0.1, 1000, 2);
        assert!(s3 < 4 * s1, "log growth in n violated: {s1} -> {s3}");
    }
}
