//! The Monte-Carlo quantification structure (paper §4.2).
//!
//! Preprocessing draws `s` *instantiations* of the uncertain set — one
//! location per uncertain point — and indexes each for nearest-neighbor
//! queries. A query finds the NN owner in every instantiation and estimates
//! `π̂_i(q) = c_i / s`. The Chernoff–Hoeffding bound (Eq. 6) plus a union
//! bound over the `O(N⁴)` cells of the probabilistic Voronoi diagram
//! (Lemma 4.1) gives Theorem 4.3:
//! `s = (1/2ε²)·ln(2n|Q|/δ)` rounds suffice for `|π̂_i − π_i| ≤ ε`
//! everywhere, with probability `≥ 1 − δ`. Continuous distributions reduce
//! to the discrete case by Theorem 4.5's sampling argument (Lemma 4.4).
//!
//! The paper prescribes "Voronoi diagram + point location" per round; the
//! default backend here packs all `s` per-round kd-trees into one
//! round-major [`KdForest`] arena, with the Delaunay-based nearest-site
//! structure available for the E14 ablation. Three query-time optimizations
//! make this the hot path of the batch engine:
//!
//! 1. **`Δ(q)` pruning (Lemma 2.1).** In every instantiation, point `j`'s
//!    location is within `Δ_j(q)` of `q`, so the NN distance never exceeds
//!    `Δ(q) = min_j Δ_j(q)`. [`MonteCarloIndex::prune_radius`] computes a
//!    cheap upper bound on `Δ(q)` once per query (additively-weighted NN
//!    over the support bounding boxes, via `KdTree::min_adjusted`). The
//!    fixed-`s` query then answers *all* `s` rounds with **one** range
//!    traversal: a single kd-tree over all `s·n` instantiations reports
//!    every location inside the `Δ(q)` ball, and a per-round fold keeps each
//!    round's minimum. A nonempty ball always contains that round's true NN
//!    (the NN is the distance minimum), so the fold is exact; a round the
//!    ball misses entirely (last-ulp rounding of the seed) falls back to a
//!    seeded descent. This replaces `s` root-to-leaf walks with one walk
//!    whose cost is `O(log(sn) + output)`.
//! 2. **Arena-packed rounds.** The per-round trees live in one round-major
//!    [`KdForest`] arena — memory moves strictly forward over rounds
//!    instead of chasing `s` separately allocated trees (the unpruned,
//!    Delaunay, and adaptive paths use these descents).
//! 3. **Adaptive early stopping.** Because rounds are pre-drawn and
//!    consumed in build order, any prefix of rounds is itself an unbiased
//!    estimator; [`MonteCarloIndex::quantify_adaptive`] stops as soon as a
//!    Hoeffding *or* empirical-Bernstein confidence half-width (in the
//!    style of Mnih–Szepesvári–Audibert, ICML 2008) certifies the requested
//!    accuracy, and reports the rounds actually consumed.

use rand::Rng;
use unn_distr::{Uncertain, UncertainPoint};
use unn_geom::{Aabb, AabbSoA, Point};
use unn_spatial::{FilterPrecision, KdConfig, KdForest, KdTree, Neighbor};
use unn_voronoi::Delaunay;

/// Per-round nearest-neighbor backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum McBackend {
    /// All rounds' kd-trees packed into one [`KdForest`] arena (default).
    KdTree,
    /// Delaunay triangulation per instantiation (the paper's Voronoi
    /// point-location narrative; E14 ablation).
    Delaunay,
}

enum McStorage {
    /// Round-major arena of kd-trees.
    Forest(KdForest),
    /// One Delaunay triangulation per round.
    Del(Vec<Delaunay>),
}

/// Default first checkpoint of the adaptive stopping rule.
pub const ADAPTIVE_MIN_ROUNDS: usize = 32;

/// Result of [`MonteCarloIndex::quantify_adaptive`]: the estimates plus how
/// much work the stopping rule actually spent and what accuracy it
/// certified.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptiveQuantify {
    /// `π̂_i` over the consumed prefix of rounds (dense, sums to 1).
    pub pi: Vec<f64>,
    /// Rounds consumed before the half-width dropped below the target (or
    /// all of `s` if it never did).
    pub rounds_used: usize,
    /// The certified half-width at stopping: with probability `≥ 1 − δ`,
    /// every `|π̂_i − π_i|` is at most this.
    pub half_width: f64,
}

/// Monte-Carlo estimator of all quantification probabilities.
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use unn_distr::Uncertain;
/// use unn_geom::Point;
/// use unn_quantify::{McBackend, MonteCarloIndex};
///
/// let points = vec![
///     Uncertain::uniform_disk(Point::new(-5.0, 0.0), 1.0),
///     Uncertain::uniform_disk(Point::new(5.0, 0.0), 1.0),
/// ];
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mc = MonteCarloIndex::build(&points, 2000, McBackend::KdTree, &mut rng);
/// let pi = mc.query(Point::new(0.0, 0.0)); // symmetric: both ~1/2
/// assert!((pi[0] - 0.5).abs() < 0.1);
/// // Adaptive stopping certifies ±0.1 with far fewer than 2000 rounds.
/// let a = mc.quantify_adaptive(Point::new(0.0, 0.0), 0.1, 0.01);
/// assert!(a.rounds_used <= 2000 && a.half_width <= 0.1);
/// ```
pub struct MonteCarloIndex {
    storage: McStorage,
    n: usize,
    s: usize,
    /// Per-point support bounding boxes in SoA layout:
    /// `support.max_dist(i, q)` is an upper bound on the paper's `Δ_i(q)`.
    support: AabbSoA,
    /// Kd-tree over the support-box centers; `min_adjusted_boxes` over it
    /// minimizes `support.max_dist(i, q)` — the `Δ(q)` seed radius —
    /// gathering four box evaluations per lane batch.
    delta_tree: KdTree,
    /// One kd-tree over all `s·n` instantiations in generation order
    /// (point `r·n + i` is object `i`'s location in round `r`): the
    /// single-traversal engine of the pruned fixed-`s` query. Only built
    /// for the forest backend.
    global: Option<KdTree>,
}

impl MonteCarloIndex {
    /// Builds the structure with `s` instantiations of `points`.
    pub fn build(points: &[Uncertain], s: usize, backend: McBackend, rng: &mut dyn Rng) -> Self {
        Self::build_with_filter(points, s, backend, rng, FilterPrecision::F64)
    }

    /// [`MonteCarloIndex::build`] with an explicit fill-phase precision
    /// tier for the hot scan structures (the global sample tree and the
    /// per-round forest). `F32Refined` keeps every winner and π_i estimate
    /// bit-identical to `F64` (see `unn_spatial::precision`).
    pub fn build_with_filter(
        points: &[Uncertain],
        s: usize,
        backend: McBackend,
        rng: &mut dyn Rng,
        filter: FilterPrecision,
    ) -> Self {
        assert!(s > 0, "need at least one round");
        let n = points.len();
        let mut insts: Vec<Point> = Vec::with_capacity(n);
        let (storage, global) = match backend {
            McBackend::KdTree => {
                let mut forest = KdForest::with_capacity(s, n);
                forest.set_filter(filter);
                let mut all: Vec<Point> = Vec::with_capacity(s * n);
                for _ in 0..s {
                    insts.clear();
                    insts.extend(points.iter().map(|p| p.sample(rng)));
                    all.extend_from_slice(&insts);
                    forest.push_round(&insts);
                }
                // The global tree's queries are pure point-distance ball
                // folds whose results are layout-invariant (the fold is a
                // per-round (distance, object)-lex minimum), so the
                // scan-heavy leaf layout is safe and benches fastest.
                let global = (n > 0)
                    .then(|| KdTree::with_config(&all, KdConfig::scan_heavy().with_filter(filter)));
                (McStorage::Forest(forest), global)
            }
            McBackend::Delaunay => {
                let mut rounds = Vec::with_capacity(s);
                for _ in 0..s {
                    insts.clear();
                    insts.extend(points.iter().map(|p| p.sample(rng)));
                    rounds.push(Delaunay::new(&insts));
                }
                (McStorage::Del(rounds), None)
            }
        };
        let support: Vec<Aabb> = points.iter().map(|p| p.support_bbox()).collect();
        let centers: Vec<Point> = support.iter().map(|b| b.center()).collect();
        let delta_tree = KdTree::new(&centers);
        MonteCarloIndex {
            storage,
            n,
            s,
            support: AabbSoA::from_boxes(&support),
            delta_tree,
            global,
        }
    }

    /// Number of rounds `s`.
    pub fn rounds(&self) -> usize {
        self.s
    }

    /// Number of uncertain points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no uncertain points were indexed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// An upper bound on `Δ(q) = min_i Δ_i(q)`, the Lemma 2.1 radius that
    /// must contain the nearest neighbor of `q` in *every* instantiation
    /// (computed over support bounding boxes, so it is within the box
    /// slack of the exact `Δ(q)`).
    ///
    /// This is the per-query seed of the pruned round descents; it is also
    /// useful on its own as a certified search radius.
    pub fn prune_radius(&self, q: Point) -> f64 {
        self.delta_tree
            .min_adjusted_boxes(q, &self.support)
            .map_or(f64::INFINITY, |(_, v)| v)
    }

    /// Scalar-oracle twin of [`MonteCarloIndex::prune_radius`]: identical
    /// traversal with per-point box evaluations instead of gathered lane
    /// batches. Bit-identical by the kernel contract (DESIGN.md §8).
    #[doc(hidden)]
    pub fn prune_radius_scalar(&self, q: Point) -> f64 {
        self.delta_tree
            .min_adjusted_boxes_scalar(q, &self.support)
            .map_or(f64::INFINITY, |(_, v)| v)
    }

    /// The winner of one round: nearest instantiation index to `q`, with
    /// the descent seeded by `init_best` (an upper bound on the NN
    /// distance; `f64::INFINITY` disables pruning).
    #[inline]
    fn round_winner(&self, round: usize, q: Point, init_best: f64) -> usize {
        // Invariant: callers check `n > 0`, so every round holds `n >= 1`
        // locations and a descent always finds a neighbor. The `0` arms are
        // unreachable; they exist so a violated invariant degrades to a
        // wrong-but-typed answer in release builds instead of a panic on
        // the query hot path.
        unn_observe::mc_descent_round();
        match &self.storage {
            McStorage::Forest(f) => {
                // The seed provably contains the NN; the `nearest` fallback
                // only guards against last-ulp rounding of the seed itself.
                match f
                    .nearest_within(round, q, init_best)
                    .or_else(|| f.nearest(round, q))
                {
                    Some(nb) => nb.id,
                    None => {
                        debug_assert!(false, "round {round} empty despite n > 0");
                        0
                    }
                }
            }
            McStorage::Del(ds) => match ds[round].nearest(q) {
                Some((id, _)) => id,
                None => {
                    debug_assert!(false, "round {round} empty despite n > 0");
                    0
                }
            },
        }
    }

    /// Inflates the Lemma 2.1 radius by one part in 10¹² so the closed-ball
    /// seed survives floating-point rounding of `Δ(q)` itself.
    #[inline]
    fn seed_for(&self, q: Point) -> f64 {
        let seed = self.prune_radius(q) * (1.0 + 1e-12);
        unn_observe::seed_radius(seed);
        seed
    }

    /// The per-round winners (object index per round, in round order).
    ///
    /// Forest backend with a finite seed: one range traversal of the global
    /// instantiation tree collects every location inside the `Δ(q)` ball
    /// and a fold keeps each round's closest (ties to the smaller object
    /// index). A nonempty ball necessarily contains the round's NN, so the
    /// fold equals the descent result; the rare round the ball misses (the
    /// seed rounded below the NN distance by an ulp) reruns as a descent.
    /// If the ball degenerates (more than `32·s` locations inside), the
    /// traversal aborts and all rounds run as seeded descents instead —
    /// both sides of the switch are deterministic in `(self, q, init_best)`.
    ///
    /// Everything else — infinite seed, Delaunay backend — is one descent
    /// per round.
    fn winners_into(&self, q: Point, init_best: f64, winners: &mut Vec<u32>) {
        winners.clear();
        if let (McStorage::Forest(f), Some(g)) = (&self.storage, self.global.as_ref()) {
            if init_best.is_finite() {
                let mut best: Vec<(f64, u32)> = vec![(f64::INFINITY, u32::MAX); self.s];
                let n = self.n;
                // Magic-multiply `pos -> (round, obj)` split: a hardware
                // division per reported ball point is the fold's single
                // biggest cost. Exact for all `pos < 2^32` (Granlund-
                // Montgomery/Lemire), which `s·n` never exceeds; the
                // scalar twin keeps plain `/`/`%` so the equivalence suite
                // cross-checks this arithmetic.
                let magic = if n > 1 { u64::MAX / n as u64 + 1 } else { 0 };
                let complete = g.in_disk_capped(q, init_best, 32 * self.s, &mut |pos, d| {
                    let (r, obj) = if n == 1 {
                        (pos, 0u32)
                    } else {
                        let r = ((pos as u128 * magic as u128) >> 64) as usize;
                        (r, (pos - r * n) as u32)
                    };
                    let e = &mut best[r];
                    if d < e.0 || (d == e.0 && obj < e.1) {
                        *e = (d, obj);
                    }
                });
                if complete {
                    winners.extend(best.iter().enumerate().map(|(r, &(_, obj))| {
                        if obj != u32::MAX {
                            unn_observe::mc_ball_round();
                            obj
                        } else {
                            // Ball missed this round (seed rounded below
                            // the NN distance by an ulp): rerun as a
                            // descent. `n > 0` here, so the descent finds a
                            // neighbor; 0 is the typed-degradation arm for
                            // a violated invariant in release builds.
                            unn_observe::mc_descent_round();
                            match f.nearest(r, q) {
                                Some(nb) => nb.id as u32,
                                None => {
                                    debug_assert!(false, "round {r} empty despite n > 0");
                                    0
                                }
                            }
                        }
                    }));
                    return;
                }
            }
        }
        winners.extend((0..self.s).map(|r| self.round_winner(r, q, init_best) as u32));
    }

    /// Scalar-oracle twin of [`MonteCarloIndex::winners_into`]: the same
    /// control flow routed through the retained scalar kernels
    /// (`in_disk_capped_scalar`, `nearest_within_scalar`).
    fn winners_into_scalar(&self, q: Point, init_best: f64, winners: &mut Vec<u32>) {
        winners.clear();
        if let (McStorage::Forest(f), Some(g)) = (&self.storage, self.global.as_ref()) {
            if init_best.is_finite() {
                let mut best: Vec<(f64, u32)> = vec![(f64::INFINITY, u32::MAX); self.s];
                let n = self.n;
                let complete = g.in_disk_capped_scalar(q, init_best, 32 * self.s, &mut |pos, d| {
                    let e = &mut best[pos / n];
                    let obj = (pos % n) as u32;
                    if d < e.0 || (d == e.0 && obj < e.1) {
                        *e = (d, obj);
                    }
                });
                if complete {
                    winners.extend(best.iter().enumerate().map(|(r, &(_, obj))| {
                        if obj != u32::MAX {
                            unn_observe::mc_ball_round();
                            obj
                        } else {
                            unn_observe::mc_descent_round();
                            match f.nearest_within_scalar(r, q, f64::INFINITY) {
                                Some(nb) => nb.id as u32,
                                None => {
                                    debug_assert!(false, "round {r} empty despite n > 0");
                                    0
                                }
                            }
                        }
                    }));
                    return;
                }
            }
            winners.extend((0..self.s).map(|r| {
                unn_observe::mc_descent_round();
                match f
                    .nearest_within_scalar(r, q, init_best)
                    .or_else(|| f.nearest_within_scalar(r, q, f64::INFINITY))
                {
                    Some(nb) => nb.id as u32,
                    None => {
                        debug_assert!(false, "round {r} empty despite n > 0");
                        0
                    }
                }
            }));
            return;
        }
        winners.extend((0..self.s).map(|r| self.round_winner(r, q, init_best) as u32));
    }

    /// Estimates `π̂_i(q)` for all `i`; at most `s` entries are nonzero.
    ///
    /// Returns a dense vector (callers wanting sparse output use
    /// [`MonteCarloIndex::query_sparse`]).
    pub fn query(&self, q: Point) -> Vec<f64> {
        let mut pi = Vec::new();
        self.query_into(q, &mut pi);
        pi
    }

    /// [`MonteCarloIndex::query`] into a caller-provided buffer (cleared and
    /// resized to `len()`): batch loops reuse one buffer per worker.
    ///
    /// Every round's descent is seeded with the Lemma 2.1 radius
    /// [`MonteCarloIndex::prune_radius`], computed once per query.
    pub fn query_into(&self, q: Point, pi: &mut Vec<f64>) {
        if self.n == 0 {
            pi.clear();
            return;
        }
        self.query_into_seeded(q, self.seed_for(q), pi);
    }

    /// Scalar-oracle twin of [`MonteCarloIndex::query_into`]: the entire
    /// query — `Δ(q)` seed, global-ball fold, descent fallbacks — routed
    /// through the retained scalar kernels. The equivalence suite and the
    /// `arena_scalar` bench variant diff it against the batched path;
    /// results must match bit for bit (DESIGN.md §8).
    #[doc(hidden)]
    pub fn query_into_scalar(&self, q: Point, pi: &mut Vec<f64>) {
        if self.n == 0 {
            pi.clear();
            return;
        }
        let seed = self.prune_radius_scalar(q) * (1.0 + 1e-12);
        unn_observe::seed_radius(seed);
        pi.clear();
        pi.resize(self.n, 0.0);
        let mut winners = Vec::with_capacity(self.s);
        self.winners_into_scalar(q, seed, &mut winners);
        for &wn in &winners {
            pi[wn as usize] += 1.0;
        }
        let w = 1.0 / self.s as f64;
        for x in pi.iter_mut() {
            *x *= w;
        }
    }

    /// [`MonteCarloIndex::query_into`] with a caller-supplied seed radius
    /// instead of the automatic `Δ(q)` bound.
    ///
    /// The estimate is correct for *any* seed — a too-small ball either
    /// still contains the round's NN or is empty for that round (the NN is
    /// the distance minimum) and falls back to a descent; a small valid
    /// seed is merely fastest. `f64::INFINITY` disables pruning entirely
    /// and runs one descent per round; benchmarks use this to measure the
    /// fast-path speedup.
    pub fn query_into_seeded(&self, q: Point, init_best: f64, pi: &mut Vec<f64>) {
        pi.clear();
        pi.resize(self.n, 0.0);
        if self.n == 0 {
            return;
        }
        let mut winners = Vec::with_capacity(self.s);
        self.winners_into(q, init_best, &mut winners);
        // Count in exact unit increments, scale once: `π̂_i` is then
        // `c_i·(1/s)` with a single rounding, bit-identical to the sparse
        // and adaptive paths.
        for &wn in &winners {
            pi[wn as usize] += 1.0;
        }
        let w = 1.0 / self.s as f64;
        for x in pi.iter_mut() {
            *x *= w;
        }
    }

    /// Sparse estimate: `(object, π̂)` pairs for objects that won at least
    /// one round, sorted by decreasing probability (ties by index).
    ///
    /// Runs in `O(s · query + s log s)` independent of `n`: winners are
    /// accumulated sparsely (at most `s` distinct), never through a dense
    /// `n`-vector — the right shape when `n ≫ s`.
    pub fn query_sparse(&self, q: Point) -> Vec<(usize, f64)> {
        if self.n == 0 {
            return Vec::new();
        }
        let mut winners = Vec::with_capacity(self.s);
        self.winners_into(q, self.seed_for(q), &mut winners);
        winners.sort_unstable();
        let w = 1.0 / self.s as f64;
        let mut out: Vec<(usize, f64)> = Vec::new();
        let mut run_start = 0usize;
        for i in 1..=winners.len() {
            if i == winners.len() || winners[i] != winners[run_start] {
                out.push((winners[run_start] as usize, (i - run_start) as f64 * w));
                run_start = i;
            }
        }
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Estimates the k-NN *membership* probabilities: `π̂_i^{(k)}(q)` is the
    /// fraction of instantiations in which `P_i` is among the `k` nearest.
    /// Same Chernoff bound per entry as [`MonteCarloIndex::query`]. One
    /// neighbor buffer is reused across all `s` rounds.
    pub fn query_knn(&self, q: Point, k: usize) -> Vec<f64> {
        let mut pi = vec![0.0; self.n];
        if self.n == 0 || k == 0 {
            return pi;
        }
        let w = 1.0 / self.s as f64;
        match &self.storage {
            McStorage::Forest(f) => {
                let mut buf: Vec<Neighbor> = Vec::new();
                for r in 0..self.s {
                    f.m_nearest_into(r, q, k, &mut buf);
                    for nb in &buf {
                        pi[nb.id] += w;
                    }
                }
            }
            McStorage::Del(ds) => {
                let mut buf: Vec<(usize, f64)> = Vec::new();
                for d in ds {
                    d.m_nearest_into(q, k, &mut buf);
                    for &(i, _) in &buf {
                        pi[i] += w;
                    }
                }
            }
        }
        pi
    }

    /// Adaptive-stopping estimate of all `π_i(q)`: consumes the pre-drawn
    /// rounds in build order and stops at the first doubling checkpoint
    /// (starting at [`ADAPTIVE_MIN_ROUNDS`]) where a union-bounded
    /// Hoeffding *or* empirical-Bernstein half-width drops to `eps` for
    /// every `π̂_i` simultaneously, with failure probability `≤ delta`.
    ///
    /// On well-separated instances (one point wins almost every round) the
    /// empirical variance is near zero and the Bernstein term stops after
    /// `O(log(n/δ)/ε)` rounds — quadratically earlier than the fixed
    /// `O(log(n/δ)/ε²)` of Eq. 6.
    ///
    /// Because the consumed rounds are a deterministic prefix of the
    /// build-time draw, the result is a pure function of `(self, q, eps,
    /// delta)` — bit-identical across repeated calls, thread counts, and
    /// query orders (the batch determinism contract).
    pub fn quantify_adaptive(&self, q: Point, eps: f64, delta: f64) -> AdaptiveQuantify {
        self.quantify_adaptive_from(q, eps, delta, ADAPTIVE_MIN_ROUNDS)
    }

    /// [`MonteCarloIndex::quantify_adaptive`] with an explicit first
    /// checkpoint (subsequent checkpoints double until `s`).
    pub fn quantify_adaptive_from(
        &self,
        q: Point,
        eps: f64,
        delta: f64,
        min_rounds: usize,
    ) -> AdaptiveQuantify {
        self.quantify_adaptive_capped(q, eps, delta, min_rounds, self.s)
    }

    /// [`MonteCarloIndex::quantify_adaptive_from`] restricted to at most
    /// `max_rounds` of the pre-drawn rounds — the budgeted-degradation
    /// primitive: the caller caps the work and reads the honestly certified
    /// accuracy back from [`AdaptiveQuantify::half_width`].
    ///
    /// The doubling schedule saturates at the cap, so the final consumed
    /// round is always a checkpoint and `half_width` is always the
    /// certified bound for the returned estimates (never stale). With
    /// `max_rounds >= s` this is exactly `quantify_adaptive_from` —
    /// bit-identical, preserving the batch determinism contract.
    pub fn quantify_adaptive_capped(
        &self,
        q: Point,
        eps: f64,
        delta: f64,
        min_rounds: usize,
        max_rounds: usize,
    ) -> AdaptiveQuantify {
        assert!(eps > 0.0, "eps must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        if self.n == 0 {
            return AdaptiveQuantify {
                pi: Vec::new(),
                rounds_used: 0,
                half_width: 0.0,
            };
        }
        let s = max_rounds.clamp(1, self.s);
        let first = min_rounds.clamp(1, s);
        // Number of checkpoints in the doubling schedule — the union bound
        // spends delta / (checkpoints · n) per point per checkpoint.
        let checkpoints = {
            let (mut k, mut t) = (1usize, first);
            while t < s {
                t = (t * 2).min(s);
                k += 1;
            }
            k as f64
        };
        let union = checkpoints * self.n as f64 / delta;
        // Hoeffding with delta' = delta/(2·K·n) per (i, checkpoint); the
        // other half of the budget goes to the Bernstein family below.
        let l_hoeff = (4.0 * union).ln();
        // Empirical Bernstein (MSA'08, Thm 1 shape): ln(3/delta') terms.
        let l_bern = (6.0 * union).ln();
        let seed = self.seed_for(q);
        // Forest backend: all winners come from the single-traversal ball
        // fold (same cost as one fixed-`s` query); early stopping then only
        // trims the counting prefix. The Delaunay backend stays incremental
        // so stopping at `t` rounds really does skip `s - t` searches.
        // Under a work cap below `s` the prefetch would overspend the
        // budget, so the capped path goes incremental too.
        let mut winners = Vec::new();
        if self.global.is_some() && s == self.s {
            self.winners_into(q, seed, &mut winners);
        }
        let mut counts = vec![0u32; self.n];
        let mut used = 0usize;
        let mut next = first;
        let mut half_width = f64::INFINITY;
        for r in 0..s {
            let wr = match winners.get(r) {
                Some(&w) => w as usize,
                None => self.round_winner(r, q, seed),
            };
            counts[wr] += 1;
            used += 1;
            if used == next {
                unn_observe::mc_checkpoint();
                half_width = Self::stop_half_width(&counts, used, l_hoeff, l_bern);
                if half_width <= eps {
                    break;
                }
                next = (next * 2).min(s);
            }
        }
        let w = 1.0 / used as f64;
        AdaptiveQuantify {
            pi: counts.iter().map(|&c| c as f64 * w).collect(),
            rounds_used: used,
            half_width,
        }
    }

    /// The max-over-`i` confidence half-width after `t` rounds: the tighter
    /// of the Hoeffding bound (variance-free) and the empirical-Bernstein
    /// bound at the worst observed empirical variance.
    fn stop_half_width(counts: &[u32], t: usize, l_hoeff: f64, l_bern: f64) -> f64 {
        let tf = t as f64;
        let hoeff = (l_hoeff / (2.0 * tf)).sqrt();
        if t < 2 {
            return hoeff;
        }
        let vmax = counts
            .iter()
            .map(|&c| {
                let p = c as f64 / tf;
                p * (1.0 - p)
            })
            .fold(0.0, f64::max);
        let bern = (2.0 * vmax * l_bern / tf).sqrt() + 7.0 * l_bern / (3.0 * (tf - 1.0));
        hoeff.min(bern)
    }

    /// Theorem 4.3's round count for accuracy `eps` and failure probability
    /// `delta`, with `|Q| = O((nk)⁴)` cells from Lemma 4.1.
    ///
    /// `s = (1/2ε²) · ln(2n|Q|/δ)` with `|Q| = (nk)⁴` (constant 1).
    pub fn samples_for(eps: f64, delta: f64, n: usize, k: usize) -> usize {
        assert!(eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0);
        let nn = (n.max(1) as f64) * (k.max(1) as f64);
        let q_cells = nn.powi(4);
        let s = (1.0 / (2.0 * eps * eps)) * (2.0 * n.max(1) as f64 * q_cells / delta).ln();
        s.ceil().max(1.0) as usize
    }

    /// Eq. 6 inverted at a fixed round budget: the accuracy `ε` that `s`
    /// rounds actually guarantee (w.p. `≥ 1 − δ`, `|Q| = (nk)⁴` as in
    /// [`MonteCarloIndex::samples_for`]).
    ///
    /// When a deployment caps the theorem-driven round count (see
    /// `PnnConfig::max_mc_rounds` in `unn`), this is the *achieved* ε that
    /// honest results must surface instead of the requested one.
    pub fn epsilon_for(s: usize, delta: f64, n: usize, k: usize) -> f64 {
        assert!(s > 0 && delta > 0.0 && delta < 1.0);
        let nn = (n.max(1) as f64) * (k.max(1) as f64);
        let q_cells = nn.powi(4);
        ((2.0 * n.max(1) as f64 * q_cells / delta).ln() / (2.0 * s as f64)).sqrt()
    }

    /// The *per-query* round count: if only `m` query points will ever be
    /// asked (instead of uniform-over-the-plane accuracy), the union bound
    /// shrinks to `s = (1/2ε²) ln(2nm/δ)`.
    pub fn samples_for_queries(eps: f64, delta: f64, n: usize, m: usize) -> usize {
        assert!(eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0);
        let s = (1.0 / (2.0 * eps * eps)) * (2.0 * n.max(1) as f64 * m.max(1) as f64 / delta).ln();
        s.ceil().max(1.0) as usize
    }
}

/// The seed of point `id`'s private Monte-Carlo sample stream.
///
/// This extends the batch layer's `query_stream_seed` contract from queries
/// to *points*: where a batch query's randomness is a pure function of
/// `(seed, query_index)`, a dynamic index draws each point's `s` per-round
/// instantiations from `SmallRng::seed_from_u64(point_stream_seed(seed,
/// id))` — a pure function of `(seed, id)` alone. A point's samples are
/// therefore invariant under churn (insert/remove of *other* points), block
/// merges, compactions, and thread counts, which is what makes dynamic
/// quantification results reproducible and layout-independent.
///
/// The extra domain-separation constant keeps point streams disjoint from
/// query streams even when `id == query_index`.
pub fn point_stream_seed(seed: u64, id: u64) -> u64 {
    // Golden-ratio spread (as in `query_stream_seed`) plus a distinct
    // domain constant, then two SplitMix64 rounds to decorrelate low bits.
    let mut state = seed ^ 0xA076_1D64_78BD_642F ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    rand::split_mix_64(&mut state);
    rand::split_mix_64(&mut state);
    state
}

/// The adaptive early-stopping rule of
/// [`MonteCarloIndex::quantify_adaptive_capped`] applied to a
/// caller-supplied per-round winner sequence.
///
/// A Bentley–Saxe dynamic index composes each round's winner across many
/// blocks (the per-round NN over the union of block instantiations), so the
/// winners cannot come from one `MonteCarloIndex`. This free function runs
/// the identical doubling-checkpoint schedule — same union bound over
/// `checkpoints · n / delta`, same Hoeffding/empirical-Bernstein half-width
/// — over `winners[..max_rounds]`, where `winners[r]` is the dense object
/// index (`< n`) that won round `r`. Feeding it the winner sequence of a
/// static index reproduces `quantify_adaptive_capped` bit-for-bit.
///
/// Out-of-range winner entries are ignored (typed degradation rather than a
/// panic on the query path); `rounds_used` still counts them.
pub fn adaptive_over_winners(
    winners: &[u32],
    n: usize,
    eps: f64,
    delta: f64,
    min_rounds: usize,
    max_rounds: usize,
) -> AdaptiveQuantify {
    assert!(eps > 0.0, "eps must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    if n == 0 || winners.is_empty() {
        return AdaptiveQuantify {
            pi: Vec::new(),
            rounds_used: 0,
            half_width: 0.0,
        };
    }
    let s = max_rounds.clamp(1, winners.len());
    let first = min_rounds.clamp(1, s);
    let checkpoints = {
        let (mut k, mut t) = (1usize, first);
        while t < s {
            t = (t * 2).min(s);
            k += 1;
        }
        k as f64
    };
    let union = checkpoints * n as f64 / delta;
    let l_hoeff = (4.0 * union).ln();
    let l_bern = (6.0 * union).ln();
    let mut counts = vec![0u32; n];
    let mut used = 0usize;
    let mut next = first;
    let mut half_width = f64::INFINITY;
    for &wr in &winners[..s] {
        if let Some(c) = counts.get_mut(wr as usize) {
            *c += 1;
        } else {
            debug_assert!(false, "winner {wr} out of range (n = {n})");
        }
        used += 1;
        if used == next {
            unn_observe::mc_checkpoint();
            half_width = MonteCarloIndex::stop_half_width(&counts, used, l_hoeff, l_bern);
            if half_width <= eps {
                break;
            }
            next = (next * 2).min(s);
        }
    }
    let w = 1.0 / used as f64;
    AdaptiveQuantify {
        pi: counts.iter().map(|&c| c as f64 * w).collect(),
        rounds_used: used,
        half_width,
    }
}

/// One-shot Monte-Carlo estimate with *fresh* instantiations drawn from
/// `rng` at query time (no prebuilt rounds).
///
/// Same estimator as [`MonteCarloIndex::query`] — `π̂_i = c_i / s` with the
/// identical Chernoff–Hoeffding accuracy per Eq. 6 — but the randomness is
/// supplied per call instead of being frozen at build time, so estimates
/// from independent RNG streams are statistically independent. This is the
/// primitive behind the batch layer's deterministic per-query streams
/// (`unn::batch`): seeding `rng` as a pure function of `(seed, query_index)`
/// makes the result reproducible regardless of thread scheduling.
///
/// Each round scans all `n` points once (`O(s·n·k̄)` with `k̄` the mean
/// sample cost); building a per-round tree is only worth it when the same
/// instantiations serve many queries, which is exactly what
/// [`MonteCarloIndex`] is for.
pub fn quantification_monte_carlo(
    points: &[Uncertain],
    q: Point,
    s: usize,
    rng: &mut dyn Rng,
) -> Vec<f64> {
    let mut pi = Vec::new();
    quantification_monte_carlo_into(points, q, s, rng, &mut pi);
    pi
}

/// [`quantification_monte_carlo`] into a caller-provided buffer (cleared
/// and resized to `points.len()`).
pub fn quantification_monte_carlo_into(
    points: &[Uncertain],
    q: Point,
    s: usize,
    rng: &mut dyn Rng,
    pi: &mut Vec<f64>,
) {
    pi.clear();
    pi.resize(points.len(), 0.0);
    if points.is_empty() || s == 0 {
        return;
    }
    let w = 1.0 / s as f64;
    for _ in 0..s {
        let mut best = (0usize, f64::INFINITY);
        for (i, p) in points.iter().enumerate() {
            let d = p.sample(rng).dist(q);
            if d < best.1 {
                best = (i, d);
            }
        }
        pi[best.0] += w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::quantification_exact;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};
    use unn_distr::DiscreteDistribution;

    fn random_discrete(n: usize, k: usize, seed: u64) -> Vec<Uncertain> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let cx: f64 = rng.random_range(-20.0..20.0);
                let cy: f64 = rng.random_range(-20.0..20.0);
                let pts: Vec<Point> = (0..k)
                    .map(|_| {
                        Point::new(
                            cx + rng.random_range(-4.0..4.0),
                            cy + rng.random_range(-4.0..4.0),
                        )
                    })
                    .collect();
                Uncertain::Discrete(DiscreteDistribution::uniform(pts).unwrap())
            })
            .collect()
    }

    fn as_discrete(points: &[Uncertain]) -> Vec<DiscreteDistribution> {
        points
            .iter()
            .map(|p| p.as_discrete().unwrap().clone())
            .collect()
    }

    #[test]
    fn estimates_within_eps_of_exact() {
        let points = random_discrete(8, 3, 140);
        let exact_objs = as_discrete(&points);
        let mut rng = SmallRng::seed_from_u64(141);
        let eps = 0.05;
        // Accuracy at a fixed set of queries: use the per-query bound.
        let s = MonteCarloIndex::samples_for_queries(eps, 0.01, 8, 20);
        let mc = MonteCarloIndex::build(&points, s, McBackend::KdTree, &mut rng);
        let mut qrng = SmallRng::seed_from_u64(142);
        for _ in 0..20 {
            let q = Point::new(
                qrng.random_range(-25.0..25.0),
                qrng.random_range(-25.0..25.0),
            );
            let want = quantification_exact(&exact_objs, q);
            let got = mc.query(q);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((g - w).abs() <= eps, "i={i}: mc={g} exact={w} (eps={eps})");
            }
        }
    }

    #[test]
    fn backends_agree() {
        let points = random_discrete(10, 2, 143);
        let s = 400;
        let mut rng1 = SmallRng::seed_from_u64(144);
        let mut rng2 = SmallRng::seed_from_u64(144); // same seed: same samples
        let kd = MonteCarloIndex::build(&points, s, McBackend::KdTree, &mut rng1);
        let del = MonteCarloIndex::build(&points, s, McBackend::Delaunay, &mut rng2);
        let mut qrng = SmallRng::seed_from_u64(145);
        for _ in 0..30 {
            let q = Point::new(
                qrng.random_range(-25.0..25.0),
                qrng.random_range(-25.0..25.0),
            );
            let a = kd.query(q);
            let b = del.query(q);
            // Identical instantiations: the only divergence is NN ties.
            let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
            assert!(diff < 1e-9, "backends disagree: {diff}");
        }
    }

    #[test]
    fn pruned_query_matches_unpruned() {
        // The Δ(q)-seeded fast path must be bit-identical to the unseeded
        // branch-and-bound — pruning only skips subtrees that cannot win.
        let points = random_discrete(40, 3, 160);
        let mut rng = SmallRng::seed_from_u64(161);
        let mc = MonteCarloIndex::build(&points, 600, McBackend::KdTree, &mut rng);
        let mut qrng = SmallRng::seed_from_u64(162);
        let (mut pruned, mut unpruned) = (Vec::new(), Vec::new());
        for _ in 0..60 {
            let q = Point::new(
                qrng.random_range(-30.0..30.0),
                qrng.random_range(-30.0..30.0),
            );
            mc.query_into(q, &mut pruned);
            mc.query_into_seeded(q, f64::INFINITY, &mut unpruned);
            assert_eq!(pruned, unpruned, "q = {q:?}");
            // The prune radius really is an upper bound on Δ(q).
            let delta: f64 = points
                .iter()
                .map(|p| p.max_dist(q))
                .fold(f64::INFINITY, f64::min);
            assert!(mc.prune_radius(q) >= delta - 1e-9);
        }
    }

    #[test]
    fn continuous_models_supported() {
        // Two uniform disks straddling the query: probabilities near 1/2.
        let points = vec![
            Uncertain::uniform_disk(Point::new(-5.0, 0.0), 1.0),
            Uncertain::uniform_disk(Point::new(5.0, 0.0), 1.0),
        ];
        let mut rng = SmallRng::seed_from_u64(146);
        let mc = MonteCarloIndex::build(&points, 4000, McBackend::KdTree, &mut rng);
        let pi = mc.query(Point::ORIGIN);
        assert!((pi[0] - 0.5).abs() < 0.05, "{pi:?}");
        assert!((pi[1] - 0.5).abs() < 0.05);
        // Far to the left, the left disk always wins.
        let pi = mc.query(Point::new(-20.0, 0.0));
        assert!(pi[0] > 0.999);
    }

    #[test]
    fn query_knn_matches_exact_membership() {
        let points = random_discrete(7, 3, 149);
        let objs = as_discrete(&points);
        let mut rng = SmallRng::seed_from_u64(150);
        let mc = MonteCarloIndex::build(&points, 8000, McBackend::KdTree, &mut rng);
        let q = Point::new(0.5, -1.0);
        for k in [1usize, 3, 5] {
            let est = mc.query_knn(q, k);
            let exact = crate::knn::knn_membership_exact(&objs, q, k);
            for (i, (a, b)) in est.iter().zip(&exact).enumerate() {
                assert!((a - b).abs() < 0.03, "k={k} i={i}: mc={a} exact={b}");
            }
            let sum: f64 = est.iter().sum();
            assert!((sum - k.min(7) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_backends_agree() {
        let points = random_discrete(9, 2, 163);
        let mut rng1 = SmallRng::seed_from_u64(164);
        let mut rng2 = SmallRng::seed_from_u64(164);
        let kd = MonteCarloIndex::build(&points, 300, McBackend::KdTree, &mut rng1);
        let del = MonteCarloIndex::build(&points, 300, McBackend::Delaunay, &mut rng2);
        let q = Point::new(2.0, -3.0);
        for k in [1usize, 2, 4] {
            let a = kd.query_knn(q, k);
            let b = del.query_knn(q, k);
            let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
            assert!(diff < 1e-9, "k={k}: {diff}");
        }
    }

    #[test]
    fn sparse_query_consistent() {
        let points = random_discrete(12, 2, 147);
        let mut rng = SmallRng::seed_from_u64(148);
        let mc = MonteCarloIndex::build(&points, 500, McBackend::KdTree, &mut rng);
        let q = Point::new(1.0, 2.0);
        let dense = mc.query(q);
        let sparse = mc.query_sparse(q);
        let sum: f64 = sparse.iter().map(|&(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for &(i, p) in &sparse {
            assert_eq!(dense[i], p);
        }
        // Every dense nonzero appears in the sparse output.
        assert_eq!(
            sparse.len(),
            dense.iter().filter(|&&p| p > 0.0).count(),
            "sparse output missing winners"
        );
        // Sorted by decreasing probability.
        for w in sparse.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn adaptive_matches_full_estimate_within_half_width() {
        let points = random_discrete(10, 3, 165);
        let mut rng = SmallRng::seed_from_u64(166);
        let mc = MonteCarloIndex::build(&points, 8000, McBackend::KdTree, &mut rng);
        let mut qrng = SmallRng::seed_from_u64(167);
        for _ in 0..15 {
            let q = Point::new(
                qrng.random_range(-25.0..25.0),
                qrng.random_range(-25.0..25.0),
            );
            let full = mc.query(q);
            let a = mc.quantify_adaptive(q, 0.05, 0.01);
            assert!(a.rounds_used <= 8000);
            assert!((a.pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            // The full-s estimate is (w.h.p.) within the certified band of
            // the adaptive one; allow the full estimate's own tiny noise.
            for (i, (ad, fu)) in a.pi.iter().zip(&full).enumerate() {
                assert!(
                    (ad - fu).abs() <= a.half_width + 0.02,
                    "i={i}: adaptive={ad} full={fu} hw={}",
                    a.half_width
                );
            }
        }
    }

    #[test]
    fn adaptive_stops_early_when_separated() {
        // Far-apart tight clusters: the winner is deterministic, empirical
        // variance is ~0, and the Bernstein rule stops almost immediately.
        let points: Vec<Uncertain> = (0..16)
            .map(|i| Uncertain::uniform_disk(Point::new(1000.0 * i as f64, 0.0), 0.5))
            .collect();
        let s = 8000;
        let mut rng = SmallRng::seed_from_u64(168);
        let mc = MonteCarloIndex::build(&points, s, McBackend::KdTree, &mut rng);
        let a = mc.quantify_adaptive(Point::new(2.0, 3.0), 0.05, 0.01);
        assert!(
            a.rounds_used < s / 2,
            "adaptive used {}/{} rounds on a separated instance",
            a.rounds_used,
            s
        );
        assert!(a.half_width <= 0.05);
        assert!((a.pi[0] - 1.0).abs() < 1e-12, "{:?}", &a.pi[..2]);
        // Deterministic: repeated calls are bit-identical.
        let b = mc.quantify_adaptive(Point::new(2.0, 3.0), 0.05, 0.01);
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_exhausts_rounds_on_hard_instances() {
        // Two overlapping disks at the midpoint: variance is maximal, so a
        // tiny eps cannot be certified within the available rounds and the
        // honest half-width is reported instead.
        let points = vec![
            Uncertain::uniform_disk(Point::new(-1.0, 0.0), 1.0),
            Uncertain::uniform_disk(Point::new(1.0, 0.0), 1.0),
        ];
        let mut rng = SmallRng::seed_from_u64(169);
        let mc = MonteCarloIndex::build(&points, 500, McBackend::KdTree, &mut rng);
        let a = mc.quantify_adaptive(Point::ORIGIN, 0.001, 0.01);
        assert_eq!(a.rounds_used, 500);
        assert!(a.half_width > 0.001, "hw = {}", a.half_width);
    }

    #[test]
    fn fresh_sampling_matches_exact_and_is_deterministic() {
        let points = random_discrete(8, 3, 151);
        let exact_objs = as_discrete(&points);
        let q = Point::new(1.5, -2.0);
        let want = quantification_exact(&exact_objs, q);
        let s = 20_000;
        let mut rng = SmallRng::seed_from_u64(152);
        let got = quantification_monte_carlo(&points, q, s, &mut rng);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 0.02, "i={i}: fresh={g} exact={w}");
        }
        // Identical seed => bit-identical estimate (the batch layer's
        // per-query-stream contract).
        let mut rng2 = SmallRng::seed_from_u64(152);
        let again = quantification_monte_carlo(&points, q, s, &mut rng2);
        assert_eq!(got, again);
        // The _into variant reusing a dirty buffer agrees exactly.
        let mut rng3 = SmallRng::seed_from_u64(152);
        let mut buf = vec![99.0; 3];
        quantification_monte_carlo_into(&points, q, s, &mut rng3, &mut buf);
        assert_eq!(got, buf);
    }

    #[test]
    fn point_stream_seed_separates_domains() {
        // Distinct (seed, id) pairs give distinct streams, and point
        // streams never collide with query streams at equal indices.
        let mut seen = std::collections::HashSet::new();
        for seed in [0u64, 1, 0x5eed] {
            for id in 0..64u64 {
                assert!(seen.insert(point_stream_seed(seed, id)));
            }
        }
        // Deterministic (pure function of its arguments).
        assert_eq!(point_stream_seed(7, 9), point_stream_seed(7, 9));
        // Domain separation vs the bare golden-ratio spread with no
        // constant: mixing id = 0 must still perturb the raw seed.
        assert_ne!(point_stream_seed(0x5eed, 0), 0x5eed);
    }

    #[test]
    fn adaptive_over_winners_matches_index_path() {
        // The free function over a static index's winner sequence must
        // reproduce quantify_adaptive_capped bit-for-bit.
        let points = random_discrete(9, 3, 170);
        let mut rng = SmallRng::seed_from_u64(171);
        let mc = MonteCarloIndex::build(&points, 700, McBackend::KdTree, &mut rng);
        let mut qrng = SmallRng::seed_from_u64(172);
        for _ in 0..12 {
            let q = Point::new(
                qrng.random_range(-25.0..25.0),
                qrng.random_range(-25.0..25.0),
            );
            let seed = mc.seed_for(q);
            let mut winners = Vec::new();
            mc.winners_into(q, seed, &mut winners);
            for (eps, cap) in [(0.05, 700usize), (1e-9, 700), (0.05, 64)] {
                let want = mc.quantify_adaptive_capped(q, eps, 0.01, ADAPTIVE_MIN_ROUNDS, cap);
                let got =
                    adaptive_over_winners(&winners, mc.len(), eps, 0.01, ADAPTIVE_MIN_ROUNDS, cap);
                assert_eq!(got, want, "eps={eps} cap={cap} q={q:?}");
            }
        }
    }

    #[test]
    fn samples_for_formula_shape() {
        // Quadratic in 1/eps, logarithmic in n and 1/delta.
        let s1 = MonteCarloIndex::samples_for(0.1, 0.1, 10, 2);
        let s2 = MonteCarloIndex::samples_for(0.05, 0.1, 10, 2);
        assert!(s2 >= 3 * s1, "s(ε/2) should be ~4x s(ε): {s1} vs {s2}");
        let s3 = MonteCarloIndex::samples_for(0.1, 0.1, 1000, 2);
        assert!(s3 < 4 * s1, "log growth in n violated: {s1} -> {s3}");
    }

    #[test]
    fn epsilon_for_inverts_samples_for() {
        for (eps, delta, n, k) in [(0.1, 0.01, 10, 2), (0.05, 0.1, 100, 3)] {
            let s = MonteCarloIndex::samples_for(eps, delta, n, k);
            let achieved = MonteCarloIndex::epsilon_for(s, delta, n, k);
            // Rounding s up can only improve the achieved accuracy.
            assert!(achieved <= eps + 1e-12, "{achieved} > {eps}");
            // Halving the budget must degrade it beyond the request.
            let degraded = MonteCarloIndex::epsilon_for(s / 4, delta, n, k);
            assert!(degraded > eps, "{degraded} <= {eps}");
        }
    }
}
