//! The probabilistic Voronoi diagram `𝒱_Pr(𝒫)` (paper §4.1).
//!
//! For discrete distributions, the `O(N²)` bisector lines of all pairs of
//! possible locations partition the plane into cells within which the
//! distance *order* of all `N` locations — and hence every quantification
//! probability (Eq. 2) — is constant. Lemma 4.1 bounds the size by `O(N⁴)`
//! and exhibits `Ω(n⁴)` with `k = 2`; Theorem 4.2 turns the refinement into
//! an exact constant-time-per-answer query structure.
//!
//! This is only practical for small `N` (the structure *is* the paper's
//! point about exact computation being expensive); it doubles as the exact
//! oracle for the approximation experiments.

use unn_distr::DiscreteDistribution;
use unn_geom::arrangement::{Arrangement, FaceLocator};
use unn_geom::segment::Line;
use unn_geom::{Aabb, Point, Segment};

use crate::error::{panic_message, QuantifyError};
use crate::exact::quantification_exact;

/// Exact quantification-probability point-location structure.
pub struct ProbabilisticVoronoi {
    arr: Arrangement,
    locator: FaceLocator,
    /// Probability vector per bounded face.
    probs: Vec<Vec<f64>>,
    objects: Vec<DiscreteDistribution>,
    bbox: Aabb,
}

impl ProbabilisticVoronoi {
    /// Builds `𝒱_Pr` (as the bisector refinement) inside `bbox`.
    ///
    /// Cost grows like `N⁴`; intended for small instances (`N ≲ 60`).
    pub fn build(objects: &[DiscreteDistribution], bbox: Aabb) -> Self {
        let locs: Vec<Point> = objects
            .iter()
            .flat_map(|o| o.points().iter().copied())
            .collect();
        let mut segments: Vec<Segment> = Vec::new();
        // Box boundary closes the faces.
        let c = [
            bbox.min,
            Point::new(bbox.max.x, bbox.min.y),
            bbox.max,
            Point::new(bbox.min.x, bbox.max.y),
        ];
        for i in 0..4 {
            segments.push(Segment::new(c[i], c[(i + 1) % 4]));
        }
        for i in 0..locs.len() {
            for j in (i + 1)..locs.len() {
                if locs[i] == locs[j] {
                    continue;
                }
                let b = Line::bisector(locs[i], locs[j]);
                if let Some(seg) = b.clip_to_box(&bbox) {
                    segments.push(seg);
                }
            }
        }
        let scale = bbox.width().max(bbox.height()).max(1.0);
        let arr = Arrangement::build(&segments, scale * 1e-12);
        let probs: Vec<Vec<f64>> = (0..arr.num_faces())
            .map(|fi| match arr.face_interior_point(fi) {
                Some(p) => quantification_exact(objects, p),
                None => vec![0.0; objects.len()],
            })
            .collect();
        let locator = FaceLocator::build(&arr, 128);
        ProbabilisticVoronoi {
            arr,
            locator,
            probs,
            objects: objects.to_vec(),
            bbox,
        }
    }

    /// Fallible [`ProbabilisticVoronoi::build`]: validates the inputs
    /// (finite box, finite support locations) and converts any construction
    /// panic into [`QuantifyError::Panicked`] instead of unwinding through
    /// the caller.
    pub fn try_build(objects: &[DiscreteDistribution], bbox: Aabb) -> Result<Self, QuantifyError> {
        if !(bbox.min.is_finite() && bbox.max.is_finite()) {
            return Err(QuantifyError::DegenerateInput(
                "bounding box has non-finite corners".into(),
            ));
        }
        if !(bbox.min.x < bbox.max.x && bbox.min.y < bbox.max.y) {
            return Err(QuantifyError::DegenerateInput(
                "bounding box is empty or inverted".into(),
            ));
        }
        for (i, o) in objects.iter().enumerate() {
            if let Some(p) = o.points().iter().find(|p| !p.is_finite()) {
                return Err(QuantifyError::DegenerateInput(format!(
                    "object {i} has non-finite location ({}, {})",
                    p.x, p.y
                )));
            }
        }
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| Self::build(objects, bbox)))
            .map_err(|payload| QuantifyError::Panicked(panic_message(payload)))
    }

    /// All `π_i(q)` by point location (`O(log N + n)`); falls back to the
    /// exact sweep outside the box.
    pub fn query(&self, q: Point) -> Vec<f64> {
        if self.bbox.contains(q) {
            if let Some(fi) = self.locator.locate(&self.arr, q) {
                return self.probs[fi].clone();
            }
        }
        quantification_exact(&self.objects, q)
    }

    /// Number of faces of the bisector refinement.
    pub fn num_refinement_faces(&self) -> usize {
        self.arr.num_faces()
    }

    /// Size of `𝒱_Pr` proper: the number of *maximal* regions with a
    /// constant probability vector, obtained by merging adjacent refinement
    /// faces whose vectors agree within `tol` — the quantity Lemma 4.1
    /// bounds by `O(N⁴)` and below by `Ω(n⁴)`.
    pub fn num_distinct_cells(&self, tol: f64) -> usize {
        let nf = self.arr.num_faces();
        // Union-find over faces.
        let mut parent: Vec<u32> = (0..nf as u32).collect();
        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut r = x;
            while parent[r as usize] != r {
                r = parent[r as usize];
            }
            let mut c = x;
            while parent[c as usize] != r {
                let nxt = parent[c as usize];
                parent[c as usize] = r;
                c = nxt;
            }
            r
        }
        // Face adjacency from shared boundary edges.
        let mut edge_faces: std::collections::HashMap<(u32, u32), Vec<u32>> = Default::default();
        for (fi, f) in self.arr.faces().iter().enumerate() {
            let b = &f.boundary;
            for i in 0..b.len() {
                let key = (
                    b[i].min(b[(i + 1) % b.len()]),
                    b[i].max(b[(i + 1) % b.len()]),
                );
                edge_faces.entry(key).or_default().push(fi as u32);
            }
        }
        for faces in edge_faces.values() {
            if faces.len() == 2 && faces[0] != faces[1] {
                let (a, b) = (faces[0], faces[1]);
                let same = self.probs[a as usize]
                    .iter()
                    .zip(&self.probs[b as usize])
                    .all(|(x, y)| (x - y).abs() <= tol);
                if same {
                    let ra = find(&mut parent, a);
                    let rb = find(&mut parent, b);
                    if ra != rb {
                        parent[ra as usize] = rb;
                    }
                }
            }
        }
        let mut roots: std::collections::HashSet<u32> = Default::default();
        for i in 0..nf as u32 {
            roots.insert(find(&mut parent, i));
        }
        roots.len()
    }

    /// The Lemma 4.1 `Ω(n⁴)` construction: `n` objects with `k = 2`, the
    /// near locations on the unit disk in "general position", the far
    /// locations slightly perturbed around `(100, 0)`.
    pub fn lower_bound_instance(n: usize) -> Vec<DiscreteDistribution> {
        assert!(n >= 2);
        (0..n)
            .map(|i| {
                // Near locations with irrational-ish spacing so all bisector
                // pairs cross inside the unit disk.
                let a = 0.7 + 2.39996 * i as f64; // golden-angle spiral
                let r = 0.2 + 0.7 * ((i + 1) as f64 / n as f64);
                let near = Point::new(r * a.cos(), r * a.sin());
                let far = Point::new(100.0 + 0.01 * i as f64, 0.002 * i as f64);
                // Literal finite locations and weights: `new` cannot fail.
                DiscreteDistribution::new(vec![near, far], vec![0.5, 0.5])
                    .unwrap_or_else(|e| unreachable!("{e}"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn bbox() -> Aabb {
        Aabb::new(Point::new(-30.0, -30.0), Point::new(30.0, 30.0))
    }

    fn random_objects(n: usize, k: usize, seed: u64) -> Vec<DiscreteDistribution> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let pts: Vec<Point> = (0..k)
                    .map(|_| {
                        Point::new(rng.random_range(-15.0..15.0), rng.random_range(-15.0..15.0))
                    })
                    .collect();
                DiscreteDistribution::uniform(pts).unwrap()
            })
            .collect()
    }

    #[test]
    fn queries_match_exact_sweep() {
        let objs = random_objects(4, 2, 170);
        let vpr = ProbabilisticVoronoi::build(&objs, bbox());
        let mut rng = SmallRng::seed_from_u64(171);
        let mut checked = 0;
        for _ in 0..200 {
            let q = Point::new(rng.random_range(-25.0..25.0), rng.random_range(-25.0..25.0));
            let got = vpr.query(q);
            let want = quantification_exact(&objs, q);
            // Points on/near bisectors may land in either face; skip them.
            let min_gap = min_bisector_gap(&objs, q);
            if min_gap < 1e-6 {
                continue;
            }
            checked += 1;
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9, "q={q:?}: {got:?} vs {want:?}");
            }
        }
        assert!(checked > 150);
    }

    fn min_bisector_gap(objs: &[DiscreteDistribution], q: Point) -> f64 {
        let locs: Vec<Point> = objs
            .iter()
            .flat_map(|o| o.points().iter().copied())
            .collect();
        let mut gap = f64::INFINITY;
        for i in 0..locs.len() {
            for j in (i + 1)..locs.len() {
                gap = gap.min((locs[i].dist(q) - locs[j].dist(q)).abs());
            }
        }
        gap
    }

    #[test]
    fn refinement_face_count_near_theory() {
        // M lines in general position produce 1 + M + C(M,2) faces
        // (clipped to a box that contains all intersections: the unbounded
        // face splits into 2M boundary-adjacent pieces... we only check the
        // leading-order growth).
        let objs = random_objects(3, 2, 172);
        let vpr = ProbabilisticVoronoi::build(&objs, bbox());
        let m = 15; // C(6,2) bisectors
        let faces = vpr.num_refinement_faces();
        // Between the unclipped lower bound and a generous upper bound.
        assert!(
            faces > m && faces <= 2 * (1 + m + m * (m - 1) / 2),
            "faces = {faces}"
        );
    }

    #[test]
    fn distinct_cells_below_refinement() {
        let objs = random_objects(4, 2, 173);
        let vpr = ProbabilisticVoronoi::build(&objs, bbox());
        let distinct = vpr.num_distinct_cells(1e-12);
        assert!(distinct <= vpr.num_refinement_faces());
        assert!(distinct > 1);
    }

    #[test]
    fn lower_bound_instance_grows_fast() {
        // Lemma 4.1: with k = 2 the number of distinct cells grows ~ n^4
        // inside the unit disk. Check super-quadratic growth on small n.
        let count = |n: usize| {
            let objs = ProbabilisticVoronoi::lower_bound_instance(n);
            // Focus on the unit disk region where the action is.
            let vpr = ProbabilisticVoronoi::build(
                &objs,
                Aabb::new(Point::new(-1.5, -1.5), Point::new(1.5, 1.5)),
            );
            vpr.num_distinct_cells(1e-12)
        };
        let c3 = count(3);
        let c6 = count(6);
        // n^4 growth predicts c6/c3 = 16; even allowing boundary effects the
        // ratio must far exceed quadratic (4).
        assert!(
            c6 as f64 >= 6.0 * c3 as f64,
            "c3 = {c3}, c6 = {c6}: growth too slow"
        );
    }
}
