//! # unn-quantify — quantification probabilities (paper §4)
//!
//! Everything needed to return the probabilities `π_i(q)` of each uncertain
//! point being the nearest neighbor of a query:
//!
//! * [`exact`] — exact sweep evaluation of Eq. 2 (discrete case);
//! * [`montecarlo`] — the `s`-round instantiation structure (Thm 4.3/4.5);
//! * [`spiral`] — deterministic spiral-search truncation (Thm 4.7);
//! * [`vpr`] — the probabilistic Voronoi diagram `𝒱_Pr` (Thm 4.2);
//! * [`numeric`] — adaptive numeric integration of Eq. 1 (the `[CKP04]`
//!   baseline for continuous distributions);
//! * [`threshold`] — probability-threshold NN queries on top of the
//!   estimators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod exact;
pub mod knn;
pub mod montecarlo;
pub mod numeric;
pub mod spiral;
pub mod threshold;
pub mod vpr;

pub use error::{panic_message, QuantifyError};
pub use exact::{
    quantification_exact, quantification_exact_into, quantification_exact_recompute, ExactScratch,
};
pub use knn::knn_membership_exact;
pub use montecarlo::{
    adaptive_over_winners, point_stream_seed, quantification_monte_carlo,
    quantification_monte_carlo_into, AdaptiveQuantify, McBackend, MonteCarloIndex,
    ADAPTIVE_MIN_ROUNDS,
};
pub use numeric::quantification_numeric;
pub use spiral::{SpiralBackend, SpiralIndex};
pub use threshold::{threshold_query_spiral, ThresholdResult};
pub use vpr::ProbabilisticVoronoi;
