//! Exact quantification probabilities for discrete distributions (Eq. 2).
//!
//! For a query `q`, the probability that `P_i` is the nearest neighbor is
//!
//! ```text
//!   π_i(q) = Σ_{p_ia ∈ P_i} w_ia · Π_{j≠i} (1 - G_{q,j}(d(p_ia, q)))
//! ```
//!
//! Evaluated by one sweep over all `N = nk` locations in increasing distance
//! from `q`: the factors `1 - G_{q,j}` only change at location distances, so
//! a running product (maintained in log space with structural-zero counting,
//! see [`quantification_exact`]) yields all `π_i(q)` in `O(N log N)` time.
//! Ties in distance are processed as groups: Eq. 2's cdf `G_{q,j}(r)` counts
//! locations at distance *equal* to `r`, so a tie group first updates every
//! factor, then credits every member.
//!
//! [`quantification_exact_recompute`] is the `O(N·n)` reference that
//! recomputes each product from scratch — the numeric oracle for tests and
//! the E14 ablation.

use unn_distr::{DiscreteDistribution, UncertainPoint};
use unn_geom::Point;

/// Reusable buffers for [`quantification_exact_into`].
///
/// The Eq. 2 sweep needs `O(N)` working memory (the distance-sorted location
/// list and the running cdf factors); batch query loops reuse one scratch
/// per worker so the hot path performs no allocation beyond the output.
#[derive(Clone, Debug, Default)]
pub struct ExactScratch {
    locs: Vec<(f64, u32, f64)>,
    rem: Vec<f64>,
    left: Vec<usize>,
}

/// All quantification probabilities `π_i(q)`, exactly (up to f64 rounding).
///
/// Returns one probability per object, in input order; they sum to 1.
pub fn quantification_exact(objects: &[DiscreteDistribution], q: Point) -> Vec<f64> {
    let mut pi = Vec::new();
    quantification_exact_into(objects, q, &mut pi, &mut ExactScratch::default());
    pi
}

/// [`quantification_exact`] writing into caller-provided buffers.
///
/// `pi` is cleared and resized to `objects.len()`; `scratch` holds the
/// sweep's working memory across calls. Identical output to the allocating
/// entry point.
pub fn quantification_exact_into(
    objects: &[DiscreteDistribution],
    q: Point,
    pi: &mut Vec<f64>,
    scratch: &mut ExactScratch,
) {
    let n = objects.len();
    pi.clear();
    pi.resize(n, 0.0);
    if n == 0 {
        return;
    }
    // (distance, object, weight), sorted by distance.
    let locs = &mut scratch.locs;
    locs.clear();
    for (j, obj) in objects.iter().enumerate() {
        for (p, w) in obj.points().iter().zip(obj.weights()) {
            locs.push((p.dist(q), j as u32, *w));
        }
    }
    locs.sort_by(|a, b| a.0.total_cmp(&b.0));
    unn_observe::exact_touches(locs.len() as u64);

    // Running factors rem[j] = 1 - G_{q,j}(current distance).
    let rem = &mut scratch.rem;
    rem.clear();
    rem.resize(n, 1.0);
    let left = &mut scratch.left; // remaining (unconsumed) locations
    left.clear();
    left.resize(n, 0);
    for &(_, j, _) in locs.iter() {
        left[j as usize] += 1;
    }
    // Product over j of rem[j], as (sum of logs of nonzero rem, zero count).
    let mut log_p = 0.0f64;
    let mut zeros = 0usize;

    let len = locs.len();
    let mut idx = 0;
    while idx < len {
        let d = locs[idx].0;
        let mut end = idx;
        while end < len && locs[end].0 == d {
            end += 1;
        }
        // Phase 1: fold the whole tie group into the cdfs.
        for &(_, j, w) in &locs[idx..end] {
            let j = j as usize;
            let old = rem[j];
            left[j] -= 1;
            let new = if left[j] == 0 {
                0.0
            } else {
                (old - w).max(0.0)
            };
            if old > 0.0 {
                log_p -= old.ln();
            } else {
                zeros -= 1;
            }
            if new > 0.0 {
                log_p += new.ln();
            } else {
                zeros += 1;
            }
            rem[j] = new;
        }
        // Phase 2: credit every member of the group with
        // w · Π_{l≠j} rem[l].
        for &(_, j, w) in &locs[idx..end] {
            let j = j as usize;
            let contrib = if rem[j] > 0.0 {
                if zeros == 0 {
                    (log_p - rem[j].ln()).exp()
                } else {
                    0.0
                }
            } else if zeros == 1 {
                log_p.exp()
            } else {
                0.0
            };
            pi[j] += w * contrib;
        }
        idx = end;
    }
}

/// Reference implementation recomputing each product from scratch
/// (`O(N·n)`): the oracle for the sweep above.
pub fn quantification_exact_recompute(objects: &[DiscreteDistribution], q: Point) -> Vec<f64> {
    let n = objects.len();
    let mut pi = vec![0.0; n];
    for (i, obj) in objects.iter().enumerate() {
        for (p, w) in obj.points().iter().zip(obj.weights()) {
            let r = p.dist(q);
            let mut prod = 1.0;
            for (j, other) in objects.iter().enumerate() {
                if j == i {
                    continue;
                }
                prod *= 1.0 - other.distance_cdf(q, r);
                if prod == 0.0 {
                    break;
                }
            }
            pi[i] += w * prod;
        }
    }
    pi
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn obj(pts: &[(f64, f64)], ws: &[f64]) -> DiscreteDistribution {
        DiscreteDistribution::new(
            pts.iter().map(|&(x, y)| Point::new(x, y)).collect(),
            ws.to_vec(),
        )
        .unwrap()
    }

    fn random_objects(n: usize, k: usize, seed: u64) -> Vec<DiscreteDistribution> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let cx: f64 = rng.random_range(-20.0..20.0);
                let cy: f64 = rng.random_range(-20.0..20.0);
                let pts: Vec<Point> = (0..k)
                    .map(|_| {
                        Point::new(
                            cx + rng.random_range(-3.0..3.0),
                            cy + rng.random_range(-3.0..3.0),
                        )
                    })
                    .collect();
                let ws: Vec<f64> = (0..k).map(|_| rng.random_range(0.1..5.0)).collect();
                DiscreteDistribution::new(pts, ws).unwrap()
            })
            .collect()
    }

    #[test]
    fn two_certain_points() {
        let objs = vec![obj(&[(0.0, 0.0)], &[1.0]), obj(&[(10.0, 0.0)], &[1.0])];
        let pi = quantification_exact(&objs, Point::new(1.0, 0.0));
        assert!((pi[0] - 1.0).abs() < 1e-12);
        assert!(pi[1].abs() < 1e-12);
    }

    #[test]
    fn coin_flip_objects() {
        // Two objects, each 50/50 between a near and a far location,
        // symmetric around q: P(A nearer) = w_near,A * (prob B not nearer) …
        // enumerate by hand: A at d=1 (0.5) or d=3 (0.5); B at d=2 (0.5) or
        // d=4 (0.5). P(A NN): A=1: B always farther: 0.5. A=3: B=4 case:
        // 0.5*0.5 = 0.25. Total 0.75; B gets 0.25.
        let objs = vec![
            obj(&[(1.0, 0.0), (3.0, 0.0)], &[0.5, 0.5]),
            obj(&[(2.0, 0.0), (4.0, 0.0)], &[0.5, 0.5]),
        ];
        let pi = quantification_exact(&objs, Point::new(0.0, 0.0));
        assert!((pi[0] - 0.75).abs() < 1e-12, "{pi:?}");
        assert!((pi[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ties_are_counted_le() {
        // Two certain points at the same distance: Eq. 2 uses
        // G(d) with <=, so each sees the other as "already there":
        // both get w * (1 - 1) = 0. The paper's convention makes
        // exact ties contribute zero mass to both (a measure-zero event for
        // continuous data; degenerate by construction here).
        let objs = vec![obj(&[(1.0, 0.0)], &[1.0]), obj(&[(-1.0, 0.0)], &[1.0])];
        let pi = quantification_exact(&objs, Point::new(0.0, 0.0));
        assert_eq!(pi, vec![0.0, 0.0]);
    }

    #[test]
    fn sweep_matches_recompute_oracle() {
        for seed in 120..125 {
            let objs = random_objects(8, 4, seed);
            let mut rng = SmallRng::seed_from_u64(seed + 1000);
            for _ in 0..20 {
                let q = Point::new(rng.random_range(-30.0..30.0), rng.random_range(-30.0..30.0));
                let a = quantification_exact(&objs, q);
                let b = quantification_exact_recompute(&objs, q);
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() < 1e-10, "{x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let objs = random_objects(10, 5, 130);
        let mut rng = SmallRng::seed_from_u64(131);
        for _ in 0..50 {
            let q = Point::new(rng.random_range(-30.0..30.0), rng.random_range(-30.0..30.0));
            let pi = quantification_exact(&objs, q);
            let sum: f64 = pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
            assert!(pi.iter().all(|&p| (-1e-12..=1.0 + 1e-12).contains(&p)));
        }
    }

    #[test]
    fn matches_monte_carlo_simulation() {
        let objs = random_objects(5, 3, 132);
        let q = Point::new(0.0, 0.0);
        let pi = quantification_exact(&objs, q);
        // Simulate.
        use unn_distr::UncertainPoint;
        let mut rng = SmallRng::seed_from_u64(133);
        let trials = 200_000;
        let mut wins = vec![0u32; objs.len()];
        for _ in 0..trials {
            let mut best = (0usize, f64::INFINITY);
            for (i, o) in objs.iter().enumerate() {
                let d = o.sample(&mut rng).dist(q);
                if d < best.1 {
                    best = (i, d);
                }
            }
            wins[best.0] += 1;
        }
        for (i, &w) in wins.iter().enumerate() {
            let freq = w as f64 / trials as f64;
            assert!(
                (freq - pi[i]).abs() < 0.005,
                "i={i}: sim {freq} vs exact {}",
                pi[i]
            );
        }
    }

    #[test]
    fn vpr_lower_bound_probabilities() {
        // Lemma 4.1's construction: P_i has a near location p_i and a far
        // location p'_i ≈ (100, 0), each with probability 1/2. The paper
        // states the degenerate (all p'_i coincident) configuration; here
        // the far points are perturbed into general position, for which
        // Eq. 2 gives exactly π_i(q) = 0.5^{r+1} for the near rank r, plus
        // 0.5^n for the single object whose far location is closest.
        let n = 5;
        let mut objs = Vec::new();
        for i in 0..n {
            let angle = i as f64;
            objs.push(obj(
                &[
                    (
                        0.3 * angle.cos() * (1.0 + 0.1 * i as f64),
                        0.3 * angle.sin() * (1.0 + 0.1 * i as f64),
                    ),
                    (100.0 + 0.01 * i as f64, 0.0),
                ],
                &[0.5, 0.5],
            ));
        }
        let q = Point::new(0.01, 0.02);
        let pi = quantification_exact(&objs, q);
        // Rank the near locations by distance to q.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            objs[a].points()[0]
                .dist(q)
                .total_cmp(&objs[b].points()[0].dist(q))
        });
        for (r, &i) in order.iter().enumerate() {
            let far_bonus = if i == 0 { 0.5f64.powi(n as i32) } else { 0.0 };
            let want = 0.5f64.powi(r as i32 + 1) + far_bonus;
            assert!(
                (pi[i] - want).abs() < 1e-12,
                "rank {r}: pi = {}, want {want}",
                pi[i]
            );
        }
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_sweep_equals_oracle(
            seed in 0u64..10_000, qx in -30.0f64..30.0, qy in -30.0f64..30.0,
        ) {
            let objs = random_objects(6, 3, seed);
            let q = Point::new(qx, qy);
            let a = quantification_exact(&objs, q);
            let b = quantification_exact_recompute(&objs, q);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-10);
            }
        }
    }
}
