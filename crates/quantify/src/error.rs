//! Typed errors for the quantification estimators.

/// Why a quantification structure could not be built or queried.
#[derive(Clone, Debug, PartialEq)]
pub enum QuantifyError {
    /// The input set is degenerate for the requested structure (non-finite
    /// locations, duplicate sites feeding a bisector arrangement, …).
    DegenerateInput(String),
    /// Construction or evaluation panicked; the panic was caught at the
    /// API boundary and converted (the `try_*` entry points guarantee no
    /// panic escapes them).
    Panicked(String),
}

impl core::fmt::Display for QuantifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QuantifyError::DegenerateInput(why) => write!(f, "degenerate input: {why}"),
            QuantifyError::Panicked(msg) => write!(f, "caught panic: {msg}"),
        }
    }
}

impl std::error::Error for QuantifyError {}

/// Best-effort extraction of a panic payload's message (panics carry
/// `&str` or `String` in practice).
pub fn panic_message(payload: Box<dyn core::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
