//! Probabilistic k-NN membership (the kNN extension of §1.2, `[JCLY11]`).
//!
//! `π_i^{(k)}(q)` = probability that `P_i` is among the `k` nearest
//! uncertain points of `q`. For discrete distributions this is exactly
//! computable: condition on `P_i = p_ia` at distance `r`; every other
//! object is independently "closer" with probability `G_{q,j}(r)`, so the
//! number of closer objects is Poisson-binomial and
//!
//! ```text
//!   π_i^{(k)}(q) = Σ_a w_ia · Pr[ #closer ≤ k-1 ]
//! ```
//!
//! evaluated by the standard `O(n·k)` dynamic program per location
//! (`O(N·n·k)` per query). For `k = 1` this coincides with the
//! quantification probability of Eq. 2 (same `≤` tie convention).

use unn_distr::{DiscreteDistribution, UncertainPoint};
use unn_geom::Point;

/// Exact k-NN membership probabilities for all objects.
pub fn knn_membership_exact(objects: &[DiscreteDistribution], q: Point, k: usize) -> Vec<f64> {
    let n = objects.len();
    assert!(k >= 1, "k must be at least 1");
    let mut out = vec![0.0; n];
    if n == 0 {
        return out;
    }
    if k >= n {
        return vec![1.0; n];
    }
    // Distances of every location, grouped per object.
    for (i, obj) in objects.iter().enumerate() {
        for (p, &w) in obj.points().iter().zip(obj.weights()) {
            let r = p.dist(q);
            // Probabilities that each other object is within distance r.
            // Poisson-binomial DP over "number of successes", truncated at k.
            let mut dp = vec![0.0f64; k + 1];
            dp[0] = 1.0;
            for (j, other) in objects.iter().enumerate() {
                if j == i {
                    continue;
                }
                let g = other.distance_cdf(q, r).clamp(0.0, 1.0);
                if g == 0.0 {
                    continue;
                }
                for c in (0..k).rev() {
                    let move_up = dp[c] * g;
                    dp[c + 1] += move_up;
                    dp[c] -= move_up;
                }
                // dp[k] absorbs overflow mass (c >= k), dropped implicitly:
                // we only need Pr[#closer <= k-1] = sum dp[0..k].
            }
            let p_le: f64 = dp[..k].iter().sum();
            out[i] += w * p_le;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::quantification_exact;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_objects(n: usize, kk: usize, seed: u64) -> Vec<DiscreteDistribution> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let cx: f64 = rng.random_range(-20.0..20.0);
                let cy: f64 = rng.random_range(-20.0..20.0);
                let pts: Vec<Point> = (0..kk)
                    .map(|_| {
                        Point::new(
                            cx + rng.random_range(-4.0..4.0),
                            cy + rng.random_range(-4.0..4.0),
                        )
                    })
                    .collect();
                DiscreteDistribution::uniform(pts).unwrap()
            })
            .collect()
    }

    #[test]
    fn k1_equals_quantification() {
        let objs = random_objects(8, 3, 800);
        let mut rng = SmallRng::seed_from_u64(801);
        for _ in 0..30 {
            let q = Point::new(rng.random_range(-25.0..25.0), rng.random_range(-25.0..25.0));
            let a = knn_membership_exact(&objs, q, 1);
            let b = quantification_exact(&objs, q);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-10, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn membership_sums_to_k() {
        // Expected number of objects in the top-k is exactly k (assuming no
        // distance ties), so the probabilities sum to k.
        let objs = random_objects(9, 3, 802);
        let q = Point::new(1.0, -2.0);
        for k in 1..=9 {
            let pi = knn_membership_exact(&objs, q, k);
            let sum: f64 = pi.iter().sum();
            assert!((sum - k as f64).abs() < 1e-9, "k={k}: sum = {sum}");
        }
    }

    #[test]
    fn monotone_in_k() {
        let objs = random_objects(7, 4, 803);
        let q = Point::new(0.0, 0.0);
        let mut prev = vec![0.0; objs.len()];
        for k in 1..=7 {
            let pi = knn_membership_exact(&objs, q, k);
            for (a, b) in pi.iter().zip(&prev) {
                assert!(a + 1e-12 >= *b, "membership decreased with k");
            }
            prev = pi;
        }
        assert!(prev.iter().all(|&p| (p - 1.0).abs() < 1e-12));
    }

    #[test]
    fn matches_monte_carlo_simulation() {
        let objs = random_objects(6, 2, 804);
        let q = Point::new(2.0, 2.0);
        let k = 3;
        let exact = knn_membership_exact(&objs, q, k);
        let mut rng = SmallRng::seed_from_u64(805);
        let trials = 100_000;
        let mut counts = vec![0u32; objs.len()];
        for _ in 0..trials {
            let mut dists: Vec<(usize, f64)> = objs
                .iter()
                .enumerate()
                .map(|(i, o)| (i, o.sample(&mut rng).dist(q)))
                .collect();
            dists.sort_by(|a, b| a.1.total_cmp(&b.1));
            for &(i, _) in dists.iter().take(k) {
                counts[i] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - exact[i]).abs() < 0.01,
                "i={i}: sim {freq} vs exact {}",
                exact[i]
            );
        }
    }

    #[test]
    fn degenerate_cases() {
        assert!(knn_membership_exact(&[], Point::ORIGIN, 1).is_empty());
        let one = vec![DiscreteDistribution::certain(Point::ORIGIN)];
        assert_eq!(
            knn_membership_exact(&one, Point::new(1.0, 0.0), 1),
            vec![1.0]
        );
        let objs = random_objects(4, 2, 806);
        assert_eq!(knn_membership_exact(&objs, Point::ORIGIN, 10), vec![1.0; 4]);
    }
}
