//! Probability-threshold NN queries ([DYM⁺05]-style, built on the paper's
//! estimators).
//!
//! Report every `P_i` with `π_i(q) > τ`. Running any ε-estimator with
//! `ε = τ·margin/2` classifies correctly whenever the true probability is
//! at least `ε` away from the threshold; borderline objects are returned in
//! a separate "uncertain" bucket rather than silently misclassified.

use unn_geom::Point;

use crate::spiral::SpiralIndex;

/// Result of a threshold query.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ThresholdResult {
    /// Objects whose probability certainly exceeds the threshold.
    pub above: Vec<usize>,
    /// Objects whose estimate lies within the error band of the threshold —
    /// the estimator cannot decide at this precision.
    pub uncertain: Vec<usize>,
}

/// Threshold query on top of spiral search (deterministic guarantee):
/// classifies with `ε`-wide indecision bands around `τ` using the one-sided
/// bound `π̂ ≤ π ≤ π̂ + ε` of Lemma 4.6.
pub fn threshold_query_spiral(idx: &SpiralIndex, q: Point, tau: f64, eps: f64) -> ThresholdResult {
    assert!(tau > 0.0 && tau < 1.0);
    let pi = idx.query(q, eps);
    let mut res = ThresholdResult::default();
    for (i, &p) in pi.iter().enumerate() {
        // True value lies in [p, p + eps].
        if p > tau {
            res.above.push(i);
        } else if p + eps > tau {
            res.uncertain.push(i);
        }
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::quantification_exact;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};
    use unn_distr::DiscreteDistribution;

    fn random_objects(n: usize, k: usize, seed: u64) -> Vec<DiscreteDistribution> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let cx: f64 = rng.random_range(-20.0..20.0);
                let cy: f64 = rng.random_range(-20.0..20.0);
                let pts: Vec<Point> = (0..k)
                    .map(|_| {
                        Point::new(
                            cx + rng.random_range(-4.0..4.0),
                            cy + rng.random_range(-4.0..4.0),
                        )
                    })
                    .collect();
                DiscreteDistribution::uniform(pts).unwrap()
            })
            .collect()
    }

    #[test]
    fn classification_is_sound() {
        let objs = random_objects(10, 3, 190);
        let idx = SpiralIndex::build(&objs);
        let mut rng = SmallRng::seed_from_u64(191);
        for _ in 0..50 {
            let q = Point::new(rng.random_range(-30.0..30.0), rng.random_range(-30.0..30.0));
            let tau = 0.2;
            let eps = 0.05;
            let res = threshold_query_spiral(&idx, q, tau, eps);
            let exact = quantification_exact(&objs, q);
            for &i in &res.above {
                assert!(exact[i] > tau, "false positive: pi = {}", exact[i]);
            }
            // No true positive is missed entirely.
            for (i, &p) in exact.iter().enumerate() {
                if p > tau + eps {
                    assert!(res.above.contains(&i), "missed object {i} with pi = {p}");
                } else if p > tau {
                    assert!(
                        res.above.contains(&i) || res.uncertain.contains(&i),
                        "object {i} with pi = {p} not even flagged"
                    );
                }
            }
        }
    }

    #[test]
    fn tight_threshold_flags_uncertain() {
        // Symmetric pair: both probabilities 0.5; threshold at 0.5 with a
        // coarse eps must place them in above-or-uncertain, never drop them.
        let objs = vec![
            DiscreteDistribution::certain(Point::new(-1.0, 0.0)),
            DiscreteDistribution::certain(Point::new(1.0, 0.5)),
        ];
        let idx = SpiralIndex::build(&objs);
        let res = threshold_query_spiral(&idx, Point::new(0.0, 0.1), 0.4, 0.3);
        assert_eq!(res.above.len() + res.uncertain.len(), 1);
    }
}
