//! Zero-cost-when-disabled instrumentation for the query pipeline.
//!
//! The crate has two halves with different compilation stories:
//!
//! * **Counter hooks** ([`kd_node_visited`], [`ball_point`],
//!   [`mc_checkpoint`], …) — free functions the hot paths in
//!   `unn-spatial`, `unn-quantify`, and `unn-nonzero` call unconditionally.
//!   Without the `enabled` feature every hook is an empty
//!   `#[inline(always)]` function, so the instrumented build is
//!   byte-identical to an uninstrumented one (CI asserts the marker symbol
//!   [`unn_observe_counters_enabled`] is absent from default-feature release
//!   binaries). With `enabled`, hooks bump plain thread-local [`Cell`]
//!   counters — no atomics, no locks, no allocation on the query path.
//! * **Aggregation types** ([`QueryStats`], [`PipelineMetrics`],
//!   [`Histogram`], [`MetricsSnapshot`]) — always compiled. They also carry
//!   the *result-derived* fields (rounds used, outcome, certified accuracy)
//!   that the `unn` observed entry points fill in from query return values,
//!   so batch metrics stay meaningful even when the deep counters are
//!   compiled out.
//!
//! # Determinism contract
//!
//! Every non-timing field of a [`MetricsSnapshot`] is an order-independent
//! sum (or fixed-bucket histogram) of per-query quantities that are
//! themselves pure functions of `(index, query)`. Batch runs therefore
//! produce bit-identical deterministic snapshots for every thread count and
//! query order ([`MetricsSnapshot::deterministic`] zeroes the timing
//! fields; `tests/batch_determinism.rs` in the workspace root asserts the
//! contract at 1/2/8 threads). Wall-clock enters only through a
//! caller-injected [`Clock`]; tests inject [`NullClock`] and get all-zero
//! timing.

#[cfg(feature = "enabled")]
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Mutex;

/// Marker symbol for the CI codegen guard: exists if and only if the
/// counters were compiled in, so `nm | grep` on a release binary proves the
/// default build carries no instrumentation.
#[cfg(feature = "enabled")]
#[no_mangle]
#[inline(never)]
pub extern "C" fn unn_observe_counters_enabled() -> u8 {
    1
}

/// `true` when the crate was built with the `enabled` feature (the deep
/// counters are live); `false` when every hook is a no-op.
///
/// Routed through the `no_mangle` marker so any binary that asks keeps the
/// symbol alive for the `nm` guard (thin LTO would otherwise garbage-collect
/// the otherwise-unreferenced function).
#[inline]
pub fn counters_enabled() -> bool {
    #[cfg(feature = "enabled")]
    {
        unn_observe_counters_enabled() == 1
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

// ---------------------------------------------------------------------------
// Per-query counters (thread-local; zero-cost when disabled)
// ---------------------------------------------------------------------------

/// The raw per-query counters the structure-level hooks populate.
///
/// All zeros when the `enabled` feature is off.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CounterSet {
    /// Kd-tree nodes expanded (all [`KdTree`](../unn_spatial) traversals:
    /// nearest, range, `min_adjusted`, reporting).
    pub kd_nodes_visited: u64,
    /// Kd-tree subtrees cut by the branch-and-bound test.
    pub kd_nodes_pruned: u64,
    /// Points reported by `in_disk`/`in_disk_capped` ball traversals (the
    /// Monte-Carlo global-ball fold).
    pub ball_points_visited: u64,
    /// Round-forest nodes expanded (per-round descents).
    pub forest_nodes_visited: u64,
    /// Round-forest subtrees cut.
    pub forest_nodes_pruned: u64,
    /// Monte-Carlo rounds answered by the single-traversal global-ball
    /// fold (Δ-pruned fast path).
    pub mc_ball_rounds: u64,
    /// Monte-Carlo rounds answered by a per-round seeded descent
    /// (fallback / capped path).
    pub mc_descent_rounds: u64,
    /// Adaptive-stopping checkpoints evaluated.
    pub mc_checkpoints: u64,
    /// Candidates examined by the Lemma 2.1 stage-2 reporting pass
    /// (`NN≠0` two-stage structures).
    pub nonzero_candidates: u64,
    /// Locations touched by the exact Eq. 2 sweep.
    pub exact_location_touches: u64,
    /// Blocks of a dynamic (Bentley–Saxe) index probed by this query.
    pub dyn_blocks_probed: u64,
    /// Tombstoned entries skipped while composing this query across a
    /// dynamic index's blocks.
    pub dyn_tombstones_filtered: u64,
    /// Logarithmic-method block merges triggered (update-side counter:
    /// bumped by `insert`, not by queries).
    pub dyn_merges: u64,
    /// Tombstone compactions triggered (update-side counter).
    pub dyn_compactions: u64,
    /// Hot-block promotions: read-heavy merge-to-one rebuilds triggered by
    /// the read/update ratio heuristic (update-side counter).
    pub dyn_promotions: u64,
    /// Leaf points fed through the SoA scan kernels (batched or scalar) by
    /// this query's tree/forest traversals.
    pub leaf_points_scanned: u64,
    /// Full-width lane batches executed by the SoA scan kernels
    /// (`leaf_points_scanned / LANES`, rounded down per leaf).
    pub simd_batches: u64,
    /// The Δ(q) seed radius of the last Monte-Carlo query (`NaN`-free: 0
    /// when no seed was computed).
    pub seed_radius: f64,
}

#[cfg(feature = "enabled")]
struct Tls {
    kd_nodes_visited: Cell<u64>,
    kd_nodes_pruned: Cell<u64>,
    ball_points_visited: Cell<u64>,
    forest_nodes_visited: Cell<u64>,
    forest_nodes_pruned: Cell<u64>,
    mc_ball_rounds: Cell<u64>,
    mc_descent_rounds: Cell<u64>,
    mc_checkpoints: Cell<u64>,
    nonzero_candidates: Cell<u64>,
    exact_location_touches: Cell<u64>,
    dyn_blocks_probed: Cell<u64>,
    dyn_tombstones_filtered: Cell<u64>,
    dyn_merges: Cell<u64>,
    dyn_compactions: Cell<u64>,
    dyn_promotions: Cell<u64>,
    leaf_points_scanned: Cell<u64>,
    simd_batches: Cell<u64>,
    seed_radius: Cell<f64>,
}

#[cfg(feature = "enabled")]
thread_local! {
    static TLS: Tls = const {
        Tls {
            kd_nodes_visited: Cell::new(0),
            kd_nodes_pruned: Cell::new(0),
            ball_points_visited: Cell::new(0),
            forest_nodes_visited: Cell::new(0),
            forest_nodes_pruned: Cell::new(0),
            mc_ball_rounds: Cell::new(0),
            mc_descent_rounds: Cell::new(0),
            mc_checkpoints: Cell::new(0),
            nonzero_candidates: Cell::new(0),
            exact_location_touches: Cell::new(0),
            dyn_blocks_probed: Cell::new(0),
            dyn_tombstones_filtered: Cell::new(0),
            dyn_merges: Cell::new(0),
            dyn_compactions: Cell::new(0),
            dyn_promotions: Cell::new(0),
            leaf_points_scanned: Cell::new(0),
            simd_batches: Cell::new(0),
            seed_radius: Cell::new(0.0),
        }
    };
}

macro_rules! hooks {
    ($($(#[$doc:meta])* $name:ident => $field:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            #[cfg(feature = "enabled")]
            #[inline(always)]
            pub fn $name() {
                TLS.with(|t| t.$field.set(t.$field.get() + 1));
            }

            $(#[$doc])*
            #[cfg(not(feature = "enabled"))]
            #[inline(always)]
            pub fn $name() {}
        )*
    };
}

macro_rules! add_hooks {
    ($($(#[$doc:meta])* $name:ident => $field:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            #[cfg(feature = "enabled")]
            #[inline(always)]
            pub fn $name(n: u64) {
                TLS.with(|t| t.$field.set(t.$field.get() + n));
            }

            $(#[$doc])*
            #[cfg(not(feature = "enabled"))]
            #[inline(always)]
            pub fn $name(_n: u64) {}
        )*
    };
}

hooks! {
    /// One kd-tree node expanded.
    kd_node_visited => kd_nodes_visited,
    /// One kd-tree subtree pruned by its bound.
    kd_node_pruned => kd_nodes_pruned,
    /// One point reported by a disk-range traversal.
    ball_point => ball_points_visited,
    /// One round-forest node expanded.
    forest_node_visited => forest_nodes_visited,
    /// One round-forest subtree pruned.
    forest_node_pruned => forest_nodes_pruned,
    /// One Monte-Carlo round answered by the global-ball fold.
    mc_ball_round => mc_ball_rounds,
    /// One Monte-Carlo round answered by a per-round descent.
    mc_descent_round => mc_descent_rounds,
    /// One adaptive-stopping checkpoint evaluated.
    mc_checkpoint => mc_checkpoints,
    /// One Lemma 2.1 stage-2 candidate examined.
    nonzero_candidate => nonzero_candidates,
    /// One dynamic-index block probed by a composed query.
    dyn_block_probed => dyn_blocks_probed,
    /// One tombstoned entry filtered out of a composed query.
    dyn_tombstone_filtered => dyn_tombstones_filtered,
    /// One logarithmic-method block merge (update side).
    dyn_merge => dyn_merges,
    /// One tombstone compaction (update side).
    dyn_compaction => dyn_compactions,
    /// One hot-block promotion: read-ratio-triggered merge-to-one (update
    /// side).
    dyn_promotion => dyn_promotions,
}

add_hooks! {
    /// `n` locations touched by the exact quantification sweep.
    exact_touches => exact_location_touches,
    /// `n` Monte-Carlo rounds answered by the global-ball fold at once.
    mc_ball_rounds_add => mc_ball_rounds,
    /// `n` leaf points fed through an SoA scan kernel.
    leaf_points => leaf_points_scanned,
    /// `n` full-width lane batches executed by an SoA scan kernel.
    simd_batches_add => simd_batches,
}

/// Records the Δ(q) seed radius of the current query.
#[cfg(feature = "enabled")]
#[inline(always)]
pub fn seed_radius(r: f64) {
    TLS.with(|t| t.seed_radius.set(r));
}

/// Records the Δ(q) seed radius of the current query.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn seed_radius(_r: f64) {}

/// Resets the thread-local counters; call at the start of an observed
/// query. No-op (and free) when the counters are compiled out.
#[cfg(feature = "enabled")]
#[inline]
pub fn begin_query() {
    TLS.with(|t| {
        t.kd_nodes_visited.set(0);
        t.kd_nodes_pruned.set(0);
        t.ball_points_visited.set(0);
        t.forest_nodes_visited.set(0);
        t.forest_nodes_pruned.set(0);
        t.mc_ball_rounds.set(0);
        t.mc_descent_rounds.set(0);
        t.mc_checkpoints.set(0);
        t.nonzero_candidates.set(0);
        t.exact_location_touches.set(0);
        t.dyn_blocks_probed.set(0);
        t.dyn_tombstones_filtered.set(0);
        t.dyn_merges.set(0);
        t.dyn_compactions.set(0);
        t.dyn_promotions.set(0);
        t.leaf_points_scanned.set(0);
        t.simd_batches.set(0);
        t.seed_radius.set(0.0);
    });
}

/// Resets the thread-local counters; call at the start of an observed
/// query. No-op (and free) when the counters are compiled out.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn begin_query() {}

/// Reads the thread-local counters accumulated since [`begin_query`].
/// All-zero when the counters are compiled out.
#[cfg(feature = "enabled")]
#[inline]
pub fn take_counters() -> CounterSet {
    TLS.with(|t| CounterSet {
        kd_nodes_visited: t.kd_nodes_visited.get(),
        kd_nodes_pruned: t.kd_nodes_pruned.get(),
        ball_points_visited: t.ball_points_visited.get(),
        forest_nodes_visited: t.forest_nodes_visited.get(),
        forest_nodes_pruned: t.forest_nodes_pruned.get(),
        mc_ball_rounds: t.mc_ball_rounds.get(),
        mc_descent_rounds: t.mc_descent_rounds.get(),
        mc_checkpoints: t.mc_checkpoints.get(),
        nonzero_candidates: t.nonzero_candidates.get(),
        exact_location_touches: t.exact_location_touches.get(),
        dyn_blocks_probed: t.dyn_blocks_probed.get(),
        dyn_tombstones_filtered: t.dyn_tombstones_filtered.get(),
        dyn_merges: t.dyn_merges.get(),
        dyn_compactions: t.dyn_compactions.get(),
        dyn_promotions: t.dyn_promotions.get(),
        leaf_points_scanned: t.leaf_points_scanned.get(),
        simd_batches: t.simd_batches.get(),
        seed_radius: t.seed_radius.get(),
    })
}

/// Reads the thread-local counters accumulated since [`begin_query`].
/// All-zero when the counters are compiled out.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn take_counters() -> CounterSet {
    CounterSet::default()
}

// ---------------------------------------------------------------------------
// Network transport counters (process-global; zero-cost when disabled)
// ---------------------------------------------------------------------------

/// Totals from the network-transport hooks (`unn-net`). Unlike the
/// per-query [`CounterSet`] these are process-global atomics: transport
/// I/O happens on connection threads, not inside an observed query, so
/// thread-local accumulation would lose the counts. All zeros when the
/// `enabled` feature is off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Frames received (after length-prefix reassembly).
    pub frames_in: u64,
    /// Frames sent.
    pub frames_out: u64,
    /// Body bytes received (excluding length prefixes).
    pub bytes_in: u64,
    /// Body bytes sent (excluding length prefixes).
    pub bytes_out: u64,
    /// Frames that failed to decode (truncated / corrupt / unknown tag).
    pub decode_errors: u64,
    /// Handshakes rejected for a protocol-version mismatch.
    pub version_mismatches: u64,
    /// Client reconnects (a new connection replacing a broken one).
    pub reconnects: u64,
}

impl NetCounters {
    /// Merges another counter set in (field-wise sum).
    pub fn merge(&mut self, other: &NetCounters) {
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.decode_errors += other.decode_errors;
        self.version_mismatches += other.version_mismatches;
        self.reconnects += other.reconnects;
    }
}

#[cfg(feature = "enabled")]
mod net_atomics {
    use std::sync::atomic::AtomicU64;

    pub static FRAMES_IN: AtomicU64 = AtomicU64::new(0);
    pub static FRAMES_OUT: AtomicU64 = AtomicU64::new(0);
    pub static BYTES_IN: AtomicU64 = AtomicU64::new(0);
    pub static BYTES_OUT: AtomicU64 = AtomicU64::new(0);
    pub static DECODE_ERRORS: AtomicU64 = AtomicU64::new(0);
    pub static VERSION_MISMATCHES: AtomicU64 = AtomicU64::new(0);
    pub static RECONNECTS: AtomicU64 = AtomicU64::new(0);
}

/// One frame of `bytes` body bytes received.
#[cfg(feature = "enabled")]
#[inline(always)]
pub fn net_frame_in(bytes: u64) {
    net_atomics::FRAMES_IN.fetch_add(1, AtomicOrdering::Relaxed);
    net_atomics::BYTES_IN.fetch_add(bytes, AtomicOrdering::Relaxed);
}

/// One frame of `bytes` body bytes received.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn net_frame_in(_bytes: u64) {}

/// One frame of `bytes` body bytes sent.
#[cfg(feature = "enabled")]
#[inline(always)]
pub fn net_frame_out(bytes: u64) {
    net_atomics::FRAMES_OUT.fetch_add(1, AtomicOrdering::Relaxed);
    net_atomics::BYTES_OUT.fetch_add(bytes, AtomicOrdering::Relaxed);
}

/// One frame of `bytes` body bytes sent.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn net_frame_out(_bytes: u64) {}

/// One frame rejected by the decoder.
#[cfg(feature = "enabled")]
#[inline(always)]
pub fn net_decode_error() {
    net_atomics::DECODE_ERRORS.fetch_add(1, AtomicOrdering::Relaxed);
}

/// One frame rejected by the decoder.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn net_decode_error() {}

/// One handshake rejected for a version mismatch.
#[cfg(feature = "enabled")]
#[inline(always)]
pub fn net_version_mismatch() {
    net_atomics::VERSION_MISMATCHES.fetch_add(1, AtomicOrdering::Relaxed);
}

/// One handshake rejected for a version mismatch.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn net_version_mismatch() {}

/// One client reconnect.
#[cfg(feature = "enabled")]
#[inline(always)]
pub fn net_reconnect() {
    net_atomics::RECONNECTS.fetch_add(1, AtomicOrdering::Relaxed);
}

/// One client reconnect.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn net_reconnect() {}

/// Reads the process-global network counters. All-zero when the counters
/// are compiled out.
#[cfg(feature = "enabled")]
pub fn net_counters() -> NetCounters {
    let load = |a: &AtomicU64| a.load(AtomicOrdering::Relaxed);
    NetCounters {
        frames_in: load(&net_atomics::FRAMES_IN),
        frames_out: load(&net_atomics::FRAMES_OUT),
        bytes_in: load(&net_atomics::BYTES_IN),
        bytes_out: load(&net_atomics::BYTES_OUT),
        decode_errors: load(&net_atomics::DECODE_ERRORS),
        version_mismatches: load(&net_atomics::VERSION_MISMATCHES),
        reconnects: load(&net_atomics::RECONNECTS),
    }
}

/// Reads the process-global network counters. All-zero when the counters
/// are compiled out.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn net_counters() -> NetCounters {
    NetCounters::default()
}

/// Zeroes the process-global network counters (test isolation).
#[cfg(feature = "enabled")]
pub fn net_counters_reset() {
    let zero = |a: &AtomicU64| a.store(0, AtomicOrdering::Relaxed);
    zero(&net_atomics::FRAMES_IN);
    zero(&net_atomics::FRAMES_OUT);
    zero(&net_atomics::BYTES_IN);
    zero(&net_atomics::BYTES_OUT);
    zero(&net_atomics::DECODE_ERRORS);
    zero(&net_atomics::VERSION_MISMATCHES);
    zero(&net_atomics::RECONNECTS);
}

/// Zeroes the process-global network counters (test isolation).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn net_counters_reset() {}

// ---------------------------------------------------------------------------
// Optional trace events (feature `trace`, off by default)
// ---------------------------------------------------------------------------

/// Emits one human-readable event line on stderr (feature `trace` only;
/// compiled out — including the formatting of its arguments — otherwise).
#[macro_export]
macro_rules! trace_event {
    ($($arg:tt)*) => {
        #[cfg(feature = "trace")]
        {
            eprintln!("[unn::observe] {}", format_args!($($arg)*));
        }
    };
}

// ---------------------------------------------------------------------------
// Per-query stats and clocks
// ---------------------------------------------------------------------------

/// How an observed query ended.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The exact (or configured-accuracy) answer was produced.
    #[default]
    Exact,
    /// The budget forced the degraded fallback path.
    Degraded,
    /// The query returned a typed error (see [`QueryStats::error_label`]).
    Errored,
}

/// Stable labels for the `UnnError` variants, in declaration order; the
/// keys of [`MetricsShard::error_counts`]. `unn-observe` cannot depend on
/// `unn`, so errors cross the boundary as `&'static str` labels.
pub const ERROR_LABELS: [&str; 5] = [
    "invalid_distribution",
    "invalid_config",
    "degenerate_geometry",
    "budget_exhausted",
    "query_panicked",
];

/// The index of `label` in [`ERROR_LABELS`], if it is one.
pub fn error_label_index(label: &str) -> Option<usize> {
    ERROR_LABELS.iter().position(|&l| l == label)
}

/// Everything observed about one query: the structure-level counters plus
/// the result-derived fields the observed entry points fill in.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryStats {
    /// Structure-level counters (all zero unless the `enabled` feature is
    /// on).
    pub counters: CounterSet,
    /// Monte-Carlo rounds consumed (adaptive or budgeted paths; 0 for
    /// non-MC queries).
    pub rounds_used: u64,
    /// Rounds available (`s`); 0 for non-MC queries.
    pub rounds_total: u64,
    /// The honest certified accuracy the query reported (half-width /
    /// achieved ε); 0 when not applicable.
    pub achieved_epsilon: f64,
    /// How the query ended.
    pub outcome: QueryOutcome,
    /// Which [`ERROR_LABELS`] entry, when `outcome` is
    /// [`QueryOutcome::Errored`].
    pub error_label: Option<&'static str>,
    /// Wall-clock nanoseconds by the caller-injected [`Clock`] (0 under
    /// [`NullClock`]).
    pub wall_nanos: u64,
}

/// Caller-injected time source: the only way wall-clock enters the
/// pipeline, so determinism tests can inject [`NullClock`] and compare
/// snapshots bit-for-bit.
pub trait Clock: Sync {
    /// Nanoseconds from an arbitrary fixed origin (monotonic).
    fn now_nanos(&self) -> u64;
}

/// The deterministic clock: always 0. Timing fields vanish; everything
/// else is unaffected.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullClock;

impl Clock for NullClock {
    #[inline]
    fn now_nanos(&self) -> u64 {
        0
    }
}

/// A monotonic wall clock (process-relative origin) for production use.
#[derive(Clone, Copy, Debug, Default)]
pub struct MonotonicClock;

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        use std::sync::OnceLock;
        use std::time::Instant;
        static ORIGIN: OnceLock<Instant> = OnceLock::new();
        let origin = *ORIGIN.get_or_init(Instant::now);
        u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A manually-advanced clock for deterministic time-dependent logic
/// (retry backoff, circuit-breaker cooldowns): `now_nanos` reads an atomic
/// that only moves when a test calls [`VirtualClock::advance`]. Clones
/// share the same underlying instant.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    now: std::sync::Arc<AtomicU64>,
}

impl VirtualClock {
    /// A clock frozen at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.now.fetch_add(nanos, AtomicOrdering::Relaxed);
    }
}

impl Clock for VirtualClock {
    #[inline]
    fn now_nanos(&self) -> u64 {
        self.now.load(AtomicOrdering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Number of histogram buckets: bucket 0 holds value 0, bucket `b ≥ 1`
/// holds `[2^(b−1), 2^b)`, the last bucket is open-ended.
pub const HIST_BUCKETS: usize = 24;

/// A fixed-bucket power-of-two histogram of `u64` samples.
///
/// Bucket membership is a pure function of the sample, so histograms of
/// deterministic per-query quantities merge order-independently — the
/// property the batch determinism contract needs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counts (see [`HIST_BUCKETS`] for the bucket layout).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (exact integer sum: order-independent).
    pub sum: u128,
}

impl Histogram {
    /// The bucket index `value` falls into.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// The inclusive lower bound of bucket `b`.
    pub fn bucket_lo(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
    }

    /// Merges another histogram in (bucket-wise sum).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean sample value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `p`-quantile (the upper edge of the bucket the
    /// quantile falls in); `p` in `[0, 1]`.
    pub fn quantile_upper(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if b + 1 < HIST_BUCKETS {
                    Self::bucket_lo(b + 1).saturating_sub(1)
                } else {
                    u64::MAX
                };
            }
        }
        u64::MAX
    }
}

// ---------------------------------------------------------------------------
// Pipeline metrics
// ---------------------------------------------------------------------------

/// One worker's (or one aggregate's) metric totals. Every field except the
/// timing pair at the bottom is deterministic under the batch contract.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsShard {
    /// Queries recorded.
    pub queries: u64,
    /// Sum of [`CounterSet::kd_nodes_visited`] over recorded queries.
    pub kd_nodes_visited: u64,
    /// Sum of kd subtree prunes.
    pub kd_nodes_pruned: u64,
    /// Sum of ball-traversal point reports.
    pub ball_points_visited: u64,
    /// Sum of round-forest node expansions.
    pub forest_nodes_visited: u64,
    /// Sum of round-forest prunes.
    pub forest_nodes_pruned: u64,
    /// Rounds answered by the global-ball fold.
    pub mc_ball_rounds: u64,
    /// Rounds answered by per-round descents.
    pub mc_descent_rounds: u64,
    /// Adaptive checkpoints evaluated.
    pub mc_checkpoints: u64,
    /// Lemma 2.1 stage-2 candidates examined.
    pub nonzero_candidates: u64,
    /// Exact-sweep location touches.
    pub exact_location_touches: u64,
    /// Dynamic-index blocks probed by composed queries.
    pub dyn_blocks_probed: u64,
    /// Tombstones filtered out of composed queries.
    pub dyn_tombstones_filtered: u64,
    /// Dynamic-index block merges (update side).
    pub dyn_merges: u64,
    /// Dynamic-index tombstone compactions (update side).
    pub dyn_compactions: u64,
    /// Dynamic-index hot-block promotions (update side).
    pub dyn_promotions: u64,
    /// Leaf points fed through the SoA scan kernels.
    pub leaf_points_scanned: u64,
    /// Full-width lane batches executed by the SoA scan kernels.
    pub simd_batches: u64,
    /// Sum of Monte-Carlo rounds consumed.
    pub rounds_used: u64,
    /// Sum of rounds available (`s` per MC query).
    pub rounds_total: u64,
    /// Queries that ended [`QueryOutcome::Exact`].
    pub exact_count: u64,
    /// Queries that ended [`QueryOutcome::Degraded`].
    pub degraded_count: u64,
    /// Typed-error counts, keyed by [`ERROR_LABELS`].
    pub error_counts: [u64; ERROR_LABELS.len()],
    /// Network-transport totals folded in via [`MetricsShard::absorb_net`]
    /// (all-zero for purely in-process runs).
    pub net: NetCounters,
    /// Histogram of per-query `rounds_used`.
    pub rounds_hist: Histogram,
    /// Histogram of per-query wall nanoseconds — **timing**, excluded from
    /// the deterministic snapshot.
    pub latency_hist: Histogram,
    /// Total wall nanoseconds — **timing**, excluded from the
    /// deterministic snapshot.
    pub wall_nanos: u128,
}

impl MetricsShard {
    /// Folds one query's stats in.
    pub fn record(&mut self, stats: &QueryStats) {
        self.queries += 1;
        let c = &stats.counters;
        self.kd_nodes_visited += c.kd_nodes_visited;
        self.kd_nodes_pruned += c.kd_nodes_pruned;
        self.ball_points_visited += c.ball_points_visited;
        self.forest_nodes_visited += c.forest_nodes_visited;
        self.forest_nodes_pruned += c.forest_nodes_pruned;
        self.mc_ball_rounds += c.mc_ball_rounds;
        self.mc_descent_rounds += c.mc_descent_rounds;
        self.mc_checkpoints += c.mc_checkpoints;
        self.nonzero_candidates += c.nonzero_candidates;
        self.exact_location_touches += c.exact_location_touches;
        self.dyn_blocks_probed += c.dyn_blocks_probed;
        self.dyn_tombstones_filtered += c.dyn_tombstones_filtered;
        self.dyn_merges += c.dyn_merges;
        self.dyn_compactions += c.dyn_compactions;
        self.dyn_promotions += c.dyn_promotions;
        self.leaf_points_scanned += c.leaf_points_scanned;
        self.simd_batches += c.simd_batches;
        self.rounds_used += stats.rounds_used;
        self.rounds_total += stats.rounds_total;
        match stats.outcome {
            QueryOutcome::Exact => self.exact_count += 1,
            QueryOutcome::Degraded => self.degraded_count += 1,
            QueryOutcome::Errored => {
                if let Some(i) = stats.error_label.and_then(error_label_index) {
                    self.error_counts[i] += 1;
                }
            }
        }
        self.rounds_hist.record(stats.rounds_used);
        self.latency_hist.record(stats.wall_nanos);
        self.wall_nanos += stats.wall_nanos as u128;
    }

    /// Folds network-transport totals in (typically the [`net_counters`]
    /// reading taken when the snapshot is assembled).
    pub fn absorb_net(&mut self, net: &NetCounters) {
        self.net.merge(net);
    }

    /// Merges another shard in (field-wise sum).
    pub fn merge(&mut self, other: &MetricsShard) {
        self.queries += other.queries;
        self.kd_nodes_visited += other.kd_nodes_visited;
        self.kd_nodes_pruned += other.kd_nodes_pruned;
        self.ball_points_visited += other.ball_points_visited;
        self.forest_nodes_visited += other.forest_nodes_visited;
        self.forest_nodes_pruned += other.forest_nodes_pruned;
        self.mc_ball_rounds += other.mc_ball_rounds;
        self.mc_descent_rounds += other.mc_descent_rounds;
        self.mc_checkpoints += other.mc_checkpoints;
        self.nonzero_candidates += other.nonzero_candidates;
        self.exact_location_touches += other.exact_location_touches;
        self.dyn_blocks_probed += other.dyn_blocks_probed;
        self.dyn_tombstones_filtered += other.dyn_tombstones_filtered;
        self.dyn_merges += other.dyn_merges;
        self.dyn_compactions += other.dyn_compactions;
        self.dyn_promotions += other.dyn_promotions;
        self.leaf_points_scanned += other.leaf_points_scanned;
        self.simd_batches += other.simd_batches;
        self.rounds_used += other.rounds_used;
        self.rounds_total += other.rounds_total;
        self.exact_count += other.exact_count;
        self.degraded_count += other.degraded_count;
        for (a, b) in self.error_counts.iter_mut().zip(&other.error_counts) {
            *a += b;
        }
        self.net.merge(&other.net);
        self.rounds_hist.merge(&other.rounds_hist);
        self.latency_hist.merge(&other.latency_hist);
        self.wall_nanos += other.wall_nanos;
    }
}

/// Batch-run metrics aggregator: workers record into private
/// [`ShardHandle`]s (no contention on the query path) which merge into the
/// shared total once, when the worker's handle drops.
#[derive(Debug, Default)]
pub struct PipelineMetrics {
    total: Mutex<MetricsShard>,
}

impl PipelineMetrics {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// A private per-worker shard; its totals join [`snapshot`] when the
    /// handle drops. Hand one to each worker (e.g. via rayon `map_init`).
    ///
    /// [`snapshot`]: PipelineMetrics::snapshot
    pub fn shard(&self) -> ShardHandle<'_> {
        ShardHandle {
            local: MetricsShard::default(),
            sink: self,
        }
    }

    /// Records one query directly into the shared total (takes the lock;
    /// fine for sequential use, use [`PipelineMetrics::shard`] in workers).
    pub fn record(&self, stats: &QueryStats) {
        self.lock().record(stats);
    }

    /// The current totals. Shards still held by live handles are not
    /// included — snapshot after the batch completes.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            shard: self.lock().clone(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsShard> {
        // A poisoned lock only means a worker panicked mid-merge; the
        // counters are still well-formed sums, so heal and continue.
        self.total.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn absorb(&self, shard: &MetricsShard) {
        self.lock().merge(shard);
    }
}

/// A worker-private recording surface for one [`PipelineMetrics`]; merges
/// into the shared total on drop.
#[derive(Debug)]
pub struct ShardHandle<'a> {
    local: MetricsShard,
    sink: &'a PipelineMetrics,
}

impl ShardHandle<'_> {
    /// Folds one query's stats into this worker's private shard.
    pub fn record(&mut self, stats: &QueryStats) {
        self.local.record(stats);
    }
}

impl Drop for ShardHandle<'_> {
    fn drop(&mut self) {
        self.sink.absorb(&self.local);
    }
}

/// A point-in-time copy of a [`PipelineMetrics`] total, with renderers.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// The aggregated totals.
    pub shard: MetricsShard,
}

impl MetricsSnapshot {
    /// The snapshot with its timing fields (latency histogram, wall-clock
    /// total) zeroed: equal across thread counts and query orders for
    /// deterministic workloads — the value the determinism tests compare.
    pub fn deterministic(&self) -> MetricsShard {
        let mut s = self.shard.clone();
        s.latency_hist = Histogram::default();
        s.wall_nanos = 0;
        s
    }

    /// Human-readable multi-line rendering.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let s = &self.shard;
        let mut out = String::new();
        let _ = writeln!(out, "pipeline metrics: {} queries", s.queries);
        let _ = writeln!(
            out,
            "  kd nodes     visited {:>12}  pruned {:>12}  ({:.1}% cut)",
            s.kd_nodes_visited,
            s.kd_nodes_pruned,
            pct(s.kd_nodes_pruned, s.kd_nodes_visited + s.kd_nodes_pruned),
        );
        let _ = writeln!(
            out,
            "  forest nodes visited {:>12}  pruned {:>12}  ({:.1}% cut)",
            s.forest_nodes_visited,
            s.forest_nodes_pruned,
            pct(
                s.forest_nodes_pruned,
                s.forest_nodes_visited + s.forest_nodes_pruned
            ),
        );
        let _ = writeln!(out, "  ball points visited  {:>12}", s.ball_points_visited);
        let _ = writeln!(
            out,
            "  mc rounds    ball {:>12}  descent {:>12}  checkpoints {}",
            s.mc_ball_rounds, s.mc_descent_rounds, s.mc_checkpoints
        );
        let _ = writeln!(
            out,
            "  rounds used {} / {} available ({:.1}% early-stop saving); mean/query {:.1}",
            s.rounds_used,
            s.rounds_total,
            if s.rounds_total == 0 {
                0.0
            } else {
                100.0 - pct(s.rounds_used, s.rounds_total)
            },
            s.rounds_hist.mean(),
        );
        let _ = writeln!(
            out,
            "  nonzero candidates {}; exact sweep touches {}",
            s.nonzero_candidates, s.exact_location_touches
        );
        let _ = writeln!(
            out,
            "  dynamic: blocks probed {}, tombstones filtered {}, merges {}, compactions {}, promotions {}",
            s.dyn_blocks_probed,
            s.dyn_tombstones_filtered,
            s.dyn_merges,
            s.dyn_compactions,
            s.dyn_promotions
        );
        let _ = writeln!(
            out,
            "  kernels: leaf points scanned {}, simd batches {}",
            s.leaf_points_scanned, s.simd_batches
        );
        let _ = writeln!(
            out,
            "  net: frames {}/{} in/out, bytes {}/{} in/out, decode errors {}, version mismatches {}, reconnects {}",
            s.net.frames_in,
            s.net.frames_out,
            s.net.bytes_in,
            s.net.bytes_out,
            s.net.decode_errors,
            s.net.version_mismatches,
            s.net.reconnects
        );
        let _ = writeln!(
            out,
            "  outcomes: {} exact, {} degraded, {} errors",
            s.exact_count,
            s.degraded_count,
            s.error_counts.iter().sum::<u64>()
        );
        for (i, &c) in s.error_counts.iter().enumerate() {
            if c > 0 {
                let _ = writeln!(out, "    {}: {}", ERROR_LABELS[i], c);
            }
        }
        let _ = writeln!(
            out,
            "  wall total {} ns; latency p50<= {} ns, p99<= {} ns",
            s.wall_nanos,
            s.latency_hist.quantile_upper(0.5),
            s.latency_hist.quantile_upper(0.99),
        );
        out
    }

    /// JSON rendering (flat object; histograms as bucket arrays).
    pub fn render_json(&self) -> String {
        let s = &self.shard;
        let errors: Vec<String> = ERROR_LABELS
            .iter()
            .zip(&s.error_counts)
            .map(|(l, c)| format!("\"{l}\": {c}"))
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"queries\": {},\n",
                "  \"kd_nodes_visited\": {},\n",
                "  \"kd_nodes_pruned\": {},\n",
                "  \"ball_points_visited\": {},\n",
                "  \"forest_nodes_visited\": {},\n",
                "  \"forest_nodes_pruned\": {},\n",
                "  \"mc_ball_rounds\": {},\n",
                "  \"mc_descent_rounds\": {},\n",
                "  \"mc_checkpoints\": {},\n",
                "  \"nonzero_candidates\": {},\n",
                "  \"exact_location_touches\": {},\n",
                "  \"dyn_blocks_probed\": {},\n",
                "  \"dyn_tombstones_filtered\": {},\n",
                "  \"dyn_merges\": {},\n",
                "  \"dyn_compactions\": {},\n",
                "  \"dyn_promotions\": {},\n",
                "  \"leaf_points_scanned\": {},\n",
                "  \"simd_batches\": {},\n",
                "  \"rounds_used\": {},\n",
                "  \"rounds_total\": {},\n",
                "  \"exact_count\": {},\n",
                "  \"degraded_count\": {},\n",
                "  \"net_frames_in\": {},\n",
                "  \"net_frames_out\": {},\n",
                "  \"net_bytes_in\": {},\n",
                "  \"net_bytes_out\": {},\n",
                "  \"net_decode_errors\": {},\n",
                "  \"net_version_mismatches\": {},\n",
                "  \"net_reconnects\": {},\n",
                "  \"error_counts\": {{ {} }},\n",
                "  \"rounds_hist\": {},\n",
                "  \"latency_hist\": {},\n",
                "  \"wall_nanos\": {}\n",
                "}}"
            ),
            s.queries,
            s.kd_nodes_visited,
            s.kd_nodes_pruned,
            s.ball_points_visited,
            s.forest_nodes_visited,
            s.forest_nodes_pruned,
            s.mc_ball_rounds,
            s.mc_descent_rounds,
            s.mc_checkpoints,
            s.nonzero_candidates,
            s.exact_location_touches,
            s.dyn_blocks_probed,
            s.dyn_tombstones_filtered,
            s.dyn_merges,
            s.dyn_compactions,
            s.dyn_promotions,
            s.leaf_points_scanned,
            s.simd_batches,
            s.rounds_used,
            s.rounds_total,
            s.exact_count,
            s.degraded_count,
            s.net.frames_in,
            s.net.frames_out,
            s.net.bytes_in,
            s.net.bytes_out,
            s.net.decode_errors,
            s.net.version_mismatches,
            s.net.reconnects,
            errors.join(", "),
            json_buckets(&s.rounds_hist),
            json_buckets(&s.latency_hist),
            s.wall_nanos,
        )
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn json_buckets(h: &Histogram) -> String {
    let inner: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
    format!(
        "{{ \"count\": {}, \"sum\": {}, \"buckets\": [{}] }}",
        h.count,
        h.sum,
        inner.join(", ")
    )
}

// ---------------------------------------------------------------------------
// Serving-tier metrics
// ---------------------------------------------------------------------------

/// Counter totals for the sharded serving tier (`unn-serve`): admission
/// outcomes, fault handling, breaker lifecycle, and per-shard latency.
/// Like [`MetricsShard`], everything except the latency histograms is
/// deterministic for a deterministic workload (and under a deterministic
/// clock the histograms are too).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Requests admitted into a serve batch (including ones later shed).
    pub queries: u64,
    /// Quantify requests answered at the exact tier.
    pub answered_exact: u64,
    /// Quantify requests answered at the adaptive Monte-Carlo tier.
    pub answered_adaptive: u64,
    /// Quantify requests answered at the round-capped Monte-Carlo tier.
    pub answered_capped: u64,
    /// NN≠0 requests answered.
    pub answered_nonzero: u64,
    /// Requests shed (no answer produced), total across reasons.
    pub shed: u64,
    /// … because admission ran out of work capacity.
    pub shed_capacity: u64,
    /// … because the query point was non-finite.
    pub shed_invalid: u64,
    /// … because no shard produced an answer.
    pub shed_no_coverage: u64,
    /// … because the per-query deadline expired before any coverage.
    pub shed_deadline: u64,
    /// Answers below the requested tier, from partial coverage, or both.
    pub degraded: u64,
    /// Answers covering only a subset of live shards.
    pub partial: u64,
    /// Shard-call retries performed (attempts beyond each first try).
    pub retries: u64,
    /// Shard calls that exceeded the per-call timeout.
    pub timeouts: u64,
    /// Shard calls that panicked (caught and isolated).
    pub shard_panics: u64,
    /// Shard answers rejected by validation (NaN poison).
    pub poisoned_answers: u64,
    /// Exact-tier sweeps that faulted and fell back to Monte-Carlo.
    pub exact_faults: u64,
    /// Circuit-breaker transitions into `Open`.
    pub breaker_trips: u64,
    /// Circuit-breaker recoveries (`HalfOpen` → `Closed`).
    pub breaker_recoveries: u64,
    /// Per-query modeled latency (shard call time + backoff), in
    /// **microseconds** — the 24 power-of-two buckets then span ~4s, a
    /// serving-scale range.
    pub query_latency: Histogram,
    /// Per-shard call latency in microseconds, indexed by shard.
    pub shard_latency: Vec<Histogram>,
    /// Per-shard failed-call counts (timeout + panic + poison), indexed by
    /// shard.
    pub shard_failures: Vec<u64>,
}

impl ServeCounters {
    /// Zeroed counters sized for `n_shards` shards.
    pub fn new(n_shards: usize) -> Self {
        Self {
            shard_latency: vec![Histogram::default(); n_shards],
            shard_failures: vec![0; n_shards],
            ..Self::default()
        }
    }

    /// Merges another counter set in (field-wise sum; per-shard vectors are
    /// extended to the longer length).
    pub fn merge(&mut self, other: &ServeCounters) {
        self.queries += other.queries;
        self.answered_exact += other.answered_exact;
        self.answered_adaptive += other.answered_adaptive;
        self.answered_capped += other.answered_capped;
        self.answered_nonzero += other.answered_nonzero;
        self.shed += other.shed;
        self.shed_capacity += other.shed_capacity;
        self.shed_invalid += other.shed_invalid;
        self.shed_no_coverage += other.shed_no_coverage;
        self.shed_deadline += other.shed_deadline;
        self.degraded += other.degraded;
        self.partial += other.partial;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.shard_panics += other.shard_panics;
        self.poisoned_answers += other.poisoned_answers;
        self.exact_faults += other.exact_faults;
        self.breaker_trips += other.breaker_trips;
        self.breaker_recoveries += other.breaker_recoveries;
        if self.shard_latency.len() < other.shard_latency.len() {
            self.shard_latency
                .resize(other.shard_latency.len(), Histogram::default());
        }
        for (a, b) in self.shard_latency.iter_mut().zip(&other.shard_latency) {
            a.merge(b);
        }
        if self.shard_failures.len() < other.shard_failures.len() {
            self.shard_failures.resize(other.shard_failures.len(), 0);
        }
        for (a, b) in self.shard_failures.iter_mut().zip(&other.shard_failures) {
            *a += b;
        }
        self.query_latency.merge(&other.query_latency);
    }

    /// The counters with latency histograms zeroed: the value that is equal
    /// across thread counts for a deterministic workload even under a real
    /// clock.
    pub fn deterministic(&self) -> ServeCounters {
        let mut s = self.clone();
        s.query_latency = Histogram::default();
        s.shard_latency = vec![Histogram::default(); s.shard_latency.len()];
        s
    }

    /// JSON rendering (flat object; histograms as bucket arrays).
    pub fn render_json(&self) -> String {
        let shard_lat: Vec<String> = self.shard_latency.iter().map(json_buckets).collect();
        let shard_fail: Vec<String> = self.shard_failures.iter().map(u64::to_string).collect();
        format!(
            concat!(
                "{{\n",
                "  \"queries\": {},\n",
                "  \"answered_exact\": {},\n",
                "  \"answered_adaptive\": {},\n",
                "  \"answered_capped\": {},\n",
                "  \"answered_nonzero\": {},\n",
                "  \"shed\": {},\n",
                "  \"shed_capacity\": {},\n",
                "  \"shed_invalid\": {},\n",
                "  \"shed_no_coverage\": {},\n",
                "  \"shed_deadline\": {},\n",
                "  \"degraded\": {},\n",
                "  \"partial\": {},\n",
                "  \"retries\": {},\n",
                "  \"timeouts\": {},\n",
                "  \"shard_panics\": {},\n",
                "  \"poisoned_answers\": {},\n",
                "  \"exact_faults\": {},\n",
                "  \"breaker_trips\": {},\n",
                "  \"breaker_recoveries\": {},\n",
                "  \"query_latency\": {},\n",
                "  \"shard_latency\": [{}],\n",
                "  \"shard_failures\": [{}]\n",
                "}}"
            ),
            self.queries,
            self.answered_exact,
            self.answered_adaptive,
            self.answered_capped,
            self.answered_nonzero,
            self.shed,
            self.shed_capacity,
            self.shed_invalid,
            self.shed_no_coverage,
            self.shed_deadline,
            self.degraded,
            self.partial,
            self.retries,
            self.timeouts,
            self.shard_panics,
            self.poisoned_answers,
            self.exact_faults,
            self.breaker_trips,
            self.breaker_recoveries,
            json_buckets(&self.query_latency),
            shard_lat.join(", "),
            shard_fail.join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        for b in 1..HIST_BUCKETS - 1 {
            assert_eq!(Histogram::bucket_of(Histogram::bucket_lo(b)), b);
        }
    }

    #[test]
    fn histogram_merge_is_order_independent() {
        let samples = [0u64, 1, 5, 9, 100, 3, 77, 1024, 65535];
        let mut whole = Histogram::default();
        for &v in &samples {
            whole.record(v);
        }
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for (i, &v) in samples.iter().enumerate() {
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        b.merge(&a);
        assert_eq!(whole, b);
        assert_eq!(whole.count, samples.len() as u64);
        assert_eq!(whole.sum, samples.iter().map(|&v| v as u128).sum::<u128>());
    }

    #[test]
    fn shard_record_then_merge_equals_direct() {
        let stats = |rounds: u64, outcome: QueryOutcome| QueryStats {
            rounds_used: rounds,
            rounds_total: 100,
            outcome,
            ..QueryStats::default()
        };
        let all = [
            stats(10, QueryOutcome::Exact),
            stats(20, QueryOutcome::Degraded),
            stats(30, QueryOutcome::Exact),
            QueryStats {
                outcome: QueryOutcome::Errored,
                error_label: Some("budget_exhausted"),
                ..QueryStats::default()
            },
        ];
        let mut direct = MetricsShard::default();
        for s in &all {
            direct.record(s);
        }
        let metrics = PipelineMetrics::new();
        {
            let mut h1 = metrics.shard();
            let mut h2 = metrics.shard();
            h1.record(&all[0]);
            h2.record(&all[1]);
            h1.record(&all[2]);
            h2.record(&all[3]);
        }
        assert_eq!(metrics.snapshot().shard, direct);
        assert_eq!(direct.exact_count, 2);
        assert_eq!(direct.degraded_count, 1);
        assert_eq!(direct.error_counts[3], 1);
        assert_eq!(direct.rounds_used, 60);
    }

    #[test]
    fn renders_do_not_panic_and_mention_totals() {
        let metrics = PipelineMetrics::new();
        metrics.record(&QueryStats {
            rounds_used: 12,
            rounds_total: 64,
            wall_nanos: 1500,
            ..QueryStats::default()
        });
        let snap = metrics.snapshot();
        let text = snap.render_text();
        assert!(text.contains("1 queries"));
        let json = snap.render_json();
        assert!(json.contains("\"rounds_used\": 12"));
        assert!(json.contains("\"query_panicked\": 0"));
        // The deterministic view zeroes only timing.
        let det = snap.deterministic();
        assert_eq!(det.wall_nanos, 0);
        assert_eq!(det.rounds_used, 12);
    }

    #[test]
    fn disabled_counters_read_zero() {
        begin_query();
        kd_node_visited();
        ball_point();
        let c = take_counters();
        if counters_enabled() {
            assert_eq!(c.kd_nodes_visited, 1);
            assert_eq!(c.ball_points_visited, 1);
        } else {
            assert_eq!(c, CounterSet::default());
        }
    }

    #[test]
    fn error_labels_round_trip() {
        for (i, l) in ERROR_LABELS.iter().enumerate() {
            assert_eq!(error_label_index(l), Some(i));
        }
        assert_eq!(error_label_index("nope"), None);
    }
}
