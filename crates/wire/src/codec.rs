//! Little-endian encode/decode primitives.
//!
//! [`Writer`] is an append-only byte buffer; [`Reader`] is a cursor over a
//! frame body whose every read is bounds-checked and returns a typed
//! [`WireError`] instead of panicking. Collection reads never trust a
//! claimed count: the count is validated against the bytes actually
//! remaining (at the element's minimum serialized size) *before* any
//! allocation, so hostile lengths cannot balloon memory.

use crate::WireError;

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer starting with the frame tag byte.
    pub fn with_tag(tag: u8) -> Self {
        let mut w = Self::new();
        w.u8(tag);
        w
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round trip,
    /// NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a UTF-8 string: `u32` byte length then the bytes.
    /// Lengths beyond `u32::MAX` are truncated at a char boundary far
    /// below it (never happens for this protocol's short diagnostics).
    pub fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        let take = if bytes.len() > u32::MAX as usize {
            let mut end = u32::MAX as usize;
            while end > 0 && !s.is_char_boundary(end) {
                end -= 1;
            }
            end
        } else {
            bytes.len()
        };
        self.u32(take as u32);
        self.buf.extend_from_slice(&bytes[..take]);
    }

    /// Appends a `u64` slice: `u32` count then the elements.
    pub fn vec_u64(&mut self, v: &[u64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u64(x);
        }
    }

    /// Appends an `f64` slice: `u32` count then the bit patterns.
    pub fn vec_f64(&mut self, v: &[f64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.f64(x);
        }
    }
}

/// Bounds-checked little-endian decoder over one frame body.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes.
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                what,
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and converts it to `usize` (rejecting values this
    /// platform cannot index).
    pub fn usize(&mut self, what: &'static str) -> Result<usize, WireError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| WireError::LengthOverflow {
            what,
            len: v,
            cap: usize::MAX as u64,
        })
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a strict bool (0 or 1; anything else is rejected).
    pub fn bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::InvalidValue { what }),
        }
    }

    /// Reads a length-prefixed UTF-8 string. The claimed byte length must
    /// fit the bytes remaining; invalid UTF-8 is rejected.
    pub fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.u32(what)? as usize;
        if len > self.remaining() {
            return Err(WireError::LengthOverflow {
                what,
                len: len as u64,
                cap: self.remaining() as u64,
            });
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidValue { what })
    }

    /// Validates a claimed element count against the bytes remaining at
    /// `min_elem_bytes` per element, *before* any allocation.
    pub fn count(&mut self, what: &'static str, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32(what)? as usize;
        let cap = self.remaining() / min_elem_bytes.max(1);
        if n > cap {
            return Err(WireError::LengthOverflow {
                what,
                len: n as u64,
                cap: cap as u64,
            });
        }
        Ok(n)
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn vec_u64(&mut self, what: &'static str) -> Result<Vec<u64>, WireError> {
        let n = self.count(what, 8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64(what)?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn vec_f64(&mut self, what: &'static str) -> Result<Vec<f64>, WireError> {
        let n = self.count(what, 8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64(what)?);
        }
        Ok(out)
    }

    /// Succeeds only if every byte was consumed — frame bodies must be
    /// exact, trailing garbage is rejected.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        w.str("héllo");
        w.vec_u64(&[1, 2, 3]);
        w.vec_f64(&[0.5, f64::INFINITY]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").ok(), Some(7));
        assert_eq!(r.u16("b").ok(), Some(0xbeef));
        assert_eq!(r.u32("c").ok(), Some(0xdead_beef));
        assert_eq!(r.u64("d").ok(), Some(u64::MAX - 1));
        assert_eq!(r.f64("e").map(f64::to_bits).ok(), Some((-0.0f64).to_bits()));
        assert!(r.f64("f").is_ok_and(f64::is_nan));
        assert_eq!(r.bool("g").ok(), Some(true));
        assert_eq!(r.str("h").ok().as_deref(), Some("héllo"));
        assert_eq!(r.vec_u64("i").ok(), Some(vec![1, 2, 3]));
        assert_eq!(r.vec_f64("j").ok(), Some(vec![0.5, f64::INFINITY]));
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn truncation_and_hostile_lengths_are_rejected() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u32("x"), Err(WireError::Truncated { .. })));
        // A vector claiming 1 billion elements with 4 bytes behind it.
        let mut w = Writer::new();
        w.u32(1_000_000_000);
        w.u32(0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.vec_u64("v"),
            Err(WireError::LengthOverflow { .. })
        ));
        // Non-boolean byte.
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.bool("b"), Err(WireError::InvalidValue { .. })));
        // Invalid UTF-8.
        let mut w = Writer::new();
        w.u32(2);
        w.u8(0xff);
        w.u8(0xfe);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str("s"), Err(WireError::InvalidValue { .. })));
    }
}
