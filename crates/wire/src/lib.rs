//! Versioned binary wire protocol for the serving tier.
//!
//! The workspace has no real serde (the vendored `serde` is a compat stub),
//! so this crate is a hand-rolled, explicit little-endian codec for
//! everything that crosses the network boundary of `unn-net`:
//!
//! * **Framing** — every message is `len: u32 LE` followed by `len` body
//!   bytes; the first body byte is the frame tag. `len` is bounded by
//!   [`MAX_FRAME_LEN`], so a corrupt prefix can never provoke an unbounded
//!   allocation. [`frame_split`] incrementally re-frames an arbitrary byte
//!   stream (frames split or coalesced across reads reassemble correctly).
//! * **Handshake** — [`Hello`] carries a magic number, the client's
//!   [`WIRE_VERSION`], and an optional expected index epoch; [`HelloAck`]
//!   answers with the server's version, epoch, live count, and Monte-Carlo
//!   round count. Version or epoch mismatches are rejected with a typed
//!   [`ErrorFrame`] before any query is served.
//! * **Queries** — [`unn_serve::Request`] batches travel with a
//!   remaining-budget deadline in nanoseconds, and [`unn_serve::Reply`]
//!   batches come back field-for-field, `f64`s as IEEE bit patterns —
//!   decoding an encoded reply reproduces the in-process value bit for bit.
//! * **Totality** — the decoder never panics on arbitrary, truncated, or
//!   corrupt input: every read is bounds-checked, every enum tag and
//!   length is validated, and failures surface as typed [`WireError`]s.
//!   Collection lengths are checked against the bytes actually remaining
//!   before any allocation, so hostile counts cannot balloon memory.
//!
//! Compatibility contract: [`WIRE_VERSION`] bumps on any layout change
//! (frames carry no per-field tags, so layout is the version). Both sides
//! reject a version they do not speak during the handshake — after a
//! successful handshake every frame can be decoded by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod frames;

pub use codec::{Reader, Writer};
pub use frames::{
    decode_frame, decode_reply_body, decode_request_body, encode_frame, encode_reply_body,
    encode_request_body, ErrorCode, ErrorFrame, Frame, Hello, HelloAck, ReplyBatch, RequestBatch,
};

use std::fmt;

/// Protocol version; bumped on any frame-layout change.
pub const WIRE_VERSION: u16 = 1;

/// Handshake magic: `b"UNNW"` little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"UNNW");

/// Upper bound on one frame's body length (64 MiB). A corrupt length
/// prefix beyond this is rejected before any allocation.
pub const MAX_FRAME_LEN: usize = 1 << 26;

/// Epoch wildcard in [`Hello::expected_epoch`]: accept any server epoch.
pub const ANY_EPOCH: u64 = u64::MAX;

/// Frame tags (first body byte).
pub mod tag {
    /// Client handshake.
    pub const HELLO: u8 = 1;
    /// Server handshake acknowledgement.
    pub const HELLO_ACK: u8 = 2;
    /// A batch of serving requests with a deadline budget.
    pub const REQUEST_BATCH: u8 = 3;
    /// A batch of serving replies, in request order.
    pub const REPLY_BATCH: u8 = 4;
    /// A typed protocol-level error.
    pub const ERROR: u8 = 5;
    /// A standalone `QuantifyOutcome` value (encoded by the `unn` façade).
    pub const QUANTIFY_OUTCOME: u8 = 6;
    /// A standalone `UnnError` value (encoded by the `unn` façade).
    pub const UNN_ERROR: u8 = 7;
}

/// Why a decode failed. Every variant is a rejected input, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the field under `what` was complete.
    Truncated {
        /// Which field needed more bytes.
        what: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// The handshake magic number did not match [`MAGIC`].
    BadMagic {
        /// The value received instead.
        got: u32,
    },
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Our [`WIRE_VERSION`].
        ours: u16,
        /// The version the peer announced.
        theirs: u16,
    },
    /// An enum tag byte was outside its documented range.
    UnknownTag {
        /// Which enum the tag belongs to.
        what: &'static str,
        /// The tag received.
        tag: u8,
    },
    /// A length field exceeded its bound (frame cap, or the bytes
    /// actually remaining for a collection).
    LengthOverflow {
        /// Which length field overflowed.
        what: &'static str,
        /// The claimed length.
        len: u64,
        /// The maximum admissible here.
        cap: u64,
    },
    /// A frame body decoded completely but bytes were left over.
    TrailingBytes {
        /// How many bytes were left.
        extra: usize,
    },
    /// A field decoded but held an inadmissible value (non-boolean byte,
    /// invalid UTF-8, …).
    InvalidValue {
        /// Which field was invalid.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated input: {what} needs {needed} bytes, {available} available"
            ),
            WireError::BadMagic { got } => {
                write!(f, "bad handshake magic {got:#010x} (want {MAGIC:#010x})")
            }
            WireError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, theirs {theirs}")
            }
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::LengthOverflow { what, len, cap } => {
                write!(f, "{what} length {len} exceeds cap {cap}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete frame body")
            }
            WireError::InvalidValue { what } => write!(f, "invalid value for {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Splits the next complete frame off `buf`: `Ok(Some((body, consumed)))`
/// when a whole frame is buffered, `Ok(None)` when more bytes are needed,
/// and `Err` when the length prefix itself is inadmissible (zero or beyond
/// [`MAX_FRAME_LEN`]) — the stream is unrecoverable then, since the frame
/// boundary is lost.
pub fn frame_split(buf: &[u8]) -> Result<Option<(&[u8], usize)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(WireError::LengthOverflow {
            what: "frame body",
            len: len as u64,
            cap: MAX_FRAME_LEN as u64,
        });
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    Ok(Some((&buf[4..4 + len], 4 + len)))
}

/// Wraps a frame body in the `u32 LE` length prefix.
///
/// Bodies above [`MAX_FRAME_LEN`] cannot be represented; the body is
/// truncated to an empty (invalid, always-rejected) frame instead — callers
/// building frames from this crate's encoders never hit the cap.
pub fn frame_bytes(body: &[u8]) -> Vec<u8> {
    if body.is_empty() || body.len() > MAX_FRAME_LEN {
        debug_assert!(false, "frame body must be 1..={MAX_FRAME_LEN} bytes");
        return vec![0, 0, 0, 0];
    }
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}
