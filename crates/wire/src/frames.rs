//! Frame definitions and the serving-type codecs.

use unn_dynamic::PointId;
use unn_geom::Point;
use unn_serve::{Outcome, Reply, Request, ShedReason};

use crate::codec::{Reader, Writer};
use crate::{tag, WireError, ANY_EPOCH, MAGIC, WIRE_VERSION};

/// Client handshake: magic, protocol version, expected index epoch
/// ([`ANY_EPOCH`] = accept whatever the server holds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// The client's protocol version.
    pub version: u16,
    /// The index epoch the client expects, or [`ANY_EPOCH`].
    pub expected_epoch: u64,
}

impl Default for Hello {
    fn default() -> Self {
        Self {
            version: WIRE_VERSION,
            expected_epoch: ANY_EPOCH,
        }
    }
}

/// Server handshake acknowledgement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HelloAck {
    /// The server's protocol version.
    pub version: u16,
    /// The epoch of the index snapshot behind the dispatcher.
    pub index_epoch: u64,
    /// Live points the server covers.
    pub total_live: u64,
    /// Monte-Carlo rounds per shard block.
    pub mc_rounds: u64,
}

/// Typed protocol-level errors a server sends before closing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer's protocol version is not ours.
    VersionMismatch,
    /// The client demanded an index epoch the server does not hold.
    EpochMismatch,
    /// A frame failed to decode (corrupt or truncated body).
    Malformed,
    /// The server could not serve (internal failure).
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::VersionMismatch => 0,
            ErrorCode::EpochMismatch => 1,
            ErrorCode::Malformed => 2,
            ErrorCode::Internal => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => ErrorCode::VersionMismatch,
            1 => ErrorCode::EpochMismatch,
            2 => ErrorCode::Malformed,
            3 => ErrorCode::Internal,
            _ => {
                return Err(WireError::UnknownTag {
                    what: "error code",
                    tag: v,
                })
            }
        })
    }
}

/// A protocol error frame: the code plus two code-specific numbers
/// (ours/theirs for mismatches, zero otherwise) and a short diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorFrame {
    /// What went wrong.
    pub code: ErrorCode,
    /// Code-specific (e.g. our version / our epoch).
    pub ours: u64,
    /// Code-specific (e.g. the peer's version / requested epoch).
    pub theirs: u64,
    /// Human-readable detail.
    pub detail: String,
}

/// A batch of requests and the client's remaining deadline budget in
/// nanoseconds (`u64::MAX` = unlimited). The server clamps its own
/// per-query deadline to this, so client-side budget spent on transport
/// retries tightens the server's admission ladder honestly.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestBatch {
    /// Remaining deadline budget, nanoseconds.
    pub budget_nanos: u64,
    /// The requests, in order.
    pub requests: Vec<Request>,
}

/// A batch of replies, in request order.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplyBatch {
    /// The replies.
    pub replies: Vec<Reply>,
}

/// Every session frame the protocol speaks. (Tags [`tag::QUANTIFY_OUTCOME`]
/// and [`tag::UNN_ERROR`] are standalone value frames encoded by the `unn`
/// façade; they are not session frames and [`decode_frame`] rejects them.)
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client handshake.
    Hello(Hello),
    /// Server handshake acknowledgement.
    HelloAck(HelloAck),
    /// A request batch.
    RequestBatch(RequestBatch),
    /// A reply batch.
    ReplyBatch(ReplyBatch),
    /// A protocol error.
    Error(ErrorFrame),
}

/// Encodes one frame into its body bytes (no length prefix; wrap with
/// [`crate::frame_bytes`] before writing to a transport).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    match frame {
        Frame::Hello(h) => {
            let mut w = Writer::with_tag(tag::HELLO);
            w.u32(MAGIC);
            w.u16(h.version);
            w.u64(h.expected_epoch);
            w.into_bytes()
        }
        Frame::HelloAck(a) => {
            let mut w = Writer::with_tag(tag::HELLO_ACK);
            w.u16(a.version);
            w.u64(a.index_epoch);
            w.u64(a.total_live);
            w.u64(a.mc_rounds);
            w.into_bytes()
        }
        Frame::RequestBatch(b) => {
            let mut w = Writer::with_tag(tag::REQUEST_BATCH);
            w.u64(b.budget_nanos);
            w.u32(b.requests.len() as u32);
            for req in &b.requests {
                encode_request_body(&mut w, req);
            }
            w.into_bytes()
        }
        Frame::ReplyBatch(b) => {
            let mut w = Writer::with_tag(tag::REPLY_BATCH);
            w.u32(b.replies.len() as u32);
            for reply in &b.replies {
                encode_reply_body(&mut w, reply);
            }
            w.into_bytes()
        }
        Frame::Error(e) => {
            let mut w = Writer::with_tag(tag::ERROR);
            w.u8(e.code.to_u8());
            w.u64(e.ours);
            w.u64(e.theirs);
            w.str(&e.detail);
            w.into_bytes()
        }
    }
}

/// Decodes one frame body (the bytes after the length prefix). Total: any
/// malformed input returns a typed [`WireError`], never a panic.
pub fn decode_frame(body: &[u8]) -> Result<Frame, WireError> {
    let mut r = Reader::new(body);
    let t = r.u8("frame tag")?;
    let frame = match t {
        tag::HELLO => {
            let magic = r.u32("hello magic")?;
            if magic != MAGIC {
                return Err(WireError::BadMagic { got: magic });
            }
            Frame::Hello(Hello {
                version: r.u16("hello version")?,
                expected_epoch: r.u64("hello expected_epoch")?,
            })
        }
        tag::HELLO_ACK => Frame::HelloAck(HelloAck {
            version: r.u16("ack version")?,
            index_epoch: r.u64("ack index_epoch")?,
            total_live: r.u64("ack total_live")?,
            mc_rounds: r.u64("ack mc_rounds")?,
        }),
        tag::REQUEST_BATCH => {
            let budget_nanos = r.u64("batch budget_nanos")?;
            // A request is at least 17 bytes (tag + two f64s).
            let n = r.count("request count", 17)?;
            let mut requests = Vec::with_capacity(n);
            for _ in 0..n {
                requests.push(decode_request_body(&mut r)?);
            }
            Frame::RequestBatch(RequestBatch {
                budget_nanos,
                requests,
            })
        }
        tag::REPLY_BATCH => {
            // The smallest reply (empty shed-free nonzero) is > 40 bytes;
            // 17 is a safe conservative floor for the count check.
            let n = r.count("reply count", 17)?;
            let mut replies = Vec::with_capacity(n);
            for _ in 0..n {
                replies.push(decode_reply_body(&mut r)?);
            }
            Frame::ReplyBatch(ReplyBatch { replies })
        }
        tag::ERROR => Frame::Error(ErrorFrame {
            code: ErrorCode::from_u8(r.u8("error code")?)?,
            ours: r.u64("error ours")?,
            theirs: r.u64("error theirs")?,
            detail: r.str("error detail")?,
        }),
        other => {
            return Err(WireError::UnknownTag {
                what: "frame",
                tag: other,
            })
        }
    };
    r.expect_end()?;
    Ok(frame)
}

fn encode_point(w: &mut Writer, p: Point) {
    w.f64(p.x);
    w.f64(p.y);
}

fn decode_point(r: &mut Reader<'_>) -> Result<Point, WireError> {
    Ok(Point {
        x: r.f64("point x")?,
        y: r.f64("point y")?,
    })
}

/// Encodes one [`Request`] into `w`.
pub fn encode_request_body(w: &mut Writer, req: &Request) {
    match req {
        Request::NnNonzero(q) => {
            w.u8(0);
            encode_point(w, *q);
        }
        Request::Quantify(q) => {
            w.u8(1);
            encode_point(w, *q);
        }
    }
}

/// Decodes one [`Request`] from `r`.
pub fn decode_request_body(r: &mut Reader<'_>) -> Result<Request, WireError> {
    match r.u8("request tag")? {
        0 => Ok(Request::NnNonzero(decode_point(r)?)),
        1 => Ok(Request::Quantify(decode_point(r)?)),
        t => Err(WireError::UnknownTag {
            what: "request",
            tag: t,
        }),
    }
}

fn encode_shed_reason(w: &mut Writer, reason: ShedReason) {
    w.u8(match reason {
        ShedReason::CapacityExhausted => 0,
        ShedReason::InvalidQuery => 1,
        ShedReason::NoCoverage => 2,
        ShedReason::DeadlineExceeded => 3,
    });
}

fn decode_shed_reason(r: &mut Reader<'_>) -> Result<ShedReason, WireError> {
    Ok(match r.u8("shed reason")? {
        0 => ShedReason::CapacityExhausted,
        1 => ShedReason::InvalidQuery,
        2 => ShedReason::NoCoverage,
        3 => ShedReason::DeadlineExceeded,
        t => {
            return Err(WireError::UnknownTag {
                what: "shed reason",
                tag: t,
            })
        }
    })
}

fn encode_outcome(w: &mut Writer, outcome: &Outcome) {
    match outcome {
        Outcome::Nonzero { ids } => {
            w.u8(0);
            w.vec_u64(ids);
        }
        Outcome::Exact { pi } => {
            w.u8(1);
            w.vec_f64(pi);
        }
        Outcome::Adaptive {
            pi,
            achieved_epsilon,
            rounds_used,
        } => {
            w.u8(2);
            w.vec_f64(pi);
            w.f64(*achieved_epsilon);
            w.usize(*rounds_used);
        }
        Outcome::Capped {
            pi,
            achieved_epsilon,
            rounds_used,
        } => {
            w.u8(3);
            w.vec_f64(pi);
            w.f64(*achieved_epsilon);
            w.usize(*rounds_used);
        }
        Outcome::Shed { reason } => {
            w.u8(4);
            encode_shed_reason(w, *reason);
        }
    }
}

fn decode_outcome(r: &mut Reader<'_>) -> Result<Outcome, WireError> {
    Ok(match r.u8("outcome tag")? {
        0 => Outcome::Nonzero {
            ids: r.vec_u64("nonzero ids")?,
        },
        1 => Outcome::Exact {
            pi: r.vec_f64("exact pi")?,
        },
        2 => Outcome::Adaptive {
            pi: r.vec_f64("adaptive pi")?,
            achieved_epsilon: r.f64("adaptive epsilon")?,
            rounds_used: r.usize("adaptive rounds_used")?,
        },
        3 => Outcome::Capped {
            pi: r.vec_f64("capped pi")?,
            achieved_epsilon: r.f64("capped epsilon")?,
            rounds_used: r.usize("capped rounds_used")?,
        },
        4 => Outcome::Shed {
            reason: decode_shed_reason(r)?,
        },
        t => {
            return Err(WireError::UnknownTag {
                what: "outcome",
                tag: t,
            })
        }
    })
}

/// Encodes one [`Reply`] into `w`, field for field. `f64`s travel as bit
/// patterns, so a decoded reply is bit-identical to the encoded one.
pub fn encode_reply_body(w: &mut Writer, reply: &Reply) {
    encode_outcome(w, &reply.outcome);
    w.vec_u64(&reply.layout);
    w.u32(reply.failed_shards.len() as u32);
    for &k in &reply.failed_shards {
        w.usize(k);
    }
    w.usize(reply.covered);
    w.usize(reply.total_live);
    w.u64(reply.retries);
    w.u64(reply.elapsed_nanos);
    w.bool(reply.degraded);
}

/// Decodes one [`Reply`] from `r`.
pub fn decode_reply_body(r: &mut Reader<'_>) -> Result<Reply, WireError> {
    let outcome = decode_outcome(r)?;
    let layout: Vec<PointId> = r.vec_u64("reply layout")?;
    let n_failed = r.count("failed shards", 8)?;
    let mut failed_shards = Vec::with_capacity(n_failed);
    for _ in 0..n_failed {
        failed_shards.push(r.usize("failed shard")?);
    }
    Ok(Reply {
        outcome,
        layout,
        failed_shards,
        covered: r.usize("reply covered")?,
        total_live: r.usize("reply total_live")?,
        retries: r.u64("reply retries")?,
        elapsed_nanos: r.u64("reply elapsed_nanos")?,
        degraded: r.bool("reply degraded")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{frame_bytes, frame_split};

    fn sample_replies() -> Vec<Reply> {
        vec![
            Reply {
                outcome: Outcome::Nonzero {
                    ids: vec![3, 9, 12],
                },
                layout: vec![],
                failed_shards: vec![1],
                covered: 10,
                total_live: 14,
                retries: 2,
                elapsed_nanos: 12_345,
                degraded: true,
            },
            Reply {
                outcome: Outcome::Adaptive {
                    pi: vec![0.25, 0.75, 0.0],
                    achieved_epsilon: 0.031_25,
                    rounds_used: 96,
                },
                layout: vec![0, 1, 2],
                failed_shards: vec![],
                covered: 3,
                total_live: 3,
                retries: 0,
                elapsed_nanos: 0,
                degraded: false,
            },
            Reply {
                outcome: Outcome::Shed {
                    reason: ShedReason::DeadlineExceeded,
                },
                layout: vec![],
                failed_shards: vec![0, 1, 2],
                covered: 0,
                total_live: 7,
                retries: 6,
                elapsed_nanos: 999,
                degraded: false,
            },
        ]
    }

    #[test]
    fn all_session_frames_round_trip() {
        let frames = vec![
            Frame::Hello(Hello::default()),
            Frame::HelloAck(HelloAck {
                version: WIRE_VERSION,
                index_epoch: 42,
                total_live: 1_000,
                mc_rounds: 512,
            }),
            Frame::RequestBatch(RequestBatch {
                budget_nanos: 5_000_000,
                requests: vec![
                    Request::NnNonzero(Point { x: 1.5, y: -2.5 }),
                    Request::Quantify(Point { x: 0.0, y: 1e308 }),
                ],
            }),
            Frame::ReplyBatch(ReplyBatch {
                replies: sample_replies(),
            }),
            Frame::Error(ErrorFrame {
                code: ErrorCode::VersionMismatch,
                ours: 1,
                theirs: 9,
                detail: "speak v1".into(),
            }),
        ];
        for f in frames {
            let body = encode_frame(&f);
            let back = decode_frame(&body).unwrap_or_else(|e| panic!("decode {f:?}: {e}"));
            assert_eq!(back, f);
            // And through the framing layer.
            let framed = frame_bytes(&body);
            let (split_body, used) = frame_split(&framed)
                .unwrap_or_else(|e| panic!("split: {e}"))
                .unwrap_or_else(|| panic!("frame incomplete"));
            assert_eq!(used, framed.len());
            assert_eq!(split_body, &body[..]);
        }
    }

    #[test]
    fn truncation_at_every_boundary_errors_cleanly() {
        let body = encode_frame(&Frame::ReplyBatch(ReplyBatch {
            replies: sample_replies(),
        }));
        for cut in 0..body.len() {
            let res = decode_frame(&body[..cut]);
            assert!(res.is_err(), "truncated at {cut}/{} decoded", body.len());
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = encode_frame(&Frame::Hello(Hello::default()));
        body.push(0);
        assert!(matches!(
            decode_frame(&body),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn facade_tags_are_not_session_frames() {
        for t in [tag::QUANTIFY_OUTCOME, tag::UNN_ERROR, 0, 200] {
            assert!(matches!(
                decode_frame(&[t]),
                Err(WireError::UnknownTag { .. })
            ));
        }
    }

    #[test]
    fn frame_split_reassembles_and_rejects_bad_prefixes() {
        let body = encode_frame(&Frame::Hello(Hello::default()));
        let framed = frame_bytes(&body);
        // Incremental: no prefix yet, partial body, then complete.
        assert_eq!(frame_split(&framed[..3]).ok(), Some(None));
        assert_eq!(frame_split(&framed[..framed.len() - 1]).ok(), Some(None));
        // Zero-length and oversized prefixes are unrecoverable.
        assert!(frame_split(&[0, 0, 0, 0, 1]).is_err());
        assert!(frame_split(&u32::MAX.to_le_bytes()).is_err());
    }
}
