//! Fault-tolerant sharded serving tier over dynamic uncertain-NN indexes.
//!
//! This crate composes N [`unn_dynamic`] engines into one logical index and
//! serves batched queries through a robustness-first run loop:
//!
//! * [`ShardSet`] — hash- or spatially-sharded ownership of the live set,
//!   per-shard epoch snapshots, and **bit-identical cross-shard merging**:
//!   the stage-1 Lemma 2.1 folds of disjoint shards merge via
//!   [`DeltaCompose`](unn_nonzero::DeltaCompose) into exactly the flat fold
//!   over the union, and per-round Monte-Carlo winners merge by elementwise
//!   `(distance, id)` lexicographic minimum because every point's sample
//!   stream is keyed by its stable id. A [`ShardSetSnapshot`] therefore
//!   answers NN≠0 and quantification exactly like one unsharded engine over
//!   the same live set — a live differential oracle the test suite holds it
//!   to.
//! * [`Dispatcher`] — the serving loop: per-query deadline budgets, bounded
//!   retry-with-backoff for transient shard failures, a per-shard
//!   [`CircuitBreaker`] (trip on consecutive panics/timeouts, half-open
//!   probes to recover), and admission control that sheds load by
//!   *downgrading* exact → adaptive → capped quantification — every answer
//!   carries the honest `achieved_epsilon` the surviving rounds and
//!   coverage actually certify, instead of erroring.
//! * [`ChaosShard`] — a fault-injection wrapper (panic-on-query, artificial
//!   slowness, NaN poison) over any [`ShardBackend`], driving deterministic
//!   chaos tests: healthy-shard answers stay bit-identical to the
//!   fault-free run at any thread count.
//!
//! Determinism contract: wall-clock enters only through the injected
//! [`Clock`](unn_observe::Clock). Shard calls self-report their elapsed
//! nanoseconds (zero under `NullClock`, constant offsets under chaos
//! slowness), so deadline, timeout, and retry decisions are pure per-query
//! functions of the request stream — independent of thread interleaving.
//! Admission tiers are assigned in a sequential pass before the parallel
//! fan-out, and breaker transitions replay per-call outcomes in request
//! order after it, so the whole serving loop is schedule-independent.

#![warn(missing_docs)]

mod breaker;
mod chaos;
mod dispatch;
mod shard;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use chaos::{ChaosShard, FaultKind};
pub use dispatch::{
    AdmissionConfig, DispatchConfig, Dispatcher, EngineShard, FeedbackConfig, Outcome, Reply,
    Request, RetryPolicy, ShardBackend, ShedReason,
};
pub use shard::{ExactView, InsertPolicy, ServeConfig, ShardPolicy, ShardSet, ShardSetSnapshot};

use std::fmt;

/// Errors surfaced by the serving tier's fallible entry points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// A configuration parameter is outside its documented range.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// A point failed validation (or repair) at the insert boundary.
    InvalidPoint {
        /// What was wrong.
        reason: String,
    },
    /// A sampling panic escaped the distribution during the block build;
    /// the shard set is unchanged.
    InsertPanicked {
        /// The panic payload, stringified.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig { reason } => write!(f, "invalid serve config: {reason}"),
            ServeError::InvalidPoint { reason } => write!(f, "invalid point: {reason}"),
            ServeError::InsertPanicked { message } => {
                write!(f, "insert panicked (shard set unchanged): {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}
