//! Deterministic fault injection at the shard-call boundary.
//!
//! [`ChaosShard`] wraps any [`ShardBackend`] and, while armed, corrupts its
//! query calls in one of three ways: panicking, inflating the self-reported
//! latency (tripping the dispatcher's call timeout without any real
//! sleeping), or returning NaN-poisoned answers that the dispatcher's
//! validators must catch. Faults are injected at the stage-1 calls
//! (`delta_fold`, `round_winners`), so a faulted shard is excluded before
//! its data can contaminate a cross-shard merge; healthy shards' answers
//! stay bit-identical to the fault-free run.
//!
//! The armed flag is shared ([`ChaosShard::armed_handle`]) so tests can heal
//! the shard mid-run and watch the circuit breaker recover.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use unn_dynamic::PointId;
use unn_geom::Point;
use unn_nonzero::DeltaCompose;

use crate::dispatch::ShardBackend;

/// The fault a [`ChaosShard`] injects while armed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Every query call panics (caught by the dispatcher, never escaping).
    PanicOnQuery,
    /// Every query call reports this many extra nanoseconds of latency —
    /// artificial slowness under the injected clock, no real sleeping.
    SlowBy(u64),
    /// Stage-1 answers are NaN-poisoned: the Lemma 2.1 fold carries a NaN
    /// bound and every round winner has a NaN distance. The dispatcher's
    /// validators must reject both.
    NanPoison,
}

/// A fault-injection wrapper over any shard backend.
pub struct ChaosShard {
    inner: Box<dyn ShardBackend>,
    fault: FaultKind,
    armed: Arc<AtomicBool>,
}

impl ChaosShard {
    /// Wraps `inner`, armed immediately.
    pub fn new(inner: Box<dyn ShardBackend>, fault: FaultKind) -> Self {
        Self {
            inner,
            fault,
            armed: Arc::new(AtomicBool::new(true)),
        }
    }

    /// The shared armed flag: store `false` to heal the shard mid-run.
    pub fn armed_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.armed)
    }

    fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }
}

impl ShardBackend for ChaosShard {
    fn live_ids(&self) -> &[PointId] {
        self.inner.live_ids()
    }

    fn rounds(&self) -> usize {
        self.inner.rounds()
    }

    fn delta_fold(&self, q: Point) -> (DeltaCompose, u64) {
        if self.armed() {
            match self.fault {
                FaultKind::PanicOnQuery => panic!("chaos: injected delta_fold panic"),
                FaultKind::SlowBy(extra) => {
                    let (fold, nanos) = self.inner.delta_fold(q);
                    return (fold, nanos.saturating_add(extra));
                }
                FaultKind::NanPoison => {
                    let mut fold = DeltaCompose::new();
                    fold.observe(f64::NAN, 0);
                    return (fold, 0);
                }
            }
        }
        self.inner.delta_fold(q)
    }

    fn report_nonzero(&self, q: Point, fold: &DeltaCompose) -> (Vec<PointId>, u64) {
        if self.armed() {
            match self.fault {
                FaultKind::PanicOnQuery => panic!("chaos: injected report panic"),
                FaultKind::SlowBy(extra) => {
                    let (ids, nanos) = self.inner.report_nonzero(q, fold);
                    return (ids, nanos.saturating_add(extra));
                }
                // Stage 2 never runs on a shard whose stage-1 fold was
                // rejected, so poison only needs to corrupt stage 1.
                FaultKind::NanPoison => {}
            }
        }
        self.inner.report_nonzero(q, fold)
    }

    fn round_winners(&self, q: Point) -> (Vec<(f64, PointId)>, u64) {
        if self.armed() {
            match self.fault {
                FaultKind::PanicOnQuery => panic!("chaos: injected winners panic"),
                FaultKind::SlowBy(extra) => {
                    let (w, nanos) = self.inner.round_winners(q);
                    return (w, nanos.saturating_add(extra));
                }
                FaultKind::NanPoison => {
                    return (vec![(f64::NAN, 0); self.inner.rounds()], 0);
                }
            }
        }
        self.inner.round_winners(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct StubShard;

    impl ShardBackend for StubShard {
        fn live_ids(&self) -> &[PointId] {
            &[7]
        }
        fn rounds(&self) -> usize {
            4
        }
        fn delta_fold(&self, _q: Point) -> (DeltaCompose, u64) {
            let mut fold = DeltaCompose::new();
            fold.observe(1.5, 7);
            (fold, 10)
        }
        fn report_nonzero(&self, _q: Point, _fold: &DeltaCompose) -> (Vec<PointId>, u64) {
            (vec![7], 10)
        }
        fn round_winners(&self, _q: Point) -> (Vec<(f64, PointId)>, u64) {
            (vec![(1.5, 7); 4], 10)
        }
    }

    #[test]
    fn nan_poison_is_detectable_and_disarmable() {
        let chaos = ChaosShard::new(Box::new(StubShard), FaultKind::NanPoison);
        let q = Point { x: 0.0, y: 0.0 };
        let (fold, _) = chaos.delta_fold(q);
        assert!(!fold.is_empty() && fold.delta_min().is_nan());
        let (w, _) = chaos.round_winners(q);
        assert_eq!(w.len(), 4);
        assert!(w.iter().all(|(d, _)| d.is_nan()));
        chaos.armed_handle().store(false, Ordering::Relaxed);
        let (fold, nanos) = chaos.delta_fold(q);
        assert_eq!(fold.delta_min(), 1.5);
        assert_eq!(nanos, 10);
    }

    #[test]
    fn slow_by_inflates_reported_latency_only() {
        let chaos = ChaosShard::new(Box::new(StubShard), FaultKind::SlowBy(1_000));
        let q = Point { x: 0.0, y: 0.0 };
        let (fold, nanos) = chaos.delta_fold(q);
        assert_eq!(fold.delta_min(), 1.5, "answers stay correct, only slow");
        assert_eq!(nanos, 1_010);
    }
}
