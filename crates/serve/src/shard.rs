//! Sharded ownership of the live set and merged frozen views.
//!
//! A [`ShardSet`] routes every point to one of N [`DynamicEngine`]s by a
//! deterministic policy (id hash or spatial cell) and allocates globally
//! unique ids, so the union of shard live sets is exactly the live set an
//! unsharded engine with the same history would hold. Queries run against a
//! [`ShardSetSnapshot`] whose merge rules are bit-identical to one
//! unsharded engine:
//!
//! * **NN≠0** — per-shard stage-1 [`DeltaCompose`] folds merge into the
//!   flat fold over the union (the fold is a commutative two-smallest-Δ
//!   reduction), then each shard reports stage 2 under the merged caps.
//! * **Quantification** — per-round `(distance, id)` winners are exact
//!   per-shard minima over id-keyed sample streams, so the elementwise
//!   lexicographic minimum across shards is the global round winner.
//! * **Exact sweep** — shards materialize into one id-sorted merged view,
//!   identical to the unsharded materialization.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

use unn_distr::{DiscreteDistribution, Uncertain, UncertainPoint};
use unn_dynamic::{
    CompactionPolicy, DynamicEngine, DynamicStats, EngineConfig, EngineSnapshot, FilterPrecision,
    PointId,
};
use unn_geom::Point;
use unn_nonzero::DeltaCompose;
use unn_quantify::{
    adaptive_over_winners, panic_message, quantification_exact, quantification_numeric,
    AdaptiveQuantify, MonteCarloIndex, ADAPTIVE_MIN_ROUNDS,
};

use crate::ServeError;

/// How points map to shards. Both policies are pure functions of the point
/// (and the id allocator), so a replayed insert stream lands identically.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ShardPolicy {
    /// Mix the point id; uniform balance regardless of geometry.
    Hash,
    /// Mix the grid cell (side length `cell`) containing the center of the
    /// point's support box; co-located points share shards, which keeps
    /// most queries' stage-2 candidates on few shards.
    Spatial {
        /// Grid-cell side length (finite, positive).
        cell: f64,
    },
}

/// Configuration for a [`ShardSet`]: the per-shard engine knobs plus the
/// query-accuracy targets its snapshots serve with.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Base seed; shared by every shard so id-keyed sample streams agree
    /// with an unsharded engine.
    pub seed: u64,
    /// Monte-Carlo rounds per block (clamped to ≥ 1; identical across
    /// shards so per-round winners compose).
    pub mc_rounds: usize,
    /// Per-shard tombstone compaction threshold, in `(0, 1)`.
    pub max_dead_fraction: f64,
    /// Per-shard block-count policy.
    pub policy: CompactionPolicy,
    /// Per-shard hot-block promotion ratio (`None` disables).
    pub hot_promote_ratio: Option<f64>,
    /// Distance-fill precision tier of every shard's scan structures;
    /// `F32Refined` is bit-identical to the `F64` default, only faster.
    pub filter: FilterPrecision,
    /// Target additive error for adaptive quantification, in `(0, 1)`.
    pub epsilon: f64,
    /// Failure probability for Monte-Carlo guarantees, in `(0, 1)`.
    pub delta: f64,
    /// Grid resolution for exact-by-integration on continuous models (≥ 1).
    pub numeric_steps: usize,
    /// First checkpoint of the adaptive stopping rule (≥ 1).
    pub adaptive_min_rounds: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed,
            mc_rounds: 1024,
            max_dead_fraction: 0.25,
            policy: CompactionPolicy::Logarithmic,
            hot_promote_ratio: None,
            filter: FilterPrecision::F64,
            epsilon: 0.05,
            delta: 0.01,
            numeric_steps: 2_000,
            adaptive_min_rounds: ADAPTIVE_MIN_ROUNDS,
        }
    }
}

impl ServeConfig {
    /// Checks every parameter against its documented range.
    pub fn validate(&self) -> Result<(), ServeError> {
        let bad = |reason: String| Err(ServeError::InvalidConfig { reason });
        if self.mc_rounds == 0 {
            return bad("mc_rounds must be >= 1".into());
        }
        if !(self.max_dead_fraction > 0.0 && self.max_dead_fraction < 1.0) {
            return bad(format!(
                "max_dead_fraction must be in (0, 1), got {}",
                self.max_dead_fraction
            ));
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return bad(format!("epsilon must be in (0, 1), got {}", self.epsilon));
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return bad(format!("delta must be in (0, 1), got {}", self.delta));
        }
        if self.numeric_steps == 0 {
            return bad("numeric_steps must be >= 1".into());
        }
        if self.adaptive_min_rounds == 0 {
            return bad("adaptive_min_rounds must be >= 1".into());
        }
        if let Some(r) = self.hot_promote_ratio {
            if !(r.is_finite() && r > 0.0) {
                return bad(format!(
                    "hot_promote_ratio must be finite positive, got {r}"
                ));
            }
        }
        if let CompactionPolicy::Tiered { max_blocks } = self.policy {
            if max_blocks == 0 {
                return bad("tiered max_blocks must be >= 1".into());
            }
        }
        Ok(())
    }

    /// The per-shard engine configuration this serve config induces.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            seed: self.seed,
            mc_rounds: self.mc_rounds.max(1),
            max_dead_fraction: self.max_dead_fraction,
            policy: self.policy,
            hot_promote_ratio: self.hot_promote_ratio,
            filter: self.filter,
        }
    }
}

/// Validation behavior at the [`ShardSet::try_insert`] boundary (mirrors
/// the core crate's `ValidationPolicy`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertPolicy {
    /// Reject any point that fails validation.
    Strict,
    /// Repair what is repairable; reject the rest.
    Repair,
}

/// splitmix64 finalizer — the same mixing quality as the engine's stream
/// seeding, used only for shard routing.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// N dynamic engines behind one id space and one routing policy.
#[derive(Clone, Debug)]
pub struct ShardSet {
    engines: Vec<DynamicEngine>,
    policy: ShardPolicy,
    config: ServeConfig,
    next_id: PointId,
    homes: HashMap<PointId, usize>,
}

impl ShardSet {
    /// `n_shards` empty engines (all sharing `config.seed`, so cross-shard
    /// merges stay bit-identical to an unsharded engine).
    pub fn new(
        n_shards: usize,
        policy: ShardPolicy,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        if n_shards == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "need at least one shard".into(),
            });
        }
        if let ShardPolicy::Spatial { cell } = policy {
            if !(cell.is_finite() && cell > 0.0) {
                return Err(ServeError::InvalidConfig {
                    reason: format!("spatial cell must be finite positive, got {cell}"),
                });
            }
        }
        config.validate()?;
        Ok(Self {
            engines: (0..n_shards)
                .map(|_| DynamicEngine::new(config.engine_config()))
                .collect(),
            policy,
            config,
            next_id: 0,
            homes: HashMap::new(),
        })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.engines.len()
    }

    /// Total live points across shards.
    pub fn len(&self) -> usize {
        self.engines.iter().map(DynamicEngine::len).sum()
    }

    /// True when no shard holds a live point.
    pub fn is_empty(&self) -> bool {
        self.engines.iter().all(DynamicEngine::is_empty)
    }

    /// The configuration the set was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Which shard `point` would land on under the next fresh id.
    fn route(&self, id: PointId, point: &Uncertain) -> usize {
        let n = self.engines.len() as u64;
        let h = match self.policy {
            ShardPolicy::Hash => mix(id),
            ShardPolicy::Spatial { cell } => {
                let c = point.support_bbox().center();
                let gx = (c.x / cell).floor() as i64 as u64;
                let gy = (c.y / cell).floor() as i64 as u64;
                mix(gx ^ gy.rotate_left(32))
            }
        };
        (h % n) as usize
    }

    /// Inserts a point under a fresh globally-unique id and returns it.
    /// A sampling panic (hostile distribution) propagates, but the shard
    /// engine's build-before-mutate ordering leaves the set unchanged —
    /// prefer [`ShardSet::try_insert`] at trust boundaries.
    pub fn insert(&mut self, point: Uncertain) -> PointId {
        let id = self.next_id;
        let shard = self.route(id, &point);
        let inserted = self.engines[shard].insert_with_id(id, point);
        debug_assert!(inserted.is_ok(), "fresh ids cannot collide");
        self.next_id += 1;
        self.homes.insert(id, shard);
        id
    }

    /// Validating, panic-isolating insert: the point is validated (or
    /// repaired) first, and the block build runs under `catch_unwind` so a
    /// hostile sampler surfaces as [`ServeError::InsertPanicked`] with the
    /// shard set untouched.
    pub fn try_insert(
        &mut self,
        point: Uncertain,
        policy: InsertPolicy,
    ) -> Result<PointId, ServeError> {
        let point = match policy {
            InsertPolicy::Strict => point.validate().map(|()| point),
            InsertPolicy::Repair => point.repair(),
        }
        .map_err(|e| ServeError::InvalidPoint {
            reason: e.to_string(),
        })?;
        let id = self.next_id;
        let shard = self.route(id, &point);
        let engine = &mut self.engines[shard];
        // AssertUnwindSafe: the engine orders every mutation after the
        // panic-prone block build, so a caught panic leaves it consistent.
        match catch_unwind(AssertUnwindSafe(|| engine.insert_with_id(id, point))) {
            Ok(res) => {
                debug_assert!(res.is_ok(), "fresh ids cannot collide");
                self.next_id += 1;
                self.homes.insert(id, shard);
                Ok(id)
            }
            Err(payload) => Err(ServeError::InsertPanicked {
                message: panic_message(payload),
            }),
        }
    }

    /// Tombstones `id` on its home shard; `false` if it is not live.
    pub fn remove(&mut self, id: PointId) -> bool {
        match self.homes.get(&id).copied() {
            Some(shard) if self.engines[shard].remove(id) => {
                self.homes.remove(&id);
                true
            }
            _ => false,
        }
    }

    /// True if `id` is currently live.
    pub fn contains(&self, id: PointId) -> bool {
        self.homes.contains_key(&id)
    }

    /// Per-shard lifecycle counters.
    pub fn shard_stats(&self) -> Vec<DynamicStats> {
        self.engines.iter().map(DynamicEngine::stats).collect()
    }

    /// A consistent frozen view across all shards.
    pub fn snapshot(&self) -> ShardSetSnapshot {
        let shards: Vec<EngineSnapshot> =
            self.engines.iter().map(DynamicEngine::snapshot).collect();
        let mut live_ids = Vec::with_capacity(self.len());
        let mut k_max = 1usize;
        for s in &shards {
            live_ids.extend_from_slice(s.live_ids());
            k_max = k_max.max(s.k_max());
        }
        live_ids.sort_unstable();
        ShardSetSnapshot {
            inner: Arc::new(SnapInner {
                shards,
                live_ids,
                k_max,
                s: self.config.mc_rounds.max(1),
                config: self.config,
                exact: OnceLock::new(),
            }),
        }
    }
}

struct SnapInner {
    shards: Vec<EngineSnapshot>,
    live_ids: Vec<PointId>,
    k_max: usize,
    s: usize,
    config: ServeConfig,
    exact: OnceLock<Arc<ExactView>>,
}

/// Frozen cross-shard view at one (vector of) epoch(s). Cloning is O(1).
#[derive(Clone)]
pub struct ShardSetSnapshot {
    inner: Arc<SnapInner>,
}

impl ShardSetSnapshot {
    /// Per-shard frozen views, in shard order.
    pub fn shards(&self) -> &[EngineSnapshot] {
        &self.inner.shards
    }

    /// Live ids across all shards, sorted ascending — the dense layout of
    /// every merged probability vector.
    pub fn live_ids(&self) -> &[PointId] {
        &self.inner.live_ids
    }

    /// Total live points.
    pub fn len(&self) -> usize {
        self.inner.live_ids.len()
    }

    /// True when the view holds no live points.
    pub fn is_empty(&self) -> bool {
        self.inner.live_ids.is_empty()
    }

    /// Monte-Carlo rounds per block (shared by every shard).
    pub fn mc_rounds(&self) -> usize {
        self.inner.s
    }

    /// The serve config the owning set was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.config
    }

    /// The accuracy the per-block round count certifies for the merged
    /// live set (Eq. 6 inverted at `s`).
    pub fn achieved_epsilon(&self) -> f64 {
        MonteCarloIndex::epsilon_for(
            self.inner.s,
            self.inner.config.delta,
            self.len().max(1),
            self.inner.k_max,
        )
    }

    /// `NN≠0(q)` over the union, sorted ascending — per-shard Lemma 2.1
    /// folds merged into the flat fold, then per-shard stage-2 reports
    /// under the merged caps. Bit-identical to one unsharded engine on the
    /// same live set.
    pub fn nn_nonzero(&self, q: Point) -> Vec<PointId> {
        let mut merged = DeltaCompose::new();
        let folds: Vec<DeltaCompose> = self.inner.shards.iter().map(|s| s.delta_fold(q)).collect();
        for f in &folds {
            merged.merge(f);
        }
        let mut out = Vec::new();
        for s in &self.inner.shards {
            s.report_nonzero_under(q, &merged, &mut out);
        }
        out.sort_unstable();
        out
    }

    /// Per-round Monte-Carlo winners over the union: the elementwise
    /// `(distance, id)` lexicographic minimum of per-shard winners, which
    /// equals the unsharded winner vector because sample streams are keyed
    /// by stable point id under the shared seed.
    pub fn round_winners(&self, q: Point) -> Vec<(f64, PointId)> {
        let mut acc: Vec<(f64, PointId)> = Vec::new();
        for s in &self.inner.shards {
            if s.live_len() == 0 {
                continue;
            }
            merge_winners(&mut acc, &s.round_winners(q));
        }
        acc
    }

    /// Full-round Monte-Carlo estimate of `π_i(q)`, dense over
    /// [`ShardSetSnapshot::live_ids`].
    pub fn quantify(&self, q: Point) -> Vec<f64> {
        if self.is_empty() {
            return Vec::new();
        }
        let winners = self.round_winners(q);
        let ranks = ranks_in(&self.inner.live_ids, &winners);
        pi_from_ranks(&ranks, self.len(), self.inner.s)
    }

    /// Adaptive early-stopping quantification at the configured ε/δ.
    pub fn quantify_adaptive(&self, q: Point) -> AdaptiveQuantify {
        let winners = self.round_winners(q);
        let ranks = ranks_in(&self.inner.live_ids, &winners);
        adaptive_over_winners(
            &ranks,
            self.len(),
            self.inner.config.epsilon,
            self.inner.config.delta,
            self.inner.config.adaptive_min_rounds,
            self.inner.s,
        )
    }

    /// The merged exact view (lazily materialized once, shared).
    pub fn exact_view(&self) -> Arc<ExactView> {
        Arc::clone(self.inner.exact.get_or_init(|| {
            let mut entries: Vec<(PointId, Uncertain)> = Vec::with_capacity(self.len());
            for s in &self.inner.shards {
                entries.extend(s.live_points());
            }
            entries.sort_unstable_by_key(|(id, _)| *id);
            let ids: Vec<PointId> = entries.iter().map(|(id, _)| *id).collect();
            let points: Vec<Uncertain> = entries.into_iter().map(|(_, p)| p).collect();
            let discrete = points.iter().map(|p| p.as_discrete().cloned()).collect();
            Arc::new(ExactView {
                ids,
                points,
                discrete,
                numeric_steps: self.inner.config.numeric_steps,
            })
        }))
    }

    /// Exact (all-discrete) or high-resolution numeric quantification over
    /// the merged live set.
    pub fn quantify_exact(&self, q: Point) -> Vec<f64> {
        if self.is_empty() {
            return Vec::new();
        }
        self.exact_view().quantify(q)
    }

    /// The work an exact answer costs, in location touches.
    pub fn exact_work(&self) -> u64 {
        self.exact_view().work()
    }
}

/// The merged, id-sorted live set materialized for exact quantification —
/// what the [`Dispatcher`](crate::Dispatcher)'s exact tier sweeps.
pub struct ExactView {
    ids: Vec<PointId>,
    points: Vec<Uncertain>,
    discrete: Option<Vec<DiscreteDistribution>>,
    numeric_steps: usize,
}

impl ExactView {
    /// Live ids, sorted ascending (the dense layout of
    /// [`ExactView::quantify`]).
    pub fn ids(&self) -> &[PointId] {
        &self.ids
    }

    /// Exact-sweep work in location touches (same accounting as the core
    /// crate's `exact_work`).
    pub fn work(&self) -> u64 {
        if let Some(objs) = &self.discrete {
            objs.iter().map(|o| o.len() as u64).sum()
        } else {
            self.numeric_steps as u64 * self.points.len() as u64
        }
    }

    /// The exact (Eq. 2 sweep) or numeric-integration probability vector.
    pub fn quantify(&self, q: Point) -> Vec<f64> {
        if self.points.is_empty() {
            return Vec::new();
        }
        if let Some(objs) = &self.discrete {
            quantification_exact(objs, q)
        } else {
            quantification_numeric(&self.points, q, self.numeric_steps)
        }
    }
}

/// Folds shard winner vector `w` into `acc` by elementwise `(distance, id)`
/// lexicographic minimum. An empty `acc` adopts `w`.
pub(crate) fn merge_winners(acc: &mut Vec<(f64, PointId)>, w: &[(f64, PointId)]) {
    if acc.is_empty() {
        acc.extend_from_slice(w);
        return;
    }
    debug_assert_eq!(acc.len(), w.len(), "shards must share the round count");
    for (e, &(d, id)) in acc.iter_mut().zip(w) {
        if d < e.0 || (d == e.0 && id < e.1) {
            *e = (d, id);
        }
    }
}

/// Maps winner ids to ranks in the sorted `ids` layout.
pub(crate) fn ranks_in(ids: &[PointId], winners: &[(f64, PointId)]) -> Vec<u32> {
    winners
        .iter()
        .map(|(_, id)| {
            let rank = ids.binary_search(id);
            debug_assert!(rank.is_ok(), "winner id {id} not in covered live set");
            rank.unwrap_or(0) as u32
        })
        .collect()
}

/// Dense probability vector from winner ranks over `n` points and `s`
/// rounds.
pub(crate) fn pi_from_ranks(ranks: &[u32], n: usize, s: usize) -> Vec<f64> {
    let mut counts = vec![0u32; n];
    for r in ranks {
        counts[*r as usize] += 1;
    }
    let inv = 1.0 / (s as f64);
    counts.into_iter().map(|c| f64::from(c) * inv).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(x: f64, y: f64, r: f64) -> Uncertain {
        Uncertain::uniform_disk(Point::new(x, y), r)
    }

    fn small_config() -> ServeConfig {
        ServeConfig {
            mc_rounds: 64,
            ..ServeConfig::default()
        }
    }

    /// An unsharded engine fed the same (id, point) stream — the
    /// differential oracle every merged answer must match bit-for-bit.
    fn oracle_engine(points: &[Uncertain], config: &ServeConfig) -> DynamicEngine {
        let mut e = DynamicEngine::new(config.engine_config());
        for (i, p) in points.iter().enumerate() {
            e.insert_with_id(i as PointId, p.clone())
                .unwrap_or_else(|err| panic!("oracle insert {i}: {err}"));
        }
        e
    }

    fn corpus(n: usize) -> Vec<Uncertain> {
        (0..n)
            .map(|i| {
                let (x, y) = ((i % 7) as f64 * 2.5, (i / 7) as f64 * 2.5);
                disk(x, y, 0.3 + 0.05 * (i % 5) as f64)
            })
            .collect()
    }

    #[test]
    fn sharded_answers_match_unsharded_oracle() {
        let cfg = small_config();
        let points = corpus(23);
        for policy in [ShardPolicy::Hash, ShardPolicy::Spatial { cell: 4.0 }] {
            let mut set = ShardSet::new(3, policy, cfg).unwrap_or_else(|e| panic!("{e}"));
            for p in &points {
                set.insert(p.clone());
            }
            let oracle = oracle_engine(&points, &cfg).snapshot();
            let snap = set.snapshot();
            assert_eq!(snap.live_ids(), oracle.live_ids());
            for q in [
                Point::new(0.0, 0.0),
                Point::new(5.1, 2.2),
                Point::new(-3.0, 7.5),
                Point::new(9.9, 0.1),
            ] {
                assert_eq!(snap.nn_nonzero(q), oracle.nn_nonzero(q), "{policy:?} {q:?}");
                assert_eq!(
                    snap.round_winners(q),
                    oracle.round_winners(q),
                    "{policy:?} {q:?}"
                );
                assert_eq!(snap.quantify(q), oracle.quantify(q), "{policy:?} {q:?}");
            }
        }
    }

    #[test]
    fn churn_keeps_oracle_equality() {
        let cfg = small_config();
        let points = corpus(17);
        let mut set = ShardSet::new(4, ShardPolicy::Hash, cfg).unwrap_or_else(|e| panic!("{e}"));
        let mut oracle = DynamicEngine::new(cfg.engine_config());
        let mut ids = Vec::new();
        for p in &points {
            let id = set.insert(p.clone());
            oracle
                .insert_with_id(id, p.clone())
                .unwrap_or_else(|e| panic!("{e}"));
            ids.push(id);
        }
        for &id in &[ids[2], ids[9], ids[14]] {
            assert!(set.remove(id));
            assert!(oracle.remove(id));
            assert!(!set.contains(id));
        }
        assert!(!set.remove(ids[2]), "double remove must fail");
        let (snap, osnap) = (set.snapshot(), oracle.snapshot());
        assert_eq!(snap.live_ids(), osnap.live_ids());
        assert_eq!(snap.len(), points.len() - 3);
        let q = Point::new(4.0, 3.0);
        assert_eq!(snap.nn_nonzero(q), osnap.nn_nonzero(q));
        assert_eq!(snap.quantify(q), osnap.quantify(q));
    }

    #[test]
    fn exact_view_matches_merged_live_set() {
        let cfg = small_config();
        let points: Vec<Uncertain> = (0..12)
            .map(|i| Uncertain::certain(Point::new(i as f64, (i % 3) as f64)))
            .collect();
        let mut set = ShardSet::new(3, ShardPolicy::Hash, cfg).unwrap_or_else(|e| panic!("{e}"));
        for p in &points {
            set.insert(p.clone());
        }
        let snap = set.snapshot();
        let view = snap.exact_view();
        assert_eq!(view.ids(), snap.live_ids());
        // All-discrete corpus: exact work is the summed support size.
        assert_eq!(view.work(), 12);
        let pi = snap.quantify_exact(Point::new(0.1, 0.0));
        assert_eq!(pi.len(), 12);
        let total: f64 = pi.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "exact pi sums to 1, got {total}"
        );
    }

    #[test]
    fn try_insert_isolates_a_hostile_sampler() {
        use unn_distr::{ChaosDistribution, ChaosMode};
        let cfg = small_config();
        let mut set = ShardSet::new(2, ShardPolicy::Hash, cfg).unwrap_or_else(|e| panic!("{e}"));
        // Passes validation (delegates to its inner disk) but panics on the
        // first Monte-Carlo sample — inside the block build.
        let bad = Uncertain::Chaos(ChaosDistribution::new(
            disk(2.0, 2.0, 1.0),
            ChaosMode::PanicOnSample(1),
        ));
        match set.try_insert(bad, InsertPolicy::Strict) {
            Err(ServeError::InsertPanicked { message }) => {
                assert!(message.contains("chaos"), "unexpected payload: {message}")
            }
            other => panic!("expected InsertPanicked, got {other:?}"),
        }
        // The shard set is untouched and still serves.
        assert!(set.is_empty());
        let ok = set.try_insert(disk(1.0, 1.0, 0.5), InsertPolicy::Strict);
        assert_eq!(ok.unwrap_or_else(|e| panic!("{e}")), 0, "id 0 not burned");
        assert_eq!(set.len(), 1);
        let snap = set.snapshot();
        assert_eq!(snap.nn_nonzero(Point::new(1.0, 1.0)), vec![0]);
    }
}
