//! The serving run loop: admission, deadlines, retries, breakers, and
//! honest degradation.
//!
//! Determinism: every decision the loop takes is a pure function of the
//! request stream and the per-call self-reported timings. Admission tiers
//! are assigned in one sequential pass *before* the parallel fan-out;
//! per-query shard visits run in shard order with a serial elapsed-time
//! model (call nanos plus backoff); and breaker transitions replay each
//! query's call outcomes in request order *after* the batch. Answers and
//! counters are therefore bit-identical at any thread count, faults
//! included.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rayon::prelude::*;
use unn_dynamic::{EngineSnapshot, PointId};
use unn_geom::Point;
use unn_nonzero::DeltaCompose;
use unn_observe::{Clock, ServeCounters};
use unn_quantify::{adaptive_over_winners, MonteCarloIndex, ADAPTIVE_MIN_ROUNDS};

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::shard::{merge_winners, ranks_in, ExactView, ShardSetSnapshot};
use crate::ServeError;

/// One shard as the dispatcher sees it: metadata plus the three query
/// calls, each self-reporting its elapsed nanoseconds (measured by the
/// injected clock for real shards; synthetic for chaos wrappers). The
/// dispatcher treats every call as fallible — panics are caught, timings
/// drive timeouts, and answers are validated before merging.
pub trait ShardBackend: Send + Sync {
    /// This shard's live ids, sorted ascending.
    fn live_ids(&self) -> &[PointId];

    /// Monte-Carlo rounds per block on this shard.
    fn rounds(&self) -> usize;

    /// Stage-1 Lemma 2.1 fold over this shard.
    fn delta_fold(&self, q: Point) -> (DeltaCompose, u64);

    /// Stage-2 NN≠0 report under an externally merged fold.
    fn report_nonzero(&self, q: Point, fold: &DeltaCompose) -> (Vec<PointId>, u64);

    /// Per-round `(distance, id)` winners for `q`.
    fn round_winners(&self, q: Point) -> (Vec<(f64, PointId)>, u64);
}

/// The production backend: a frozen per-shard engine view timed by the
/// injected clock (zero elapsed under `NullClock`, keeping the whole loop
/// deterministic).
pub struct EngineShard {
    snap: EngineSnapshot,
    clock: Arc<dyn Clock + Send + Sync>,
}

impl EngineShard {
    /// Wraps one shard's frozen view.
    pub fn new(snap: EngineSnapshot, clock: Arc<dyn Clock + Send + Sync>) -> Self {
        Self { snap, clock }
    }

    fn timed<T>(&self, f: impl FnOnce() -> T) -> (T, u64) {
        let t0 = self.clock.now_nanos();
        let out = f();
        (out, self.clock.now_nanos().saturating_sub(t0))
    }
}

impl ShardBackend for EngineShard {
    fn live_ids(&self) -> &[PointId] {
        self.snap.live_ids()
    }

    fn rounds(&self) -> usize {
        self.snap.rounds()
    }

    fn delta_fold(&self, q: Point) -> (DeltaCompose, u64) {
        self.timed(|| self.snap.delta_fold(q))
    }

    fn report_nonzero(&self, q: Point, fold: &DeltaCompose) -> (Vec<PointId>, u64) {
        self.timed(|| {
            let mut out = Vec::new();
            self.snap.report_nonzero_under(q, fold, &mut out);
            out
        })
    }

    fn round_winners(&self, q: Point) -> (Vec<(f64, PointId)>, u64) {
        self.timed(|| self.snap.round_winners(q))
    }
}

/// Bounded retry with exponential backoff for transient shard failures.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Attempts beyond the first per shard call.
    pub max_retries: u32,
    /// Backoff before retry `k` (1-based) is `backoff_base_nanos << (k-1)`,
    /// charged to the query's deadline.
    pub backoff_base_nanos: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff_base_nanos: 1_000,
        }
    }
}

impl RetryPolicy {
    /// The backoff charged before retry `attempt` (1-based).
    pub fn backoff_nanos(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(63);
        self.backoff_base_nanos.saturating_mul(1u64 << shift)
    }
}

/// Cross-batch admission feedback: a token bucket refilled from observed
/// completion rates. Without it admission is per-batch only — every batch
/// gets the full [`AdmissionConfig::work_capacity`] regardless of how the
/// previous batches went. With feedback, work spent must be *earned back*
/// by completed answers (plus an optional clock-driven trickle), so a
/// backlog of expensive batches tightens admission until completions catch
/// up. Deterministic under the injected clock: under `NullClock` the
/// trickle contributes nothing and refill is a pure function of the
/// completion counters.
#[derive(Clone, Copy, Debug)]
pub struct FeedbackConfig {
    /// Bucket capacity in work units (≥ 1); refill saturates here.
    pub bucket_capacity: u64,
    /// Tokens in the bucket at construction.
    pub initial_tokens: u64,
    /// Tokens earned per completed (non-shed) answer.
    pub tokens_per_completion: u64,
    /// Trickle refill per elapsed second of injected-clock time.
    pub tokens_per_sec: u64,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        Self {
            bucket_capacity: 4_096,
            initial_tokens: 4_096,
            tokens_per_completion: 64,
            tokens_per_sec: 0,
        }
    }
}

/// Admission control: a per-batch work budget spent tier-by-tier. When a
/// quantify request no longer fits the exact sweep it is *downgraded* —
/// adaptive Monte-Carlo, then round-capped Monte-Carlo — and only shed
/// when even the capped tier does not fit.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Work units available per [`Dispatcher::serve`] batch
    /// (`u64::MAX` = unlimited). Exact costs its sweep touches, adaptive
    /// costs `s` rounds, capped costs [`AdmissionConfig::capped_rounds`].
    pub work_capacity: u64,
    /// Flat work cost charged per NN≠0 request.
    pub nn_cost: u64,
    /// Monte-Carlo round cap of the lowest quantification tier (≥ 1).
    pub capped_rounds: usize,
    /// Cross-batch feedback; `None` keeps per-batch-only capacity.
    pub feedback: Option<FeedbackConfig>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            work_capacity: u64::MAX,
            nn_cost: 8,
            capped_rounds: 64,
            feedback: None,
        }
    }
}

/// Dispatcher tuning.
#[derive(Clone, Copy, Debug)]
pub struct DispatchConfig {
    /// Worker threads for the batch fan-out (`None` = ambient pool).
    pub threads: Option<usize>,
    /// Per-query deadline in modeled nanoseconds (`u64::MAX` = none):
    /// shard call time plus backoff, accumulated in shard order.
    pub deadline_nanos: u64,
    /// Per shard call timeout (`u64::MAX` = none): a call reporting more
    /// elapsed nanoseconds counts as a failure.
    pub call_timeout_nanos: u64,
    /// Retry policy for failed shard calls.
    pub retry: RetryPolicy,
    /// Per-shard circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Load-shedding ladder.
    pub admission: AdmissionConfig,
    /// Adaptive-tier target additive error, in `(0, 1)`.
    pub epsilon: f64,
    /// Monte-Carlo failure probability, in `(0, 1)`.
    pub delta: f64,
    /// First adaptive checkpoint (≥ 1).
    pub adaptive_min_rounds: usize,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        Self {
            threads: None,
            deadline_nanos: u64::MAX,
            call_timeout_nanos: u64::MAX,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            admission: AdmissionConfig::default(),
            epsilon: 0.05,
            delta: 0.01,
            adaptive_min_rounds: ADAPTIVE_MIN_ROUNDS,
        }
    }
}

impl DispatchConfig {
    fn validate(&self) -> Result<(), ServeError> {
        let bad = |reason: String| Err(ServeError::InvalidConfig { reason });
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return bad(format!("epsilon must be in (0, 1), got {}", self.epsilon));
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return bad(format!("delta must be in (0, 1), got {}", self.delta));
        }
        if self.adaptive_min_rounds == 0 {
            return bad("adaptive_min_rounds must be >= 1".into());
        }
        if self.admission.capped_rounds == 0 {
            return bad("capped_rounds must be >= 1".into());
        }
        if let Some(fb) = &self.admission.feedback {
            if fb.bucket_capacity == 0 {
                return bad("feedback bucket_capacity must be >= 1".into());
            }
            if fb.initial_tokens > fb.bucket_capacity {
                return bad(format!(
                    "feedback initial_tokens {} exceeds bucket_capacity {}",
                    fb.initial_tokens, fb.bucket_capacity
                ));
            }
        }
        Ok(())
    }
}

/// One query in a serve batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Request {
    /// Ids with nonzero probability of being the nearest neighbor.
    NnNonzero(Point),
    /// Quantification probabilities, at the best tier admission allows.
    Quantify(Point),
}

impl Request {
    fn point(&self) -> Point {
        match self {
            Request::NnNonzero(q) | Request::Quantify(q) => *q,
        }
    }
}

/// Why a request was shed instead of answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// Admission ran out of work capacity even for the capped tier.
    CapacityExhausted,
    /// The query point was non-finite.
    InvalidQuery,
    /// Every shard failed or was excluded; there is nothing honest to say.
    NoCoverage,
    /// The deadline expired before any shard answered.
    DeadlineExceeded,
}

/// How a request was answered (or not).
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// NN≠0 ids over the covered shards, sorted ascending.
    Nonzero {
        /// The ids.
        ids: Vec<PointId>,
    },
    /// Exact-tier probabilities (full coverage by construction).
    Exact {
        /// Dense π over [`Reply::layout`].
        pi: Vec<f64>,
    },
    /// Adaptive Monte-Carlo tier.
    Adaptive {
        /// Dense π over [`Reply::layout`].
        pi: Vec<f64>,
        /// The certified half-width at stopping — honest for the covered
        /// set.
        achieved_epsilon: f64,
        /// Rounds consumed.
        rounds_used: usize,
    },
    /// Round-capped Monte-Carlo tier (load shedding by downgrade).
    Capped {
        /// Dense π over [`Reply::layout`].
        pi: Vec<f64>,
        /// The certified half-width the surviving rounds actually earn.
        achieved_epsilon: f64,
        /// Rounds consumed.
        rounds_used: usize,
    },
    /// No answer; the reason is honest.
    Shed {
        /// Why.
        reason: ShedReason,
    },
}

/// One request's full reply: the outcome plus the coverage and fault
/// accounting that makes a degraded answer honest.
#[derive(Clone, Debug, PartialEq)]
pub struct Reply {
    /// The answer (or shed reason).
    pub outcome: Outcome,
    /// The live ids each probability slot refers to (covered shards only,
    /// sorted ascending); empty for NN≠0 and shed replies.
    pub layout: Vec<PointId>,
    /// Shards that contributed no answer (breaker-open, failed after
    /// retries, or deadline-skipped), in shard order.
    pub failed_shards: Vec<usize>,
    /// Live points covered by the answering shards.
    pub covered: usize,
    /// Live points across all shards.
    pub total_live: usize,
    /// Retries spent on this request.
    pub retries: u64,
    /// Modeled latency: shard call nanos plus backoff, serial in shard
    /// order (real time under a real clock, 0 under `NullClock`).
    pub elapsed_nanos: u64,
    /// True when the answer is below the no-fault tier or covers only a
    /// subset of shards.
    pub degraded: bool,
}

impl Reply {
    /// True when some live points are missing from the answer.
    pub fn partial(&self) -> bool {
        self.covered < self.total_live
    }
}

/// The per-query tier admission assigns before the fan-out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Plan {
    Nn,
    Exact,
    Adaptive,
    Capped,
    Shed(ShedReason),
}

/// Per-query fault log, folded into metrics and breakers after the batch.
#[derive(Default)]
struct CallLog {
    /// (shard, success) per attempt, in visit order.
    events: Vec<(usize, bool)>,
    retries: u64,
    timeouts: u64,
    panics: u64,
    poisons: u64,
    exact_fault: bool,
    deadline_hit: bool,
    shard_nanos: Vec<(usize, u64)>,
}

enum CallResult<T> {
    Ok(T),
    Failed,
    Skipped,
}

/// The serving loop over a frozen set of shard backends.
pub struct Dispatcher {
    backends: Vec<Box<dyn ShardBackend>>,
    exact: Option<Arc<ExactView>>,
    total_live: usize,
    s: usize,
    cfg: DispatchConfig,
    clock: Arc<dyn Clock + Send + Sync>,
    breakers: Vec<CircuitBreaker>,
    metrics: ServeCounters,
    /// Token-bucket state for cross-batch admission feedback (present only
    /// when [`AdmissionConfig::feedback`] is configured).
    bucket: Option<TokenBucket>,
}

/// Cross-batch feedback state: the tokens left plus the completion count
/// and clock reading already credited.
#[derive(Clone, Copy, Debug)]
struct TokenBucket {
    tokens: u64,
    credited_completions: u64,
    last_refill_nanos: u64,
}

impl Dispatcher {
    /// A dispatcher over explicit backends. Without an [`ExactView`] the
    /// quantification ladder starts at the adaptive tier.
    pub fn new(
        backends: Vec<Box<dyn ShardBackend>>,
        exact: Option<Arc<ExactView>>,
        cfg: DispatchConfig,
        clock: Arc<dyn Clock + Send + Sync>,
    ) -> Result<Self, ServeError> {
        cfg.validate()?;
        if backends.is_empty() {
            return Err(ServeError::InvalidConfig {
                reason: "need at least one shard backend".into(),
            });
        }
        let n = backends.len();
        let total_live = backends.iter().map(|b| b.live_ids().len()).sum();
        let s = backends.iter().map(|b| b.rounds()).max().unwrap_or(1);
        let bucket = cfg.admission.feedback.map(|fb| TokenBucket {
            tokens: fb.initial_tokens,
            credited_completions: 0,
            last_refill_nanos: clock.now_nanos(),
        });
        Ok(Self {
            backends,
            exact,
            total_live,
            s,
            cfg,
            clock,
            breakers: vec![CircuitBreaker::new(cfg.breaker); n],
            metrics: ServeCounters::new(n),
            bucket,
        })
    }

    /// A dispatcher over a [`ShardSetSnapshot`]'s per-shard views, with the
    /// merged exact view enabled.
    pub fn for_snapshot(
        snap: &ShardSetSnapshot,
        cfg: DispatchConfig,
        clock: Arc<dyn Clock + Send + Sync>,
    ) -> Result<Self, ServeError> {
        let backends: Vec<Box<dyn ShardBackend>> = snap
            .shards()
            .iter()
            .map(|s| {
                Box::new(EngineShard::new(s.clone(), Arc::clone(&clock))) as Box<dyn ShardBackend>
            })
            .collect();
        Self::new(backends, Some(snap.exact_view()), cfg, clock)
    }

    /// Swaps the backends (and exact view) for a fresh epoch while keeping
    /// breaker state and metrics — the serving loop under churn. Breakers
    /// are reset only if the shard count changes.
    pub fn refresh(&mut self, snap: &ShardSetSnapshot) {
        self.backends = snap
            .shards()
            .iter()
            .map(|s| {
                Box::new(EngineShard::new(s.clone(), Arc::clone(&self.clock)))
                    as Box<dyn ShardBackend>
            })
            .collect();
        self.exact = Some(snap.exact_view());
        self.total_live = snap.len();
        self.s = snap.mc_rounds();
        if self.breakers.len() != self.backends.len() {
            self.breakers = vec![CircuitBreaker::new(self.cfg.breaker); self.backends.len()];
        }
        if self.metrics.shard_latency.len() < self.backends.len() {
            let n = self.backends.len();
            self.metrics
                .shard_latency
                .resize(n, unn_observe::Histogram::default());
            self.metrics.shard_failures.resize(n, 0);
        }
    }

    /// Replaces shard `k`'s backend through `wrap` — the chaos-injection
    /// seam ([`crate::ChaosShard`]). The exact view is dropped (it bypasses
    /// the backends, so faults injected at the call layer would not reach
    /// it); the ladder starts at the adaptive tier afterwards.
    pub fn wrap_shard(
        &mut self,
        k: usize,
        wrap: impl FnOnce(Box<dyn ShardBackend>) -> Box<dyn ShardBackend>,
    ) {
        // Temporarily park a zero-size placeholder; `EmptyShard` never
        // serves because the slot is written back before any query runs.
        let slot = std::mem::replace(&mut self.backends[k], Box::new(EmptyShard));
        self.backends[k] = wrap(slot);
        self.exact = None;
    }

    /// Current per-shard breaker states.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.breakers.iter().map(CircuitBreaker::state).collect()
    }

    /// Counter totals so far.
    pub fn metrics(&self) -> &ServeCounters {
        &self.metrics
    }

    /// Monte-Carlo rounds per shard block (the adaptive tier's cap).
    pub fn mc_rounds(&self) -> usize {
        self.s
    }

    /// Live points across all shards (what the handshake advertises).
    pub fn total_live(&self) -> usize {
        self.total_live
    }

    /// The honest ε the Monte-Carlo tier certifies for a covered set of
    /// `covered` points (Eq. 6 inverted at the configured δ).
    pub fn mc_epsilon_for(&self, covered: usize, k_max: usize) -> f64 {
        MonteCarloIndex::epsilon_for(self.s, self.cfg.delta, covered.max(1), k_max.max(1))
    }

    /// Serves one batch. Replies are in request order; faults never escape
    /// (shard panics are caught and isolated), and every decision is
    /// deterministic at any thread count.
    pub fn serve(&mut self, requests: &[Request]) -> Vec<Reply> {
        self.serve_with_deadline(requests, u64::MAX)
    }

    /// Serves one batch under an additional per-query deadline budget in
    /// modeled nanoseconds, clamped against the configured
    /// [`DispatchConfig::deadline_nanos`] (whichever is tighter wins). This
    /// is the entry point for remote callers: a client sends its *remaining*
    /// budget with each batch, so time already burned on transport and
    /// retries honestly tightens the server-side ladder.
    pub fn serve_with_deadline(&mut self, requests: &[Request], budget_nanos: u64) -> Vec<Reply> {
        let saved = self.cfg.deadline_nanos;
        self.cfg.deadline_nanos = saved.min(budget_nanos);
        let now = self.clock.now_nanos();
        self.refill_bucket(now);
        for br in &mut self.breakers {
            br.poll(now);
        }
        let excluded: Vec<bool> = self
            .breakers
            .iter()
            .map(|b| b.state() == BreakerState::Open)
            .collect();
        let (plans, spent) = self.admit(requests, &excluded);
        if let Some(bucket) = &mut self.bucket {
            bucket.tokens = bucket.tokens.saturating_sub(spent);
        }
        let work: Vec<(Request, Plan)> = requests.iter().copied().zip(plans).collect();
        let this: &Dispatcher = self;
        let results: Vec<(Reply, CallLog)> = run_pool(self.cfg.threads, || {
            work.par_iter()
                .map(|&(req, plan)| this.run_query(req, plan, &excluded))
                .collect()
        });
        self.absorb(&results, now);
        self.cfg.deadline_nanos = saved;
        results.into_iter().map(|(reply, _)| reply).collect()
    }

    /// Tokens currently in the feedback bucket (`None` when feedback is
    /// off). Observable state for tests and metrics renders.
    pub fn feedback_tokens(&self) -> Option<u64> {
        self.bucket.as_ref().map(|b| b.tokens)
    }

    /// Refills the feedback bucket from completions recorded since the
    /// last batch plus the clock trickle, saturating at capacity. A pure
    /// function of the counters and the injected clock.
    fn refill_bucket(&mut self, now: u64) {
        let (Some(bucket), Some(fb)) = (&mut self.bucket, &self.cfg.admission.feedback) else {
            return;
        };
        let completed = self.metrics.answered_nonzero
            + self.metrics.answered_exact
            + self.metrics.answered_adaptive
            + self.metrics.answered_capped;
        let fresh = completed.saturating_sub(bucket.credited_completions);
        bucket.credited_completions = completed;
        let mut earned = fresh.saturating_mul(fb.tokens_per_completion);
        if fb.tokens_per_sec > 0 {
            let elapsed = now.saturating_sub(bucket.last_refill_nanos);
            earned = earned.saturating_add(
                (elapsed as u128 * fb.tokens_per_sec as u128 / 1_000_000_000) as u64,
            );
        }
        bucket.last_refill_nanos = now;
        bucket.tokens = bucket.tokens.saturating_add(earned).min(fb.bucket_capacity);
    }

    /// Sequential admission pass: assigns each request the best tier the
    /// remaining work capacity affords, and reports the work units spent.
    /// Pure function of the request stream, batch-start breaker states, and
    /// the feedback-bucket level — independent of execution order.
    fn admit(&self, requests: &[Request], excluded: &[bool]) -> (Vec<Plan>, u64) {
        let adm = &self.cfg.admission;
        let any_excluded = excluded.iter().any(|&e| e);
        let exact_work = self.exact.as_ref().map(|v| v.work());
        let budget = match &self.bucket {
            Some(bucket) => adm.work_capacity.min(bucket.tokens),
            None => adm.work_capacity,
        };
        let mut remaining = budget;
        let spend = |cost: u64, remaining: &mut u64| {
            if cost <= *remaining {
                *remaining -= cost;
                true
            } else {
                false
            }
        };
        let plans = requests
            .iter()
            .map(|req| {
                let q = req.point();
                if !(q.x.is_finite() && q.y.is_finite()) {
                    return Plan::Shed(ShedReason::InvalidQuery);
                }
                match req {
                    Request::NnNonzero(_) => {
                        if spend(adm.nn_cost, &mut remaining) {
                            Plan::Nn
                        } else {
                            Plan::Shed(ShedReason::CapacityExhausted)
                        }
                    }
                    Request::Quantify(_) => {
                        // Exact needs full coverage: any breaker-open shard
                        // forces the Monte-Carlo tiers, which answer
                        // honestly over the covered subset.
                        if !any_excluded {
                            if let Some(w) = exact_work {
                                if w <= remaining {
                                    remaining -= w;
                                    return Plan::Exact;
                                }
                            }
                        }
                        if spend(self.s as u64, &mut remaining) {
                            Plan::Adaptive
                        } else if spend(adm.capped_rounds as u64, &mut remaining) {
                            Plan::Capped
                        } else {
                            Plan::Shed(ShedReason::CapacityExhausted)
                        }
                    }
                }
            })
            .collect();
        (plans, budget - remaining)
    }

    /// One shard call with retries, timeout, validation, and deadline
    /// accounting. `elapsed` is the query's serial time model.
    fn call_shard<T>(
        &self,
        k: usize,
        elapsed: &mut u64,
        log: &mut CallLog,
        valid: impl Fn(&T) -> bool,
        f: impl Fn() -> (T, u64),
    ) -> CallResult<T> {
        for attempt in 0..=self.cfg.retry.max_retries {
            if attempt > 0 {
                log.retries += 1;
                *elapsed = elapsed.saturating_add(self.cfg.retry.backoff_nanos(attempt));
            }
            if *elapsed >= self.cfg.deadline_nanos {
                log.deadline_hit = true;
                return CallResult::Skipped;
            }
            match catch_unwind(AssertUnwindSafe(&f)) {
                Ok((val, nanos)) => {
                    log.shard_nanos.push((k, nanos));
                    *elapsed = elapsed.saturating_add(nanos);
                    if nanos > self.cfg.call_timeout_nanos {
                        log.timeouts += 1;
                        log.events.push((k, false));
                    } else if !valid(&val) {
                        log.poisons += 1;
                        log.events.push((k, false));
                    } else {
                        log.events.push((k, true));
                        return CallResult::Ok(val);
                    }
                }
                Err(_) => {
                    log.panics += 1;
                    log.events.push((k, false));
                }
            }
        }
        CallResult::Failed
    }

    fn shed_reply(
        &self,
        reason: ShedReason,
        log: &CallLog,
        failed: Vec<usize>,
        elapsed: u64,
    ) -> Reply {
        Reply {
            outcome: Outcome::Shed { reason },
            layout: Vec::new(),
            failed_shards: failed,
            covered: 0,
            total_live: self.total_live,
            retries: log.retries,
            elapsed_nanos: elapsed,
            degraded: false,
        }
    }

    /// Executes one planned request. Immutable; runs on worker threads.
    fn run_query(&self, req: Request, plan: Plan, excluded: &[bool]) -> (Reply, CallLog) {
        let mut log = CallLog::default();
        let shed = |this: &Self, reason, log: CallLog| {
            let reply = this.shed_reply(reason, &log, Vec::new(), 0);
            (reply, log)
        };
        match plan {
            Plan::Shed(reason) => shed(self, reason, log),
            Plan::Nn => self.run_nn(req.point(), excluded, log),
            Plan::Exact => {
                let q = req.point();
                if let Some(view) = &self.exact {
                    let swept = catch_unwind(AssertUnwindSafe(|| view.quantify(q)));
                    if let Ok(pi) = swept {
                        if pi.iter().all(|p| p.is_finite()) {
                            let reply = Reply {
                                outcome: Outcome::Exact { pi },
                                layout: view.ids().to_vec(),
                                failed_shards: Vec::new(),
                                covered: self.total_live,
                                total_live: self.total_live,
                                retries: 0,
                                elapsed_nanos: 0,
                                degraded: false,
                            };
                            return (reply, log);
                        }
                    }
                }
                // Exact sweep faulted (panic or non-finite): fall down the
                // ladder to adaptive Monte-Carlo, which never touches
                // distribution cdf code.
                log.exact_fault = true;
                self.run_quantify(req.point(), self.s, true, excluded, log)
            }
            Plan::Adaptive => {
                let downgraded = self.exact.is_some();
                self.run_quantify(req.point(), self.s, downgraded, excluded, log)
            }
            Plan::Capped => {
                let cap = self.cfg.admission.capped_rounds.min(self.s);
                self.run_quantify(req.point(), cap, true, excluded, log)
            }
        }
    }

    fn run_nn(&self, q: Point, excluded: &[bool], mut log: CallLog) -> (Reply, CallLog) {
        if self.total_live == 0 {
            let reply = Reply {
                outcome: Outcome::Nonzero { ids: Vec::new() },
                layout: Vec::new(),
                failed_shards: Vec::new(),
                covered: 0,
                total_live: 0,
                retries: 0,
                elapsed_nanos: 0,
                degraded: false,
            };
            return (reply, log);
        }
        let mut elapsed = 0u64;
        let mut folds: Vec<Option<DeltaCompose>> = Vec::with_capacity(self.backends.len());
        let mut failed: Vec<usize> = Vec::new();
        for (k, be) in self.backends.iter().enumerate() {
            if excluded[k] {
                folds.push(None);
                failed.push(k);
                continue;
            }
            if be.live_ids().is_empty() {
                folds.push(None);
                continue;
            }
            let got = self.call_shard(
                k,
                &mut elapsed,
                &mut log,
                |f: &DeltaCompose| f.is_empty() || f.delta_min().is_finite(),
                || be.delta_fold(q),
            );
            match got {
                CallResult::Ok(f) => folds.push(Some(f)),
                CallResult::Failed | CallResult::Skipped => {
                    folds.push(None);
                    failed.push(k);
                }
            }
        }
        let mut merged = DeltaCompose::new();
        let mut any = false;
        for f in folds.iter().flatten() {
            merged.merge(f);
            any = true;
        }
        if !any {
            let reason = if log.deadline_hit {
                ShedReason::DeadlineExceeded
            } else {
                ShedReason::NoCoverage
            };
            let reply = self.shed_reply(reason, &log, failed, elapsed);
            return (reply, log);
        }
        let mut ids: Vec<PointId> = Vec::new();
        let mut covered = 0usize;
        for (k, be) in self.backends.iter().enumerate() {
            if folds[k].is_none() {
                continue;
            }
            let got = self.call_shard(
                k,
                &mut elapsed,
                &mut log,
                |_| true,
                || be.report_nonzero(q, &merged),
            );
            match got {
                CallResult::Ok(part) => {
                    ids.extend(part);
                    covered += be.live_ids().len();
                }
                CallResult::Failed | CallResult::Skipped => failed.push(k),
            }
        }
        failed.sort_unstable();
        ids.sort_unstable();
        let degraded = covered < self.total_live;
        let reply = Reply {
            outcome: Outcome::Nonzero { ids },
            layout: Vec::new(),
            failed_shards: failed,
            covered,
            total_live: self.total_live,
            retries: log.retries,
            elapsed_nanos: elapsed,
            degraded,
        };
        (reply, log)
    }

    fn run_quantify(
        &self,
        q: Point,
        cap: usize,
        downgraded: bool,
        excluded: &[bool],
        mut log: CallLog,
    ) -> (Reply, CallLog) {
        if self.total_live == 0 {
            let reply = Reply {
                outcome: Outcome::Exact { pi: Vec::new() },
                layout: Vec::new(),
                failed_shards: Vec::new(),
                covered: 0,
                total_live: 0,
                retries: 0,
                elapsed_nanos: 0,
                degraded: false,
            };
            return (reply, log);
        }
        let mut elapsed = 0u64;
        let mut acc: Vec<(f64, PointId)> = Vec::new();
        let mut covered_lists: Vec<&[PointId]> = Vec::new();
        let mut failed: Vec<usize> = Vec::new();
        for (k, be) in self.backends.iter().enumerate() {
            if excluded[k] {
                failed.push(k);
                continue;
            }
            if be.live_ids().is_empty() {
                continue;
            }
            let got = self.call_shard(
                k,
                &mut elapsed,
                &mut log,
                |w: &Vec<(f64, PointId)>| {
                    w.iter().all(|(d, id)| d.is_finite() && *id != PointId::MAX)
                },
                || be.round_winners(q),
            );
            match got {
                CallResult::Ok(w) => {
                    merge_winners(&mut acc, &w);
                    covered_lists.push(be.live_ids());
                }
                CallResult::Failed | CallResult::Skipped => failed.push(k),
            }
        }
        if covered_lists.is_empty() {
            let reason = if log.deadline_hit {
                ShedReason::DeadlineExceeded
            } else {
                ShedReason::NoCoverage
            };
            let reply = self.shed_reply(reason, &log, failed, elapsed);
            return (reply, log);
        }
        let mut covered: Vec<PointId> = covered_lists.concat();
        covered.sort_unstable();
        let n_covered = covered.len();
        let ranks = ranks_in(&covered, &acc);
        let a = adaptive_over_winners(
            &ranks,
            n_covered,
            self.cfg.epsilon,
            self.cfg.delta,
            self.cfg.adaptive_min_rounds,
            cap,
        );
        let partial = n_covered < self.total_live;
        let capped_tier = cap < self.s;
        let outcome = if capped_tier {
            Outcome::Capped {
                pi: a.pi,
                achieved_epsilon: a.half_width,
                rounds_used: a.rounds_used,
            }
        } else {
            Outcome::Adaptive {
                pi: a.pi,
                achieved_epsilon: a.half_width,
                rounds_used: a.rounds_used,
            }
        };
        let reply = Reply {
            outcome,
            layout: covered,
            failed_shards: failed,
            covered: n_covered,
            total_live: self.total_live,
            retries: log.retries,
            elapsed_nanos: elapsed,
            degraded: downgraded || partial || capped_tier,
        };
        (reply, log)
    }

    /// Folds the batch's logs into metrics and replays call outcomes into
    /// the breakers, in request order — the one place breaker state moves.
    fn absorb(&mut self, results: &[(Reply, CallLog)], now: u64) {
        for (reply, log) in results {
            let m = &mut self.metrics;
            m.queries += 1;
            match &reply.outcome {
                Outcome::Nonzero { .. } => m.answered_nonzero += 1,
                Outcome::Exact { .. } => m.answered_exact += 1,
                Outcome::Adaptive { .. } => m.answered_adaptive += 1,
                Outcome::Capped { .. } => m.answered_capped += 1,
                Outcome::Shed { reason } => {
                    m.shed += 1;
                    match reason {
                        ShedReason::CapacityExhausted => m.shed_capacity += 1,
                        ShedReason::InvalidQuery => m.shed_invalid += 1,
                        ShedReason::NoCoverage => m.shed_no_coverage += 1,
                        ShedReason::DeadlineExceeded => m.shed_deadline += 1,
                    }
                }
            }
            if reply.degraded {
                m.degraded += 1;
            }
            if reply.partial() && !matches!(reply.outcome, Outcome::Shed { .. }) {
                m.partial += 1;
            }
            m.retries += log.retries;
            m.timeouts += log.timeouts;
            m.shard_panics += log.panics;
            m.poisoned_answers += log.poisons;
            if log.exact_fault {
                m.exact_faults += 1;
            }
            m.query_latency.record(reply.elapsed_nanos / 1_000);
            for &(k, nanos) in &log.shard_nanos {
                m.shard_latency[k].record(nanos / 1_000);
            }
            for &(k, ok) in &log.events {
                if !ok {
                    m.shard_failures[k] += 1;
                }
                let br = &mut self.breakers[k];
                let before = br.state();
                if ok {
                    br.record_success();
                } else {
                    br.record_failure(now);
                }
                let after = br.state();
                if after == BreakerState::Open && before != BreakerState::Open {
                    m.breaker_trips += 1;
                }
                if after == BreakerState::Closed && before == BreakerState::HalfOpen {
                    m.breaker_recoveries += 1;
                }
            }
        }
    }
}

/// A permanently empty placeholder backend (used only transiently while
/// wrapping a real backend; see [`Dispatcher::wrap_shard`]).
struct EmptyShard;

impl ShardBackend for EmptyShard {
    fn live_ids(&self) -> &[PointId] {
        &[]
    }
    fn rounds(&self) -> usize {
        1
    }
    fn delta_fold(&self, _q: Point) -> (DeltaCompose, u64) {
        (DeltaCompose::new(), 0)
    }
    fn report_nonzero(&self, _q: Point, _fold: &DeltaCompose) -> (Vec<PointId>, u64) {
        (Vec::new(), 0)
    }
    fn round_winners(&self, _q: Point) -> (Vec<(f64, PointId)>, u64) {
        (Vec::new(), 0)
    }
}

/// Runs `op` on an `n`-thread pool when requested (degrading to the
/// ambient pool if the build fails) — the same shape as the core crate's
/// batch options.
fn run_pool<R: Send>(threads: Option<usize>, op: impl FnOnce() -> R + Send) -> R {
    match threads {
        None => op(),
        Some(n) => match rayon::ThreadPoolBuilder::new().num_threads(n).build() {
            Ok(pool) => pool.install(op),
            Err(_) => op(),
        },
    }
}
