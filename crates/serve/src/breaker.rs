//! Per-shard circuit breaker.
//!
//! State machine (documented contract, verified by the chaos suite):
//!
//! ```text
//!            trip_after consecutive failures
//!   Closed ────────────────────────────────────▶ Open
//!     ▲                                           │
//!     │ close_after consecutive                   │ cooldown_nanos
//!     │ probe successes                           ▼ elapsed
//!     └───────────────────────────────────── HalfOpen
//!                    (any probe failure reopens: HalfOpen ─▶ Open)
//! ```
//!
//! The breaker is a plain sequential value: the [`Dispatcher`] drives it
//! deterministically by replaying per-call outcomes in request order after
//! each batch, and time enters only through the caller-supplied `now`
//! nanoseconds, so trips and recoveries are schedule-independent.
//!
//! [`Dispatcher`]: crate::Dispatcher

/// Breaker tuning. All thresholds are clamped to ≥ 1 at use.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker.
    pub trip_after: u32,
    /// Nanoseconds an open breaker waits before admitting half-open probes.
    pub cooldown_nanos: u64,
    /// Consecutive half-open probe successes that close the breaker.
    pub close_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            trip_after: 3,
            cooldown_nanos: 1_000_000_000,
            close_after: 2,
        }
    }
}

/// The three breaker states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow, consecutive failures are counted.
    Closed,
    /// Tripped: the shard is excluded from serving until the cooldown
    /// elapses.
    Open,
    /// Probing: calls flow again; successes close, any failure reopens.
    HalfOpen,
}

/// One shard's breaker.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    probe_successes: u32,
    opened_at: u64,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_successes: 0,
            opened_at: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Advances `Open → HalfOpen` once the cooldown has elapsed. Call once
    /// per batch with the batch's clock reading.
    pub fn poll(&mut self, now: u64) {
        if self.state == BreakerState::Open
            && now.saturating_sub(self.opened_at) >= self.cfg.cooldown_nanos
        {
            self.state = BreakerState::HalfOpen;
            self.probe_successes = 0;
        }
    }

    /// Records one successful call.
    pub fn record_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.cfg.close_after.max(1) {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Records one failed call (`now` stamps a potential trip time).
    pub fn record_failure(&mut self, now: u64) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.trip_after.max(1) {
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                }
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.opened_at = now;
            }
            BreakerState::Open => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_cools_probes_and_recovers() {
        let mut br = CircuitBreaker::new(BreakerConfig {
            trip_after: 2,
            cooldown_nanos: 100,
            close_after: 2,
        });
        assert_eq!(br.state(), BreakerState::Closed);
        br.record_failure(10);
        assert_eq!(br.state(), BreakerState::Closed);
        br.record_failure(11);
        assert_eq!(br.state(), BreakerState::Open);
        br.poll(50);
        assert_eq!(br.state(), BreakerState::Open, "cooldown not elapsed");
        br.poll(111);
        assert_eq!(br.state(), BreakerState::HalfOpen);
        br.record_failure(112);
        assert_eq!(br.state(), BreakerState::Open, "probe failure reopens");
        br.poll(300);
        br.record_success();
        br.record_success();
        assert_eq!(br.state(), BreakerState::Closed);
        // A success streak resets the failure count.
        br.record_failure(400);
        br.record_success();
        br.record_failure(401);
        assert_eq!(br.state(), BreakerState::Closed);
    }
}
