//! The curves `γ_i` of the nonzero Voronoi diagram (disk case, §2.1).
//!
//! For uncertain points with disk supports `D_j = (c_j, r_j)`, the region
//! where `P_i ∈ NN≠0(q)` is `{ q : δ_i(q) < Δ(q) }`, bounded by the curve
//! `γ_i = { q : δ_i(q) = Δ(q) }`. Viewed in polar coordinates around `c_i`,
//! each constraint `δ_i = Δ_j` is a rational radial function
//! ([`FocalCurve::gamma`]), `δ_i(x) - Δ_j(x)` is monotone along each ray, and
//! therefore
//!
//! * the region is **star-shaped around `c_i`**, with radial boundary
//!   function `γ_i(θ) = min_j γ_ij(θ)` — the *lower envelope* of at most
//!   `n-1` partial curves, each pair crossing at most twice;
//! * Lemma 2.2: the envelope has `O(n)` breakpoints and is computable in
//!   `O(n log n)` time (divide-and-conquer merge, Davenport–Schinzel order 2).
//!
//! [`GammaCurve`] computes and stores this envelope, answers membership
//! (`δ_i(q) < Δ(q)` in `O(log n)`), enumerates breakpoints, and produces an
//! adaptive polygonalization for the subdivision builder.

use core::f64::consts::TAU;
use unn_geom::angle::norm_angle;
use unn_geom::{Disk, FocalCurve, Point, Vector};

/// One arc of the lower envelope: curve `curve` is active on `[a0, a1]`.
#[derive(Clone, Copy, Debug)]
pub struct EnvArc {
    /// Start angle in `[0, 2π)`.
    pub a0: f64,
    /// End angle in `(a0, 2π]`.
    pub a1: f64,
    /// Local index into the curve list.
    pub curve: u32,
}

/// The boundary `γ_i` of uncertain point `i`'s nonzero region, as a radial
/// envelope around the disk center.
#[derive(Clone, Debug)]
pub struct GammaCurve {
    /// Center of the defining disk `D_i` (polar origin).
    pub center: Point,
    curves: Vec<FocalCurve>,
    /// Original index `j` of each curve (the disk realizing `Δ_j`).
    labels: Vec<u32>,
    /// Envelope arcs sorted by `a0`; gaps mean `γ_i(θ) = +∞`.
    arcs: Vec<EnvArc>,
}

impl GammaCurve {
    /// Builds `γ_i` for disk `i` against all other disks.
    ///
    /// `disks[i]` is the defining disk; curves against disks whose `γ_ij` is
    /// empty (overlapping supports) are skipped, per Lemma 2.1.
    pub fn build(disks: &[Disk], i: usize) -> Self {
        let d_i = disks[i];
        let mut curves = Vec::with_capacity(disks.len() - 1);
        let mut labels = Vec::with_capacity(disks.len() - 1);
        for (j, d_j) in disks.iter().enumerate() {
            if j == i {
                continue;
            }
            if let Some(c) = FocalCurve::gamma(d_i.center, d_i.radius, d_j.center, d_j.radius) {
                curves.push(c);
                labels.push(j as u32);
            }
        }
        let arcs = envelope(&curves);
        GammaCurve {
            center: d_i.center,
            curves,
            labels,
            arcs,
        }
    }

    /// Radial boundary value `γ_i(θ)`, `+∞` where unconstrained.
    pub fn radial(&self, theta: f64) -> f64 {
        let theta = norm_angle(theta);
        match self.find_arc(theta) {
            Some(arc) => self.curves[arc.curve as usize].radial_or_inf(theta),
            None => f64::INFINITY,
        }
    }

    /// The original index `j` of the disk whose `Δ_j` realizes the envelope
    /// at `theta`, or `None` where the envelope is infinite.
    pub fn active_label(&self, theta: f64) -> Option<u32> {
        let theta = norm_angle(theta);
        self.find_arc(theta).map(|a| self.labels[a.curve as usize])
    }

    fn find_arc(&self, theta: f64) -> Option<&EnvArc> {
        let idx = self.arcs.partition_point(|a| a.a1 < theta);
        let arc = self.arcs.get(idx)?;
        (arc.a0 <= theta).then_some(arc)
    }

    /// `true` iff `q` lies strictly inside the region `δ_i(q) < Δ(q)`
    /// (equivalently `P_i ∈ NN≠0(q)`, Lemma 2.1 and Eq. 4).
    pub fn contains(&self, q: Point) -> bool {
        let v = q - self.center;
        let t = v.norm();
        if t == 0.0 {
            return true;
        }
        t < self.radial(v.angle())
    }

    /// Envelope arcs.
    pub fn arcs(&self) -> &[EnvArc] {
        &self.arcs
    }

    /// Number of envelope arcs — Lemma 2.2 bounds the breakpoint count (and
    /// hence the arc count, up to the wrap-around split) by `2n`.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Breakpoint positions: the plane points where the envelope switches
    /// curves (these are `𝒱≠0` vertex candidates of "breakpoint" type).
    pub fn breakpoint_points(&self) -> Vec<Point> {
        let mut out = Vec::new();
        for w in self.arcs.windows(2) {
            if (w[0].a1 - w[1].a0).abs() < 1e-12 && w[0].curve != w[1].curve {
                let theta = w[0].a1;
                let t = self.curves[w[0].curve as usize].radial_or_inf(theta);
                if t.is_finite() {
                    out.push(self.center + Vector::from_angle(theta) * t);
                }
            }
        }
        out
    }

    /// Adaptive polygonalization of the curve, as a list of polylines (the
    /// curve may be disconnected or partially beyond `r_max`).
    ///
    /// Points farther than `r_max` from the center are omitted (the
    /// subdivision builder passes an `r_max` that covers its bounding box, so
    /// omitted parts never affect queries inside the box). `tol` bounds the
    /// chord-to-curve deviation.
    pub fn polylines(&self, tol: f64, r_max: f64) -> Vec<Vec<Point>> {
        let mut out: Vec<Vec<Point>> = Vec::new();
        let mut cur: Vec<Point> = Vec::new();
        let mut last_angle: Option<f64> = None;
        for arc in &self.arcs {
            let curve = &self.curves[arc.curve as usize];
            // New polyline if there is an angular gap before this arc.
            if let Some(la) = last_angle {
                if (arc.a0 - la).abs() > 1e-9 && !cur.is_empty() {
                    out.push(core::mem::take(&mut cur));
                }
            }
            self.sample_arc(curve, arc.a0, arc.a1, tol, r_max, &mut cur, &mut out);
            last_angle = Some(arc.a1);
        }
        if !cur.is_empty() {
            out.push(cur);
        }
        out.retain(|p| p.len() >= 2);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn sample_arc(
        &self,
        curve: &FocalCurve,
        a0: f64,
        a1: f64,
        tol: f64,
        r_max: f64,
        cur: &mut Vec<Point>,
        out: &mut Vec<Vec<Point>>,
    ) {
        // Uniform refinement by curvature proxy: subdivide until the chord
        // midpoint deviation is below tol, capping recursion.
        let eval = |theta: f64| -> Option<Point> {
            let t = curve.radial_or_inf(theta);
            (t.is_finite() && t <= r_max).then(|| self.center + Vector::from_angle(theta) * t)
        };
        let mut samples: Vec<(f64, Option<Point>)> = Vec::new();
        // Generate an ordered sample list by in-order traversal.
        fn rec(
            eval: &dyn Fn(f64) -> Option<Point>,
            t0: f64,
            t1: f64,
            depth: u32,
            tol: f64,
            samples: &mut Vec<(f64, Option<Point>)>,
        ) {
            let p0 = eval(t0);
            let p1 = eval(t1);
            let tm = 0.5 * (t0 + t1);
            let pm = eval(tm);
            let flat = match (p0, pm, p1) {
                (Some(a), Some(m), Some(b)) => {
                    unn_geom::Segment::new(a, b).dist2_to_point(m) <= tol * tol
                }
                (None, None, None) => true,
                _ => false,
            };
            if depth >= 16 || (flat && depth >= 3) {
                samples.push((t0, p0));
                return;
            }
            rec(eval, t0, tm, depth + 1, tol, samples);
            rec(eval, tm, t1, depth + 1, tol, samples);
        }
        rec(&eval, a0, a1, 0, tol, &mut samples);
        samples.push((a1, eval(a1)));
        for (_, p) in samples {
            match p {
                Some(pt) => cur.push(pt),
                None => {
                    if !cur.is_empty() {
                        out.push(core::mem::take(cur));
                    }
                }
            }
        }
    }
}

/// Lower envelope of partial radial curves over `[0, 2π)`.
///
/// Divide-and-conquer merge; each pairwise merge resolves crossings with the
/// closed-form [`FocalCurve::intersect_angles`].
pub fn envelope(curves: &[FocalCurve]) -> Vec<EnvArc> {
    let ids: Vec<u32> = (0..curves.len() as u32).collect();
    env_rec(curves, &ids)
}

fn env_rec(curves: &[FocalCurve], ids: &[u32]) -> Vec<EnvArc> {
    match ids.len() {
        0 => Vec::new(),
        1 => single_curve_arcs(curves, ids[0]),
        _ => {
            let (l, r) = ids.split_at(ids.len() / 2);
            let a = env_rec(curves, l);
            let b = env_rec(curves, r);
            merge_envelopes(curves, &a, &b)
        }
    }
}

fn single_curve_arcs(curves: &[FocalCurve], id: u32) -> Vec<EnvArc> {
    let w = curves[id as usize].window();
    if w.is_full() {
        return vec![EnvArc {
            a0: 0.0,
            a1: TAU,
            curve: id,
        }];
    }
    let a0 = w.start;
    let a1 = a0 + w.extent;
    if a1 <= TAU {
        vec![EnvArc { a0, a1, curve: id }]
    } else {
        // Wraps: split at 2π.
        vec![
            EnvArc {
                a0: 0.0,
                a1: a1 - TAU,
                curve: id,
            },
            EnvArc {
                a0,
                a1: TAU,
                curve: id,
            },
        ]
    }
}

fn active_at(arcs: &[EnvArc], theta: f64) -> Option<u32> {
    let idx = arcs.partition_point(|a| a.a1 < theta);
    arcs.get(idx).filter(|a| a.a0 <= theta).map(|a| a.curve)
}

fn merge_envelopes(curves: &[FocalCurve], a: &[EnvArc], b: &[EnvArc]) -> Vec<EnvArc> {
    // Elementary intervals from all arc endpoints.
    let mut cuts: Vec<f64> = Vec::with_capacity(2 * (a.len() + b.len()) + 2);
    cuts.push(0.0);
    cuts.push(TAU);
    for arc in a.iter().chain(b) {
        cuts.push(arc.a0);
        cuts.push(arc.a1);
    }
    cuts.sort_by(f64::total_cmp);
    cuts.dedup_by(|x, y| (*x - *y).abs() < 1e-13);

    let mut out: Vec<EnvArc> = Vec::new();
    let mut push = |a0: f64, a1: f64, curve: u32| {
        if a1 - a0 < 1e-13 {
            return;
        }
        if let Some(last) = out.last_mut() {
            if last.curve == curve && (last.a1 - a0).abs() < 1e-13 {
                last.a1 = a1;
                return;
            }
        }
        out.push(EnvArc { a0, a1, curve });
    };

    for w in cuts.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        if t1 - t0 < 1e-13 {
            continue;
        }
        let mid = 0.5 * (t0 + t1);
        let ca = active_at(a, mid);
        let cb = active_at(b, mid);
        match (ca, cb) {
            (None, None) => {}
            (Some(c), None) | (None, Some(c)) => push(t0, t1, c),
            (Some(c1), Some(c2)) => {
                let f1 = &curves[c1 as usize];
                let f2 = &curves[c2 as usize];
                // Crossings strictly inside the interval.
                let mut xs: Vec<f64> = f1
                    .intersect_angles(f2)
                    .into_iter()
                    .map(norm_angle)
                    .filter(|&x| x > t0 + 1e-13 && x < t1 - 1e-13)
                    .collect();
                xs.sort_by(f64::total_cmp);
                xs.push(t1);
                let mut lo = t0;
                for hi in xs {
                    let m = 0.5 * (lo + hi);
                    let winner = if f1.radial_or_inf(m) <= f2.radial_or_inf(m) {
                        c1
                    } else {
                        c2
                    };
                    push(lo, hi, winner);
                    lo = hi;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn disk(x: f64, y: f64, r: f64) -> Disk {
        Disk::new(Point::new(x, y), r)
    }

    /// Brute-force membership: delta_i(q) < min_j Delta_j(q).
    fn contains_brute(disks: &[Disk], i: usize, q: Point) -> bool {
        let delta_i = disks[i].min_dist(q);
        disks
            .iter()
            .enumerate()
            .all(|(j, d)| j == i || delta_i < d.max_dist(q))
    }

    fn random_disks(n: usize, seed: u64) -> Vec<Disk> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                disk(
                    rng.random_range(-50.0..50.0),
                    rng.random_range(-50.0..50.0),
                    rng.random_range(0.5..6.0),
                )
            })
            .collect()
    }

    #[test]
    fn boundary_point_is_equidistant_and_label_realizes_it() {
        let disks = random_disks(10, 960);
        for i in 0..disks.len() {
            let g = GammaCurve::build(&disks, i);
            for k in 0..64 {
                let theta = k as f64 * core::f64::consts::TAU / 64.0;
                let r = g.radial(theta);
                if !r.is_finite() {
                    continue;
                }
                // On γ_i the defining equality δ_i(p) = Δ_j(p) holds for the
                // arc's active disk j (Eq. 4's boundary case).
                let p = disks[i].center + Vector::from_angle(theta) * r;
                let delta_i = disks[i].min_dist(p);
                let j = g.active_label(theta).expect("finite radial has a label") as usize;
                assert_ne!(j, i);
                let dj = disks[j].max_dist(p);
                assert!(
                    (delta_i - dj).abs() <= 1e-6 * dj.max(1.0),
                    "γ_{i} at θ={theta}: δ_i={delta_i} Δ_{j}={dj}"
                );
                // ... and j realizes the minimum over all competitors.
                let best = disks
                    .iter()
                    .enumerate()
                    .filter(|&(l, _)| l != i)
                    .map(|(_, d)| d.max_dist(p))
                    .fold(f64::INFINITY, f64::min);
                assert!(dj <= best + 1e-6 * best.max(1.0));
            }
        }
    }

    #[test]
    fn two_disk_envelope_matches_direct_curve() {
        let disks = [disk(0.0, 0.0, 1.0), disk(10.0, 0.0, 2.0)];
        let g = GammaCurve::build(&disks, 0);
        // Single curve: envelope = that curve's window.
        let f = FocalCurve::gamma(disks[0].center, 1.0, disks[1].center, 2.0).unwrap();
        for k in 0..64 {
            let theta = k as f64 * TAU / 64.0;
            let want = f.radial_or_inf(theta);
            let got = g.radial(theta);
            if want.is_finite() {
                assert!((got - want).abs() < 1e-9, "theta={theta}");
            } else {
                assert!(got.is_infinite());
            }
        }
    }

    #[test]
    fn membership_matches_brute_force() {
        for seed in 50..54 {
            let disks = random_disks(12, seed);
            let gammas: Vec<GammaCurve> = (0..disks.len())
                .map(|i| GammaCurve::build(&disks, i))
                .collect();
            let mut rng = SmallRng::seed_from_u64(seed + 100);
            for _ in 0..400 {
                let q = Point::new(rng.random_range(-80.0..80.0), rng.random_range(-80.0..80.0));
                for i in 0..disks.len() {
                    let got = gammas[i].contains(q);
                    let want = contains_brute(&disks, i, q);
                    // Skip points essentially on the boundary.
                    let delta_i = disks[i].min_dist(q);
                    let min_max = disks
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .map(|(_, d)| d.max_dist(q))
                        .fold(f64::INFINITY, f64::min);
                    if (delta_i - min_max).abs() < 1e-9 {
                        continue;
                    }
                    assert_eq!(got, want, "seed={seed} i={i} q={q:?}");
                }
            }
        }
    }

    #[test]
    fn breakpoints_linear_in_n() {
        // Lemma 2.2: gamma_i has at most 2n breakpoints.
        for n in [4, 8, 16, 32] {
            let disks = random_disks(n, n as u64);
            let g = GammaCurve::build(&disks, 0);
            assert!(
                g.arcs().len() <= 2 * n + 2,
                "n={n}: {} arcs",
                g.arcs().len()
            );
        }
    }

    #[test]
    fn breakpoint_points_equidistant() {
        // At a breakpoint, delta_i equals Delta for two different j's.
        let disks = random_disks(10, 60);
        let g = GammaCurve::build(&disks, 0);
        for bp in g.breakpoint_points() {
            let delta_0 = disks[0].min_dist(bp);
            let min_max = disks
                .iter()
                .skip(1)
                .map(|d| d.max_dist(bp))
                .fold(f64::INFINITY, f64::min);
            assert!(
                (delta_0 - min_max).abs() < 1e-6 * (1.0 + delta_0),
                "breakpoint not on gamma: {delta_0} vs {min_max}"
            );
            // Two distinct disks realize the min within tolerance.
            let near: usize = disks
                .iter()
                .skip(1)
                .filter(|d| (d.max_dist(bp) - min_max).abs() < 1e-6 * (1.0 + min_max))
                .count();
            assert!(near >= 2, "breakpoint realized by {near} disks");
        }
    }

    #[test]
    fn overlapping_disks_unconstrained() {
        // All disks overlap disk 0: gamma_0 is empty, region is the plane.
        let disks = [
            disk(0.0, 0.0, 5.0),
            disk(1.0, 0.0, 5.0),
            disk(0.0, 1.0, 5.0),
        ];
        let g = GammaCurve::build(&disks, 0);
        assert!(g.arcs().is_empty());
        assert!(g.contains(Point::new(1000.0, 1000.0)));
    }

    #[test]
    fn polylines_lie_on_curve() {
        let disks = random_disks(8, 61);
        let g = GammaCurve::build(&disks, 0);
        let polys = g.polylines(1e-4, 1e4);
        let mut checked = 0;
        for poly in &polys {
            for p in poly {
                let delta_0 = disks[0].min_dist(*p);
                let min_max = disks
                    .iter()
                    .skip(1)
                    .map(|d| d.max_dist(*p))
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    (delta_0 - min_max).abs() < 1e-6 * (1.0 + delta_0),
                    "polyline point off curve: {} vs {}",
                    delta_0,
                    min_max
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "no polyline points generated");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_membership_agrees(
            seed in 0u64..500,
            qx in -80.0f64..80.0, qy in -80.0f64..80.0,
        ) {
            let disks = random_disks(9, seed);
            let q = Point::new(qx, qy);
            for i in 0..disks.len() {
                let g = GammaCurve::build(&disks, i);
                let delta_i = disks[i].min_dist(q);
                let min_max = disks.iter().enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, d)| d.max_dist(q))
                    .fold(f64::INFINITY, f64::min);
                prop_assume!((delta_i - min_max).abs() > 1e-9);
                prop_assert_eq!(g.contains(q), contains_brute(&disks, i, q), "i={}", i);
            }
        }
    }
}
